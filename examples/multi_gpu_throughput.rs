//! Multi-GPU scaling demo: filter the same pair set on 1–8 simulated GTX 1080 Ti
//! devices and watch the kernel-time throughput scale while the filter-time
//! throughput saturates (Figure 8 of the paper in miniature).
//!
//! Run with: `cargo run --release --example multi_gpu_throughput`

use gatekeeper_gpu::core::{EncodingActor, FilterConfig, MultiGpuGateKeeper};
use gatekeeper_gpu::gpusim::DeviceSpec;
use gatekeeper_gpu::seq::datasets::DatasetProfile;

fn main() {
    let threshold = 2u32;
    let pairs = DatasetProfile::set3().generate(40_000, 11);
    println!(
        "Multi-GPU GateKeeper-GPU throughput on {} pairs (100bp, e = {threshold}, host-encoded)\n",
        pairs.len()
    );
    println!(
        "{:>7} {:>18} {:>18} {:>18}",
        "GPUs", "kernel time (s)", "kernel Mpairs/s", "filter Mpairs/s"
    );

    for devices in 1..=8usize {
        let filter = MultiGpuGateKeeper::new(
            DeviceSpec::gtx_1080_ti(),
            devices,
            FilterConfig::new(100, threshold).with_encoding(EncodingActor::Host),
        );
        let run = filter.filter_set(&pairs);
        let kernel_mps = pairs.len() as f64 / run.kernel_seconds.max(1e-12) / 1e6;
        let filter_mps = pairs.len() as f64 / run.filter_seconds.max(1e-12) / 1e6;
        println!(
            "{devices:>7} {:>18.6} {:>18.1} {:>18.2}",
            run.kernel_seconds, kernel_mps, filter_mps
        );
    }

    println!();
    println!(
        "Expected shape (paper, Figure 8): kernel-time throughput grows almost linearly with the"
    );
    println!(
        "device count; filter-time throughput grows much more slowly because host-side preparation"
    );
    println!("and the shared PCIe complex do not scale with the number of GPUs.");
}
