//! End-to-end read mapping with and without GateKeeper-GPU pre-alignment
//! filtering — the whole-genome workflow of §3.5/§5.3 on a synthetic chromosome.
//!
//! Run with: `cargo run --release --example read_mapping`

use gatekeeper_gpu::core::{FilterConfig, GateKeeperGpu};
use gatekeeper_gpu::mapper::{MapperConfig, PreFilter, ReadMapper};
use gatekeeper_gpu::seq::reference::ReferenceBuilder;
use gatekeeper_gpu::seq::simulate::{ErrorProfile, ReadSimulator};

fn main() {
    let threshold = 4u32;

    // A repeat-rich synthetic chromosome (repeats are what make seeding produce
    // many candidate locations per read).
    let reference = ReferenceBuilder::new(500_000)
        .seed(2024)
        .name("chrDemo")
        .repeat_fraction(0.35)
        .n_gaps(2, 800)
        .build();

    // Simulated Illumina-like 100bp reads.
    let reads: Vec<_> = ReadSimulator::new(100, ErrorProfile::illumina())
        .seed(7)
        .simulate(&reference, 5_000)
        .iter()
        .map(|r| r.to_fastq())
        .collect();

    let mapper = ReadMapper::new(reference, MapperConfig::new(threshold));

    println!("Mapping {} reads at e = {threshold}\n", reads.len());

    let unfiltered = mapper.map_reads(&reads, &PreFilter::None);
    let gpu = GateKeeperGpu::with_default_device(FilterConfig::new(100, threshold));
    let filtered = mapper.map_reads(&reads, &PreFilter::Gpu(gpu));

    let print = |label: &str, stats: &gatekeeper_gpu::mapper::MappingStats| {
        println!("{label}");
        println!("  mappings            : {}", stats.mappings);
        println!("  mapped reads        : {}", stats.mapped_reads);
        println!("  candidate pairs     : {}", stats.candidate_pairs);
        println!("  verification pairs  : {}", stats.verification_pairs);
        println!(
            "  rejected pairs      : {} ({:.0}% reduction)",
            stats.rejected_pairs,
            stats.reduction_fraction() * 100.0
        );
        println!(
            "  verification time   : {:.3} s",
            stats.verification_seconds
        );
        println!("  total time          : {:.3} s\n", stats.total_seconds);
    };

    print(
        "mrFAST-like mapper, no pre-alignment filter",
        &unfiltered.stats,
    );
    print("mrFAST-like mapper + GateKeeper-GPU", &filtered.stats);

    assert_eq!(
        unfiltered.stats.mappings, filtered.stats.mappings,
        "filtering must not change the reported mappings"
    );
    println!(
        "Verification speedup from filtering: {:.2}x (paper: up to 2.9x on real hardware)",
        unfiltered.stats.verification_seconds / filtered.stats.verification_seconds.max(1e-9)
    );
}
