//! Compare the accuracy of all implemented pre-alignment filters against the exact
//! edit-distance ground truth, the way §5.1.2 / Figure 5 of the paper does.
//!
//! Run with: `cargo run --release --example filter_accuracy`

use gatekeeper_gpu::filters::accuracy::{
    evaluate_with_truth, ground_truth_distances, UndefinedPolicy,
};
use gatekeeper_gpu::filters::{
    GateKeeperFpgaFilter, GateKeeperGpuFilter, MagnetFilter, PreAlignmentFilter, ShoujiFilter,
    SneakySnakeFilter,
};
use gatekeeper_gpu::seq::datasets::DatasetProfile;

fn main() {
    let threshold = 4u32;
    let pairs = DatasetProfile::set1().generate(10_000, 7);
    println!(
        "Filter accuracy on a {}-pair Set 1-style dataset (100bp, e = {threshold})\n",
        pairs.len()
    );

    let truth = ground_truth_distances(&pairs);
    let filters: Vec<Box<dyn PreAlignmentFilter>> = vec![
        Box::new(GateKeeperGpuFilter::new(threshold)),
        Box::new(GateKeeperFpgaFilter::new(threshold)),
        Box::new(ShoujiFilter::new(threshold)),
        Box::new(MagnetFilter::new(threshold)),
        Box::new(SneakySnakeFilter::new(threshold)),
    ];

    println!(
        "{:<18} {:>14} {:>14} {:>14} {:>16}",
        "filter", "false accepts", "false rejects", "true rejects", "false accept %"
    );
    for filter in &filters {
        let report = evaluate_with_truth(
            filter.as_ref(),
            &pairs,
            &truth,
            UndefinedPolicy::CountAsAccepted,
        );
        println!(
            "{:<18} {:>14} {:>14} {:>14} {:>15.2}%",
            report.filter,
            report.false_accepts,
            report.false_rejects,
            report.true_rejects,
            report.false_accept_rate() * 100.0
        );
    }

    println!();
    println!(
        "Expected ordering (paper): SneakySnake and MAGNET are the most accurate, then Shouji,"
    );
    println!("then GateKeeper-GPU, with GateKeeper-FPGA/SHD last; only MAGNET ever false-rejects.");
}
