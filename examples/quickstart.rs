//! Quickstart: filter a handful of (read, candidate reference segment) pairs with
//! GateKeeper-GPU and compare its decisions against the exact edit distance.
//!
//! Run with: `cargo run --release --example quickstart`

use gatekeeper_gpu::align::edit_distance;
use gatekeeper_gpu::core::{EncodingActor, FilterConfig, GateKeeperGpu};
use gatekeeper_gpu::filters::PreAlignmentFilter;
use gatekeeper_gpu::seq::datasets::DatasetProfile;

fn main() {
    let read_len = 100;
    let threshold = 5;

    // A GateKeeper-GPU instance on the paper's Setup 1 device (GTX 1080 Ti model),
    // encoding the sequences on the host before the (simulated) transfer.
    let filter = GateKeeperGpu::with_default_device(
        FilterConfig::new(read_len, threshold).with_encoding(EncodingActor::Host),
    );

    // A small synthetic candidate set with the paper's "Set 3" edit profile.
    let pairs = DatasetProfile::set3().generate(5_000, 42);

    let run = filter.filter_set(&pairs);
    println!("GateKeeper-GPU quickstart");
    println!("-------------------------");
    println!("pairs filtered      : {}", pairs.len());
    println!("accepted            : {}", run.accepted());
    println!("rejected            : {}", run.rejected());
    println!("kernel time (model) : {:.6} s", run.kernel_seconds());
    println!("filter time (model) : {:.6} s", run.filter_seconds());
    println!(
        "achieved occupancy  : {:.1} %",
        run.achieved_occupancy * 100.0
    );

    // Spot-check a few decisions against the exact edit distance (Edlib-equivalent).
    let mut false_rejects = 0;
    for (pair, decision) in pairs.pairs.iter().zip(run.decisions.iter()).take(1_000) {
        let distance = edit_distance(&pair.read, &pair.reference);
        if distance <= threshold && !decision.accepted {
            false_rejects += 1;
        }
    }
    println!("false rejects in the first 1,000 pairs: {false_rejects} (the paper reports zero)");

    // The same filter also works pair-by-pair.
    let read = b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTAC";
    let decision = filter.filter_pair(read, read);
    println!(
        "identical 50bp pair: accepted = {}, estimated edits = {}",
        decision.accepted, decision.estimated_edits
    );

    // Stream-overlapped batch pipeline: cut the run into chunks and overlap the
    // encode+H2D of the next chunk with the kernel of the current one (§3.4).
    // Decisions are byte-identical; only the simulated timeline changes.
    let overlapped = GateKeeperGpu::with_default_device(
        FilterConfig::new(read_len, threshold)
            .with_encoding(EncodingActor::Host)
            .with_chunk_pairs(500)
            .with_overlap(true),
    )
    .filter_set(&pairs);
    assert_eq!(overlapped.decisions, run.decisions);
    println!();
    println!(
        "triple-buffered pipeline ({} chunks of 500): serialized {:.6} s -> overlapped {:.6} s ({:.2}x)",
        overlapped.batches,
        overlapped.pipeline.serialized_seconds,
        overlapped.pipeline.overlapped_seconds,
        overlapped.pipeline.speedup()
    );
}
