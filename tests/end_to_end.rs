//! Cross-crate integration tests: the full pipeline from synthetic genome and read
//! simulation through seeding, pre-alignment filtering on the simulated GPU, and
//! verification — the paper's whole-genome workflow end to end.

use gatekeeper_gpu::core::{
    EncodingActor, FilterConfig, GateKeeperCpu, GateKeeperGpu, MultiGpuGateKeeper,
};
use gatekeeper_gpu::filters::{GateKeeperGpuFilter, PreAlignmentFilter, SneakySnakeFilter};
use gatekeeper_gpu::gpusim::DeviceSpec;
use gatekeeper_gpu::mapper::{MapperConfig, PreFilter, ReadMapper};
use gatekeeper_gpu::seq::datasets::DatasetProfile;
use gatekeeper_gpu::seq::reference::ReferenceBuilder;
use gatekeeper_gpu::seq::simulate::{ErrorProfile, ReadSimulator};

fn demo_reference() -> gatekeeper_gpu::seq::Reference {
    ReferenceBuilder::new(120_000)
        .seed(99)
        .repeat_fraction(0.3)
        .n_gaps(1, 400)
        .build()
}

#[test]
fn full_pipeline_maps_simulated_reads_and_filtering_preserves_results() {
    let reference = demo_reference();
    let reads: Vec<_> = ReadSimulator::new(100, ErrorProfile::illumina())
        .seed(3)
        .simulate(&reference, 200)
        .iter()
        .map(|r| r.to_fastq())
        .collect();
    let mapper = ReadMapper::new(reference, MapperConfig::new(3));

    let unfiltered = mapper.map_reads(&reads, &PreFilter::None);
    let gpu = GateKeeperGpu::with_default_device(FilterConfig::new(100, 3));
    let filtered = mapper.map_reads(&reads, &PreFilter::Gpu(gpu));

    // The filter must be transparent to the mapping results (Table 3)…
    assert_eq!(unfiltered.stats.mappings, filtered.stats.mappings);
    assert_eq!(unfiltered.stats.mapped_reads, filtered.stats.mapped_reads);
    // …while removing a meaningful share of the verification workload.
    assert!(filtered.stats.rejected_pairs > 0);
    assert!(filtered.stats.verification_pairs < unfiltered.stats.verification_pairs);
    // Nearly every simulated read should map somewhere.
    assert!(filtered.stats.mapped_reads as usize >= reads.len() * 9 / 10);
}

#[test]
fn gpu_cpu_and_host_filter_agree_on_every_decision() {
    let pairs = DatasetProfile::set3().generate(2_000, 1234);
    let threshold = 5;

    let gpu_system = GateKeeperGpu::with_default_device(FilterConfig::new(100, threshold));
    let gpu_run = gpu_system.filter_set(&pairs);

    let cpu_run = GateKeeperCpu::new(threshold, 2).filter_set(&pairs);

    let host_filter = GateKeeperGpuFilter::new(threshold);
    for ((pair, gpu_decision), cpu_decision) in pairs
        .pairs
        .iter()
        .zip(gpu_run.decisions.iter())
        .zip(cpu_run.decisions.iter())
    {
        let host_decision = host_filter.filter_pair(&pair.read, &pair.reference);
        assert_eq!(gpu_decision.accepted, host_decision.accepted);
        assert_eq!(cpu_decision.accepted, host_decision.accepted);
    }
}

#[test]
fn multi_gpu_matches_single_gpu_decisions_and_improves_kernel_time() {
    let pairs = DatasetProfile::set3().generate(3_000, 77);
    let config = FilterConfig::new(100, 2).with_encoding(EncodingActor::Host);

    let single = MultiGpuGateKeeper::new(DeviceSpec::gtx_1080_ti(), 1, config).filter_set(&pairs);
    let quad = MultiGpuGateKeeper::new(DeviceSpec::gtx_1080_ti(), 4, config).filter_set(&pairs);

    assert_eq!(single.decisions, quad.decisions);
    assert!(quad.kernel_seconds < single.kernel_seconds);
}

#[test]
fn setup2_is_slower_but_functionally_identical_to_setup1() {
    let pairs = DatasetProfile::set3().generate(1_500, 55);
    let config = FilterConfig::new(100, 5);
    let setup1 = GateKeeperGpu::new(DeviceSpec::gtx_1080_ti(), config).filter_set(&pairs);
    let setup2 = GateKeeperGpu::new(DeviceSpec::tesla_k20x(), config).filter_set(&pairs);
    assert_eq!(setup1.decisions, setup2.decisions);
    assert!(setup2.filter_seconds() > setup1.filter_seconds());
    assert!(setup2.memory_stats.page_faults > 0);
}

#[test]
fn alternative_host_filters_plug_into_the_mapper() {
    let reference = demo_reference();
    let reads: Vec<_> = ReadSimulator::new(100, ErrorProfile::illumina())
        .seed(8)
        .simulate(&reference, 80)
        .iter()
        .map(|r| r.to_fastq())
        .collect();
    let mapper = ReadMapper::new(reference, MapperConfig::new(2));
    let baseline = mapper.map_reads(&reads, &PreFilter::None);
    let snake = mapper.map_reads(
        &reads,
        &PreFilter::Host(Box::new(SneakySnakeFilter::new(2))),
    );
    assert_eq!(baseline.stats.mappings, snake.stats.mappings);
    assert!(snake.stats.verification_pairs <= baseline.stats.verification_pairs);
}
