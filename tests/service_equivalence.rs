//! Service-equivalence suite: the gk-serve dynamic batcher must be an
//! *exactly* transparent wrapper over the direct filter paths.
//!
//! Whatever the batcher does — coalescing requests from different clients
//! into one backend invocation, splitting large requests into segments,
//! interleaving tenants under the deficit-weighted fair queue — the decisions
//! handed back for a request must be FNV-digest-identical to calling the
//! backend (or the streaming GPU pipeline) directly on that request's pairs.
//!
//! Four angles:
//!   * every filter kind, through a real TCP server, against the direct
//!     backend invocation;
//!   * a coalescing server vs a solo (coalesce-off) server on the same
//!     workload;
//!   * concurrent multi-tenant submission with unequal weights, where
//!     coalescing across tenants is guaranteed by a paused executor;
//!   * GateKeeper through the service vs `GateKeeperGpu::filter_stream`.

use gatekeeper_gpu::core::backend::{
    CpuSimdBackend, FilterBackend, FilterJob, FilterKind, GpuSimBackend,
};
use gatekeeper_gpu::core::{FilterConfig, GateKeeperGpu};
use gatekeeper_gpu::filters::traits::decision_digest;
use gatekeeper_gpu::seq::datasets::DatasetProfile;
use gatekeeper_gpu::serve::batcher::BatcherConfig;
use gatekeeper_gpu::serve::client::{GkClient, Reply};
use gatekeeper_gpu::serve::server::GkServer;
use std::sync::Arc;
use std::time::Duration;

const DEADLINE: Duration = Duration::from_millis(100);

fn decisions(reply: Reply) -> Vec<gatekeeper_gpu::filters::traits::FilterDecision> {
    match reply {
        Reply::Decisions(decisions) => decisions,
        other => panic!("expected decisions, got {other:?}"),
    }
}

#[test]
fn every_filter_kind_matches_direct_backend_through_the_socket() {
    let backend = Arc::new(CpuSimdBackend::new(1));
    let server =
        GkServer::start("127.0.0.1:0", backend.clone(), BatcherConfig::default()).expect("bind");
    let client = GkClient::connect(server.local_addr()).expect("connect");
    for kind in FilterKind::ALL {
        for threshold in [0u32, 2, 5] {
            let pairs = DatasetProfile::set3()
                .generate(300, 7 * threshold as u64 + kind.code() as u64)
                .pairs;
            let direct = backend.run(&FilterJob::new(kind, threshold, &pairs));
            let served = decisions(
                client
                    .filter(kind, threshold, DEADLINE, pairs)
                    .expect("reply"),
            );
            assert_eq!(
                decision_digest(&served),
                decision_digest(&direct),
                "digest mismatch for {kind} e={threshold}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn coalesced_and_solo_servers_agree_request_by_request() {
    let coalesced = GkServer::start(
        "127.0.0.1:0",
        Arc::new(GpuSimBackend::new()),
        BatcherConfig::default().with_coalesce(true),
    )
    .expect("bind");
    let solo = GkServer::start(
        "127.0.0.1:0",
        Arc::new(GpuSimBackend::new()),
        BatcherConfig::default().with_coalesce(false),
    )
    .expect("bind");

    for addr_pair in [(coalesced.local_addr(), solo.local_addr())] {
        let (coalesced_addr, solo_addr) = addr_pair;
        // 6 concurrent clients per server so the coalescing one actually
        // builds multi-segment batches.
        let handles: Vec<_> = (0..6u64)
            .map(|seed| {
                std::thread::spawn(move || {
                    let a = GkClient::connect(coalesced_addr).expect("connect");
                    let b = GkClient::connect(solo_addr).expect("connect");
                    for round in 0..4u64 {
                        let pairs = DatasetProfile::set3()
                            .generate(150, seed * 31 + round)
                            .pairs;
                        let via_coalesced = decisions(
                            a.filter(FilterKind::GateKeeper, 3, DEADLINE, pairs.clone())
                                .expect("reply"),
                        );
                        let via_solo = decisions(
                            b.filter(FilterKind::GateKeeper, 3, DEADLINE, pairs)
                                .expect("reply"),
                        );
                        assert_eq!(decision_digest(&via_coalesced), decision_digest(&via_solo));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
    }
    let stats = coalesced.stats();
    assert!(stats.batches >= 1);
    coalesced.shutdown();
    solo.shutdown();
}

#[test]
fn concurrent_multi_tenant_submission_keeps_every_answer_intact() {
    let backend = Arc::new(CpuSimdBackend::new(1));
    // Unequal weights and a tiny quantum force the fair queue to interleave
    // tenants' segments inside shared batches.
    let config = BatcherConfig::default()
        .with_quantum_pairs(64)
        .with_max_batch_pairs(1024)
        .with_tenant_weight(0, 1)
        .with_tenant_weight(1, 3)
        .with_tenant_weight(2, 7);
    let server = GkServer::start("127.0.0.1:0", backend.clone(), config).expect("bind");
    let addr = server.local_addr();
    let handles: Vec<_> = (0..3u32)
        .map(|tenant| {
            let backend = backend.clone();
            std::thread::spawn(move || {
                let client = GkClient::connect_as(addr, tenant).expect("connect");
                for round in 0..5u64 {
                    let pairs = DatasetProfile::set3()
                        .generate(200, tenant as u64 * 97 + round)
                        .pairs;
                    let direct = backend.run(&FilterJob::new(FilterKind::SneakySnake, 4, &pairs));
                    let served = decisions(
                        client
                            .filter(FilterKind::SneakySnake, 4, DEADLINE, pairs)
                            .expect("reply"),
                    );
                    assert_eq!(decision_digest(&served), decision_digest(&direct));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("tenant thread");
    }
    assert_eq!(server.stats().admitted, 15);
    server.shutdown();
}

#[test]
fn service_gatekeeper_matches_the_streaming_pipeline() {
    let server = GkServer::start(
        "127.0.0.1:0",
        Arc::new(GpuSimBackend::new()),
        BatcherConfig::default(),
    )
    .expect("bind");
    let client = GkClient::connect(server.local_addr()).expect("connect");

    let pairs = DatasetProfile::set3().generate(900, 42).pairs;
    let read_len = pairs[0].read.len();

    // Reference: the whole-genome streaming entry point, fed the same pairs
    // in arbitrary batch sizes.
    let gpu = GateKeeperGpu::with_default_device(FilterConfig::new(read_len, 3));
    let mut streamed = Vec::new();
    gpu.filter_stream_with(
        pairs.chunks(250).map(|chunk| chunk.to_vec()),
        |_, chunk_decisions| streamed.extend_from_slice(chunk_decisions),
    );

    let served = decisions(
        client
            .filter(FilterKind::GateKeeper, 3, DEADLINE, pairs)
            .expect("reply"),
    );
    assert_eq!(served.len(), streamed.len());
    assert_eq!(decision_digest(&served), decision_digest(&streamed));
    server.shutdown();
}
