//! Property suite for the interconnect topology model and the multi-GPU
//! schedulers: for **any** wiring (private links, a shared root complex,
//! switch fan-outs, NVLink, arbitrary custom link graphs), device mix and
//! ragged total, the shard plan must partition `0..total` exactly — no gaps,
//! no overlaps — under both the naive round-robin sharder and the
//! topology-aware scheduler; decisions must never depend on the wiring or the
//! scheduler; and turning contention off (the private-link twin) must
//! reproduce the pre-topology independent-link numbers bit-for-bit.

use gatekeeper_gpu::core::config::EncodingActor;
use gatekeeper_gpu::core::{FilterConfig, MultiGpuGateKeeper};
use gatekeeper_gpu::gpusim::device::DeviceSpec;
use gatekeeper_gpu::gpusim::topology::{weighted_partition, LinkSpec, Topology, TopologyKind};
use gatekeeper_gpu::seq::datasets::DatasetProfile;
use proptest::prelude::*;

/// Checks that `ranges` (in any order) tile `0..total` exactly.
fn assert_exact_partition(mut ranges: Vec<(usize, usize)>, total: usize) {
    ranges.sort_unstable();
    let mut cursor = 0usize;
    for (start, end) in ranges {
        assert_eq!(start, cursor, "gap or overlap at {cursor}");
        assert!(end > start, "empty range should not be emitted");
        cursor = end;
    }
    assert_eq!(cursor, total);
}

/// A mixed device list driven by `seed`: bit *i* picks Setup 1's GTX 1080 Ti
/// or Setup 2's Tesla K20X for device *i*.
fn device_mix(count: usize, seed: usize) -> Vec<DeviceSpec> {
    (0..count)
        .map(|i| {
            if (seed >> i) & 1 == 0 {
                DeviceSpec::gtx_1080_ti()
            } else {
                DeviceSpec::tesla_k20x()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any built-in topology kind, heterogeneous device list, ragged total and
    /// chunk knob: both schedulers partition `0..total` exactly.
    #[test]
    fn any_topology_and_scheduler_partition_exactly(
        seed in 0usize..64,
        count in 1usize..7,
        kind_idx in 0usize..5,
        aware in proptest::sample::select(vec![false, true]),
        total in 0usize..20_000,
        chunk in 0usize..3_000,
    ) {
        let kind = match kind_idx {
            0 => TopologyKind::Independent,
            1 => TopologyKind::SharedRoot,
            2 => TopologyKind::Switch { fanout: 1 + seed % 4 },
            3 => TopologyKind::Switch { fanout: 3 },
            _ => TopologyKind::NvLink,
        };
        let config = FilterConfig::new(100, 2)
            .with_chunk_pairs(chunk)
            .with_topology(kind)
            .with_topology_aware(aware);
        let filter = MultiGpuGateKeeper::with_devices(device_mix(count, seed), config);
        let schedule = filter.schedule(total);
        prop_assert_eq!(schedule.assignments.len(), count);
        prop_assert_eq!(schedule.total_pairs(), total);
        let ranges: Vec<(usize, usize)> = schedule
            .assignments
            .iter()
            .flat_map(|a| a.ranges.iter().copied())
            .collect();
        assert_exact_partition(ranges, total);
    }

    /// Arbitrary custom link graphs (uneven bandwidths, arbitrary
    /// device-to-link attachments) through the explicit-topology entry point:
    /// still an exact partition.
    #[test]
    fn custom_topologies_schedule_exactly(
        links in 1usize..4,
        attach_seed in 0usize..4096,
        bw_millis in 1usize..60_000,
        count in 1usize..6,
        total in 0usize..10_000,
    ) {
        let link_specs: Vec<LinkSpec> = (0..links)
            .map(|l| LinkSpec {
                name: format!("l{l}"),
                bandwidth_gb_per_s: bw_millis as f64 / 1_000.0 * (l + 1) as f64,
            })
            .collect();
        let attach: Vec<usize> = (0..count).map(|d| (attach_seed >> d) % links).collect();
        let topology = Topology::custom("prop", link_specs, attach);
        let filter = MultiGpuGateKeeper::with_devices(
            device_mix(count, attach_seed),
            FilterConfig::new(100, 2).with_topology_aware(true),
        );
        let schedule = filter.schedule_for(&topology, total);
        prop_assert_eq!(schedule.total_pairs(), total);
        let ranges: Vec<(usize, usize)> = schedule
            .assignments
            .iter()
            .flat_map(|a| a.ranges.iter().copied())
            .collect();
        assert_exact_partition(ranges, total);
    }

    /// The weighted splitter underneath the aware scheduler: any weight vector
    /// (zeros and degenerate vectors included) yields `n` back-to-back ranges
    /// covering `0..total`.
    #[test]
    fn weighted_partition_is_always_exact(
        total in 0usize..100_000,
        weight_seed in 0u64..1_000_000_000,
        n in 1usize..9,
    ) {
        let weights: Vec<f64> = (0..n)
            .map(|i| ((weight_seed >> (i * 7)) & 0x7f) as f64)
            .collect();
        let spans = weighted_partition(total, &weights);
        prop_assert_eq!(spans.len(), n);
        let mut cursor = 0usize;
        for &(start, end) in &spans {
            prop_assert_eq!(start, cursor);
            prop_assert!(end >= start);
            cursor = end;
        }
        prop_assert_eq!(cursor, total);
    }
}

proptest! {
    // Each case runs four full multi-GPU filter pipelines; keep the draw count
    // modest so the suite stays inside the tier-1 budget.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Contention is reporting-only, and turning it off reproduces the
    /// independent-link numbers bit-for-bit: the shared-root run's uncontended
    /// twin equals the private-link run's replay, decisions are identical
    /// across naive/aware and contention on/off, and the naive run's
    /// pre-topology timing fields never move.
    #[test]
    fn contention_off_reproduces_private_link_numbers(
        pair_count in 200usize..700,
        seed in 0u64..100_000,
        devices in 1usize..5,
        encoding in proptest::sample::select(vec![EncodingActor::Host, EncodingActor::Device]),
    ) {
        let set = DatasetProfile::set3().generate(pair_count, seed);
        let base = FilterConfig::new(100, 2).with_encoding(encoding);
        let run = |kind, aware| {
            MultiGpuGateKeeper::new(
                DeviceSpec::gtx_1080_ti(),
                devices,
                base.with_topology(kind).with_topology_aware(aware),
            )
            .filter_set(&set)
        };
        let naive_private = run(TopologyKind::Independent, false);
        let naive_shared = run(TopologyKind::SharedRoot, false);
        let aware_private = run(TopologyKind::Independent, true);
        let aware_shared = run(TopologyKind::SharedRoot, true);

        // Decisions never depend on the wiring or the scheduler.
        prop_assert_eq!(&naive_private.decisions, &naive_shared.decisions);
        prop_assert_eq!(&naive_private.decisions, &aware_private.decisions);
        prop_assert_eq!(&naive_private.decisions, &aware_shared.decisions);

        // The naive sharder ignores the topology entirely: the pre-topology
        // timing fields are bit-for-bit identical across wirings.
        prop_assert_eq!(naive_private.kernel_seconds, naive_shared.kernel_seconds);
        prop_assert_eq!(naive_private.filter_seconds, naive_shared.filter_seconds);

        // On private links the contended replay IS the uncontended twin.
        for run in [&naive_private, &aware_private] {
            prop_assert_eq!(
                run.interconnect.contended.makespan_seconds,
                run.interconnect.uncontended.makespan_seconds
            );
            prop_assert_eq!(run.interconnect.link_wait_seconds(), 0.0);
            prop_assert_eq!(
                &run.interconnect.contended.per_device_finish_seconds,
                &run.interconnect.uncontended.per_device_finish_seconds
            );
        }

        // Contention off = the private-link numbers, exactly (same loads, so
        // the shared run's uncontended twin replays the private wiring).
        prop_assert_eq!(
            naive_shared.interconnect.uncontended.makespan_seconds,
            naive_private.interconnect.contended.makespan_seconds
        );
        prop_assert_eq!(
            &naive_shared.interconnect.uncontended.per_device_finish_seconds,
            &naive_private.interconnect.contended.per_device_finish_seconds
        );
    }
}

/// The acceptance gate at integration level: eight GTX 1080 Ti boards on one
/// shared root complex, device-encode uploads — the aware scheduler strictly
/// beats round-robin makespan while the decision stream is untouched.
#[test]
fn aware_strictly_beats_naive_on_eight_shared_root_gpus() {
    let set = DatasetProfile::set3().generate(24_000, 4_242);
    let base = FilterConfig::new(100, 2)
        .with_encoding(EncodingActor::Device)
        .with_topology(TopologyKind::SharedRoot);
    let naive = MultiGpuGateKeeper::new(DeviceSpec::gtx_1080_ti(), 8, base).filter_set(&set);
    let aware =
        MultiGpuGateKeeper::new(DeviceSpec::gtx_1080_ti(), 8, base.with_topology_aware(true))
            .filter_set(&set);
    assert_eq!(naive.decisions, aware.decisions);
    assert!(
        aware.interconnect.makespan_seconds() < naive.interconnect.makespan_seconds(),
        "aware {} s should strictly beat naive {} s",
        aware.interconnect.makespan_seconds(),
        naive.interconnect.makespan_seconds()
    );
    assert!(naive.interconnect.contention_slowdown() > 1.0);
}
