//! Property suite for the device-side encoding execution path: for **any**
//! dataset profile, chunk size, overlap/prefetch setting and error threshold
//! (including the `e ≥ read_len` clamp region hardened in PR 4), the
//! device-encode path (raw 1-byte-per-base uploads + fused encode+filter
//! kernel) and the host-encode path (`encode_pair_batch` before the transfer)
//! must produce **byte-identical decisions** — materialized, streamed, and
//! through the read mapper's record pipeline. The timing *attribution* is the
//! only thing allowed to differ: zero host encode time and a positive
//! in-kernel encode share on the device path, the reverse on the host path.

use gatekeeper_gpu::core::{FilterConfig, GateKeeperGpu};
use gatekeeper_gpu::mapper::pipeline::{MapperConfig, PreFilter, ReadMapper};
use gatekeeper_gpu::seq::datasets::DatasetProfile;
use gatekeeper_gpu::seq::fastq::FastqRecord;
use gatekeeper_gpu::seq::simulate::{ErrorProfile, ReadSimulator};
use gatekeeper_gpu::seq::ReferenceBuilder;
use proptest::prelude::*;

/// The profile pool the equivalence property draws from: all three paper read
/// lengths, low- and high-edit populations, and mapper-like candidate mixes.
fn profiles() -> Vec<DatasetProfile> {
    vec![
        DatasetProfile::set1(),
        DatasetProfile::set3(),
        DatasetProfile::set8(),
        DatasetProfile::set9(),
        DatasetProfile::minimap2_like(),
        DatasetProfile::high_edit(150),
    ]
}

/// Threshold *kinds*, resolved against the profile's read length in the test
/// body so the `e ≥ read_len` clamp cases are always exercised at the right
/// boundary regardless of which profile the case drew.
#[derive(Clone, Copy, Debug)]
enum ThresholdKind {
    Small(u32),
    ReadLenMinusOne,
    ReadLen,
    ReadLenPlusOne,
    Max,
}

impl ThresholdKind {
    fn resolve(self, read_len: usize) -> u32 {
        match self {
            ThresholdKind::Small(e) => e,
            ThresholdKind::ReadLenMinusOne => read_len as u32 - 1,
            ThresholdKind::ReadLen => read_len as u32,
            ThresholdKind::ReadLenPlusOne => read_len as u32 + 1,
            ThresholdKind::Max => u32::MAX,
        }
    }
}

fn threshold_kinds() -> Vec<ThresholdKind> {
    vec![
        ThresholdKind::Small(0),
        ThresholdKind::Small(2),
        ThresholdKind::Small(5),
        ThresholdKind::Small(10),
        ThresholdKind::ReadLenMinusOne,
        ThresholdKind::ReadLen,
        ThresholdKind::ReadLenPlusOne,
        ThresholdKind::Max,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn device_and_host_encode_decide_identically(
        profile_idx in 0usize..6,
        kind in proptest::sample::select(threshold_kinds()),
        chunk in 1usize..400,
        pair_count in 120usize..320,
        seed in 0u64..1_000_000,
        overlap in proptest::sample::select(vec![false, true]),
        prefetch in proptest::sample::select(vec![false, true]),
        undefined_pct in 0usize..12,
    ) {
        let mut profile = profiles()[profile_idx].clone();
        profile.undefined_fraction = undefined_pct as f64 / 100.0;
        let threshold = kind.resolve(profile.read_len);
        let set = profile.generate(pair_count, seed);

        let base = FilterConfig::new(profile.read_len, threshold)
            .with_chunk_pairs(chunk)
            .with_overlap(overlap)
            .with_host_prefetch(prefetch);
        let host = GateKeeperGpu::with_default_device(base.with_device_encode(false))
            .filter_set(&set);
        let device = GateKeeperGpu::with_default_device(base.with_device_encode(true))
            .filter_set(&set);

        // The tentpole contract: byte-identical decisions …
        prop_assert_eq!(&host.decisions, &device.decisions);
        prop_assert_eq!(host.batches, device.batches);
        // … and the encode cost attributed to exactly one side per mode.
        prop_assert_eq!(device.timing.encode_seconds, 0.0);
        prop_assert!(host.timing.encode_seconds > 0.0);
        prop_assert_eq!(host.timing.encode_device_seconds, 0.0);
        prop_assert!(device.timing.encode_device_seconds > 0.0);
        prop_assert!(device.timing.encode_device_seconds <= device.timing.kernel_seconds);
        prop_assert!(device.timing.host_encode_share() < host.timing.host_encode_share());
        prop_assert!(device.pipeline.device_encode && !host.pipeline.device_encode);

        // Streaming the same pairs through the device path chunk-by-chunk
        // reproduces the materialized decisions exactly.
        let gpu = GateKeeperGpu::with_default_device(base.with_device_encode(true));
        let mut streamed_decisions = Vec::new();
        let source_batch = (pair_count / 3).max(1);
        let streamed = gpu.filter_stream_with(
            profile.stream_batches(pair_count, seed, source_batch),
            |_, decisions| streamed_decisions.extend_from_slice(decisions),
        );
        prop_assert_eq!(streamed.pairs, set.len());
        prop_assert_eq!(&streamed_decisions, &host.decisions);
        prop_assert_eq!(streamed.undefined, set.undefined_count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn mapper_records_are_identical_across_encode_modes(
        seed in 0u64..100_000,
        threshold in 1u32..5,
        chunk in proptest::sample::select(vec![1usize, 37, 10_000]),
        read_count in 30usize..60,
    ) {
        let reference = ReferenceBuilder::new(50_000)
            .seed(seed)
            .repeat_fraction(0.25)
            .n_gaps(0, 0)
            .build();
        let reads: Vec<FastqRecord> = ReadSimulator::new(100, ErrorProfile::illumina())
            .seed(seed ^ 0xDEAD)
            .simulate(&reference, read_count)
            .iter()
            .map(|r| r.to_fastq())
            .collect();
        let mapper = ReadMapper::new(reference, MapperConfig::new(threshold));

        let base = FilterConfig::new(100, threshold)
            .with_chunk_pairs(chunk)
            .with_overlap(true);
        let host = mapper.map_reads(
            &reads,
            &PreFilter::Gpu(GateKeeperGpu::with_default_device(
                base.with_device_encode(false),
            )),
        );
        let device = mapper.map_reads(
            &reads,
            &PreFilter::Gpu(GateKeeperGpu::with_default_device(
                base.with_device_encode(true),
            )),
        );

        prop_assert_eq!(&host.records, &device.records);
        prop_assert_eq!(host.stats.mappings, device.stats.mappings);
        prop_assert_eq!(host.stats.mapped_reads, device.stats.mapped_reads);
        prop_assert_eq!(host.stats.candidate_pairs, device.stats.candidate_pairs);
        prop_assert_eq!(host.stats.verification_pairs, device.stats.verification_pairs);
        prop_assert_eq!(host.stats.rejected_pairs, device.stats.rejected_pairs);
    }
}

/// Deterministic spot-check of the huge-threshold clamp on the device path
/// (the exact regression PR 4 fixed on the host path): `e = u32::MAX` must
/// not attempt a gigantic mask allocation in the fused kernel either.
#[test]
fn device_encode_survives_the_max_threshold_clamp() {
    let set = DatasetProfile::set3().generate(200, 9);
    let run = GateKeeperGpu::with_default_device(
        FilterConfig::new(100, u32::MAX).with_device_encode(true),
    )
    .filter_set(&set);
    // Everything within u32::MAX edits is accepted.
    assert_eq!(run.decisions.iter().filter(|d| d.accepted).count(), 200);
}
