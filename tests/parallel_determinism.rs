//! Determinism suite for every parallelized host-side path, plus the
//! overlap-versus-serialized determinism contract of the GPU batch pipeline.
//!
//! The rayon shim executes combinators eagerly over ordered chunks, so every
//! wired path — 2-bit batch encoding, the multicore CPU filter baseline, the
//! accuracy sweep, the simulated kernel launch, and mapper candidate
//! construction + verification — must produce output **byte-identical** to the
//! sequential fallback. Each test runs the parallel version on the global pool
//! and the reference version inside a one-thread pool (the shim's sequential
//! fallback, the same mode `RAYON_NUM_THREADS=1` selects), across several
//! seeded random batches.
//!
//! The pipeline suite at the bottom asserts the tentpole invariant of the
//! stream-overlapped engine: turning overlap on or changing the chunk size may
//! only change the *simulated timeline*, never a decision, a count, or a mapper
//! record.

use gatekeeper_gpu::core::cpu::GateKeeperCpu;
use gatekeeper_gpu::core::{EncodingActor, FilterConfig, GateKeeperGpu};
use gatekeeper_gpu::filters::accuracy::{evaluate_filter, ground_truth_distances, UndefinedPolicy};
use gatekeeper_gpu::filters::{
    GateKeeperGpuFilter, PreAlignmentFilter, ShdFilter, SneakySnakeFilter,
};
use gatekeeper_gpu::gpusim::device::DeviceSpec;
use gatekeeper_gpu::gpusim::executor::{
    launch_kernel, KernelResources, LaunchConfig, ThreadReport,
};
use gatekeeper_gpu::mapper::pipeline::{MapperConfig, PreFilter, ReadMapper};
use gatekeeper_gpu::seq::datasets::DatasetProfile;
use gatekeeper_gpu::seq::fastq::FastqRecord;
use gatekeeper_gpu::seq::packed::encode_batch_parallel;
use gatekeeper_gpu::seq::pairs::encode_pair_batch;
use gatekeeper_gpu::seq::simulate::{ErrorProfile, ReadSimulator};
use gatekeeper_gpu::seq::{PackedSeq, ReferenceBuilder};

const SEEDS: [u64; 3] = [11, 4242, 990_017];

/// Runs `op` in the shim's sequential fallback (a one-thread pool), producing
/// the reference output the parallel runs must match exactly.
fn sequential<R>(op: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("one-thread reference pool")
        .install(op)
}

#[test]
fn batch_encoding_is_identical_to_sequential() {
    for seed in SEEDS {
        let pairs = DatasetProfile::set3().generate(2_500, seed);
        let (reads, refs) = pairs.as_slices();

        let parallel: Vec<PackedSeq> = encode_batch_parallel(&reads);
        let fallback: Vec<PackedSeq> = sequential(|| encode_batch_parallel(&reads));
        let plain: Vec<PackedSeq> = reads.iter().map(|s| PackedSeq::from_ascii(s)).collect();
        assert_eq!(parallel, fallback, "seed {seed}");
        assert_eq!(parallel, plain, "seed {seed}");

        let parallel_pairs = encode_pair_batch(&pairs.pairs);
        let fallback_pairs = sequential(|| encode_pair_batch(&pairs.pairs));
        assert_eq!(parallel_pairs, fallback_pairs, "seed {seed}");
        assert_eq!(parallel_pairs.len(), refs.len());
    }
}

#[test]
fn cpu_filter_baseline_is_identical_to_sequential() {
    for seed in SEEDS {
        let mut profile = DatasetProfile::set3();
        profile.undefined_fraction = 0.05;
        let pairs = profile.generate(2_000, seed);
        for threshold in [0u32, 3, 7] {
            let parallel = GateKeeperCpu::new(threshold, 4).filter_set(&pairs);
            let one_thread = GateKeeperCpu::new(threshold, 1).filter_set(&pairs);
            assert_eq!(
                parallel.decisions, one_thread.decisions,
                "seed {seed}, e = {threshold}"
            );
        }
    }
}

#[test]
fn simd_lanes_and_scalar_fallback_are_byte_identical_end_to_end() {
    // The SIMD tentpole's contract: the lane-parallel block path and the
    // per-bit scalar reference may differ only in throughput. Decisions must be
    // byte-identical through every wired surface — the multicore CPU baseline
    // at several thread counts, and the full simulated GPU system on both the
    // host-encode and device-encode paths.
    use gatekeeper_gpu::filters::SimdMode;
    for seed in SEEDS {
        let mut profile = DatasetProfile::set3();
        profile.undefined_fraction = 0.05;
        let pairs = profile.generate(1_200, seed);
        for threshold in [0u32, 4] {
            let scalar = GateKeeperCpu::new(threshold, 1)
                .with_simd_mode(SimdMode::Scalar)
                .filter_set(&pairs);
            for threads in [1usize, 4] {
                let lanes = GateKeeperCpu::new(threshold, threads)
                    .with_simd_mode(SimdMode::Lanes)
                    .filter_set(&pairs);
                assert_eq!(
                    lanes.decisions, scalar.decisions,
                    "seed {seed}, e = {threshold}, threads {threads}"
                );
            }
            for device_encode in [false, true] {
                let base = FilterConfig::new(100, threshold)
                    .with_chunk_pairs(333)
                    .with_overlap(true)
                    .with_device_encode(device_encode);
                let lanes =
                    GateKeeperGpu::with_default_device(base.with_simd_mode(SimdMode::Lanes))
                        .filter_set(&pairs);
                let scalar_gpu =
                    GateKeeperGpu::with_default_device(base.with_simd_mode(SimdMode::Scalar))
                        .filter_set(&pairs);
                assert_eq!(
                    lanes.decisions, scalar_gpu.decisions,
                    "seed {seed}, e = {threshold}, device_encode {device_encode}"
                );
                assert_eq!(lanes.accepted(), scalar_gpu.accepted());
            }
        }
    }
}

#[test]
fn widened_filters_are_digest_identical_across_modes_threads_and_env() {
    // The lane-parallel MAGNET/Shouji/SneakySnake kernels inherit the
    // GateKeeper contract: SIMD mode and thread count may only change
    // throughput. Every (filter, mode, threads) combination must produce the
    // same FNV decision digest, and a `GK_SIMD=scalar` environment must steer
    // `Auto` construction onto the same decisions.
    use gatekeeper_gpu::filters::{decision_digest, MagnetFilter, ShoujiFilter, SimdMode};

    type MakeFilter = Box<dyn Fn(SimdMode) -> Box<dyn PreAlignmentFilter>>;
    let make_filters = |e: u32| -> Vec<MakeFilter> {
        vec![
            Box::new(move |m| Box::new(MagnetFilter::new(e).with_simd_mode(m))),
            Box::new(move |m| Box::new(ShoujiFilter::new(e).with_simd_mode(m))),
            Box::new(move |m| Box::new(SneakySnakeFilter::new(e).with_simd_mode(m))),
        ]
    };
    for seed in SEEDS {
        let mut profile = DatasetProfile::set3();
        profile.undefined_fraction = 0.05;
        let pairs = profile.generate(1_200, seed);
        for e in [0u32, 4] {
            for make in make_filters(e) {
                let filter = make(SimdMode::Scalar);
                let scalar = sequential(|| filter.filter_batch(&pairs.pairs));
                let scalar_digest = decision_digest(&scalar);
                for threads in [1usize, 4] {
                    let lanes = rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .build()
                        .expect("lane pool")
                        .install(|| make(SimdMode::Lanes).filter_batch(&pairs.pairs));
                    assert_eq!(
                        decision_digest(&lanes),
                        scalar_digest,
                        "{}: seed {seed}, e = {e}, threads {threads}",
                        filter.name()
                    );
                    assert_eq!(lanes, scalar, "{}: seed {seed}, e = {e}", filter.name());
                }
                // GK_SIMD=scalar leg: Auto resolves against the environment at
                // construction, and the resulting run stays digest-identical.
                std::env::set_var("GK_SIMD", "scalar");
                let from_env = make(SimdMode::Auto);
                std::env::remove_var("GK_SIMD");
                assert_eq!(
                    decision_digest(&from_env.filter_batch(&pairs.pairs)),
                    scalar_digest,
                    "{}: seed {seed}, e = {e}, GK_SIMD=scalar",
                    filter.name()
                );
            }
        }
    }
}

#[test]
fn accuracy_sweep_is_identical_to_sequential() {
    for seed in SEEDS {
        let mut profile = DatasetProfile::low_edit(100);
        profile.undefined_fraction = 0.08;
        let pairs = profile.generate(600, seed);

        let parallel_truth = ground_truth_distances(&pairs);
        let fallback_truth = sequential(|| ground_truth_distances(&pairs));
        assert_eq!(parallel_truth, fallback_truth, "seed {seed}");

        let filters: Vec<Box<dyn PreAlignmentFilter>> = vec![
            Box::new(GateKeeperGpuFilter::new(4)),
            Box::new(ShdFilter::new(4)),
            Box::new(SneakySnakeFilter::new(4)),
        ];
        for filter in &filters {
            for policy in [UndefinedPolicy::Exclude, UndefinedPolicy::CountAsAccepted] {
                let parallel = evaluate_filter(filter.as_ref(), &pairs, policy);
                let fallback = sequential(|| evaluate_filter(filter.as_ref(), &pairs, policy));
                assert_eq!(
                    parallel,
                    fallback,
                    "seed {seed}, filter {}, policy {policy:?}",
                    filter.name()
                );
            }
        }
    }
}

#[test]
fn filter_batch_is_identical_to_sequential() {
    for seed in SEEDS {
        let pairs = DatasetProfile::low_edit(100).generate(900, seed);
        let filter = GateKeeperGpuFilter::new(5);
        let parallel = filter.filter_batch(&pairs.pairs);
        let fallback = sequential(|| filter.filter_batch(&pairs.pairs));
        assert_eq!(parallel, fallback, "seed {seed}");
    }
}

#[test]
fn simulated_gpu_run_is_identical_to_sequential() {
    // The whole GPU-system result (decisions + modelled timing + kernel stats)
    // is derived from counts, not wall clock, so parallel and sequential runs
    // must agree exactly.
    for seed in SEEDS {
        let pairs = DatasetProfile::set3().generate(1_500, seed);
        let config = FilterConfig::new(100, 4).with_encoding(EncodingActor::Host);
        let parallel = GateKeeperGpu::with_default_device(config).filter_set(&pairs);
        let fallback = sequential(|| GateKeeperGpu::with_default_device(config).filter_set(&pairs));
        assert_eq!(parallel, fallback, "seed {seed}");
    }
}

#[test]
fn simulated_kernel_launch_is_identical_to_sequential() {
    let device = DeviceSpec::gtx_1080_ti();
    let resources = KernelResources::gatekeeper_gpu(&device);
    let config = LaunchConfig {
        grid_blocks: 48,
        threads_per_block: 256,
    };
    let body = |ctx: gatekeeper_gpu::gpusim::executor::ThreadCtx| {
        if ctx.global_idx.is_multiple_of(5) {
            ThreadReport::idle()
        } else {
            ThreadReport {
                cycles: 100 + (ctx.global_idx as u64 % 97),
                active: true,
            }
        }
    };
    let parallel = launch_kernel(&device, &resources, config, body);
    let fallback = sequential(|| launch_kernel(&device, &resources, config, body));
    assert_eq!(parallel, fallback);
}

/// Chunk sizes the pipeline determinism suite sweeps for a 900-pair set:
/// degenerate single-pair chunks, uneven mid-sizes, exactly the pair count, and
/// a chunk larger than the whole set (single-chunk run).
const CHUNK_SIZES: [usize; 5] = [1, 64, 333, 900, 2_000];

#[test]
fn overlap_and_chunking_never_change_decisions_or_counts() {
    for seed in SEEDS {
        let mut profile = DatasetProfile::set3();
        profile.undefined_fraction = 0.03;
        let pairs = profile.generate(900, seed);

        let reference =
            GateKeeperGpu::with_default_device(FilterConfig::new(100, 4)).filter_set(&pairs);
        for chunk in CHUNK_SIZES {
            for overlap in [false, true] {
                let config = FilterConfig::new(100, 4)
                    .with_chunk_pairs(chunk)
                    .with_overlap(overlap);
                let run = GateKeeperGpu::with_default_device(config).filter_set(&pairs);
                assert_eq!(
                    run.decisions, reference.decisions,
                    "seed {seed}, chunk {chunk}, overlap {overlap}"
                );
                assert_eq!(run.accepted(), reference.accepted());
                assert_eq!(run.rejected(), reference.rejected());
                assert_eq!(run.batches, 900usize.div_ceil(chunk.max(1)).min(900));
            }
        }
    }
}

#[test]
fn overlapped_multi_chunk_runs_are_strictly_faster_than_serialized() {
    // The acceptance bar of the pipeline refactor: on a multi-batch run
    // (≥ 8 chunks) the overlapped timeline strictly beats the serialized sum
    // while the decisions stay byte-identical (checked above).
    let pairs = DatasetProfile::set3().generate(2_000, 7_001);
    for chunk in [100usize, 250] {
        let serialized =
            GateKeeperGpu::with_default_device(FilterConfig::new(100, 4).with_chunk_pairs(chunk))
                .filter_set(&pairs);
        let overlapped = GateKeeperGpu::with_default_device(
            FilterConfig::new(100, 4)
                .with_chunk_pairs(chunk)
                .with_overlap(true),
        )
        .filter_set(&pairs);
        assert!(serialized.batches >= 8, "chunk {chunk}");
        assert_eq!(serialized.decisions, overlapped.decisions);
        assert!(
            overlapped.filter_seconds() < serialized.filter_seconds(),
            "chunk {chunk}: overlapped {} !< serialized {}",
            overlapped.filter_seconds(),
            serialized.filter_seconds()
        );
    }
}

#[test]
fn streamed_filtering_matches_materialized_filtering_at_every_chunk_size() {
    for seed in SEEDS {
        let profile = DatasetProfile::set3();
        let pairs = profile.generate(900, seed);
        for chunk in CHUNK_SIZES {
            let config = FilterConfig::new(100, 5)
                .with_chunk_pairs(chunk)
                .with_overlap(true);
            let gpu = GateKeeperGpu::with_default_device(config);
            let materialized = gpu.filter_set(&pairs);
            let mut streamed_decisions = Vec::new();
            let streamed = gpu
                .filter_stream_with(profile.stream_batches(900, seed, 450), |_, decisions| {
                    streamed_decisions.extend_from_slice(decisions)
                });
            assert_eq!(streamed.pairs, 900, "seed {seed}, chunk {chunk}");
            assert_eq!(streamed.accepted, materialized.accepted());
            assert_eq!(streamed.rejected(), materialized.rejected());
            assert_eq!(streamed_decisions, materialized.decisions);
        }
    }
}

#[test]
fn host_prefetch_never_changes_decisions_or_timing_splits() {
    // The wall-clock prefetch executor (encode of chunk i+1 on the pool while
    // chunk i's kernel closure runs) may only change measured wall-clock:
    // decisions, counts and every simulated split must be byte-identical at
    // every chunk size, materialized and streamed.
    for seed in SEEDS {
        let mut profile = DatasetProfile::set3();
        profile.undefined_fraction = 0.03;
        let pairs = profile.generate(900, seed);
        for chunk in CHUNK_SIZES {
            let base = FilterConfig::new(100, 4)
                .with_chunk_pairs(chunk)
                .with_overlap(true);
            let serial = GateKeeperGpu::with_default_device(base).filter_set(&pairs);
            let prefetched = GateKeeperGpu::with_default_device(base.with_host_prefetch(true))
                .filter_set(&pairs);
            assert_eq!(
                serial.decisions, prefetched.decisions,
                "seed {seed}, chunk {chunk}"
            );
            // TimingBreakdown equality covers the simulated splits only (the
            // measured host wall-clock is deliberately excluded).
            assert_eq!(serial.timing, prefetched.timing);
            assert_eq!(serial.batches, prefetched.batches);
            assert_eq!(serial.memory_stats, prefetched.memory_stats);
            assert_eq!(
                serial.pipeline.overlapped_seconds,
                prefetched.pipeline.overlapped_seconds
            );
            assert_eq!(
                serial.pipeline.serialized_seconds,
                prefetched.pipeline.serialized_seconds
            );

            // Streamed with prefetch (and read-ahead batch generation) equals
            // materialized without, chunk for chunk.
            let gpu = GateKeeperGpu::with_default_device(base.with_host_prefetch(true));
            let mut streamed_decisions = Vec::new();
            let streamed = gpu.filter_stream_with(
                profile.stream_batches(900, seed, 450).read_ahead(),
                |_, decisions| streamed_decisions.extend_from_slice(decisions),
            );
            assert_eq!(streamed.pairs, 900, "seed {seed}, chunk {chunk}");
            assert_eq!(streamed_decisions, serial.decisions);
            assert_eq!(streamed.accepted, serial.accepted());
        }
    }
}

#[test]
fn device_encode_is_identical_to_sequential_and_to_host_encode() {
    // The raw-upload + fused-kernel path fans its per-pair packing out on the
    // pool inside the kernel closure, so it needs the same two guarantees as
    // every other parallel path: parallel == sequential fallback, and (its own
    // tentpole contract) device-encode == host-encode, at every chunk size.
    for seed in SEEDS {
        let mut profile = DatasetProfile::set3();
        profile.undefined_fraction = 0.04;
        let pairs = profile.generate(900, seed);
        for chunk in [1usize, 333, 2_000] {
            let device_config = FilterConfig::new(100, 4)
                .with_chunk_pairs(chunk)
                .with_overlap(true)
                .with_device_encode(true);
            let parallel = GateKeeperGpu::with_default_device(device_config).filter_set(&pairs);
            let fallback =
                sequential(|| GateKeeperGpu::with_default_device(device_config).filter_set(&pairs));
            assert_eq!(parallel, fallback, "seed {seed}, chunk {chunk}");
            let host = GateKeeperGpu::with_default_device(device_config.with_device_encode(false))
                .filter_set(&pairs);
            assert_eq!(
                parallel.decisions, host.decisions,
                "seed {seed}, chunk {chunk}"
            );
        }
    }
}

#[test]
fn host_prefetch_fallback_on_a_one_thread_pool_is_byte_identical() {
    // Inside a one-thread pool (the same mode RAYON_NUM_THREADS=1 selects) the
    // engine must keep today's serial path: identical output, and the report
    // must say no prefetching happened.
    let pairs = DatasetProfile::set3().generate(700, 31);
    let config = FilterConfig::new(100, 4)
        .with_chunk_pairs(90)
        .with_overlap(true)
        .with_host_prefetch(true);
    let reference = GateKeeperGpu::with_default_device(config).filter_set(&pairs);
    let fallback = sequential(|| GateKeeperGpu::with_default_device(config).filter_set(&pairs));
    assert!(!fallback.pipeline.host_prefetch);
    assert_eq!(fallback.decisions, reference.decisions);
    assert_eq!(fallback.timing, reference.timing);
    assert_eq!(fallback.batches, reference.batches);
}

#[test]
fn mapper_records_are_identical_with_host_prefetch_on_or_off() {
    let reference = ReferenceBuilder::new(60_000)
        .seed(321)
        .repeat_fraction(0.25)
        .n_gaps(0, 0)
        .build();
    let reads: Vec<FastqRecord> = ReadSimulator::new(100, ErrorProfile::illumina())
        .seed(11)
        .simulate(&reference, 70)
        .iter()
        .map(|r| r.to_fastq())
        .collect();
    let mapper = ReadMapper::new(reference, MapperConfig::new(3));

    let baseline = mapper.map_reads(
        &reads,
        &PreFilter::Gpu(GateKeeperGpu::with_default_device(FilterConfig::new(
            100, 3,
        ))),
    );
    for chunk in [1usize, 64, 10_000] {
        let config = FilterConfig::new(100, 3)
            .with_chunk_pairs(chunk)
            .with_overlap(true)
            .with_host_prefetch(true);
        let filter = PreFilter::Gpu(GateKeeperGpu::with_default_device(config));
        let outcome = mapper.map_reads(&reads, &filter);
        assert_eq!(outcome.records, baseline.records, "chunk {chunk}");
        assert_eq!(outcome.stats.mappings, baseline.stats.mappings);
        assert_eq!(outcome.stats.mapped_reads, baseline.stats.mapped_reads);
        assert_eq!(
            outcome.stats.verification_pairs,
            baseline.stats.verification_pairs
        );
        assert_eq!(outcome.stats.rejected_pairs, baseline.stats.rejected_pairs);
    }
}

#[test]
fn mapper_records_are_identical_with_overlap_on_or_off() {
    let reference = ReferenceBuilder::new(60_000)
        .seed(123)
        .repeat_fraction(0.25)
        .n_gaps(0, 0)
        .build();
    let reads: Vec<FastqRecord> = ReadSimulator::new(100, ErrorProfile::illumina())
        .seed(9)
        .simulate(&reference, 80)
        .iter()
        .map(|r| r.to_fastq())
        .collect();
    let mapper = ReadMapper::new(reference, MapperConfig::new(3));

    let baseline = mapper.map_reads(
        &reads,
        &PreFilter::Gpu(GateKeeperGpu::with_default_device(FilterConfig::new(
            100, 3,
        ))),
    );
    for chunk in [1usize, 50, 10_000] {
        for overlap in [false, true] {
            let config = FilterConfig::new(100, 3)
                .with_chunk_pairs(chunk)
                .with_overlap(overlap);
            let filter = PreFilter::Gpu(GateKeeperGpu::with_default_device(config));
            let outcome = mapper.map_reads(&reads, &filter);
            assert_eq!(
                outcome.records, baseline.records,
                "chunk {chunk}, overlap {overlap}"
            );
            assert_eq!(outcome.stats.mappings, baseline.stats.mappings);
            assert_eq!(outcome.stats.mapped_reads, baseline.stats.mapped_reads);
            assert_eq!(
                outcome.stats.verification_pairs,
                baseline.stats.verification_pairs
            );
            assert_eq!(outcome.stats.rejected_pairs, baseline.stats.rejected_pairs);
        }
    }
}

#[test]
fn mapper_candidates_and_verification_are_identical_to_sequential() {
    let reference = ReferenceBuilder::new(60_000)
        .seed(77)
        .repeat_fraction(0.25)
        .n_gaps(0, 0)
        .build();
    let reads: Vec<FastqRecord> = ReadSimulator::new(100, ErrorProfile::illumina())
        .seed(5)
        .simulate(&reference, 90)
        .iter()
        .map(|r| r.to_fastq())
        .collect();
    let mapper = ReadMapper::new(reference, MapperConfig::new(3));

    for filter in [
        PreFilter::None,
        PreFilter::Host(Box::new(SneakySnakeFilter::new(3))),
    ] {
        let parallel = mapper.map_reads(&reads, &filter);
        let fallback = sequential(|| mapper.map_reads(&reads, &filter));
        // Timing fields are wall-clock; everything the mapper *computes* must
        // match record-for-record.
        assert_eq!(parallel.records, fallback.records);
        assert_eq!(parallel.stats.mappings, fallback.stats.mappings);
        assert_eq!(parallel.stats.mapped_reads, fallback.stats.mapped_reads);
        assert_eq!(
            parallel.stats.candidate_pairs,
            fallback.stats.candidate_pairs
        );
        assert_eq!(
            parallel.stats.verification_pairs,
            fallback.stats.verification_pairs
        );
        assert_eq!(parallel.stats.rejected_pairs, fallback.stats.rejected_pairs);
    }
}
