//! Cross-crate accuracy invariants: the qualitative ordering of Figure 5 and the
//! zero-false-reject property of §5.1, checked on freshly generated datasets.

use gatekeeper_gpu::filters::accuracy::{
    evaluate_with_truth, ground_truth_distances, UndefinedPolicy,
};
use gatekeeper_gpu::filters::{
    GateKeeperFpgaFilter, GateKeeperGpuFilter, ShdFilter, ShoujiFilter, SneakySnakeFilter,
};
use gatekeeper_gpu::seq::datasets::DatasetProfile;

#[test]
fn accuracy_ordering_matches_the_paper_on_low_edit_100bp() {
    let pairs = DatasetProfile::set1().generate(6_000, 2024);
    let truth = ground_truth_distances(&pairs);
    let e = 4;

    let gpu = evaluate_with_truth(
        &GateKeeperGpuFilter::new(e),
        &pairs,
        &truth,
        UndefinedPolicy::CountAsAccepted,
    );
    let fpga = evaluate_with_truth(
        &GateKeeperFpgaFilter::new(e),
        &pairs,
        &truth,
        UndefinedPolicy::CountAsAccepted,
    );
    let shd = evaluate_with_truth(
        &ShdFilter::new(e),
        &pairs,
        &truth,
        UndefinedPolicy::CountAsAccepted,
    );
    let shouji = evaluate_with_truth(
        &ShoujiFilter::new(e),
        &pairs,
        &truth,
        UndefinedPolicy::CountAsAccepted,
    );
    let snake = evaluate_with_truth(
        &SneakySnakeFilter::new(e),
        &pairs,
        &truth,
        UndefinedPolicy::CountAsAccepted,
    );

    // Figure 5 ordering: SneakySnake ≤ Shouji ≤ GateKeeper-GPU ≤ GateKeeper-FPGA = SHD.
    assert!(snake.false_accepts <= shouji.false_accepts);
    assert!(shouji.false_accepts <= gpu.false_accepts);
    assert!(gpu.false_accepts <= fpga.false_accepts);
    assert_eq!(fpga.false_accepts, shd.false_accepts);

    // §5.1.1: GateKeeper-GPU, the GateKeeper family and SneakySnake never false-reject.
    assert_eq!(gpu.false_rejects, 0);
    assert_eq!(fpga.false_rejects, 0);
    assert_eq!(snake.false_rejects, 0);
}

#[test]
fn gatekeeper_gpu_never_false_rejects_across_read_lengths_and_thresholds() {
    for (profile, thresholds) in [
        (DatasetProfile::set3(), vec![0u32, 2, 5, 10]),
        (DatasetProfile::set6(), vec![0, 4, 9, 15]),
        (DatasetProfile::set10(), vec![0, 5, 12, 25]),
    ] {
        let pairs = profile.generate(2_500, 31);
        let truth = ground_truth_distances(&pairs);
        for &e in &thresholds {
            let report = evaluate_with_truth(
                &GateKeeperGpuFilter::new(e),
                &pairs,
                &truth,
                UndefinedPolicy::Exclude,
            );
            assert_eq!(
                report.false_rejects, 0,
                "false rejects at {}bp, e = {e}",
                pairs.read_len
            );
        }
    }
}

#[test]
fn true_reject_rate_is_high_at_small_thresholds_and_decays_with_e() {
    let pairs = DatasetProfile::set3().generate(6_000, 404);
    let truth = ground_truth_distances(&pairs);
    let mut last_rate: f64 = 1.1;
    let mut rates = Vec::new();
    for e in [1u32, 3, 5, 8, 10] {
        let report = evaluate_with_truth(
            &GateKeeperGpuFilter::new(e),
            &pairs,
            &truth,
            UndefinedPolicy::Exclude,
        );
        rates.push(report.true_reject_rate());
        last_rate = last_rate.min(report.true_reject_rate());
    }
    // §5.1.1 observation 1: >90% of mappings are correctly rejected at small e.
    assert!(rates[0] > 0.9, "true reject rate at e=1 was {}", rates[0]);
    // Observation 2: the efficiency decreases as e grows, without collapsing to zero.
    assert!(rates.last().unwrap() < &rates[0]);
    assert!(last_rate > 0.01, "rate collapsed: {rates:?}");
}

#[test]
fn high_edit_profiles_are_rejected_almost_entirely_at_low_thresholds() {
    let pairs = DatasetProfile::set4().generate(4_000, 17);
    let truth = ground_truth_distances(&pairs);
    let report = evaluate_with_truth(
        &GateKeeperGpuFilter::new(2),
        &pairs,
        &truth,
        UndefinedPolicy::Exclude,
    );
    assert!(report.true_reject_rate() > 0.95);
    assert_eq!(report.false_rejects, 0);
}
