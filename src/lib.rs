//! # gatekeeper-gpu
//!
//! Umbrella crate for the Rust reproduction of *GateKeeper-GPU: Fast and Accurate
//! Pre-Alignment Filtering in Short Read Mapping* (Bingöl et al., 2021).
//!
//! The actual functionality lives in the workspace crates, re-exported here for
//! convenience:
//!
//! * [`seq`] — DNA sequences, 2-bit packing, FASTA/FASTQ I/O, read & dataset simulators.
//! * [`align`] — edit-distance and alignment algorithms (Myers bit-vector, DP, banded,
//!   Needleman-Wunsch, Smith-Waterman).
//! * [`filters`] — pre-alignment filters: GateKeeper-GPU and the baselines it is
//!   compared against (GateKeeper-FPGA/SHD, MAGNET, Shouji, SneakySnake).
//! * [`gpusim`] — the CUDA-like GPU execution-model simulator used as a hardware
//!   substitute (SIMT executor, unified memory, occupancy, timing and power models).
//! * [`core`] — the GateKeeper-GPU system: configuration, batching, host/device
//!   encoding, kernel launches, multi-GPU dispatch, and the multicore CPU baseline.
//! * [`mapper`] — an mrFAST-like seed-and-extend read mapper with a pre-alignment
//!   filter hook, used for the whole-genome experiments.
//! * [`serve`] — filter-as-a-service: a dynamic-batching daemon + client speaking
//!   length-prefixed binary frames, executing through the [`core::FilterBackend`]
//!   registry.
//!
//! ## Quick start
//!
//! ```
//! use gatekeeper_gpu::core::{FilterConfig, EncodingActor, GateKeeperGpu};
//! use gatekeeper_gpu::filters::PreAlignmentFilter;
//!
//! let config = FilterConfig::new(100, 4).with_encoding(EncodingActor::Host);
//! let filter = GateKeeperGpu::with_default_device(config);
//! let read = b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTAC\
//!              GTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT";
//! let decision = filter.filter_pair(read, read);
//! assert!(decision.accepted);
//! ```

pub use gk_align as align;
pub use gk_core as core;
pub use gk_filters as filters;
pub use gk_gpusim as gpusim;
pub use gk_mapper as mapper;
pub use gk_seq as seq;
pub use gk_serve as serve;

/// Semantic version of the reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
