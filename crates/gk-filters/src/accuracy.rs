//! Accuracy evaluation harness: filters versus the Edlib-equivalent ground truth.
//!
//! The paper's accuracy methodology (§4.4) is reproduced exactly:
//!
//! * the ground truth for every pair is the global edit distance (our Myers
//!   bit-vector implementation, i.e. Edlib's algorithm) compared against the error
//!   threshold;
//! * a **false accept** is a pair the ground truth rejects but the filter accepts;
//! * a **false reject** is a pair the ground truth accepts but the filter rejects;
//! * a **true reject** is a pair both reject;
//! * *undefined* pairs (containing `N`) can either be excluded (the §5.1.1
//!   experiments) or force-counted as accepted on both sides (the §5.1.2
//!   comparison against other filters, which have no `N` handling).

use crate::traits::PreAlignmentFilter;
use gk_align::edit_distance;
use gk_seq::pairs::PairSet;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How undefined (`N`-containing) pairs are treated during evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UndefinedPolicy {
    /// Drop undefined pairs from the evaluation entirely (§5.1.1, "we exclude these
    /// pairs from the tests").
    Exclude,
    /// Treat undefined pairs as accepted by both the ground truth and the filter
    /// (§5.1.2, "we include these pairs in GateKeeper-GPU's results and mark these
    /// pairs as falsely accepted where necessary").
    CountAsAccepted,
}

/// Accuracy counters for one filter at one threshold over one dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Name of the evaluated filter.
    pub filter: String,
    /// Name of the dataset.
    pub dataset: String,
    /// Error threshold used for both the filter and the ground truth.
    pub threshold: u32,
    /// Pairs considered (after the undefined policy is applied).
    pub total_pairs: usize,
    /// Undefined pairs in the original dataset.
    pub undefined_pairs: usize,
    /// Pairs accepted by the ground truth (edit distance ≤ threshold).
    pub edlib_accepted: usize,
    /// Pairs rejected by the ground truth.
    pub edlib_rejected: usize,
    /// Pairs accepted by the filter.
    pub filter_accepted: usize,
    /// Pairs rejected by the filter.
    pub filter_rejected: usize,
    /// Ground truth rejects, filter accepts.
    pub false_accepts: usize,
    /// Ground truth accepts, filter rejects.
    pub false_rejects: usize,
    /// Both reject.
    pub true_rejects: usize,
    /// Both accept.
    pub true_accepts: usize,
}

impl AccuracyReport {
    /// False accept rate: false accepts over ground-truth rejects (the percentage
    /// plotted in Figure 4).
    pub fn false_accept_rate(&self) -> f64 {
        if self.edlib_rejected == 0 {
            0.0
        } else {
            self.false_accepts as f64 / self.edlib_rejected as f64
        }
    }

    /// True reject rate: correctly rejected pairs over ground-truth rejects.
    pub fn true_reject_rate(&self) -> f64 {
        if self.edlib_rejected == 0 {
            0.0
        } else {
            self.true_rejects as f64 / self.edlib_rejected as f64
        }
    }

    /// False reject rate: false rejects over ground-truth accepts (nonzero
    /// only for MAGNET among the implemented filters). Reports 0 instead of a
    /// NaN when the ground truth accepts nothing (empty dataset or a
    /// uniformly divergent one).
    pub fn false_reject_rate(&self) -> f64 {
        if self.edlib_accepted == 0 {
            0.0
        } else {
            self.false_rejects as f64 / self.edlib_accepted as f64
        }
    }

    /// Fraction of all pairs the filter removes from the verification workload.
    pub fn rejection_fraction(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            self.filter_rejected as f64 / self.total_pairs as f64
        }
    }
}

/// Computes the ground-truth edit distance of every pair across the worker pool
/// (order-preserving, so the vector is identical to a sequential pass). Reusable
/// across filters and thresholds, which is how the benchmark harness amortises the
/// expensive exact computation.
pub fn ground_truth_distances(pairs: &PairSet) -> Vec<u32> {
    pairs
        .pairs
        .par_iter()
        .map(|p| edit_distance(&p.read, &p.reference))
        .collect()
}

/// Evaluates a filter against precomputed ground-truth distances.
pub fn evaluate_with_truth(
    filter: &dyn PreAlignmentFilter,
    pairs: &PairSet,
    truth: &[u32],
    policy: UndefinedPolicy,
) -> AccuracyReport {
    assert_eq!(
        pairs.len(),
        truth.len(),
        "ground truth length does not match the pair set"
    );
    let threshold = filter.threshold();

    #[derive(Default, Clone, Copy)]
    struct Counts {
        considered: usize,
        undefined: usize,
        edlib_accept: usize,
        filter_accept: usize,
        false_accept: usize,
        false_reject: usize,
        true_accept: usize,
        true_reject: usize,
    }

    let counts = pairs
        .pairs
        .par_iter()
        .zip(truth.par_iter())
        .map(|(pair, &distance)| {
            let mut c = Counts::default();
            let undefined = pair.is_undefined();
            if undefined {
                c.undefined = 1;
            }
            let (truth_accepts, filter_accepts) = match (undefined, policy) {
                (true, UndefinedPolicy::Exclude) => return c,
                (true, UndefinedPolicy::CountAsAccepted) => (true, true),
                (false, _) => {
                    let decision = filter.filter_pair(&pair.read, &pair.reference);
                    (distance <= threshold, decision.accepted)
                }
            };
            c.considered = 1;
            if truth_accepts {
                c.edlib_accept = 1;
            }
            if filter_accepts {
                c.filter_accept = 1;
            }
            match (truth_accepts, filter_accepts) {
                (true, true) => c.true_accept = 1,
                (true, false) => c.false_reject = 1,
                (false, true) => c.false_accept = 1,
                (false, false) => c.true_reject = 1,
            }
            c
        })
        .reduce(Counts::default, |a, b| Counts {
            considered: a.considered + b.considered,
            undefined: a.undefined + b.undefined,
            edlib_accept: a.edlib_accept + b.edlib_accept,
            filter_accept: a.filter_accept + b.filter_accept,
            false_accept: a.false_accept + b.false_accept,
            false_reject: a.false_reject + b.false_reject,
            true_accept: a.true_accept + b.true_accept,
            true_reject: a.true_reject + b.true_reject,
        });

    AccuracyReport {
        filter: filter.name().to_string(),
        dataset: pairs.name.clone(),
        threshold,
        total_pairs: counts.considered,
        undefined_pairs: counts.undefined,
        edlib_accepted: counts.edlib_accept,
        edlib_rejected: counts.considered - counts.edlib_accept,
        filter_accepted: counts.filter_accept,
        filter_rejected: counts.considered - counts.filter_accept,
        false_accepts: counts.false_accept,
        false_rejects: counts.false_reject,
        true_rejects: counts.true_reject,
        true_accepts: counts.true_accept,
    }
}

/// Evaluates a filter over a pair set, computing the ground truth on the fly.
pub fn evaluate_filter(
    filter: &dyn PreAlignmentFilter,
    pairs: &PairSet,
    policy: UndefinedPolicy,
) -> AccuracyReport {
    let truth = ground_truth_distances(pairs);
    evaluate_with_truth(filter, pairs, &truth, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gatekeeper::{GateKeeperFpgaFilter, GateKeeperGpuFilter};
    use crate::sneaky_snake::SneakySnakeFilter;
    use gk_seq::datasets::DatasetProfile;

    fn small_set() -> PairSet {
        DatasetProfile::low_edit(100).generate(400, 77)
    }

    #[test]
    fn counters_are_internally_consistent() {
        let pairs = small_set();
        let filter = GateKeeperGpuFilter::new(5);
        let report = evaluate_filter(&filter, &pairs, UndefinedPolicy::Exclude);
        assert_eq!(
            report.total_pairs,
            report.edlib_accepted + report.edlib_rejected
        );
        assert_eq!(
            report.total_pairs,
            report.filter_accepted + report.filter_rejected
        );
        assert_eq!(
            report.total_pairs,
            report.true_accepts + report.true_rejects + report.false_accepts + report.false_rejects
        );
    }

    #[test]
    fn gatekeeper_gpu_has_no_false_rejects() {
        let pairs = small_set();
        let truth = ground_truth_distances(&pairs);
        for e in [0u32, 2, 5] {
            let filter = GateKeeperGpuFilter::new(e);
            let report = evaluate_with_truth(&filter, &pairs, &truth, UndefinedPolicy::Exclude);
            assert_eq!(report.false_rejects, 0, "e = {e}");
        }
    }

    #[test]
    fn gpu_filter_is_at_least_as_accurate_as_fpga() {
        let pairs = small_set();
        let truth = ground_truth_distances(&pairs);
        let gpu = evaluate_with_truth(
            &GateKeeperGpuFilter::new(4),
            &pairs,
            &truth,
            UndefinedPolicy::CountAsAccepted,
        );
        let fpga = evaluate_with_truth(
            &GateKeeperFpgaFilter::new(4),
            &pairs,
            &truth,
            UndefinedPolicy::CountAsAccepted,
        );
        assert!(gpu.false_accepts <= fpga.false_accepts);
    }

    #[test]
    fn sneaky_snake_has_fewest_false_accepts() {
        let pairs = small_set();
        let truth = ground_truth_distances(&pairs);
        let snake = evaluate_with_truth(
            &SneakySnakeFilter::new(4),
            &pairs,
            &truth,
            UndefinedPolicy::Exclude,
        );
        let gpu = evaluate_with_truth(
            &GateKeeperGpuFilter::new(4),
            &pairs,
            &truth,
            UndefinedPolicy::Exclude,
        );
        assert!(snake.false_accepts <= gpu.false_accepts);
        assert_eq!(snake.false_rejects, 0);
    }

    #[test]
    fn undefined_policy_changes_totals() {
        let mut profile = DatasetProfile::low_edit(100);
        profile.undefined_fraction = 0.1;
        let pairs = profile.generate(300, 5);
        let undefined = pairs.undefined_count();
        assert!(undefined > 0);
        let filter = GateKeeperGpuFilter::new(3);
        let excluded = evaluate_filter(&filter, &pairs, UndefinedPolicy::Exclude);
        let included = evaluate_filter(&filter, &pairs, UndefinedPolicy::CountAsAccepted);
        assert_eq!(excluded.total_pairs, pairs.len() - undefined);
        assert_eq!(included.total_pairs, pairs.len());
        assert_eq!(included.undefined_pairs, undefined);
    }

    #[test]
    fn rates_are_in_unit_interval() {
        let pairs = small_set();
        let filter = GateKeeperGpuFilter::new(2);
        let report = evaluate_filter(&filter, &pairs, UndefinedPolicy::Exclude);
        assert!((0.0..=1.0).contains(&report.false_accept_rate()));
        assert!((0.0..=1.0).contains(&report.true_reject_rate()));
        assert!((0.0..=1.0).contains(&report.rejection_fraction()));
        let sum = report.false_accept_rate() + report.true_reject_rate();
        assert!((sum - 1.0).abs() < 1e-9 || report.edlib_rejected == 0);
    }

    #[test]
    #[should_panic(expected = "ground truth length")]
    fn mismatched_truth_length_panics() {
        let pairs = small_set();
        let filter = GateKeeperGpuFilter::new(2);
        evaluate_with_truth(&filter, &pairs, &[1, 2, 3], UndefinedPolicy::Exclude);
    }

    /// Satellite regression: every rate must stay a finite number — never a
    /// NaN that propagates into the accuracy tables — when a denominator is
    /// zero.
    #[test]
    fn rates_are_finite_on_empty_denominators() {
        // Fully empty dataset: every counter is zero.
        let empty = PairSet {
            name: "empty".to_string(),
            read_len: 0,
            pairs: Vec::new(),
        };
        let filter = GateKeeperGpuFilter::new(3);
        let report = evaluate_filter(&filter, &empty, UndefinedPolicy::Exclude);
        assert_eq!(report.total_pairs, 0);
        for rate in [
            report.false_accept_rate(),
            report.false_reject_rate(),
            report.true_reject_rate(),
            report.rejection_fraction(),
        ] {
            assert!(rate.is_finite());
            assert_eq!(rate, 0.0);
        }

        // Identical pairs at a generous threshold: the ground truth rejects
        // nothing, so the reject-side denominators are zero.
        let pairs = DatasetProfile::low_edit(60).generate(50, 3);
        let report = evaluate_filter(
            &GateKeeperGpuFilter::new(60),
            &pairs,
            UndefinedPolicy::Exclude,
        );
        assert_eq!(report.edlib_rejected, 0);
        assert!(report.false_accept_rate().is_finite());
        assert!(report.true_reject_rate().is_finite());
        assert!(report.false_reject_rate().is_finite());
    }
}
