//! Lane-parallel (SIMD-style) GateKeeper kernels over the struct-of-arrays
//! batch layout.
//!
//! The paper's pipeline is pure bit algebra — XOR, shifts with carry transfer,
//! OR-reduction, a `2e + 1`-way AND (§3.4) — which makes it embarrassingly
//! wide: the same operation applies to every pair independently. This module
//! exploits that in two stacked ways:
//!
//! 1. **Word-parallel primitives** (in [`crate::bitvec`] / [`crate::words`]):
//!    every mask walk is a whole-word bit trick instead of a per-bit loop.
//! 2. **Lane-parallel batches** (here): four pairs are transposed into the
//!    [`SoaGroup`] struct-of-arrays layout (`[u64; 4]` rows ≙ one 256-bit
//!    vector) and filtered together — the shims world has no `std::simd`, so
//!    the lanes are portable `[u64; 4]` arrays the compiler auto-vectorizes.
//!
//! [`SimdMode`] selects between the lane path and the per-bit scalar reference
//! at runtime (`GK_SIMD=scalar` forces the fallback; the CI matrix keeps both
//! paths green). Decisions are byte-identical across all modes: the
//! differential property suite and the `simd_speedup` bench assert it.

use crate::bitvec::count_edits_windowed_in_words;
use crate::gatekeeper::{
    gatekeeper_kernel, gatekeeper_kernel_reference, EditCounting, GateKeeperConfig,
};
use crate::traits::FilterDecision;
use gk_seq::alphabet::has_undefined;
use gk_seq::pairs::{SequencePair, SoaGroup, SOA_LANES};
use gk_seq::PackedSeq;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Environment variable consulted by [`SimdMode::Auto`]: set to `scalar` to
/// force the per-bit fallback without touching any configuration.
pub const SIMD_MODE_ENV: &str = "GK_SIMD";

/// Runtime selection between the lane-parallel kernels and the per-bit scalar
/// reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SimdMode {
    /// Consult the `GK_SIMD` environment variable (`scalar` forces the
    /// fallback; anything else — including unset — selects lanes).
    #[default]
    Auto,
    /// Always use the 4-lane struct-of-arrays kernels.
    Lanes,
    /// Always use the per-bit reference implementations.
    Scalar,
}

impl SimdMode {
    /// Resolves [`SimdMode::Auto`] against the environment; explicit modes
    /// win over the `GK_SIMD` variable. An unrecognized value warns once per
    /// process and falls back to [`SimdMode::Lanes`] (the same choice as
    /// unset), so a typo degrades to the fast path loudly instead of being
    /// silently reinterpreted.
    ///
    /// Resolution reads the environment, so hot paths must not call it per
    /// pair or per block — the filters resolve once at construction and
    /// thread the explicit mode through.
    pub fn resolve(self) -> SimdMode {
        match self {
            SimdMode::Auto => match std::env::var(SIMD_MODE_ENV) {
                Err(_) => SimdMode::Lanes,
                Ok(value) => {
                    let (mode, recognized) = classify_env_value(&value);
                    if !recognized {
                        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                        WARN_ONCE.call_once(|| {
                            eprintln!(
                                "warning: unrecognized {SIMD_MODE_ENV}='{value}' \
                                 (expected auto, lanes, simd or scalar); \
                                 using the lane-parallel kernels"
                            );
                        });
                    }
                    mode
                }
            },
            explicit => explicit,
        }
    }

    /// True when the resolved mode runs the lane-parallel kernels.
    pub fn use_lanes(self) -> bool {
        self.resolve() == SimdMode::Lanes
    }
}

/// Pure classification of a `GK_SIMD` value: the resolved mode plus whether
/// the value was recognized (the warn-once side effect lives in
/// [`SimdMode::resolve`] so this stays trivially testable).
fn classify_env_value(value: &str) -> (SimdMode, bool) {
    if value.is_empty() {
        return (SimdMode::Lanes, true);
    }
    match value.parse::<SimdMode>() {
        Ok(SimdMode::Scalar) => (SimdMode::Scalar, true),
        Ok(_) => (SimdMode::Lanes, true),
        Err(_) => (SimdMode::Lanes, false),
    }
}

impl FromStr for SimdMode {
    type Err = String;

    fn from_str(s: &str) -> Result<SimdMode, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(SimdMode::Auto),
            "lanes" | "simd" => Ok(SimdMode::Lanes),
            "scalar" => Ok(SimdMode::Scalar),
            other => Err(format!(
                "unknown SIMD mode '{other}' (expected auto, lanes or scalar)"
            )),
        }
    }
}

impl fmt::Display for SimdMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimdMode::Auto => write!(f, "auto"),
            SimdMode::Lanes => write!(f, "lanes"),
            SimdMode::Scalar => write!(f, "scalar"),
        }
    }
}

pub(crate) type LaneRow = [u64; SOA_LANES];

pub(crate) const WORD_BITS: usize = 64;
const EVEN_BITS: u64 = 0x5555_5555_5555_5555;

/// Pairs handed to one lane-parallel block task by the filters'
/// `filter_batch` overrides: large enough to amortise the struct-of-arrays
/// transpose, small enough to keep the work-stealing queue full (mirrors the
/// `GateKeeperCpu` block size).
pub(crate) const LANE_BLOCK_PAIRS: usize = 256;

/// Per-lane active mask for divergent lane-parallel loops.
///
/// GateKeeper's mask algebra is uniform across lanes, but MAGNET's extraction
/// rounds and SneakySnake's greedy traversal are *data-dependent*: each lane
/// finishes its extraction/column walk at a different step. Rather than
/// padding every lane to the slowest one, the kernels keep stepping the group
/// while retiring finished lanes from this mask — the same bookkeeping a real
/// GPU warp needs when threads of one warp diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneMask {
    bits: u8,
}

impl LaneMask {
    /// A mask with the first `lanes` lanes active.
    pub fn active(lanes: usize) -> LaneMask {
        debug_assert!(lanes <= SOA_LANES);
        LaneMask {
            bits: ((1u16 << lanes) - 1) as u8,
        }
    }

    /// Retires one lane; further steps skip it.
    pub fn retire(&mut self, lane: usize) {
        self.bits &= !(1u8 << lane);
    }

    /// True while `lane` still participates in the group's steps.
    pub fn is_active(self, lane: usize) -> bool {
        self.bits & (1u8 << lane) != 0
    }

    /// True while any lane is still active (the group keeps stepping).
    pub fn any(self) -> bool {
        self.bits != 0
    }

    /// Number of still-active lanes.
    pub fn count(self) -> u32 {
        self.bits.count_ones()
    }
}

/// OR of the two bits of every 2-bit base field of the XOR difference: even
/// bit `2s` is set iff base `s` differs.
#[inline]
fn per_base_diff(a: u64, b: u64) -> u64 {
    let d = a ^ b;
    (d | (d >> 1)) & EVEN_BITS
}

/// Packs the even-indexed bits of `x` (bits 0, 2, …, 62) into the low 32 bits.
#[inline]
fn compress_even_u64(x: u64) -> u64 {
    let x = x & EVEN_BITS;
    let x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    let x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    let x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    let x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF
}

/// Zeroes the mask bits at and beyond `len` in the last mask row. The rows
/// exactly cover `len.div_ceil(64)` words, so only the final row can carry
/// garbage (from shifted-sequence bits beyond the sequence length).
#[inline]
pub(crate) fn clear_tail_rows(rows: &mut [LaneRow], len: usize) {
    let used = len % WORD_BITS;
    if used != 0 {
        if let Some(last) = rows.last_mut() {
            let keep = (1u64 << used) - 1;
            for lane in last.iter_mut() {
                *lane &= keep;
            }
        }
    }
}

/// XOR + per-base OR-reduction of two SoA sequence arrays into per-base mask
/// rows (`out.len() == len.div_ceil(64)`; one mask row condenses two sequence
/// rows). Bits beyond `len` are cleared.
pub(crate) fn build_mask_rows(
    read: &[LaneRow],
    reference: &[LaneRow],
    len: usize,
    out: &mut [LaneRow],
) {
    for (mrow, slot) in out.iter_mut().enumerate() {
        let lo_row = 2 * mrow;
        let hi_row = 2 * mrow + 1;
        for lane in 0..SOA_LANES {
            let lo = compress_even_u64(per_base_diff(read[lo_row][lane], reference[lo_row][lane]));
            let hi = compress_even_u64(per_base_diff(read[hi_row][lane], reference[hi_row][lane]));
            slot[lane] = lo | (hi << 32);
        }
    }
    clear_tail_rows(out, len);
}

/// Lane-wise shift of the SoA bit rows towards *higher* bit positions by
/// `bits` (sequence shift towards higher base positions when `bits = 2k`);
/// vacated low bits become zero, exactly the `A` the word-at-a-time path
/// shifts in.
pub(crate) fn shl_rows(src: &[LaneRow], bits: usize, out: &mut [LaneRow]) {
    let word_shift = bits / WORD_BITS;
    let bit_shift = bits % WORD_BITS;
    for r in 0..out.len() {
        if r < word_shift {
            out[r] = [0; SOA_LANES];
            continue;
        }
        let lo = src[r - word_shift];
        if bit_shift == 0 {
            out[r] = lo;
        } else {
            let carry = if r > word_shift {
                src[r - word_shift - 1]
            } else {
                [0; SOA_LANES]
            };
            for lane in 0..SOA_LANES {
                out[r][lane] = (lo[lane] << bit_shift) | (carry[lane] >> (WORD_BITS - bit_shift));
            }
        }
    }
}

/// Lane-wise shift of the SoA bit rows towards *lower* bit positions by
/// `bits`; vacated high bits become zero.
pub(crate) fn shr_rows(src: &[LaneRow], bits: usize, out: &mut [LaneRow]) {
    let word_shift = bits / WORD_BITS;
    let bit_shift = bits % WORD_BITS;
    for (r, row) in out.iter_mut().enumerate() {
        let lo_src = r + word_shift;
        if lo_src >= src.len() {
            *row = [0; SOA_LANES];
            continue;
        }
        let lo = src[lo_src];
        if bit_shift == 0 {
            *row = lo;
        } else {
            let carry = if lo_src + 1 < src.len() {
                src[lo_src + 1]
            } else {
                [0; SOA_LANES]
            };
            for lane in 0..SOA_LANES {
                row[lane] = (lo[lane] >> bit_shift) | (carry[lane] << (WORD_BITS - bit_shift));
            }
        }
    }
}

/// Lane-wise amendment: morphological closing with `max_run` one-bit
/// dilate/erode passes (see [`crate::bitvec::BaseMask::amend_short_zero_runs`]
/// for the correctness argument). `scratch` is reused across calls; it grows
/// to `mask.len() + max_run/64 + 2` rows of dilation head-room.
pub(crate) fn amend_rows(
    mask: &mut [LaneRow],
    len: usize,
    max_run: usize,
    scratch: &mut Vec<LaneRow>,
) {
    if len == 0 || max_run == 0 {
        return;
    }
    let m = max_run.min(len);
    let total = mask.len() + m / WORD_BITS + 2;
    scratch.clear();
    scratch.resize(total, [0; SOA_LANES]);
    scratch[..mask.len()].copy_from_slice(mask);
    for _ in 0..m {
        // d |= d << 1 across rows, high row first so carries read the
        // not-yet-updated lower neighbour.
        for r in (0..total).rev() {
            let below = if r > 0 {
                scratch[r - 1]
            } else {
                [0; SOA_LANES]
            };
            for (word, carry_src) in scratch[r].iter_mut().zip(below.iter()) {
                *word |= (*word << 1) | (carry_src >> 63);
            }
        }
    }
    for _ in 0..m {
        // d &= d >> 1 across rows, low row first for the same reason.
        for r in 0..total {
            let above = if r + 1 < total {
                scratch[r + 1]
            } else {
                [0; SOA_LANES]
            };
            for (word, carry_src) in scratch[r].iter_mut().zip(above.iter()) {
                *word &= (*word >> 1) | (carry_src << 63);
            }
        }
    }
    for (row, closed) in mask.iter_mut().zip(scratch.iter()) {
        for lane in 0..SOA_LANES {
            row[lane] |= closed[lane];
        }
    }
    clear_tail_rows(mask, len);
}

/// Lane-wise `set_range`: sets mask bits `[start, end)` (clamped to `len`) in
/// every lane using whole-word head/tail masks.
pub(crate) fn set_range_rows(mask: &mut [LaneRow], len: usize, start: usize, end: usize) {
    let end = end.min(len);
    if start >= end {
        return;
    }
    let first = start / WORD_BITS;
    let last = (end - 1) / WORD_BITS;
    let head = u64::MAX << (start % WORD_BITS);
    let tail = u64::MAX >> (WORD_BITS - 1 - (end - 1) % WORD_BITS);
    if first == last {
        for word in &mut mask[first] {
            *word |= head & tail;
        }
    } else {
        for word in &mut mask[first] {
            *word |= head;
        }
        for row in &mut mask[first + 1..last] {
            *row = [u64::MAX; SOA_LANES];
        }
        for word in &mut mask[last] {
            *word |= tail;
        }
    }
}

/// Lane-wise in-place AND.
pub(crate) fn and_rows(acc: &mut [LaneRow], other: &[LaneRow]) {
    for (a, b) in acc.iter_mut().zip(other.iter()) {
        for lane in 0..SOA_LANES {
            a[lane] &= b[lane];
        }
    }
}

/// Extracts one lane's mask words for the per-lane counting epilogue.
pub(crate) fn lane_words(mask: &[LaneRow], lane: usize, out: &mut Vec<u64>) {
    out.clear();
    out.extend(mask.iter().map(|row| row[lane]));
}

/// Runs the GateKeeper kernel on all lanes of a struct-of-arrays group at
/// once. Decisions of inactive lanes (`lane >= group.lanes`) are meaningless.
///
/// The mask algebra is identical to [`gatekeeper_kernel`] — same shift clamp,
/// same amend-before-boundary-fix ordering, same windowed counting — so the
/// per-lane decisions are byte-identical to running the word-at-a-time kernel
/// on each pair individually.
pub fn gatekeeper_kernel_x4(
    group: &SoaGroup,
    config: &GateKeeperConfig,
) -> [FilterDecision; SOA_LANES] {
    let len = group.len;
    debug_assert!(len > 0, "SoaGroup guarantees a nonzero length");
    let e = config.threshold;
    let window = config.amend_run_len + 1;
    let mask_rows = len.div_ceil(WORD_BITS);

    let mut hamming = vec![[0u64; SOA_LANES]; mask_rows];
    build_mask_rows(&group.read_words, &group.ref_words, len, &mut hamming);

    let mut out = [FilterDecision::accept(0); SOA_LANES];
    let mut words: Vec<u64> = Vec::with_capacity(mask_rows);

    if e == 0 {
        for (lane, decision) in out.iter_mut().enumerate() {
            lane_words(&hamming, lane, &mut words);
            let ones: u32 = words.iter().map(|w| w.count_ones()).sum();
            *decision = if ones == 0 {
                FilterDecision::accept(0)
            } else {
                let errors = match config.counting {
                    EditCounting::WindowedRuns => count_edits_windowed_in_words(&words, window),
                    EditCounting::Popcount => ones,
                };
                FilterDecision::reject(errors.max(1))
            };
        }
        return out;
    }

    let max_shift = (e as usize).min(len - 1);
    let mut scratch: Vec<LaneRow> = Vec::new();
    amend_rows(&mut hamming, len, config.amend_run_len, &mut scratch);
    let mut combined = hamming;

    let mut shifted = vec![[0u64; SOA_LANES]; group.read_words.len()];
    let mut mask = vec![[0u64; SOA_LANES]; mask_rows];
    for k in 1..=max_shift {
        // Deletion mask: read shifted towards higher positions by k bases.
        shl_rows(&group.read_words, 2 * k, &mut shifted);
        build_mask_rows(&shifted, &group.ref_words, len, &mut mask);
        amend_rows(&mut mask, len, config.amend_run_len, &mut scratch);
        if config.improved_boundaries {
            set_range_rows(&mut mask, len, 0, k);
        }
        and_rows(&mut combined, &mask);

        // Insertion mask: read shifted towards lower positions by k bases.
        shr_rows(&group.read_words, 2 * k, &mut shifted);
        build_mask_rows(&shifted, &group.ref_words, len, &mut mask);
        amend_rows(&mut mask, len, config.amend_run_len, &mut scratch);
        if config.improved_boundaries {
            set_range_rows(&mut mask, len, len - k, len);
        }
        and_rows(&mut combined, &mask);
    }

    for (lane, decision) in out.iter_mut().enumerate() {
        lane_words(&combined, lane, &mut words);
        let errors = match config.counting {
            EditCounting::WindowedRuns => count_edits_windowed_in_words(&words, window),
            EditCounting::Popcount => words.iter().map(|w| w.count_ones()).sum(),
        };
        *decision = if errors <= e {
            FilterDecision::accept(errors)
        } else {
            FilterDecision::reject(errors)
        };
    }
    out
}

/// Decision for one pair outside the lane path, matching the undefined-pair
/// semantics of `GateKeeperCpu` / the device kernels exactly.
fn scalar_pair_decision(
    read: &[u8],
    reference: &[u8],
    config: &GateKeeperConfig,
    use_reference: bool,
) -> FilterDecision {
    let read_packed = PackedSeq::from_ascii(read);
    let ref_packed = PackedSeq::from_ascii(reference);
    if config.pass_undefined && (read_packed.is_undefined() || ref_packed.is_undefined()) {
        return FilterDecision::undefined_pass();
    }
    if use_reference {
        gatekeeper_kernel_reference(&read_packed, &ref_packed, config)
    } else {
        gatekeeper_kernel(&read_packed, &ref_packed, config)
    }
}

/// Generic lane-parallel block driver over raw ASCII pairs, shared by the
/// block paths of all four filters.
///
/// In lane mode, consecutive runs of lane-eligible pairs (nonzero equal
/// lengths plus the filter's own `eligible_pair` predicate) are transposed
/// into [`SoaGroup`]s of up to four and handed to `kernel`; everything else
/// falls back to `fallback` per pair. In scalar (or unresolved-to-scalar)
/// mode every pair runs `scalar`. Output order matches input order.
pub(crate) fn filter_block_slices_with<E, K, F, S>(
    pairs: &[(&[u8], &[u8])],
    mode: SimdMode,
    eligible_pair: E,
    mut kernel: K,
    mut fallback: F,
    mut scalar: S,
) -> Vec<FilterDecision>
where
    E: Fn(&[u8], &[u8]) -> bool,
    K: FnMut(&SoaGroup) -> [FilterDecision; SOA_LANES],
    F: FnMut(&[u8], &[u8]) -> FilterDecision,
    S: FnMut(&[u8], &[u8]) -> FilterDecision,
{
    if !mode.use_lanes() {
        return pairs
            .iter()
            .map(|(read, reference)| scalar(read, reference))
            .collect();
    }

    let mut decisions = vec![FilterDecision::accept(0); pairs.len()];
    let mut eligible: Vec<usize> = Vec::with_capacity(pairs.len());
    for (i, (read, reference)) in pairs.iter().enumerate() {
        let lane_ok =
            !read.is_empty() && read.len() == reference.len() && eligible_pair(read, reference);
        if lane_ok {
            eligible.push(i);
        } else {
            decisions[i] = fallback(read, reference);
        }
    }

    // One scratch group and member array reused across every group in the
    // block: the grouping loop itself never touches the allocator.
    let mut group = SoaGroup::scratch();
    let mut members: [(&[u8], &[u8]); SOA_LANES] = [(&[], &[]); SOA_LANES];
    let mut start = 0;
    while start < eligible.len() {
        let len0 = pairs[eligible[start]].0.len();
        let mut end = start + 1;
        while end < eligible.len()
            && end - start < SOA_LANES
            && pairs[eligible[end]].0.len() == len0
        {
            end += 1;
        }
        for (slot, &i) in members.iter_mut().zip(eligible[start..end].iter()) {
            *slot = pairs[i];
        }
        if group.encode_slices_into(&members[..end - start]) {
            let lane_decisions = kernel(&group);
            for (lane, &i) in eligible[start..end].iter().enumerate() {
                decisions[i] = lane_decisions[lane];
            }
        } else {
            for &i in &eligible[start..end] {
                let (read, reference) = pairs[i];
                decisions[i] = fallback(read, reference);
            }
        }
        start = end;
    }
    decisions
}

/// True when every byte is an upper- or lowercase `A`/`C`/`G`/`T` call — the
/// lane-eligibility alphabet of the 2-bit-packed kernels.
pub(crate) fn lane_alphabet(seq: &[u8]) -> bool {
    !has_undefined(seq)
}

/// True when every byte is an *uppercase* `A`/`C`/`G`/`T`. Shouji and
/// SneakySnake compare raw ASCII bytes in their scalar sweeps ("`a` ≠ `A`"),
/// so their lane kernels — which compare 2-bit codes and would equate the
/// cases — only take pairs where the two comparisons provably agree.
pub(crate) fn canonical_acgt(seq: &[u8]) -> bool {
    seq.iter().all(|&b| matches!(b, b'A' | b'C' | b'G' | b'T'))
}

/// Filters a block of raw ASCII pairs, lane-parallel where possible.
///
/// In lane mode, consecutive runs of lane-eligible pairs (defined, equal
/// nonzero lengths) are transposed into [`SoaGroup`]s of up to four and run
/// through [`gatekeeper_kernel_x4`]; everything else — undefined pairs,
/// ragged or empty lengths — falls back to the word-at-a-time kernel with the
/// exact undefined-pass semantics of the per-pair paths. In scalar mode every
/// pair runs the per-bit reference kernel. Output order matches input order.
pub fn gatekeeper_filter_block_slices(
    pairs: &[(&[u8], &[u8])],
    config: &GateKeeperConfig,
    mode: SimdMode,
) -> Vec<FilterDecision> {
    filter_block_slices_with(
        pairs,
        mode,
        |read, reference| lane_alphabet(read) && lane_alphabet(reference),
        |group| gatekeeper_kernel_x4(group, config),
        |read, reference| scalar_pair_decision(read, reference, config, false),
        |read, reference| scalar_pair_decision(read, reference, config, true),
    )
}

/// [`gatekeeper_filter_block_slices`] over owned [`SequencePair`]s.
pub fn gatekeeper_filter_block(
    pairs: &[SequencePair],
    config: &GateKeeperConfig,
    mode: SimdMode,
) -> Vec<FilterDecision> {
    let slices: Vec<(&[u8], &[u8])> = pairs
        .iter()
        .map(|p| (p.read.as_slice(), p.reference.as_slice()))
        .collect();
    gatekeeper_filter_block_slices(&slices, config, mode)
}

/// Filters a block of already-encoded pairs, lane-parallel where possible —
/// the device-side counterpart of [`gatekeeper_filter_block_slices`] used by
/// the simulated GPU's encoded chunk path. Fallback pairs run the
/// word-at-a-time kernel directly on the packed words (no re-encoding).
pub fn gatekeeper_filter_block_packed(
    pairs: &[(&PackedSeq, &PackedSeq)],
    config: &GateKeeperConfig,
    mode: SimdMode,
) -> Vec<FilterDecision> {
    let packed_decision = |read: &PackedSeq, reference: &PackedSeq, use_reference: bool| {
        if config.pass_undefined && (read.is_undefined() || reference.is_undefined()) {
            return FilterDecision::undefined_pass();
        }
        if use_reference {
            gatekeeper_kernel_reference(read, reference, config)
        } else {
            gatekeeper_kernel(read, reference, config)
        }
    };

    if !mode.use_lanes() {
        return pairs
            .iter()
            .map(|(read, reference)| packed_decision(read, reference, true))
            .collect();
    }

    let mut decisions = vec![FilterDecision::accept(0); pairs.len()];
    let mut eligible: Vec<usize> = Vec::with_capacity(pairs.len());
    for (i, (read, reference)) in pairs.iter().enumerate() {
        let lane_ok = !read.is_empty()
            && read.len() == reference.len()
            && !read.is_undefined()
            && !reference.is_undefined();
        if lane_ok {
            eligible.push(i);
        } else {
            decisions[i] = packed_decision(read, reference, false);
        }
    }

    let mut start = 0;
    while start < eligible.len() {
        let len0 = pairs[eligible[start]].0.len();
        let mut end = start + 1;
        while end < eligible.len()
            && end - start < SOA_LANES
            && pairs[eligible[end]].0.len() == len0
        {
            end += 1;
        }
        let members: Vec<(&PackedSeq, &PackedSeq)> =
            eligible[start..end].iter().map(|&i| pairs[i]).collect();
        match SoaGroup::from_packed(&members) {
            Some(group) => {
                let lane_decisions = gatekeeper_kernel_x4(&group, config);
                for (lane, &i) in eligible[start..end].iter().enumerate() {
                    decisions[i] = lane_decisions[lane];
                }
            }
            None => {
                for &i in &eligible[start..end] {
                    let (read, reference) = pairs[i];
                    decisions[i] = packed_decision(read, reference, false);
                }
            }
        }
        start = end;
    }
    decisions
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, rng: &mut StdRng) -> Vec<u8> {
        (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
    }

    fn mutated(reference: &[u8], edits: usize, rng: &mut StdRng) -> Vec<u8> {
        gk_seq::simulate::mutate_with_edits(reference, edits, 0.3, rng)
    }

    fn per_pair_decisions(
        pairs: &[(Vec<u8>, Vec<u8>)],
        config: &GateKeeperConfig,
    ) -> Vec<FilterDecision> {
        pairs
            .iter()
            .map(|(read, reference)| scalar_pair_decision(read, reference, config, false))
            .collect()
    }

    #[test]
    fn mode_parsing_and_display_round_trip() {
        for mode in [SimdMode::Auto, SimdMode::Lanes, SimdMode::Scalar] {
            assert_eq!(mode.to_string().parse::<SimdMode>().unwrap(), mode);
        }
        assert_eq!("SIMD".parse::<SimdMode>().unwrap(), SimdMode::Lanes);
        assert!("avx512".parse::<SimdMode>().is_err());
        assert_eq!(SimdMode::default(), SimdMode::Auto);
    }

    #[test]
    fn explicit_modes_resolve_to_themselves() {
        assert_eq!(SimdMode::Lanes.resolve(), SimdMode::Lanes);
        assert_eq!(SimdMode::Scalar.resolve(), SimdMode::Scalar);
        assert!(SimdMode::Lanes.use_lanes());
        assert!(!SimdMode::Scalar.use_lanes());
    }

    #[test]
    fn env_value_classification_covers_every_spelling() {
        assert_eq!(classify_env_value("scalar"), (SimdMode::Scalar, true));
        assert_eq!(classify_env_value("SCALAR"), (SimdMode::Scalar, true));
        assert_eq!(classify_env_value("lanes"), (SimdMode::Lanes, true));
        assert_eq!(classify_env_value("simd"), (SimdMode::Lanes, true));
        assert_eq!(classify_env_value("auto"), (SimdMode::Lanes, true));
        assert_eq!(classify_env_value(""), (SimdMode::Lanes, true));
        // Unrecognized values fall back to Lanes (flagged for the one-time
        // warning) instead of being silently treated as "not scalar".
        assert_eq!(classify_env_value("avx512"), (SimdMode::Lanes, false));
        assert_eq!(classify_env_value("1"), (SimdMode::Lanes, false));
        assert_eq!(classify_env_value("Scalar mode"), (SimdMode::Lanes, false));
    }

    #[test]
    fn auto_resolution_falls_back_to_lanes_on_unrecognized_env() {
        // Save/restore so the other tests in this binary see a consistent
        // environment; every value set here resolves Auto to Lanes, which is
        // also what an unset variable resolves to, so a concurrent Auto
        // resolution cannot observe a different mode than it would otherwise.
        let saved = std::env::var(SIMD_MODE_ENV).ok();
        std::env::set_var(SIMD_MODE_ENV, "avx512");
        assert_eq!(SimdMode::Auto.resolve(), SimdMode::Lanes);
        std::env::set_var(SIMD_MODE_ENV, "LANES");
        assert_eq!(SimdMode::Auto.resolve(), SimdMode::Lanes);
        match saved {
            Some(value) => std::env::set_var(SIMD_MODE_ENV, value),
            None => std::env::remove_var(SIMD_MODE_ENV),
        }
    }

    #[test]
    fn lane_mask_retires_lanes_independently() {
        let mut mask = LaneMask::active(3);
        assert!(mask.any());
        assert_eq!(mask.count(), 3);
        assert!(mask.is_active(0) && mask.is_active(1) && mask.is_active(2));
        assert!(!mask.is_active(3));
        mask.retire(1);
        assert!(mask.is_active(0) && !mask.is_active(1) && mask.is_active(2));
        assert_eq!(mask.count(), 2);
        mask.retire(0);
        mask.retire(2);
        assert!(!mask.any());
        assert!(!LaneMask::active(0).any());
    }

    #[test]
    fn compress_even_extracts_alternating_bits() {
        assert_eq!(compress_even_u64(EVEN_BITS), 0xFFFF_FFFF);
        assert_eq!(compress_even_u64(0), 0);
        // Explicit positions: even bits 0, 2, 6 set → output bits 0, 1, 3.
        let x = (1u64 << 0) | (1 << 2) | (1 << 6);
        assert_eq!(compress_even_u64(x), 0b1011);
    }

    #[test]
    fn kernel_x4_matches_scalar_kernel_on_random_groups() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let len = rng.gen_range(1usize..=200);
            let e = rng.gen_range(0u32..=12);
            let config = if rng.gen_bool(0.5) {
                GateKeeperConfig::gpu(e)
            } else {
                GateKeeperConfig::fpga(e)
            };
            let lanes = rng.gen_range(1usize..=SOA_LANES);
            let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..lanes)
                .map(|_| {
                    let reference = random_seq(len, &mut rng);
                    let edits = rng.gen_range(0usize..=(e as usize + 4));
                    let read = mutated(&reference, edits, &mut rng);
                    (read, reference)
                })
                .collect();
            let slices: Vec<(&[u8], &[u8])> = pairs
                .iter()
                .map(|(r, s)| (r.as_slice(), s.as_slice()))
                .collect();
            let group = SoaGroup::encode_slices(&slices).expect("lane-eligible group");
            let lane_decisions = gatekeeper_kernel_x4(&group, &config);
            for (lane, (read, reference)) in pairs.iter().enumerate() {
                let expected = gatekeeper_kernel(
                    &PackedSeq::from_ascii(read),
                    &PackedSeq::from_ascii(reference),
                    &config,
                );
                assert_eq!(
                    lane_decisions[lane], expected,
                    "len = {len}, e = {e}, lane = {lane}"
                );
            }
        }
    }

    #[test]
    fn kernel_x4_handles_word_boundary_lengths() {
        let mut rng = StdRng::seed_from_u64(12);
        for len in [1usize, 31, 32, 33, 63, 64, 65, 96, 127, 128, 129] {
            for e in [0u32, 1, 4, 40] {
                let config = GateKeeperConfig::gpu(e);
                let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..SOA_LANES)
                    .map(|_| {
                        let reference = random_seq(len, &mut rng);
                        let read = mutated(&reference, rng.gen_range(0..=6), &mut rng);
                        (read, reference)
                    })
                    .collect();
                let slices: Vec<(&[u8], &[u8])> = pairs
                    .iter()
                    .map(|(r, s)| (r.as_slice(), s.as_slice()))
                    .collect();
                let group = SoaGroup::encode_slices(&slices).unwrap();
                let lane_decisions = gatekeeper_kernel_x4(&group, &config);
                for (lane, (read, reference)) in pairs.iter().enumerate() {
                    let expected = gatekeeper_kernel(
                        &PackedSeq::from_ascii(read),
                        &PackedSeq::from_ascii(reference),
                        &config,
                    );
                    assert_eq!(lane_decisions[lane], expected, "len = {len}, e = {e}");
                }
            }
        }
    }

    #[test]
    fn block_driver_matches_per_pair_decisions_with_mixed_pairs() {
        let mut rng = StdRng::seed_from_u64(13);
        let config = GateKeeperConfig::gpu(4);
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0..97 {
            let len = match i % 5 {
                0 => 100,
                1 => 100,
                2 => 64,
                3 => 33,
                _ => 100,
            };
            let reference = random_seq(len, &mut rng);
            let mut read = mutated(&reference, rng.gen_range(0..8), &mut rng);
            if i % 11 == 0 {
                read[len / 2] = b'N'; // undefined pair
            }
            if i % 13 == 0 {
                read.pop(); // ragged length
            }
            pairs.push((read, reference));
        }
        pairs.push((Vec::new(), Vec::new())); // empty pair
        let slices: Vec<(&[u8], &[u8])> = pairs
            .iter()
            .map(|(r, s)| (r.as_slice(), s.as_slice()))
            .collect();
        let expected = per_pair_decisions(&pairs, &config);
        let lanes = gatekeeper_filter_block_slices(&slices, &config, SimdMode::Lanes);
        assert_eq!(lanes, expected);
        let scalar = gatekeeper_filter_block_slices(&slices, &config, SimdMode::Scalar);
        assert_eq!(scalar, expected);
    }

    #[test]
    fn packed_block_driver_matches_ascii_block_driver() {
        let mut rng = StdRng::seed_from_u64(14);
        let config = GateKeeperConfig::gpu(3);
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..50)
            .map(|i| {
                let reference = random_seq(80, &mut rng);
                let mut read = mutated(&reference, rng.gen_range(0..6), &mut rng);
                if i % 9 == 0 {
                    read[40] = b'N';
                }
                (read, reference)
            })
            .collect();
        let packed: Vec<(PackedSeq, PackedSeq)> = pairs
            .iter()
            .map(|(r, s)| (PackedSeq::from_ascii(r), PackedSeq::from_ascii(s)))
            .collect();
        let packed_refs: Vec<(&PackedSeq, &PackedSeq)> =
            packed.iter().map(|(r, s)| (r, s)).collect();
        let slices: Vec<(&[u8], &[u8])> = pairs
            .iter()
            .map(|(r, s)| (r.as_slice(), s.as_slice()))
            .collect();
        for mode in [SimdMode::Lanes, SimdMode::Scalar] {
            let from_ascii = gatekeeper_filter_block_slices(&slices, &config, mode);
            let from_packed = gatekeeper_filter_block_packed(&packed_refs, &config, mode);
            assert_eq!(from_ascii, from_packed, "mode = {mode}");
        }
    }

    #[test]
    fn undefined_pairs_run_the_kernel_when_pass_undefined_is_off() {
        let config = GateKeeperConfig::fpga(2); // pass_undefined: false
        let pairs = [
            (b"ACGTNACGTACGTACGTACG".to_vec(), vec![b'T'; 20]),
            (
                b"ACGTACGTACGTACGTACGT".to_vec(),
                b"ACGTACGTACGTACGTACGT".to_vec(),
            ),
        ];
        let slices: Vec<(&[u8], &[u8])> = pairs
            .iter()
            .map(|(r, s)| (r.as_slice(), s.as_slice()))
            .collect();
        for mode in [SimdMode::Lanes, SimdMode::Scalar] {
            let decisions = gatekeeper_filter_block_slices(&slices, &config, mode);
            assert!(!decisions[0].undefined, "mode = {mode}");
            assert!(!decisions[0].accepted, "mode = {mode}");
            assert!(decisions[1].accepted, "mode = {mode}");
        }
    }

    #[test]
    fn lowercase_bases_filter_like_uppercase_in_lane_groups() {
        let config = GateKeeperConfig::gpu(2);
        let upper = [
            (b"ACGTACGTACGTACGT".to_vec(), b"ACGTACGAACGTACGT".to_vec()),
            (b"TTTTGGGGCCCCAAAA".to_vec(), b"TTTTGGGGCCCCAAAA".to_vec()),
        ];
        let lower: Vec<(Vec<u8>, Vec<u8>)> = upper
            .iter()
            .map(|(r, s)| (r.to_ascii_lowercase(), s.to_ascii_lowercase()))
            .collect();
        let upper_slices: Vec<(&[u8], &[u8])> = upper
            .iter()
            .map(|(r, s)| (r.as_slice(), s.as_slice()))
            .collect();
        let lower_slices: Vec<(&[u8], &[u8])> = lower
            .iter()
            .map(|(r, s)| (r.as_slice(), s.as_slice()))
            .collect();
        assert_eq!(
            gatekeeper_filter_block_slices(&upper_slices, &config, SimdMode::Lanes),
            gatekeeper_filter_block_slices(&lower_slices, &config, SimdMode::Lanes),
        );
    }
}
