//! Word-level operations on 2-bit packed sequences.
//!
//! The FPGA GateKeeper works on a single arbitrarily wide register (a 100 bp read
//! is one 200-bit value). A GPU — and a CPU — only has machine words, so "an
//! encoded read becomes an array of 7 words. Additionally, logical shift operations
//! produce incorrect bits between array's elements. For correcting these bits, we
//! apply carry-bit transfers" (§3.4). This module implements exactly those
//! primitives on the `u32` word arrays produced by [`gk_seq::PackedSeq`]:
//!
//! * [`shift_right_bases`] / [`shift_left_bases`] — base-granular shifts of the
//!   whole sequence with explicit carry transfer between adjacent words (one shift
//!   and one carry per word per `k`, matching the 2e shift + 2e carry operation
//!   count the paper states);
//! * [`xor_to_base_mask`] — XOR of two packed sequences followed by the per-base
//!   OR reduction, producing the Hamming-style [`BaseMask`].

use crate::bitvec::BaseMask;
use gk_seq::packed::{BASES_PER_WORD, BITS_PER_BASE};

/// Shifts the packed sequence towards *higher* base positions by `bases`
/// (position `i` moves to `i + bases`); vacated leading positions become `A` (00).
///
/// In the word array (sequence starts at the MSB of word 0) this is a logical right
/// shift of the whole bit string by `2·bases` bits, with the bits shifted out of
/// word `w` carried into word `w + 1`.
pub fn shift_right_bases(words: &[u32], bases: usize) -> Vec<u32> {
    let word_shift = bases / BASES_PER_WORD;
    let bit_shift = (bases % BASES_PER_WORD) * BITS_PER_BASE;
    let mut out = vec![0u32; words.len()];
    for i in (0..words.len()).rev() {
        let src = i as isize - word_shift as isize;
        if src < 0 {
            continue;
        }
        let src = src as usize;
        let mut value = if bit_shift == 0 {
            words[src]
        } else {
            words[src] >> bit_shift
        };
        // Carry the low bits of the previous word into the vacated high bits.
        if bit_shift != 0 && src >= 1 {
            value |= words[src - 1] << (32 - bit_shift);
        }
        out[i] = value;
    }
    out
}

/// Shifts the packed sequence towards *lower* base positions by `bases`
/// (position `i` moves to `i - bases`); vacated trailing positions become `A` (00).
pub fn shift_left_bases(words: &[u32], bases: usize) -> Vec<u32> {
    let word_shift = bases / BASES_PER_WORD;
    let bit_shift = (bases % BASES_PER_WORD) * BITS_PER_BASE;
    let mut out = vec![0u32; words.len()];
    for (i, slot) in out.iter_mut().enumerate() {
        let src = i + word_shift;
        if src >= words.len() {
            continue;
        }
        let mut value = if bit_shift == 0 {
            words[src]
        } else {
            words[src] << bit_shift
        };
        // Carry the high bits of the next word into the vacated low bits.
        if bit_shift != 0 && src + 1 < words.len() {
            value |= words[src + 1] >> (32 - bit_shift);
        }
        *slot = value;
    }
    out
}

/// Packs the even-indexed bits of `x` (bits 0, 2, …, 30) into the low 16 bits.
///
/// Standard log-step bit compression: after each round the surviving bits sit
/// twice as densely, so four rounds collapse the 2-bit base stride to 1 bit.
#[inline]
fn compress_even_u32(x: u32) -> u32 {
    let x = x & 0x5555_5555;
    let x = (x | (x >> 1)) & 0x3333_3333;
    let x = (x | (x >> 2)) & 0x0F0F_0F0F;
    let x = (x | (x >> 4)) & 0x00FF_00FF;
    (x | (x >> 8)) & 0x0000_FFFF
}

/// XORs two packed word arrays and reduces each 2-bit base difference to a single
/// mask bit (1 = mismatching base), truncated to `len` bases.
///
/// Word-parallel: each 16-base `u32` is reduced with an OR of its odd/even bit
/// planes and a log-step compression instead of a per-base loop, then the 16-bit
/// chunks are spliced straight into the mask's `u64` backing words. Shifted
/// inputs may carry garbage beyond `len` bases; [`BaseMask::from_words`] clears
/// that padding.
pub fn xor_to_base_mask(a: &[u32], b: &[u32], len: usize) -> BaseMask {
    let words = len.div_ceil(BASES_PER_WORD);
    let mut bits = vec![0u64; len.div_ceil(64)];
    for w in 0..words {
        let xa = a.get(w).copied().unwrap_or(0);
        let xb = b.get(w).copied().unwrap_or(0);
        let diff = xa ^ xb;
        if diff == 0 {
            continue;
        }
        // OR the two bits of every base: bit pair (2s+1, 2s) → one per-base bit
        // at even position 2·(15 − slot) (slot 0 is the MSB pair).
        let per_base = ((diff >> 1) | diff) & 0x5555_5555;
        // Compress even bits: bit j of `chunk` = base (15 − j); reverse to get
        // bit s = base s, matching the mask's LSB-first bit order.
        let chunk = u64::from((compress_even_u32(per_base) as u16).reverse_bits());
        bits[w / 4] |= chunk << (16 * (w % 4));
    }
    BaseMask::from_words(bits, len)
}

/// Per-bit reference for [`xor_to_base_mask`]; kept as the scalar-equivalence
/// oracle for the differential suite and the measured scalar baseline.
pub fn xor_to_base_mask_reference(a: &[u32], b: &[u32], len: usize) -> BaseMask {
    let mut mask = BaseMask::zeros(len);
    let words = len.div_ceil(BASES_PER_WORD);
    for w in 0..words {
        let xa = a.get(w).copied().unwrap_or(0);
        let xb = b.get(w).copied().unwrap_or(0);
        let diff = xa ^ xb;
        if diff == 0 {
            continue;
        }
        let hi = (diff >> 1) & 0x5555_5555;
        let lo = diff & 0x5555_5555;
        let per_base = hi | lo;
        let base_count = (len - w * BASES_PER_WORD).min(BASES_PER_WORD);
        for slot in 0..base_count {
            // Base `slot` of this word sits at bit pair starting at MSB.
            let bit_index = (BASES_PER_WORD - 1 - slot) * BITS_PER_BASE;
            if per_base & (1u32 << bit_index) != 0 {
                mask.set(w * BASES_PER_WORD + slot);
            }
        }
    }
    mask
}

const NIBBLE_HI: u64 = 0x8888_8888_8888_8888;

/// Per-nibble population counts: nibble `i` of the result holds the number of
/// set bits (0..=4) in nibble `i` of `x`.
///
/// This is the first two halvings of the classic SWAR popcount, stopped at
/// nibble granularity — Shouji's four-column windows line up exactly with the
/// sixteen nibbles of a mask word, so one call scores sixteen windows of one
/// diagonal at once.
pub fn nibble_popcounts(x: u64) -> u64 {
    let pairs = x - ((x >> 1) & 0x5555_5555_5555_5555);
    (pairs & 0x3333_3333_3333_3333) + ((pairs >> 2) & 0x3333_3333_3333_3333)
}

/// Per-nibble reference for [`nibble_popcounts`], counting bit by bit.
pub fn nibble_popcounts_reference(x: u64) -> u64 {
    let mut out = 0u64;
    for nibble in 0..16 {
        let count = ((x >> (4 * nibble)) & 0xF).count_ones() as u64;
        out |= count << (4 * nibble);
    }
    out
}

/// Per-nibble minimum of two words whose nibble values are all ≤ 7 (the high
/// bit of every nibble clear — window scores of width ≤ 4 satisfy this).
///
/// Borrow trick: with the high bit pre-set on `a`, the per-nibble subtraction
/// `(a | 8) - b` cannot borrow across nibbles, and its high bit survives
/// exactly where `a ≥ b` — that bit is fanned out to an all-ones nibble mask
/// selecting `b` (else `a`).
pub fn nibble_min(a: u64, b: u64) -> u64 {
    debug_assert!(a & NIBBLE_HI == 0 && b & NIBBLE_HI == 0);
    let ge = ((a | NIBBLE_HI) - b) & NIBBLE_HI;
    let sel = (ge >> 3) * 0xF;
    (b & sel) | (a & !sel)
}

/// Per-nibble reference for [`nibble_min`], comparing nibble by nibble.
pub fn nibble_min_reference(a: u64, b: u64) -> u64 {
    let mut out = 0u64;
    for nibble in 0..16 {
        let na = (a >> (4 * nibble)) & 0xF;
        let nb = (b >> (4 * nibble)) & 0xF;
        out |= na.min(nb) << (4 * nibble);
    }
    out
}

/// Horizontal sum of all sixteen nibbles of `x` (each 0..=15; the total fits
/// a byte, so the byte-fold multiply cannot overflow between lanes).
pub fn sum_nibbles(x: u64) -> u32 {
    let bytes = (x & 0x0F0F_0F0F_0F0F_0F0F) + ((x >> 4) & 0x0F0F_0F0F_0F0F_0F0F);
    (bytes.wrapping_mul(0x0101_0101_0101_0101) >> 56) as u32
}

/// Per-nibble reference for [`sum_nibbles`].
pub fn sum_nibbles_reference(x: u64) -> u32 {
    (0..16)
        .map(|nibble| ((x >> (4 * nibble)) & 0xF) as u32)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_seq::PackedSeq;

    fn packed(seq: &[u8]) -> PackedSeq {
        PackedSeq::from_ascii(seq)
    }

    /// Shifting the packed words right by `k` bases must equal packing the sequence
    /// with `k` leading `A`s (and the tail truncated). Bits shifted into the word
    /// padding beyond the sequence length are irrelevant (every consumer truncates
    /// to `len` bases), so the comparison decodes the first `len` bases.
    #[test]
    fn shift_right_matches_reencoding() {
        let seq = b"ACGTACGTACGTACGTTGCATGCATGCATGCAAACCGGTT"; // 40 bases, 3 words
        let p = packed(seq);
        for k in [0usize, 1, 3, 15, 16, 17, 20, 33] {
            let shifted = shift_right_bases(p.words(), k);
            let mut expected_seq = vec![b'A'; k.min(seq.len())];
            expected_seq.extend_from_slice(&seq[..seq.len() - k.min(seq.len())]);
            let decoded = PackedSeq::from_words(shifted, seq.len()).to_ascii();
            assert_eq!(decoded, expected_seq, "k = {k}");
        }
    }

    /// Shifting left by `k` bases must equal dropping the first `k` bases and
    /// padding the tail with `A`s.
    #[test]
    fn shift_left_matches_reencoding() {
        let seq = b"ACGTACGTACGTACGTTGCATGCATGCATGCAAACCGGTT";
        let p = packed(seq);
        for k in [0usize, 1, 3, 15, 16, 17, 20, 33] {
            let shifted = shift_left_bases(p.words(), k);
            let mut expected_seq = seq[k.min(seq.len())..].to_vec();
            expected_seq.resize(seq.len(), b'A');
            let expected = packed(&expected_seq);
            assert_eq!(shifted, expected.words(), "k = {k}");
        }
    }

    #[test]
    fn shift_by_zero_is_identity() {
        let p = packed(b"ACGTACGTACGTACGTACGT");
        assert_eq!(shift_right_bases(p.words(), 0), p.words());
        assert_eq!(shift_left_bases(p.words(), 0), p.words());
    }

    #[test]
    fn shift_beyond_length_clears_everything() {
        let p = packed(b"ACGTACGT");
        let right = shift_right_bases(p.words(), 100);
        let left = shift_left_bases(p.words(), 100);
        assert!(right.iter().all(|&w| w == 0));
        assert!(left.iter().all(|&w| w == 0));
    }

    #[test]
    fn left_then_right_restores_middle() {
        let seq = b"ACGTACGTACGTACGTTGCATGCATGCATGCA";
        let p = packed(seq);
        let k = 5;
        let round = shift_right_bases(&shift_left_bases(p.words(), k), k);
        // Positions k..len-? should match the original; the first k bases are A-padded.
        let restored = PackedSeq::from_words(round, seq.len());
        let restored_ascii = restored.to_ascii();
        assert_eq!(&restored_ascii[k..seq.len() - k], &seq[k..seq.len() - k]);
    }

    #[test]
    fn xor_mask_marks_exactly_the_mismatching_bases() {
        let a = packed(b"ACGTACGTACGTACGTACGTA");
        let b = packed(b"ACGTACGAACGTACGTACGTC");
        let mask = xor_to_base_mask(a.words(), b.words(), 21);
        let expected: Vec<bool> = (0..21).map(|i| i == 7 || i == 20).collect();
        assert_eq!(mask, BaseMask::from_bools(expected));
    }

    #[test]
    fn xor_mask_of_identical_sequences_is_zero() {
        let a = packed(b"TTTTGGGGCCCCAAAATTTTGGGG");
        let mask = xor_to_base_mask(a.words(), a.words(), 24);
        assert_eq!(mask.count_ones(), 0);
    }

    #[test]
    fn xor_mask_counts_match_hamming_distance() {
        let a = packed(b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT");
        let b = packed(b"ACGAACGTACGTACCTACGTACGTAAGTACGTACGTACGA");
        let mask = xor_to_base_mask(a.words(), b.words(), 40);
        assert_eq!(Some(mask.count_ones()), a.hamming_distance(&b));
    }

    #[test]
    fn nibble_popcounts_match_reference_on_structured_and_random_words() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        for x in [0u64, u64::MAX, 0x8000_0000_0000_0001, 0xF0F0_F0F0_F0F0_F0F0] {
            assert_eq!(nibble_popcounts(x), nibble_popcounts_reference(x), "{x:#x}");
        }
        for _ in 0..10_000 {
            let x: u64 = rng.gen();
            assert_eq!(nibble_popcounts(x), nibble_popcounts_reference(x), "{x:#x}");
        }
    }

    #[test]
    fn nibble_min_matches_reference_for_all_in_range_nibble_values() {
        // Exhaustive over one nibble pair (the lanes are independent).
        for a in 0u64..8 {
            for b in 0u64..8 {
                assert_eq!(nibble_min(a, b), a.min(b), "a = {a}, b = {b}");
            }
        }
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..10_000 {
            // Random words with every nibble ≤ 7 (the documented precondition).
            let a: u64 = rng.gen::<u64>() & !NIBBLE_HI;
            let b: u64 = rng.gen::<u64>() & !NIBBLE_HI;
            assert_eq!(
                nibble_min(a, b),
                nibble_min_reference(a, b),
                "{a:#x} {b:#x}"
            );
        }
    }

    #[test]
    fn sum_nibbles_matches_reference_including_saturated_words() {
        assert_eq!(sum_nibbles(0), 0);
        assert_eq!(sum_nibbles(u64::MAX), 16 * 15);
        assert_eq!(sum_nibbles(0x1111_1111_1111_1111), 16);
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10_000 {
            let x: u64 = rng.gen();
            assert_eq!(sum_nibbles(x), sum_nibbles_reference(x), "{x:#x}");
        }
    }

    #[test]
    fn xor_mask_handles_word_boundary_mismatches() {
        // Mismatches at positions 15, 16 (boundary between word 0 and 1) and 31, 32.
        let mut seq_b = b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT".to_vec();
        for &pos in &[15usize, 16, 31, 32] {
            seq_b[pos] = if seq_b[pos] == b'A' { b'C' } else { b'A' };
        }
        let a = packed(b"ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT");
        let b = packed(&seq_b);
        let mask = xor_to_base_mask(a.words(), b.words(), 40);
        for pos in 0..40 {
            assert_eq!(mask.get(pos), [15, 16, 31, 32].contains(&pos), "pos {pos}");
        }
    }
}
