//! MAGNET pre-alignment filter (Alser, Mutlu, Alkan 2017).
//!
//! MAGNET was designed to fix the two accuracy problems of SHD/GateKeeper that the
//! GateKeeper-GPU paper recounts (§2.3): ignoring leading/trailing zeros and
//! counting a streak of consecutive 1s as a single edit. Instead of AND-combining
//! the masks, MAGNET *extracts* non-overlapping exact-matching segments:
//!
//! 1. build the same `2e + 1` Hamming/shifted masks as SHD (no amendment);
//! 2. repeatedly take the longest run of 0s across all masks inside the remaining
//!    search intervals — each extraction is one exactly matching segment of a
//!    candidate alignment, and the position next to each side of the segment is
//!    consumed as a divider (one edit);
//! 3. after at most `e + 1` extractions, every base that is not covered by an
//!    extracted segment counts towards the edit estimate.
//!
//! The resulting count is much closer to the true edit distance (two orders of
//! magnitude fewer false accepts than SHD), at the cost of occasionally
//! *over*-estimating — MAGNET is the one baseline that produces false rejects, a
//! behaviour the paper points out in §5.1.2 and which the accuracy harness here
//! reproduces.

use crate::bitvec::BaseMask;
use crate::traits::{FilterDecision, PreAlignmentFilter};
use crate::words::{shift_left_bases, shift_right_bases, xor_to_base_mask};
use gk_seq::PackedSeq;

/// The MAGNET pre-alignment filter.
#[derive(Debug, Clone)]
pub struct MagnetFilter {
    threshold: u32,
}

impl MagnetFilter {
    /// Creates a MAGNET filter for error threshold `e`.
    pub fn new(threshold: u32) -> MagnetFilter {
        MagnetFilter { threshold }
    }

    fn build_masks(read: &PackedSeq, reference: &PackedSeq, e: u32, len: usize) -> Vec<BaseMask> {
        let mut masks = Vec::with_capacity(2 * e as usize + 1);
        masks.push(xor_to_base_mask(read.words(), reference.words(), len));
        for k in 1..=e as usize {
            let shifted = shift_right_bases(read.words(), k);
            let mut del_mask = xor_to_base_mask(&shifted, reference.words(), len);
            // MAGNET explicitly pads the vacated positions with 1s (this is the very
            // behaviour GateKeeper-GPU later adopted).
            del_mask.set_range(0, k.min(len));
            masks.push(del_mask);

            let shifted = shift_left_bases(read.words(), k);
            let mut ins_mask = xor_to_base_mask(&shifted, reference.words(), len);
            ins_mask.set_range(len.saturating_sub(k), len);
            masks.push(ins_mask);
        }
        masks
    }

    /// Greedy divide-and-conquer extraction of the longest zero runs.
    fn estimate_edits(masks: &[BaseMask], len: usize, e: u32) -> u32 {
        // Intervals still to be covered, as half-open [start, end).
        let mut intervals: Vec<(usize, usize)> = vec![(0, len)];
        let mut covered = 0usize;

        for _ in 0..=e {
            // Find the longest zero run over all masks inside any pending interval.
            let mut best: Option<(usize, usize, usize)> = None; // (interval idx, start, len)
            for (idx, &(start, end)) in intervals.iter().enumerate() {
                if start >= end {
                    continue;
                }
                for mask in masks {
                    if let Some((run_start, run_len)) = mask.longest_zero_run_in(start, end) {
                        if best.map(|(_, _, l)| run_len > l).unwrap_or(true) {
                            best = Some((idx, run_start, run_len));
                        }
                    }
                }
            }
            let Some((idx, run_start, run_len)) = best else {
                break;
            };
            if run_len == 0 {
                break;
            }
            covered += run_len;
            let (ivl_start, ivl_end) = intervals[idx];
            // Split the interval, consuming one divider position on each side of the
            // extracted segment.
            intervals.swap_remove(idx);
            if run_start > ivl_start {
                intervals.push((ivl_start, run_start.saturating_sub(1)));
            }
            if run_start + run_len < ivl_end {
                intervals.push(((run_start + run_len + 1).min(ivl_end), ivl_end));
            }
        }

        (len - covered.min(len)) as u32
    }
}

impl PreAlignmentFilter for MagnetFilter {
    fn name(&self) -> &str {
        "MAGNET"
    }

    fn threshold(&self) -> u32 {
        self.threshold
    }

    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision {
        let read_packed = PackedSeq::from_ascii(read);
        let ref_packed = PackedSeq::from_ascii(reference);
        let len = read_packed.len().min(ref_packed.len());
        if len == 0 {
            return FilterDecision::accept(0);
        }
        let e = self.threshold;
        if e == 0 {
            let mask = xor_to_base_mask(read_packed.words(), ref_packed.words(), len);
            let ones = mask.count_ones();
            return if ones == 0 {
                FilterDecision::accept(0)
            } else {
                FilterDecision::reject(ones)
            };
        }
        let masks = Self::build_masks(&read_packed, &ref_packed, e, len);
        let edits = Self::estimate_edits(&masks, len, e);
        if edits <= e {
            FilterDecision::accept(edits)
        } else {
            FilterDecision::reject(edits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gatekeeper::GateKeeperGpuFilter;
    use gk_align::edit_distance;
    use gk_seq::simulate::mutate_with_edits;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, rng: &mut StdRng) -> Vec<u8> {
        (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
    }

    #[test]
    fn exact_match_is_accepted() {
        let seq: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        for e in [0u32, 2, 5] {
            let d = MagnetFilter::new(e).filter_pair(&seq, &seq);
            assert!(d.accepted);
            assert_eq!(d.estimated_edits, 0);
        }
    }

    #[test]
    fn well_separated_substitutions_are_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        let reference = random_seq(100, &mut rng);
        let mut read = reference.clone();
        for &pos in &[20usize, 60] {
            read[pos] = match read[pos] {
                b'A' => b'C',
                _ => b'A',
            };
        }
        assert!(MagnetFilter::new(2).filter_pair(&read, &reference).accepted);
    }

    #[test]
    fn dissimilar_pair_is_rejected() {
        let a = vec![b'A'; 100];
        let b = vec![b'T'; 100];
        assert!(!MagnetFilter::new(5).filter_pair(&a, &b).accepted);
    }

    #[test]
    fn magnet_is_more_accurate_than_gatekeeper_on_divergent_pairs() {
        // MAGNET's extraction counts edits more faithfully, so over a divergent
        // population it accepts no more pairs than GateKeeper-GPU.
        let mut rng = StdRng::seed_from_u64(2);
        let e = 5u32;
        let magnet = MagnetFilter::new(e);
        let gk = GateKeeperGpuFilter::new(e);
        let mut magnet_accepts = 0;
        let mut gk_accepts = 0;
        for _ in 0..300 {
            let reference = random_seq(100, &mut rng);
            let edits = rng.gen_range(6usize..20);
            let read = mutate_with_edits(&reference, edits, 0.3, &mut rng);
            if edit_distance(&read, &reference) <= e {
                continue; // only count genuinely dissimilar pairs
            }
            if magnet.filter_pair(&read, &reference).accepted {
                magnet_accepts += 1;
            }
            if gk.filter_pair(&read, &reference).accepted {
                gk_accepts += 1;
            }
        }
        assert!(
            magnet_accepts <= gk_accepts,
            "MAGNET accepted {magnet_accepts}, GateKeeper-GPU accepted {gk_accepts}"
        );
    }

    #[test]
    fn estimate_never_exceeds_read_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_seq(150, &mut rng);
        let b = random_seq(150, &mut rng);
        let d = MagnetFilter::new(10).filter_pair(&a, &b);
        assert!(d.estimated_edits <= 150);
    }

    #[test]
    fn empty_pair_is_accepted() {
        assert!(MagnetFilter::new(3).filter_pair(b"", b"").accepted);
    }

    #[test]
    fn metadata() {
        let f = MagnetFilter::new(7);
        assert_eq!(f.name(), "MAGNET");
        assert_eq!(f.threshold(), 7);
    }
}
