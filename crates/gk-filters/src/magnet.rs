//! MAGNET pre-alignment filter (Alser, Mutlu, Alkan 2017).
//!
//! MAGNET was designed to fix the two accuracy problems of SHD/GateKeeper that the
//! GateKeeper-GPU paper recounts (§2.3): ignoring leading/trailing zeros and
//! counting a streak of consecutive 1s as a single edit. Instead of AND-combining
//! the masks, MAGNET *extracts* non-overlapping exact-matching segments:
//!
//! 1. build the same `2e + 1` Hamming/shifted masks as SHD (no amendment);
//! 2. repeatedly take the longest run of 0s across all masks inside the remaining
//!    search intervals — each extraction is one exactly matching segment of a
//!    candidate alignment, and the position next to each side of the segment is
//!    consumed as a divider (one edit);
//! 3. after at most `e + 1` extractions, every base that is not covered by an
//!    extracted segment counts towards the edit estimate.
//!
//! The resulting count is much closer to the true edit distance (two orders of
//! magnitude fewer false accepts than SHD), at the cost of occasionally
//! *over*-estimating — MAGNET is the one baseline that produces false rejects, a
//! behaviour the paper points out in §5.1.2 and which the accuracy harness here
//! reproduces.

use crate::bitvec::{zero_runs_in_words, BaseMask};
use crate::simd::{
    build_mask_rows, filter_block_slices_with, lane_alphabet, lane_words, set_range_rows, shl_rows,
    shr_rows, LaneMask, LaneRow, SimdMode, LANE_BLOCK_PAIRS, WORD_BITS,
};
use crate::traits::{FilterDecision, PreAlignmentFilter};
use crate::words::{
    shift_left_bases, shift_right_bases, xor_to_base_mask, xor_to_base_mask_reference,
};
use gk_seq::pairs::{SequencePair, SoaGroup, SOA_LANES};
use gk_seq::PackedSeq;
use rayon::prelude::*;
use std::collections::BinaryHeap;

/// The MAGNET pre-alignment filter.
#[derive(Debug, Clone)]
pub struct MagnetFilter {
    threshold: u32,
    simd: SimdMode,
}

impl MagnetFilter {
    /// Creates a MAGNET filter for error threshold `e`. The SIMD mode is
    /// resolved against `GK_SIMD` once, here — not per batch.
    pub fn new(threshold: u32) -> MagnetFilter {
        MagnetFilter {
            threshold,
            simd: SimdMode::Auto.resolve(),
        }
    }

    /// Selects the SIMD mode for `filter_batch` (resolved immediately; `Auto`
    /// consults `GK_SIMD` now, not on the hot path). Decisions are
    /// byte-identical across modes; only throughput changes.
    pub fn with_simd_mode(mut self, simd: SimdMode) -> MagnetFilter {
        self.simd = simd.resolve();
        self
    }

    /// The resolved SIMD mode this instance runs batches with.
    pub fn simd_mode(&self) -> SimdMode {
        self.simd
    }

    fn build_masks(
        read: &PackedSeq,
        reference: &PackedSeq,
        e: u32,
        len: usize,
        use_reference: bool,
    ) -> Vec<BaseMask> {
        let xor = if use_reference {
            xor_to_base_mask_reference
        } else {
            xor_to_base_mask
        };
        // Same shift clamp as the GateKeeper kernel: a shift by `k ≥ len`
        // vacates every position and MAGNET pads vacated positions with 1s, so
        // those masks are all 1s and contribute no zero runs — building them
        // only made mask count and allocation proportional to `e`, which for
        // huge thresholds aborted on allocation.
        let max_shift = (e as usize).min(len.saturating_sub(1));
        let mut masks = Vec::with_capacity(2 * max_shift + 1);
        masks.push(xor(read.words(), reference.words(), len));
        for k in 1..=max_shift {
            let shifted = shift_right_bases(read.words(), k);
            let mut del_mask = xor(&shifted, reference.words(), len);
            // MAGNET explicitly pads the vacated positions with 1s (this is the very
            // behaviour GateKeeper-GPU later adopted).
            del_mask.set_range(0, k.min(len));
            masks.push(del_mask);

            let shifted = shift_left_bases(read.words(), k);
            let mut ins_mask = xor(&shifted, reference.words(), len);
            ins_mask.set_range(len.saturating_sub(k), len);
            masks.push(ins_mask);
        }
        masks
    }

    /// Greedy divide-and-conquer extraction of the longest zero runs, as a
    /// pure function of `masks` via [`Extraction`] (kept as a mask-level entry
    /// point for the extraction regression tests; the production paths go
    /// through [`magnet_pair_decision`] / [`magnet_kernel_x4`]).
    #[cfg(test)]
    fn estimate_edits(masks: &[BaseMask], len: usize, e: u32) -> u32 {
        Self::estimate_edits_with(len, e, |start, end| best_mask_run(masks, start, end, false))
    }

    /// The extraction loop over an abstract run finder: `best_run(start, end)`
    /// returns the longest (leftmost on ties) zero run across all masks inside
    /// `[start, end)`. Shared by the word-at-a-time scalar path, its per-bit
    /// reference twin and (per lane) the SoA kernel.
    fn estimate_edits_with<F>(len: usize, e: u32, mut best_run: F) -> u32
    where
        F: FnMut(usize, usize) -> Option<(usize, usize)>,
    {
        let mut extraction = Extraction::new(len, &mut best_run);
        // At most e + 1 extractions; each covers ≥ 1 position, so len + 1
        // rounds is a ceiling that keeps huge thresholds from looping.
        let rounds = (e as usize).saturating_add(1).min(len + 1);
        for _ in 0..rounds {
            if !extraction.step(&mut best_run) {
                break;
            }
        }
        extraction.edits(len)
    }
}

/// The longest (leftmost on ties) zero run across all masks inside
/// `[start, end)`.
fn best_mask_run(
    masks: &[BaseMask],
    start: usize,
    end: usize,
    use_reference: bool,
) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize)> = None;
    for mask in masks {
        let run = if use_reference {
            mask.longest_zero_run_in_reference(start, end)
        } else {
            mask.longest_zero_run_in(start, end)
        };
        if let Some((run_start, run_len)) = run {
            let better = match best {
                None => true,
                Some((best_start, best_len)) => {
                    run_len > best_len || (run_len == best_len && run_start < best_start)
                }
            };
            if better {
                best = Some((run_start, run_len));
            }
        }
    }
    best
}

/// One lane's extraction state for the SoA kernel, driven by the lane's
/// precollected zero-run list instead of per-interval mask rescans: a lazy
/// max-heap of `(length, leftmost start)` run pieces plus the list of pending
/// (not yet extracted) intervals the pieces are clipped against.
///
/// Equivalence with the per-interval rescan of [`Extraction`]: every candidate
/// the rescan considers is a maximal mask run clipped to a pending interval,
/// and clipping only ever *shrinks* a piece. The heap therefore holds
/// over-approximations — when a popped piece still lies wholly inside a
/// pending interval its key is exact and, being the heap maximum, it is the
/// global (longest, then leftmost) clipped run the rescan would have picked;
/// when it does not, its true pieces are re-clipped, pushed back and the pop
/// repeats. Same candidates, same `(len, start)` order, same extraction.
struct RunHeap {
    /// Max-heap over single-`u64` piece keys: length in the high half, the
    /// bitwise-inverted start in the low half, so the natural `u64` order is
    /// (longest, then leftmost) with one branchless compare.
    heap: BinaryHeap<u64>,
    /// Pending intervals, half-open, position-ordered, non-overlapping.
    pending: Vec<(u32, u32)>,
    covered: usize,
}

/// Packs a `(start, len)` run piece into its heap key.
#[inline]
fn piece_key(start: u32, len: u32) -> u64 {
    (u64::from(len) << 32) | u64::from(!start)
}

impl RunHeap {
    fn new(runs: &[(u32, u32)], len: usize) -> RunHeap {
        RunHeap {
            heap: runs.iter().map(|&(s, l)| piece_key(s, l)).collect(),
            pending: vec![(0, len as u32)],
            covered: 0,
        }
    }

    /// One extraction round; returns `false` — retire this lane — once no run
    /// piece overlaps any pending interval.
    fn step(&mut self) -> bool {
        while let Some(key) = self.heap.pop() {
            let (l, s) = ((key >> 32) as u32, !(key as u32));
            let end = s + l;
            let mut extracted = false;
            for idx in 0..self.pending.len() {
                let (ps, pe) = self.pending[idx];
                if pe <= s {
                    continue;
                }
                if ps >= end {
                    break;
                }
                if ps <= s && end <= pe {
                    // Wholly inside a pending interval — nothing extracted so
                    // far touched it, so its key is exact: extract it, consume
                    // a divider position on each side (a run abutting the
                    // interval boundary consumes no divider there) and keep
                    // the non-empty remainders pending.
                    self.covered += l as usize;
                    let left = (s > ps + 1).then(|| (ps, s - 1));
                    let right = (end + 1 < pe).then(|| (end + 1, pe));
                    match (left, right) {
                        (Some(a), Some(b)) => {
                            self.pending[idx] = a;
                            self.pending.insert(idx + 1, b);
                        }
                        (Some(a), None) => self.pending[idx] = a,
                        (None, Some(b)) => self.pending[idx] = b,
                        (None, None) => {
                            self.pending.remove(idx);
                        }
                    }
                    extracted = true;
                    break;
                }
                // Stale piece: re-clip against this interval and push the
                // surviving (strictly shorter) piece back.
                let cs = s.max(ps);
                let ce = end.min(pe);
                if ce > cs {
                    self.heap.push(piece_key(cs, ce - cs));
                }
            }
            if extracted {
                return true;
            }
        }
        false
    }

    fn edits(&self, len: usize) -> u32 {
        (len - self.covered.min(len)) as u32
    }
}

/// One pending search interval of the extraction loop, with its best zero run
/// memoized: the masks never change, so an interval's best run is computed
/// once — when the interval is created — and each round only rescans the ≤ 2
/// remainder sub-intervals the extraction carves out.
struct Interval {
    start: usize,
    end: usize,
    best: Option<(usize, usize)>,
}

/// One sequence's extraction state (pending intervals in position order plus
/// the covered-position count). The scalar path drives one of these to
/// completion; the lane kernel steps four of them round-major, retiring
/// finished lanes from a [`LaneMask`] while the group keeps stepping.
///
/// Ties between equal-length runs are broken towards the **leftmost** start
/// position, and the pending intervals are kept in position order, so the
/// extraction sequence is a pure function of the masks. (An earlier version
/// `swap_remove`d intervals and kept the first equal-length run in scan
/// order, which made tie-breaking depend on the extraction history: the
/// dividers consumed beside an arbitrarily chosen run could eat neighbouring
/// runs another order would have extracted, shifting the final count in
/// either direction.) The memoized per-interval bests preserve that order:
/// intervals are disjoint, so per-interval bests have distinct starts and the
/// global (longest, then leftmost) pick is the same run a flat rescan of
/// every interval would select.
struct Extraction {
    intervals: Vec<Interval>,
    covered: usize,
}

impl Extraction {
    fn new<F>(len: usize, best_run: &mut F) -> Extraction
    where
        F: FnMut(usize, usize) -> Option<(usize, usize)>,
    {
        Extraction {
            intervals: vec![Interval {
                start: 0,
                end: len,
                best: best_run(0, len),
            }],
            covered: 0,
        }
    }

    /// One extraction round: takes the globally best memoized run, consumes a
    /// divider position on each side (a run abutting an interval boundary
    /// consumes no divider there) and replaces the interval with the
    /// non-empty remainders. Returns `false` — retire this lane — once no
    /// zero run is left anywhere.
    fn step<F>(&mut self, best_run: &mut F) -> bool
    where
        F: FnMut(usize, usize) -> Option<(usize, usize)>,
    {
        let mut best: Option<(usize, usize, usize)> = None; // (interval idx, start, len)
        for (idx, interval) in self.intervals.iter().enumerate() {
            if let Some((run_start, run_len)) = interval.best {
                let better = match best {
                    None => true,
                    Some((_, best_start, best_len)) => {
                        run_len > best_len || (run_len == best_len && run_start < best_start)
                    }
                };
                if better {
                    best = Some((idx, run_start, run_len));
                }
            }
        }
        let Some((idx, run_start, run_len)) = best else {
            return false;
        };
        self.covered += run_len;
        let (ivl_start, ivl_end) = (self.intervals[idx].start, self.intervals[idx].end);
        let mut remainders: Vec<Interval> = Vec::with_capacity(2);
        if run_start > ivl_start + 1 {
            remainders.push(Interval {
                start: ivl_start,
                end: run_start - 1,
                best: best_run(ivl_start, run_start - 1),
            });
        }
        let run_end = run_start + run_len;
        if run_end + 1 < ivl_end {
            remainders.push(Interval {
                start: run_end + 1,
                end: ivl_end,
                best: best_run(run_end + 1, ivl_end),
            });
        }
        self.intervals.splice(idx..=idx, remainders);
        true
    }

    fn edits(&self, len: usize) -> u32 {
        (len - self.covered.min(len)) as u32
    }
}

/// Decision for one pair on the per-sequence path; `use_reference` selects
/// the per-bit primitive twins for every mask build and run scan (the scalar
/// differential leg).
pub fn magnet_pair_decision(
    read: &[u8],
    reference: &[u8],
    e: u32,
    use_reference: bool,
) -> FilterDecision {
    let read_packed = PackedSeq::from_ascii(read);
    let ref_packed = PackedSeq::from_ascii(reference);
    let len = read_packed.len().min(ref_packed.len());
    if len == 0 {
        return FilterDecision::accept(0);
    }
    if e == 0 {
        let mask = if use_reference {
            xor_to_base_mask_reference(read_packed.words(), ref_packed.words(), len)
        } else {
            xor_to_base_mask(read_packed.words(), ref_packed.words(), len)
        };
        let ones = mask.count_ones();
        return if ones == 0 {
            FilterDecision::accept(0)
        } else {
            FilterDecision::reject(ones)
        };
    }
    let masks = MagnetFilter::build_masks(&read_packed, &ref_packed, e, len, use_reference);
    let edits = MagnetFilter::estimate_edits_with(len, e, |start, end| {
        best_mask_run(&masks, start, end, use_reference)
    });
    if edits <= e {
        FilterDecision::accept(edits)
    } else {
        FilterDecision::reject(edits)
    }
}

/// Per-bit reference twin of [`magnet_kernel_x4`] (and of the widened
/// per-pair path): [`magnet_pair_decision`] with every word-parallel
/// primitive swapped for its scalar `_reference` twin — reference XOR mask
/// build, per-bit run scans, per-bit extraction probes. Decisions are
/// byte-identical to the lane kernel; only throughput differs. This is the
/// function the differential property suite pins the lane kernel against,
/// and the `kernel-twin` invariant in `gk-analyze` checks it stays that way.
pub fn magnet_pair_decision_reference(read: &[u8], reference: &[u8], e: u32) -> FilterDecision {
    magnet_pair_decision(read, reference, e, true)
}

/// Runs MAGNET on all lanes of a struct-of-arrays group at once. Decisions of
/// inactive lanes (`lane >= group.lanes`) are meaningless.
///
/// The `2·min(e, len−1) + 1` masks are built lane-parallel with the same row
/// primitives as the GateKeeper kernel. The extraction loop is where MAGNET
/// diverges from GateKeeper's uniform algebra: each lane extracts different
/// runs at different positions, so the epilogue steps all four per-lane
/// extraction states round-major and retires lanes that run out of zero runs from a
/// [`LaneMask`] while the group keeps stepping — the bookkeeping a real GPU
/// warp needs for the same loop.
pub fn magnet_kernel_x4(group: &SoaGroup, e: u32) -> [FilterDecision; SOA_LANES] {
    let len = group.len;
    debug_assert!(len > 0, "SoaGroup guarantees a nonzero length");
    let mask_rows = len.div_ceil(WORD_BITS);

    let mut hamming = vec![[0u64; SOA_LANES]; mask_rows];
    build_mask_rows(&group.read_words, &group.ref_words, len, &mut hamming);

    let mut out = [FilterDecision::accept(0); SOA_LANES];

    if e == 0 {
        let mut words: Vec<u64> = Vec::with_capacity(mask_rows);
        for (lane, decision) in out.iter_mut().enumerate().take(group.lanes) {
            lane_words(&hamming, lane, &mut words);
            let ones: u32 = words.iter().map(|w| w.count_ones()).sum();
            *decision = if ones == 0 {
                FilterDecision::accept(0)
            } else {
                FilterDecision::reject(ones)
            };
        }
        return out;
    }

    // Same shift clamp as the scalar path: shifts ≥ len yield all-ones masks
    // with no zero runs to extract.
    let max_shift = (e as usize).min(len - 1);
    let mut masks: Vec<Vec<LaneRow>> = Vec::with_capacity(2 * max_shift + 1);
    masks.push(hamming);
    let mut shifted = vec![[0u64; SOA_LANES]; group.read_words.len()];
    for k in 1..=max_shift {
        // Deletion mask: read shifted towards higher positions by k bases;
        // MAGNET pads the k vacated positions with 1s.
        let mut del = vec![[0u64; SOA_LANES]; mask_rows];
        shl_rows(&group.read_words, 2 * k, &mut shifted);
        build_mask_rows(&shifted, &group.ref_words, len, &mut del);
        set_range_rows(&mut del, len, 0, k);
        masks.push(del);

        // Insertion mask: read shifted towards lower positions by k bases.
        let mut ins = vec![[0u64; SOA_LANES]; mask_rows];
        shr_rows(&group.read_words, 2 * k, &mut shifted);
        build_mask_rows(&shifted, &group.ref_words, len, &mut ins);
        set_range_rows(&mut ins, len, len - k, len);
        masks.push(ins);
    }

    // Collect every mask's zero runs once per lane (flat list + bounds, so
    // the whole group costs three allocations). The extraction loop re-queries
    // nearly the whole read every round, so answering queries from run lists
    // beats re-walking mask bits per sub-interval by a wide margin.
    // A maximal zero run needs a 1 after it, so a mask of `len` bits holds at
    // most `(len + 1) / 2` runs; reserving that up front keeps the flat list
    // from regrowing (and re-copying) while it fills.
    let mut runs: Vec<(u32, u32)> = Vec::with_capacity(group.lanes * masks.len() * (len + 1) / 2);
    let mut bounds: Vec<usize> = Vec::with_capacity(group.lanes + 1);
    bounds.push(0);
    let mut words: Vec<u64> = Vec::with_capacity(mask_rows);
    for lane in 0..group.lanes {
        for mask in &masks {
            lane_words(mask, lane, &mut words);
            zero_runs_in_words(&words, len, &mut runs);
        }
        bounds.push(runs.len());
    }

    let rounds = (e as usize).saturating_add(1).min(len + 1);
    let mut active = LaneMask::active(group.lanes);
    let mut states: Vec<RunHeap> = (0..group.lanes)
        .map(|lane| RunHeap::new(&runs[bounds[lane]..bounds[lane + 1]], len))
        .collect();
    for _ in 0..rounds {
        if !active.any() {
            break;
        }
        for (lane, state) in states.iter_mut().enumerate() {
            if !active.is_active(lane) {
                continue;
            }
            if !state.step() {
                active.retire(lane);
            }
        }
    }

    for (lane, state) in states.iter().enumerate() {
        let edits = state.edits(len);
        out[lane] = if edits <= e {
            FilterDecision::accept(edits)
        } else {
            FilterDecision::reject(edits)
        };
    }
    out
}

/// Filters a block of raw ASCII pairs through MAGNET, lane-parallel where
/// possible. In lane mode, consecutive runs of lane-eligible pairs (defined
/// bases, equal nonzero lengths) are transposed into [`SoaGroup`]s and run
/// through [`magnet_kernel_x4`]; everything else falls back to the
/// word-at-a-time per-pair path. In scalar mode every pair runs the per-bit
/// reference primitives. Output order matches input order.
pub fn magnet_filter_block_slices(
    pairs: &[(&[u8], &[u8])],
    threshold: u32,
    mode: SimdMode,
) -> Vec<FilterDecision> {
    filter_block_slices_with(
        pairs,
        mode,
        |read, reference| lane_alphabet(read) && lane_alphabet(reference),
        |group| magnet_kernel_x4(group, threshold),
        |read, reference| magnet_pair_decision(read, reference, threshold, false),
        |read, reference| magnet_pair_decision(read, reference, threshold, true),
    )
}

/// [`magnet_filter_block_slices`] over owned [`SequencePair`]s.
pub fn magnet_filter_block(
    pairs: &[SequencePair],
    threshold: u32,
    mode: SimdMode,
) -> Vec<FilterDecision> {
    let slices: Vec<(&[u8], &[u8])> = pairs
        .iter()
        .map(|p| (p.read.as_slice(), p.reference.as_slice()))
        .collect();
    magnet_filter_block_slices(&slices, threshold, mode)
}

impl PreAlignmentFilter for MagnetFilter {
    fn name(&self) -> &str {
        "MAGNET"
    }

    fn threshold(&self) -> u32 {
        self.threshold
    }

    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision {
        magnet_pair_decision(read, reference, self.threshold, false)
    }

    fn filter_batch(&self, pairs: &[SequencePair]) -> Vec<FilterDecision> {
        pairs
            .par_chunks(LANE_BLOCK_PAIRS)
            .flat_map(|block| magnet_filter_block(block, self.threshold, self.simd))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gatekeeper::GateKeeperGpuFilter;
    use gk_align::edit_distance;
    use gk_seq::simulate::mutate_with_edits;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, rng: &mut StdRng) -> Vec<u8> {
        (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
    }

    /// The kernel's heap-driven extraction over collected run lists must
    /// produce exactly the edits the interval-rescan [`Extraction`] produces
    /// over the same masks — including the leftmost tie-break and the
    /// divider-at-boundary cases (the lazy re-clipping invariant in the
    /// [`RunHeap`] docs, checked mask-for-mask on random inputs).
    #[test]
    fn heap_extraction_matches_interval_rescan_extraction() {
        let mut rng = StdRng::seed_from_u64(26);
        for case in 0..5_000 {
            let len = rng.gen_range(1usize..60);
            let e = rng.gen_range(0u32..8);
            let mask_count = rng.gen_range(1usize..4);
            let masks: Vec<BaseMask> = (0..mask_count)
                .map(|_| BaseMask::from_bools((0..len).map(|_| rng.gen_bool(0.4))))
                .collect();
            let expected = MagnetFilter::estimate_edits(&masks, len, e);
            let mut runs = Vec::new();
            for mask in &masks {
                zero_runs_in_words(mask.words(), len, &mut runs);
            }
            let mut heap = RunHeap::new(&runs, len);
            let rounds = (e as usize).saturating_add(1).min(len + 1);
            for _ in 0..rounds {
                if !heap.step() {
                    break;
                }
            }
            assert_eq!(
                heap.edits(len),
                expected,
                "case {case}: len {len}, e {e}, masks {masks:?}"
            );
        }
    }

    /// Spec-faithful brute-force reference for the extraction loop:
    /// repeatedly take the longest zero run across all masks inside any
    /// pending interval (leftmost on ties), consume one divider position on
    /// each side, for at most `e + 1` extractions; every uncovered base is one
    /// estimated edit. Written with naive per-position scans and re-sorted
    /// interval lists so it shares no run-finding or bookkeeping code with the
    /// implementation under test.
    fn reference_estimate(masks: &[BaseMask], len: usize, e: u32) -> u32 {
        let mut intervals: Vec<(usize, usize)> = vec![(0, len)];
        let mut covered = 0usize;
        let rounds = (e as usize).saturating_add(1).min(len + 1);
        for _ in 0..rounds {
            let mut best: Option<(usize, usize, usize)> = None; // (ivl idx, start, len)
            for (idx, &(start, end)) in intervals.iter().enumerate() {
                if start >= end {
                    continue;
                }
                for mask in masks {
                    let mut i = start;
                    while i < end {
                        if !mask.get(i) {
                            let run_start = i;
                            while i < end && !mask.get(i) {
                                i += 1;
                            }
                            let run_len = i - run_start;
                            let better = match best {
                                None => true,
                                Some((_, best_start, best_len)) => {
                                    run_len > best_len
                                        || (run_len == best_len && run_start < best_start)
                                }
                            };
                            if better {
                                best = Some((idx, run_start, run_len));
                            }
                        } else {
                            i += 1;
                        }
                    }
                }
            }
            let Some((idx, run_start, run_len)) = best else {
                break;
            };
            covered += run_len;
            let (ivl_start, ivl_end) = intervals[idx];
            intervals.remove(idx);
            if run_start > ivl_start {
                intervals.push((ivl_start, run_start - 1));
            }
            if run_start + run_len < ivl_end {
                intervals.push(((run_start + run_len + 1).min(ivl_end), ivl_end));
            }
            intervals.sort_unstable();
        }
        (len - covered.min(len)) as u32
    }

    /// Regression (tie-breaking): with masks `1111101` and `1011010` the three
    /// single-position runs of the second mask can all be extracted, but the
    /// pre-fix scan-order tie-break picked the first mask's run at position 5
    /// first — its dividers at 4 and 6 then destroyed two of them, yielding 5
    /// instead of 4. Found by the randomized cross-check below.
    #[test]
    fn tie_breaking_is_leftmost_not_scan_order() {
        let m1 = BaseMask::from_bools([true, true, true, true, true, false, true]);
        let m2 = BaseMask::from_bools([true, false, true, true, false, true, false]);
        let masks = vec![m1, m2];
        assert_eq!(MagnetFilter::estimate_edits(&masks, 7, 5), 4);
        assert_eq!(reference_estimate(&masks, 7, 5), 4);
    }

    /// Regression: a run starting one position into the interval
    /// (`run_start == ivl_start + 1`) leaves no coverable space to its left —
    /// the single leading position is the consumed divider and counts as one
    /// edit, no more and no less.
    #[test]
    fn run_one_past_interval_start_consumes_exactly_one_divider() {
        // 1 0 0 0 0 1 1: run (1,4); position 0 is the divider; 5 and 6 stay 1.
        let mask = BaseMask::from_bools([true, false, false, false, false, true, true]);
        let masks = vec![mask];
        for e in [1u32, 3, 10] {
            assert_eq!(MagnetFilter::estimate_edits(&masks, 7, e), 3, "e = {e}");
            assert_eq!(reference_estimate(&masks, 7, e), 3, "e = {e}");
        }
    }

    /// Regression: a run ending exactly at the interval end consumes no
    /// trailing divider, and the remainder bookkeeping must not fabricate an
    /// empty or out-of-range interval.
    #[test]
    fn run_ending_at_interval_end_consumes_no_trailing_divider() {
        // 1 1 0 0 0: run (2,3) abuts the end; only position 1 is a divider.
        let mask = BaseMask::from_bools([true, true, false, false, false]);
        assert_eq!(MagnetFilter::estimate_edits(&[mask], 5, 2), 2);
        // 0 0 1 0 0: both runs abut a boundary; the middle 1 is consumed as
        // the first extraction's divider, so two extractions cover everything.
        let mask = BaseMask::from_bools([false, false, true, false, false]);
        assert_eq!(
            MagnetFilter::estimate_edits(std::slice::from_ref(&mask), 5, 1),
            1
        );
        // With e = 0 (one extraction) the second run stays uncovered.
        assert_eq!(MagnetFilter::estimate_edits(&[mask], 5, 0), 3);
    }

    /// Regression: `e` larger than the number of zero runs — the loop must
    /// stop once no run is left, not keep consuming dividers or underflow.
    #[test]
    fn threshold_beyond_available_runs_terminates_cleanly() {
        let mask = BaseMask::from_bools([true, false, true, true, false, true]);
        // Two single-position runs; dividers eat the rest incrementally.
        assert_eq!(
            MagnetFilter::estimate_edits(std::slice::from_ref(&mask), 6, 50),
            4
        );
        assert_eq!(MagnetFilter::estimate_edits(&[mask], 6, u32::MAX), 4);
        // An all-ones mask has no runs at all: every base is an edit.
        assert_eq!(MagnetFilter::estimate_edits(&[BaseMask::ones(6)], 6, 50), 6);
        // An all-zero mask is covered whole by the first extraction.
        assert_eq!(
            MagnetFilter::estimate_edits(&[BaseMask::zeros(6)], 6, 50),
            0
        );
    }

    /// Randomized cross-check of the extraction loop against the brute-force
    /// reference (the property-test twin at the sequence level lives in
    /// `tests/properties.rs`).
    #[test]
    fn estimate_matches_the_brute_force_reference_on_random_masks() {
        let mut rng = StdRng::seed_from_u64(12345);
        for case in 0..20_000 {
            let len = rng.gen_range(1usize..24);
            let e = rng.gen_range(0u32..6);
            let mask_count = rng.gen_range(1usize..4);
            let masks: Vec<BaseMask> = (0..mask_count)
                .map(|_| BaseMask::from_bools((0..len).map(|_| rng.gen_bool(0.5))))
                .collect();
            let actual = MagnetFilter::estimate_edits(&masks, len, e);
            let expected = reference_estimate(&masks, len, e);
            assert_eq!(
                actual, expected,
                "case {case}: len {len}, e {e}, masks {masks:?}"
            );
        }
    }

    #[test]
    fn exact_match_is_accepted() {
        let seq: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        for e in [0u32, 2, 5] {
            let d = MagnetFilter::new(e).filter_pair(&seq, &seq);
            assert!(d.accepted);
            assert_eq!(d.estimated_edits, 0);
        }
    }

    #[test]
    fn well_separated_substitutions_are_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        let reference = random_seq(100, &mut rng);
        let mut read = reference.clone();
        for &pos in &[20usize, 60] {
            read[pos] = match read[pos] {
                b'A' => b'C',
                _ => b'A',
            };
        }
        assert!(MagnetFilter::new(2).filter_pair(&read, &reference).accepted);
    }

    #[test]
    fn dissimilar_pair_is_rejected() {
        let a = vec![b'A'; 100];
        let b = vec![b'T'; 100];
        assert!(!MagnetFilter::new(5).filter_pair(&a, &b).accepted);
    }

    #[test]
    fn magnet_is_more_accurate_than_gatekeeper_on_divergent_pairs() {
        // MAGNET's extraction counts edits more faithfully, so over a divergent
        // population it accepts no more pairs than GateKeeper-GPU.
        let mut rng = StdRng::seed_from_u64(2);
        let e = 5u32;
        let magnet = MagnetFilter::new(e);
        let gk = GateKeeperGpuFilter::new(e);
        let mut magnet_accepts = 0;
        let mut gk_accepts = 0;
        for _ in 0..300 {
            let reference = random_seq(100, &mut rng);
            let edits = rng.gen_range(6usize..20);
            let read = mutate_with_edits(&reference, edits, 0.3, &mut rng);
            if edit_distance(&read, &reference) <= e {
                continue; // only count genuinely dissimilar pairs
            }
            if magnet.filter_pair(&read, &reference).accepted {
                magnet_accepts += 1;
            }
            if gk.filter_pair(&read, &reference).accepted {
                gk_accepts += 1;
            }
        }
        assert!(
            magnet_accepts <= gk_accepts,
            "MAGNET accepted {magnet_accepts}, GateKeeper-GPU accepted {gk_accepts}"
        );
    }

    #[test]
    fn estimate_never_exceeds_read_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_seq(150, &mut rng);
        let b = random_seq(150, &mut rng);
        let d = MagnetFilter::new(10).filter_pair(&a, &b);
        assert!(d.estimated_edits <= 150);
    }

    #[test]
    fn empty_pair_is_accepted() {
        assert!(MagnetFilter::new(3).filter_pair(b"", b"").accepted);
    }

    #[test]
    fn metadata() {
        let f = MagnetFilter::new(7);
        assert_eq!(f.name(), "MAGNET");
        assert_eq!(f.threshold(), 7);
    }

    #[test]
    fn kernel_x4_matches_per_pair_path_on_random_groups() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..150 {
            let len = rng.gen_range(1usize..=200);
            let e = rng.gen_range(0u32..=10);
            let lanes = rng.gen_range(1usize..=SOA_LANES);
            let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..lanes)
                .map(|_| {
                    let reference = random_seq(len, &mut rng);
                    let edits = rng.gen_range(0usize..=(e as usize + 4));
                    let read = mutate_with_edits(&reference, edits, 0.3, &mut rng);
                    (read, reference)
                })
                .collect();
            let slices: Vec<(&[u8], &[u8])> = pairs
                .iter()
                .map(|(r, s)| (r.as_slice(), s.as_slice()))
                .collect();
            let group = SoaGroup::encode_slices(&slices).expect("lane-eligible group");
            let lane_decisions = magnet_kernel_x4(&group, e);
            for (lane, (read, reference)) in pairs.iter().enumerate() {
                let expected = magnet_pair_decision(read, reference, e, false);
                assert_eq!(
                    lane_decisions[lane], expected,
                    "len = {len}, e = {e}, lane = {lane}"
                );
            }
        }
    }

    #[test]
    fn kernel_x4_handles_word_boundary_lengths() {
        let mut rng = StdRng::seed_from_u64(22);
        for len in [1usize, 31, 32, 33, 63, 64, 65, 96, 127, 128, 129] {
            for e in [0u32, 1, 4, 40] {
                let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..SOA_LANES)
                    .map(|_| {
                        let reference = random_seq(len, &mut rng);
                        let read =
                            mutate_with_edits(&reference, rng.gen_range(0..=6), 0.3, &mut rng);
                        (read, reference)
                    })
                    .collect();
                let slices: Vec<(&[u8], &[u8])> = pairs
                    .iter()
                    .map(|(r, s)| (r.as_slice(), s.as_slice()))
                    .collect();
                let group = SoaGroup::encode_slices(&slices).unwrap();
                let lane_decisions = magnet_kernel_x4(&group, e);
                for (lane, (read, reference)) in pairs.iter().enumerate() {
                    let expected = magnet_pair_decision(read, reference, e, false);
                    assert_eq!(lane_decisions[lane], expected, "len = {len}, e = {e}");
                }
            }
        }
    }

    #[test]
    fn per_pair_path_matches_its_per_bit_reference_twin() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..300 {
            let len = rng.gen_range(0usize..=96);
            let e = rng.gen_range(0u32..=8);
            let reference = random_seq(len, &mut rng);
            let read = if len == 0 {
                Vec::new()
            } else {
                mutate_with_edits(&reference, rng.gen_range(0..=8), 0.3, &mut rng)
            };
            assert_eq!(
                magnet_pair_decision(&read, &reference, e, false),
                magnet_pair_decision(&read, &reference, e, true),
                "len = {len}, e = {e}"
            );
        }
    }

    #[test]
    fn block_driver_matches_per_pair_decisions_with_mixed_pairs() {
        let mut rng = StdRng::seed_from_u64(24);
        let e = 4u32;
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0..97 {
            let len = match i % 5 {
                0 | 1 => 100,
                2 => 64,
                3 => 33,
                _ => 100,
            };
            let reference = random_seq(len, &mut rng);
            let mut read = mutate_with_edits(&reference, rng.gen_range(0..8), 0.3, &mut rng);
            if i % 11 == 0 {
                read[len / 2] = b'N'; // undefined pair → per-pair fallback
            }
            if i % 13 == 0 {
                read.pop(); // ragged length → per-pair fallback
            }
            pairs.push((read, reference));
        }
        pairs.push((Vec::new(), Vec::new()));
        let slices: Vec<(&[u8], &[u8])> = pairs
            .iter()
            .map(|(r, s)| (r.as_slice(), s.as_slice()))
            .collect();
        let expected: Vec<FilterDecision> = pairs
            .iter()
            .map(|(read, reference)| magnet_pair_decision(read, reference, e, false))
            .collect();
        let lanes = magnet_filter_block_slices(&slices, e, SimdMode::Lanes);
        assert_eq!(lanes, expected);
        let scalar = magnet_filter_block_slices(&slices, e, SimdMode::Scalar);
        assert_eq!(scalar, expected);
    }

    #[test]
    fn filter_batch_is_identical_across_simd_modes() {
        let mut rng = StdRng::seed_from_u64(25);
        let batch: Vec<SequencePair> = (0..600)
            .map(|_| {
                let reference = random_seq(100, &mut rng);
                let read = mutate_with_edits(&reference, rng.gen_range(0..10), 0.3, &mut rng);
                SequencePair::new(read, reference)
            })
            .collect();
        let filter = MagnetFilter::new(5);
        let lanes = filter
            .clone()
            .with_simd_mode(SimdMode::Lanes)
            .filter_batch(&batch);
        let scalar = filter.with_simd_mode(SimdMode::Scalar).filter_batch(&batch);
        assert_eq!(lanes, scalar);
        let per_pair: Vec<FilterDecision> = batch
            .iter()
            .map(|p| magnet_pair_decision(&p.read, &p.reference, 5, false))
            .collect();
        assert_eq!(lanes, per_pair);
    }
}
