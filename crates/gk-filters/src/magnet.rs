//! MAGNET pre-alignment filter (Alser, Mutlu, Alkan 2017).
//!
//! MAGNET was designed to fix the two accuracy problems of SHD/GateKeeper that the
//! GateKeeper-GPU paper recounts (§2.3): ignoring leading/trailing zeros and
//! counting a streak of consecutive 1s as a single edit. Instead of AND-combining
//! the masks, MAGNET *extracts* non-overlapping exact-matching segments:
//!
//! 1. build the same `2e + 1` Hamming/shifted masks as SHD (no amendment);
//! 2. repeatedly take the longest run of 0s across all masks inside the remaining
//!    search intervals — each extraction is one exactly matching segment of a
//!    candidate alignment, and the position next to each side of the segment is
//!    consumed as a divider (one edit);
//! 3. after at most `e + 1` extractions, every base that is not covered by an
//!    extracted segment counts towards the edit estimate.
//!
//! The resulting count is much closer to the true edit distance (two orders of
//! magnitude fewer false accepts than SHD), at the cost of occasionally
//! *over*-estimating — MAGNET is the one baseline that produces false rejects, a
//! behaviour the paper points out in §5.1.2 and which the accuracy harness here
//! reproduces.

use crate::bitvec::BaseMask;
use crate::traits::{FilterDecision, PreAlignmentFilter};
use crate::words::{shift_left_bases, shift_right_bases, xor_to_base_mask};
use gk_seq::PackedSeq;

/// The MAGNET pre-alignment filter.
#[derive(Debug, Clone)]
pub struct MagnetFilter {
    threshold: u32,
}

impl MagnetFilter {
    /// Creates a MAGNET filter for error threshold `e`.
    pub fn new(threshold: u32) -> MagnetFilter {
        MagnetFilter { threshold }
    }

    fn build_masks(read: &PackedSeq, reference: &PackedSeq, e: u32, len: usize) -> Vec<BaseMask> {
        // Same shift clamp as the GateKeeper kernel: a shift by `k ≥ len`
        // vacates every position and MAGNET pads vacated positions with 1s, so
        // those masks are all 1s and contribute no zero runs — building them
        // only made mask count and allocation proportional to `e`, which for
        // huge thresholds aborted on allocation.
        let max_shift = (e as usize).min(len.saturating_sub(1));
        let mut masks = Vec::with_capacity(2 * max_shift + 1);
        masks.push(xor_to_base_mask(read.words(), reference.words(), len));
        for k in 1..=max_shift {
            let shifted = shift_right_bases(read.words(), k);
            let mut del_mask = xor_to_base_mask(&shifted, reference.words(), len);
            // MAGNET explicitly pads the vacated positions with 1s (this is the very
            // behaviour GateKeeper-GPU later adopted).
            del_mask.set_range(0, k.min(len));
            masks.push(del_mask);

            let shifted = shift_left_bases(read.words(), k);
            let mut ins_mask = xor_to_base_mask(&shifted, reference.words(), len);
            ins_mask.set_range(len.saturating_sub(k), len);
            masks.push(ins_mask);
        }
        masks
    }

    /// Greedy divide-and-conquer extraction of the longest zero runs.
    ///
    /// Ties between equal-length runs are broken towards the **leftmost**
    /// start position, and the pending intervals are kept in position order,
    /// so the extraction sequence is a pure function of the masks. (An earlier
    /// version `swap_remove`d intervals and kept the first equal-length run in
    /// scan order, which made tie-breaking depend on the extraction history:
    /// the dividers consumed beside an arbitrarily chosen run could eat
    /// neighbouring runs another order would have extracted, shifting the
    /// final count in either direction.)
    fn estimate_edits(masks: &[BaseMask], len: usize, e: u32) -> u32 {
        // Intervals still to be covered, as half-open [start, end), sorted by
        // start and never empty.
        let mut intervals: Vec<(usize, usize)> = vec![(0, len)];
        let mut covered = 0usize;

        // At most e + 1 extractions; each covers ≥ 1 position, so len + 1
        // rounds is a ceiling that keeps huge thresholds from looping.
        let rounds = (e as usize).saturating_add(1).min(len + 1);
        for _ in 0..rounds {
            // The longest zero run over all masks inside any pending interval,
            // leftmost on ties.
            let mut best: Option<(usize, usize, usize)> = None; // (interval idx, start, len)
            for (idx, &(start, end)) in intervals.iter().enumerate() {
                for mask in masks {
                    if let Some((run_start, run_len)) = mask.longest_zero_run_in(start, end) {
                        let better = match best {
                            None => true,
                            Some((_, best_start, best_len)) => {
                                run_len > best_len
                                    || (run_len == best_len && run_start < best_start)
                            }
                        };
                        if better {
                            best = Some((idx, run_start, run_len));
                        }
                    }
                }
            }
            let Some((idx, run_start, run_len)) = best else {
                break;
            };
            covered += run_len;
            let (ivl_start, ivl_end) = intervals[idx];
            // Replace the interval with the (non-empty) remainders on each
            // side of the extracted segment, consuming one divider position
            // per side; a run abutting an interval boundary consumes no
            // divider there.
            let mut remainders = [(0usize, 0usize); 2];
            let mut count = 0;
            if run_start > ivl_start + 1 {
                remainders[count] = (ivl_start, run_start - 1);
                count += 1;
            }
            let run_end = run_start + run_len;
            if run_end + 1 < ivl_end {
                remainders[count] = (run_end + 1, ivl_end);
                count += 1;
            }
            intervals.splice(idx..=idx, remainders[..count].iter().copied());
        }

        (len - covered.min(len)) as u32
    }
}

impl PreAlignmentFilter for MagnetFilter {
    fn name(&self) -> &str {
        "MAGNET"
    }

    fn threshold(&self) -> u32 {
        self.threshold
    }

    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision {
        let read_packed = PackedSeq::from_ascii(read);
        let ref_packed = PackedSeq::from_ascii(reference);
        let len = read_packed.len().min(ref_packed.len());
        if len == 0 {
            return FilterDecision::accept(0);
        }
        let e = self.threshold;
        if e == 0 {
            let mask = xor_to_base_mask(read_packed.words(), ref_packed.words(), len);
            let ones = mask.count_ones();
            return if ones == 0 {
                FilterDecision::accept(0)
            } else {
                FilterDecision::reject(ones)
            };
        }
        let masks = Self::build_masks(&read_packed, &ref_packed, e, len);
        let edits = Self::estimate_edits(&masks, len, e);
        if edits <= e {
            FilterDecision::accept(edits)
        } else {
            FilterDecision::reject(edits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gatekeeper::GateKeeperGpuFilter;
    use gk_align::edit_distance;
    use gk_seq::simulate::mutate_with_edits;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, rng: &mut StdRng) -> Vec<u8> {
        (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
    }

    /// Spec-faithful brute-force reference for the extraction loop:
    /// repeatedly take the longest zero run across all masks inside any
    /// pending interval (leftmost on ties), consume one divider position on
    /// each side, for at most `e + 1` extractions; every uncovered base is one
    /// estimated edit. Written with naive per-position scans and re-sorted
    /// interval lists so it shares no run-finding or bookkeeping code with the
    /// implementation under test.
    fn reference_estimate(masks: &[BaseMask], len: usize, e: u32) -> u32 {
        let mut intervals: Vec<(usize, usize)> = vec![(0, len)];
        let mut covered = 0usize;
        let rounds = (e as usize).saturating_add(1).min(len + 1);
        for _ in 0..rounds {
            let mut best: Option<(usize, usize, usize)> = None; // (ivl idx, start, len)
            for (idx, &(start, end)) in intervals.iter().enumerate() {
                if start >= end {
                    continue;
                }
                for mask in masks {
                    let mut i = start;
                    while i < end {
                        if !mask.get(i) {
                            let run_start = i;
                            while i < end && !mask.get(i) {
                                i += 1;
                            }
                            let run_len = i - run_start;
                            let better = match best {
                                None => true,
                                Some((_, best_start, best_len)) => {
                                    run_len > best_len
                                        || (run_len == best_len && run_start < best_start)
                                }
                            };
                            if better {
                                best = Some((idx, run_start, run_len));
                            }
                        } else {
                            i += 1;
                        }
                    }
                }
            }
            let Some((idx, run_start, run_len)) = best else {
                break;
            };
            covered += run_len;
            let (ivl_start, ivl_end) = intervals[idx];
            intervals.remove(idx);
            if run_start > ivl_start {
                intervals.push((ivl_start, run_start - 1));
            }
            if run_start + run_len < ivl_end {
                intervals.push(((run_start + run_len + 1).min(ivl_end), ivl_end));
            }
            intervals.sort_unstable();
        }
        (len - covered.min(len)) as u32
    }

    /// Regression (tie-breaking): with masks `1111101` and `1011010` the three
    /// single-position runs of the second mask can all be extracted, but the
    /// pre-fix scan-order tie-break picked the first mask's run at position 5
    /// first — its dividers at 4 and 6 then destroyed two of them, yielding 5
    /// instead of 4. Found by the randomized cross-check below.
    #[test]
    fn tie_breaking_is_leftmost_not_scan_order() {
        let m1 = BaseMask::from_bools([true, true, true, true, true, false, true]);
        let m2 = BaseMask::from_bools([true, false, true, true, false, true, false]);
        let masks = vec![m1, m2];
        assert_eq!(MagnetFilter::estimate_edits(&masks, 7, 5), 4);
        assert_eq!(reference_estimate(&masks, 7, 5), 4);
    }

    /// Regression: a run starting one position into the interval
    /// (`run_start == ivl_start + 1`) leaves no coverable space to its left —
    /// the single leading position is the consumed divider and counts as one
    /// edit, no more and no less.
    #[test]
    fn run_one_past_interval_start_consumes_exactly_one_divider() {
        // 1 0 0 0 0 1 1: run (1,4); position 0 is the divider; 5 and 6 stay 1.
        let mask = BaseMask::from_bools([true, false, false, false, false, true, true]);
        let masks = vec![mask];
        for e in [1u32, 3, 10] {
            assert_eq!(MagnetFilter::estimate_edits(&masks, 7, e), 3, "e = {e}");
            assert_eq!(reference_estimate(&masks, 7, e), 3, "e = {e}");
        }
    }

    /// Regression: a run ending exactly at the interval end consumes no
    /// trailing divider, and the remainder bookkeeping must not fabricate an
    /// empty or out-of-range interval.
    #[test]
    fn run_ending_at_interval_end_consumes_no_trailing_divider() {
        // 1 1 0 0 0: run (2,3) abuts the end; only position 1 is a divider.
        let mask = BaseMask::from_bools([true, true, false, false, false]);
        assert_eq!(MagnetFilter::estimate_edits(&[mask], 5, 2), 2);
        // 0 0 1 0 0: both runs abut a boundary; the middle 1 is consumed as
        // the first extraction's divider, so two extractions cover everything.
        let mask = BaseMask::from_bools([false, false, true, false, false]);
        assert_eq!(
            MagnetFilter::estimate_edits(std::slice::from_ref(&mask), 5, 1),
            1
        );
        // With e = 0 (one extraction) the second run stays uncovered.
        assert_eq!(MagnetFilter::estimate_edits(&[mask], 5, 0), 3);
    }

    /// Regression: `e` larger than the number of zero runs — the loop must
    /// stop once no run is left, not keep consuming dividers or underflow.
    #[test]
    fn threshold_beyond_available_runs_terminates_cleanly() {
        let mask = BaseMask::from_bools([true, false, true, true, false, true]);
        // Two single-position runs; dividers eat the rest incrementally.
        assert_eq!(
            MagnetFilter::estimate_edits(std::slice::from_ref(&mask), 6, 50),
            4
        );
        assert_eq!(MagnetFilter::estimate_edits(&[mask], 6, u32::MAX), 4);
        // An all-ones mask has no runs at all: every base is an edit.
        assert_eq!(MagnetFilter::estimate_edits(&[BaseMask::ones(6)], 6, 50), 6);
        // An all-zero mask is covered whole by the first extraction.
        assert_eq!(
            MagnetFilter::estimate_edits(&[BaseMask::zeros(6)], 6, 50),
            0
        );
    }

    /// Randomized cross-check of the extraction loop against the brute-force
    /// reference (the property-test twin at the sequence level lives in
    /// `tests/properties.rs`).
    #[test]
    fn estimate_matches_the_brute_force_reference_on_random_masks() {
        let mut rng = StdRng::seed_from_u64(12345);
        for case in 0..20_000 {
            let len = rng.gen_range(1usize..24);
            let e = rng.gen_range(0u32..6);
            let mask_count = rng.gen_range(1usize..4);
            let masks: Vec<BaseMask> = (0..mask_count)
                .map(|_| BaseMask::from_bools((0..len).map(|_| rng.gen_bool(0.5))))
                .collect();
            let actual = MagnetFilter::estimate_edits(&masks, len, e);
            let expected = reference_estimate(&masks, len, e);
            assert_eq!(
                actual, expected,
                "case {case}: len {len}, e {e}, masks {masks:?}"
            );
        }
    }

    #[test]
    fn exact_match_is_accepted() {
        let seq: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        for e in [0u32, 2, 5] {
            let d = MagnetFilter::new(e).filter_pair(&seq, &seq);
            assert!(d.accepted);
            assert_eq!(d.estimated_edits, 0);
        }
    }

    #[test]
    fn well_separated_substitutions_are_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        let reference = random_seq(100, &mut rng);
        let mut read = reference.clone();
        for &pos in &[20usize, 60] {
            read[pos] = match read[pos] {
                b'A' => b'C',
                _ => b'A',
            };
        }
        assert!(MagnetFilter::new(2).filter_pair(&read, &reference).accepted);
    }

    #[test]
    fn dissimilar_pair_is_rejected() {
        let a = vec![b'A'; 100];
        let b = vec![b'T'; 100];
        assert!(!MagnetFilter::new(5).filter_pair(&a, &b).accepted);
    }

    #[test]
    fn magnet_is_more_accurate_than_gatekeeper_on_divergent_pairs() {
        // MAGNET's extraction counts edits more faithfully, so over a divergent
        // population it accepts no more pairs than GateKeeper-GPU.
        let mut rng = StdRng::seed_from_u64(2);
        let e = 5u32;
        let magnet = MagnetFilter::new(e);
        let gk = GateKeeperGpuFilter::new(e);
        let mut magnet_accepts = 0;
        let mut gk_accepts = 0;
        for _ in 0..300 {
            let reference = random_seq(100, &mut rng);
            let edits = rng.gen_range(6usize..20);
            let read = mutate_with_edits(&reference, edits, 0.3, &mut rng);
            if edit_distance(&read, &reference) <= e {
                continue; // only count genuinely dissimilar pairs
            }
            if magnet.filter_pair(&read, &reference).accepted {
                magnet_accepts += 1;
            }
            if gk.filter_pair(&read, &reference).accepted {
                gk_accepts += 1;
            }
        }
        assert!(
            magnet_accepts <= gk_accepts,
            "MAGNET accepted {magnet_accepts}, GateKeeper-GPU accepted {gk_accepts}"
        );
    }

    #[test]
    fn estimate_never_exceeds_read_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_seq(150, &mut rng);
        let b = random_seq(150, &mut rng);
        let d = MagnetFilter::new(10).filter_pair(&a, &b);
        assert!(d.estimated_edits <= 150);
    }

    #[test]
    fn empty_pair_is_accepted() {
        assert!(MagnetFilter::new(3).filter_pair(b"", b"").accepted);
    }

    #[test]
    fn metadata() {
        let f = MagnetFilter::new(7);
        assert_eq!(f.name(), "MAGNET");
        assert_eq!(f.threshold(), 7);
    }
}
