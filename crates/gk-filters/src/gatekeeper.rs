//! The GateKeeper filtering algorithm — original and GPU-improved variants.
//!
//! GateKeeper (§2.1) decides whether a pair can align within `e` edits using only
//! bitwise operations:
//!
//! 1. encode both sequences in 2 bits per base;
//! 2. XOR them to obtain the *Hamming mask* (1 = mismatching base);
//! 3. for every `k = 1..=e`, shift the read by `k` bases to the right (deletions)
//!    and to the left (insertions) and XOR each shifted copy with the reference,
//!    yielding `2e` more masks;
//! 4. *amend* each mask by turning streaks of `0`s shorter than three bases into
//!    `1`s (random 1–2 base matches carry no information and would otherwise hide
//!    errors during the AND);
//! 5. AND all `2e + 1` masks and count the errors left in the final bitvector; the
//!    pair is rejected when the count exceeds `e`.
//!
//! The GPU implementation adds two things (§3.4):
//!
//! * **carry-bit transfer** between the words of the encoded read during shifts —
//!   the GPU has no 200-bit registers, so every shift must propagate bits across
//!   the word array (implemented in [`crate::words`]);
//! * the **leading/trailing bit fix**: a shift vacates `k` positions whose bits
//!   are `0` in the shifted mask even though they correspond to comparisons against
//!   bases outside the segment and should count as potential errors. GateKeeper-GPU
//!   ORs `1`s into those positions after amendment, which removes a whole class of
//!   false accepts (up to 52× fewer than GateKeeper-FPGA / SHD) and keeps the
//!   filter functional at high error thresholds where the original collapses.
//!
//! Error counting follows the window/LUT semantics of the GateKeeper hardware
//! ([`EditCounting::WindowedRuns`]): the final bitvector is charged `⌈L / 3⌉` edits
//! per maximal streak of `L` ones, so edits whose separating matches were merged by
//! the amendment pass are never over-counted (the zero-false-reject property the
//! paper reports) while grossly dissimilar pairs still accumulate far more than `e`
//! errors and are rejected. The raw popcount is available as
//! [`EditCounting::Popcount`] for ablation studies.

use crate::bitvec::BaseMask;
use crate::traits::{FilterDecision, PreAlignmentFilter};
use crate::words::{
    shift_left_bases, shift_right_bases, xor_to_base_mask, xor_to_base_mask_reference,
};
use gk_seq::PackedSeq;
use serde::{Deserialize, Serialize};

/// How the errors remaining in the final bitvector are counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EditCounting {
    /// Windowed LUT counting: each maximal streak of `L` ones counts as
    /// `⌈L / (amendment length + 1)⌉` edits (GateKeeper hardware semantics; never
    /// over-counts amended streaks, so no false rejects).
    WindowedRuns,
    /// Every 1 bit counts as one edit (stricter; rejects more pairs but can reject
    /// pairs whose amended masks merged adjacent edits — used only for ablation).
    Popcount,
}

/// Configuration of one GateKeeper kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateKeeperConfig {
    /// Error threshold `e`.
    pub threshold: u32,
    /// Apply the GateKeeper-GPU leading/trailing bit fix (§3.4).
    pub improved_boundaries: bool,
    /// Error counting scheme for the final bitvector.
    pub counting: EditCounting,
    /// Maximum zero-run length flipped by the amendment pass (the paper and SHD use
    /// 2: streaks of one or two matches between errors are considered noise).
    pub amend_run_len: usize,
    /// Pass pairs containing `N` through the filter unexamined (GateKeeper-GPU
    /// behaviour, §3.3). The FPGA/SHD baselines have no such handling.
    pub pass_undefined: bool,
}

impl GateKeeperConfig {
    /// GateKeeper-GPU configuration for error threshold `e`.
    pub fn gpu(threshold: u32) -> GateKeeperConfig {
        GateKeeperConfig {
            threshold,
            improved_boundaries: true,
            counting: EditCounting::WindowedRuns,
            amend_run_len: 2,
            pass_undefined: true,
        }
    }

    /// Original GateKeeper (FPGA) / SHD configuration for error threshold `e`.
    pub fn fpga(threshold: u32) -> GateKeeperConfig {
        GateKeeperConfig {
            threshold,
            improved_boundaries: false,
            counting: EditCounting::WindowedRuns,
            amend_run_len: 2,
            pass_undefined: false,
        }
    }
}

/// Runs the GateKeeper kernel on a pre-encoded pair.
///
/// This is the per-thread device function of GateKeeper-GPU: one call is one
/// *filtration* (§3.1). The caller is responsible for the undefined-pair check when
/// [`GateKeeperConfig::pass_undefined`] is in effect.
pub fn gatekeeper_kernel(
    read: &PackedSeq,
    reference: &PackedSeq,
    config: &GateKeeperConfig,
) -> FilterDecision {
    kernel_impl(read, reference, config, false)
}

/// Per-bit reference twin of [`gatekeeper_kernel`].
///
/// Routes every mask operation through the `*_reference` primitives (per-bit
/// loops instead of word-parallel rewrites). This is the measured "scalar"
/// baseline of the SIMD layer and the oracle of the differential test suite —
/// its decisions must be byte-identical to the widened kernel's.
pub fn gatekeeper_kernel_reference(
    read: &PackedSeq,
    reference: &PackedSeq,
    config: &GateKeeperConfig,
) -> FilterDecision {
    kernel_impl(read, reference, config, true)
}

fn kernel_impl(
    read: &PackedSeq,
    reference: &PackedSeq,
    config: &GateKeeperConfig,
    use_reference: bool,
) -> FilterDecision {
    let xor_mask = if use_reference {
        xor_to_base_mask_reference
    } else {
        xor_to_base_mask
    };
    let amend = if use_reference {
        BaseMask::amend_short_zero_runs_reference
    } else {
        BaseMask::amend_short_zero_runs
    };
    let count_windowed = if use_reference {
        BaseMask::count_edits_windowed_reference
    } else {
        BaseMask::count_edits_windowed
    };
    let set_range = if use_reference {
        BaseMask::set_range_reference
    } else {
        BaseMask::set_range
    };

    let len = read.len().min(reference.len());
    if len == 0 {
        return FilterDecision::accept(0);
    }
    let e = config.threshold;
    let window = config.amend_run_len + 1;

    // Hamming mask: exact-match detection.
    let mut hamming = xor_mask(read.words(), reference.words(), len);

    if e == 0 {
        // Exact matching: any difference rejects the pair.
        let errors = match config.counting {
            EditCounting::WindowedRuns => count_windowed(&hamming, window),
            EditCounting::Popcount => hamming.count_ones(),
        };
        return if hamming.count_ones() == 0 {
            FilterDecision::accept(0)
        } else {
            FilterDecision::reject(errors.max(1))
        };
    }

    // Approximate matching: build the shifted masks. Shift distances are
    // clamped below the sequence length: a shift by `k ≥ len` vacates every
    // position, so its mask carries no alignment information — with the
    // boundary fix it is all 1s (AND-neutral) and without it it compares the
    // reference against nothing. Building those masks anyway used to make the
    // mask count (and the allocation) proportional to `e` even for `e` far
    // beyond the read length, which for huge thresholds aborted on allocation;
    // `e ≥ len` now degrades to the full set of meaningful shifts.
    let max_shift = (e as usize).min(len.saturating_sub(1));
    amend(&mut hamming, config.amend_run_len);
    // The Hamming mask seeds the running AND; each shifted mask is folded in
    // as soon as it is built, so no `2e + 1` mask vector is ever held.
    let mut combined = hamming;

    for k in 1..=max_shift {
        // Deletion mask: read shifted towards higher positions by k bases.
        let shifted = shift_right_bases(read.words(), k);
        let mut del_mask = xor_mask(&shifted, reference.words(), len);
        amend(&mut del_mask, config.amend_run_len);
        if config.improved_boundaries {
            // The first k positions were vacated by the shift; the comparison there
            // is against bases outside the read and must signal a potential error.
            set_range(&mut del_mask, 0, k.min(len));
        }
        combined.and_assign(&del_mask);

        // Insertion mask: read shifted towards lower positions by k bases.
        let shifted = shift_left_bases(read.words(), k);
        let mut ins_mask = xor_mask(&shifted, reference.words(), len);
        amend(&mut ins_mask, config.amend_run_len);
        if config.improved_boundaries {
            // The last k positions were vacated by the shift.
            set_range(&mut ins_mask, len.saturating_sub(k), len);
        }
        combined.and_assign(&ins_mask);
    }

    let errors = match config.counting {
        EditCounting::WindowedRuns => count_windowed(&combined, window),
        EditCounting::Popcount => combined.count_ones(),
    };
    if errors <= e {
        FilterDecision::accept(errors)
    } else {
        FilterDecision::reject(errors)
    }
}

/// Shared implementation behind the three GateKeeper-family filter types.
#[derive(Debug, Clone)]
struct GateKeeperFamily {
    name: &'static str,
    config: GateKeeperConfig,
}

impl GateKeeperFamily {
    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision {
        let read_packed = PackedSeq::from_ascii(read);
        let ref_packed = PackedSeq::from_ascii(reference);
        if self.config.pass_undefined && (read_packed.is_undefined() || ref_packed.is_undefined()) {
            return FilterDecision::undefined_pass();
        }
        gatekeeper_kernel(&read_packed, &ref_packed, &self.config)
    }
}

/// The GateKeeper-GPU pre-alignment filter (improved GateKeeper algorithm).
///
/// This type implements the *algorithm* on the host; the batched, device-simulated
/// system (configuration, unified-memory buffers, kernel launches, multi-GPU) lives
/// in the `gk-core` crate and reuses [`gatekeeper_kernel`] as its per-thread body.
#[derive(Debug, Clone)]
pub struct GateKeeperGpuFilter {
    inner: GateKeeperFamily,
}

impl GateKeeperGpuFilter {
    /// Creates a GateKeeper-GPU filter for error threshold `e`.
    pub fn new(threshold: u32) -> GateKeeperGpuFilter {
        GateKeeperGpuFilter {
            inner: GateKeeperFamily {
                name: "GateKeeper-GPU",
                config: GateKeeperConfig::gpu(threshold),
            },
        }
    }

    /// Creates a filter with a fully custom configuration (for ablation).
    pub fn with_config(config: GateKeeperConfig) -> GateKeeperGpuFilter {
        GateKeeperGpuFilter {
            inner: GateKeeperFamily {
                name: "GateKeeper-GPU",
                config,
            },
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GateKeeperConfig {
        &self.inner.config
    }
}

impl PreAlignmentFilter for GateKeeperGpuFilter {
    fn name(&self) -> &str {
        self.inner.name
    }
    fn threshold(&self) -> u32 {
        self.inner.config.threshold
    }
    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision {
        self.inner.filter_pair(read, reference)
    }
}

/// The original FPGA GateKeeper filter (no leading/trailing fix, no `N` handling).
#[derive(Debug, Clone)]
pub struct GateKeeperFpgaFilter {
    inner: GateKeeperFamily,
}

impl GateKeeperFpgaFilter {
    /// Creates a GateKeeper-FPGA-semantics filter for error threshold `e`.
    pub fn new(threshold: u32) -> GateKeeperFpgaFilter {
        GateKeeperFpgaFilter {
            inner: GateKeeperFamily {
                name: "GateKeeper-FPGA",
                config: GateKeeperConfig::fpga(threshold),
            },
        }
    }
}

impl PreAlignmentFilter for GateKeeperFpgaFilter {
    fn name(&self) -> &str {
        self.inner.name
    }
    fn threshold(&self) -> u32 {
        self.inner.config.threshold
    }
    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision {
        self.inner.filter_pair(read, reference)
    }
}

/// Shifted Hamming Distance (SHD). The bit-parallel algorithm is the one GateKeeper
/// was built from; its accept/reject decisions match GateKeeper-FPGA (the paper's
/// comparison tables list identical false-accept counts for the two).
#[derive(Debug, Clone)]
pub struct ShdFilter {
    inner: GateKeeperFamily,
}

impl ShdFilter {
    /// Creates an SHD filter for error threshold `e`.
    pub fn new(threshold: u32) -> ShdFilter {
        ShdFilter {
            inner: GateKeeperFamily {
                name: "SHD",
                config: GateKeeperConfig::fpga(threshold),
            },
        }
    }
}

impl PreAlignmentFilter for ShdFilter {
    fn name(&self) -> &str {
        self.inner.name
    }
    fn threshold(&self) -> u32 {
        self.inner.config.threshold
    }
    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision {
        self.inner.filter_pair(read, reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_align::edit_distance;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, rng: &mut StdRng) -> Vec<u8> {
        (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
    }

    #[test]
    fn exact_match_is_accepted_at_every_threshold() {
        let seq: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        for e in [0u32, 2, 5, 10] {
            let filter = GateKeeperGpuFilter::new(e);
            let d = filter.filter_pair(&seq, &seq);
            assert!(d.accepted, "e = {e}");
            assert_eq!(d.estimated_edits, 0);
        }
    }

    #[test]
    fn zero_threshold_is_exact_hamming_match() {
        let a: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        let mut b = a.clone();
        let filter = GateKeeperGpuFilter::new(0);
        assert!(filter.filter_pair(&a, &b).accepted);
        b[50] = if b[50] == b'A' { b'C' } else { b'A' };
        assert!(!filter.filter_pair(&a, &b).accepted);
    }

    #[test]
    fn substitutions_within_threshold_are_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_seq(100, &mut rng);
        let mut b = a.clone();
        // 3 well-separated substitutions.
        for &pos in &[10usize, 50, 90] {
            b[pos] = match b[pos] {
                b'A' => b'C',
                b'C' => b'G',
                b'G' => b'T',
                _ => b'A',
            };
        }
        let filter = GateKeeperGpuFilter::new(3);
        let d = filter.filter_pair(&b, &a);
        assert!(d.accepted);
        assert!(d.estimated_edits <= 3);
    }

    #[test]
    fn single_indel_within_threshold_is_accepted() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_seq(100, &mut rng);
        // Delete base 40 from the read and pad the end.
        let mut read = a.clone();
        read.remove(40);
        read.push(b'A');
        let filter = GateKeeperGpuFilter::new(2);
        assert!(filter.filter_pair(&read, &a).accepted);
    }

    #[test]
    fn dissimilar_pair_is_rejected() {
        let a = vec![b'A'; 100];
        let b: Vec<u8> = (0..100).map(|i| b"CGTC"[i % 4]).collect();
        for e in [1u32, 3, 5] {
            let filter = GateKeeperGpuFilter::new(e);
            assert!(!filter.filter_pair(&a, &b).accepted, "e = {e}");
        }
    }

    /// The central accuracy property of the paper: GateKeeper-GPU never rejects a
    /// pair whose true edit distance is within the threshold.
    #[test]
    fn no_false_rejects_on_randomised_pairs() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let len = 100;
            let e = rng.gen_range(0u32..=10);
            let reference = random_seq(len, &mut rng);
            let read = gk_seq::simulate::mutate_with_edits(&reference, e as usize, 0.3, &mut rng);
            let true_distance = edit_distance(&read, &reference);
            if true_distance <= e {
                let filter = GateKeeperGpuFilter::new(e);
                let d = filter.filter_pair(&read, &reference);
                assert!(
                    d.accepted,
                    "false reject: e = {e}, true distance = {true_distance}"
                );
            }
        }
    }

    #[test]
    fn gpu_variant_accepts_no_more_pairs_than_fpga_in_aggregate() {
        // The boundary fix adds 1s to the shifted masks, so across a population the
        // improved filter accepts at most as many pairs as the original — this is
        // the "up to 52× fewer false accepts" headline of the paper in miniature.
        let mut rng = StdRng::seed_from_u64(4);
        let mut gpu_accepts = 0usize;
        let mut fpga_accepts = 0usize;
        for _ in 0..400 {
            let reference = random_seq(100, &mut rng);
            let edits = rng.gen_range(0usize..20);
            let read = gk_seq::simulate::mutate_with_edits(&reference, edits, 0.4, &mut rng);
            let e = rng.gen_range(1u32..=10);
            if GateKeeperGpuFilter::new(e)
                .filter_pair(&read, &reference)
                .accepted
            {
                gpu_accepts += 1;
            }
            if GateKeeperFpgaFilter::new(e)
                .filter_pair(&read, &reference)
                .accepted
            {
                fpga_accepts += 1;
            }
        }
        assert!(
            gpu_accepts <= fpga_accepts,
            "GPU accepted {gpu_accepts} pairs, FPGA accepted {fpga_accepts}"
        );
    }

    #[test]
    fn undefined_pairs_pass_through_gpu_but_not_fpga() {
        let read = b"ACGTNACGTACGTACGTACG".to_vec();
        let reference = b"TTTTTTTTTTTTTTTTTTTT".to_vec();
        let gpu = GateKeeperGpuFilter::new(2).filter_pair(&read, &reference);
        assert!(gpu.accepted && gpu.undefined);
        let fpga = GateKeeperFpgaFilter::new(2).filter_pair(&read, &reference);
        assert!(!fpga.undefined);
        assert!(!fpga.accepted); // the N encodes as A and the pair is hugely different
    }

    #[test]
    fn shd_matches_gatekeeper_fpga_decisions() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let reference = random_seq(150, &mut rng);
            let edits = rng.gen_range(0usize..25);
            let read = gk_seq::simulate::mutate_with_edits(&reference, edits, 0.3, &mut rng);
            let e = rng.gen_range(0u32..=15);
            let shd = ShdFilter::new(e).filter_pair(&read, &reference);
            let fpga = GateKeeperFpgaFilter::new(e).filter_pair(&read, &reference);
            assert_eq!(shd.accepted, fpga.accepted);
            assert_eq!(shd.estimated_edits, fpga.estimated_edits);
        }
    }

    #[test]
    fn popcount_counting_is_at_least_as_strict_as_runs() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let reference = random_seq(100, &mut rng);
            let read = gk_seq::simulate::mutate_with_edits(&reference, 6, 0.3, &mut rng);
            let runs_cfg = GateKeeperConfig::gpu(5);
            let pop_cfg = GateKeeperConfig {
                counting: EditCounting::Popcount,
                ..runs_cfg
            };
            let runs = GateKeeperGpuFilter::with_config(runs_cfg).filter_pair(&read, &reference);
            let pop = GateKeeperGpuFilter::with_config(pop_cfg).filter_pair(&read, &reference);
            if pop.accepted {
                assert!(runs.accepted);
            }
        }
    }

    #[test]
    fn estimated_edits_lower_bound_behaviour() {
        // The estimate is approximate but for an accepted pair it never exceeds e.
        let mut rng = StdRng::seed_from_u64(7);
        let reference = random_seq(250, &mut rng);
        let read = gk_seq::simulate::mutate_with_edits(&reference, 5, 0.2, &mut rng);
        let filter = GateKeeperGpuFilter::new(10);
        let d = filter.filter_pair(&read, &reference);
        if d.accepted {
            assert!(d.estimated_edits <= 10);
        }
    }

    #[test]
    fn empty_pair_is_accepted() {
        let filter = GateKeeperGpuFilter::new(3);
        assert!(filter.filter_pair(b"", b"").accepted);
    }

    /// Regression: thresholds at and beyond the read length. The shifted masks
    /// for `k ≥ len` are fully vacated (all 1s after the boundary fix), so the
    /// filter must behave exactly as with every meaningful shift built — and
    /// since any two length-`len` sequences align within `len` edits, `e ≥ len`
    /// must accept every pair, never blanket-reject or blow up.
    #[test]
    fn thresholds_at_and_beyond_read_length_are_well_defined() {
        let mut rng = StdRng::seed_from_u64(8);
        let len = 24usize;
        for _ in 0..50 {
            let a = random_seq(len, &mut rng);
            let b = random_seq(len, &mut rng);
            let reference = GateKeeperGpuFilter::new(len as u32 - 1).filter_pair(&a, &b);
            for e in [len as u32, len as u32 + 1, 4 * len as u32] {
                let d = GateKeeperGpuFilter::new(e).filter_pair(&a, &b);
                // e ≥ len: true distance ≤ len ≤ e, so everything is accepted…
                assert!(d.accepted, "e = {e} must accept");
                assert!(d.estimated_edits <= len as u32);
                // …and the degenerate shifts change nothing versus e = len − 1
                // beyond the threshold comparison itself.
                assert_eq!(d.estimated_edits, reference.estimated_edits);
            }
            // The FPGA variant's masks for k < len are unchanged by the clamp.
            let fpga_low = GateKeeperFpgaFilter::new(len as u32 - 1).filter_pair(&a, &b);
            let fpga_high = GateKeeperFpgaFilter::new(2 * len as u32).filter_pair(&a, &b);
            assert!(fpga_high.accepted);
            assert!(fpga_low.estimated_edits >= fpga_high.estimated_edits);
        }
    }

    /// Regression: a huge threshold used to allocate `2e + 1` masks up front
    /// (hundreds of gigabytes for `e = u32::MAX`), aborting the process. The
    /// shift clamp bounds the mask count by the read length instead.
    #[test]
    fn huge_thresholds_do_not_allocate_per_error_masks() {
        let read = b"ACGTACGTACGTACGT";
        let reference = b"TGCATGCATGCATGCA";
        for e in [100_000u32, u32::MAX] {
            let d = GateKeeperGpuFilter::new(e).filter_pair(read, reference);
            assert!(d.accepted, "e = {e}");
            assert!(d.estimated_edits <= read.len() as u32);
            let fpga = GateKeeperFpgaFilter::new(e).filter_pair(read, reference);
            assert!(fpga.accepted, "e = {e}");
        }
    }

    #[test]
    fn single_base_pairs_survive_any_threshold() {
        for e in [0u32, 1, 2, 100] {
            let same = GateKeeperGpuFilter::new(e).filter_pair(b"A", b"A");
            assert!(same.accepted, "e = {e}");
            let diff = GateKeeperGpuFilter::new(e).filter_pair(b"A", b"T");
            // A single substitution: rejected only under exact matching.
            assert_eq!(diff.accepted, e >= 1, "e = {e}");
        }
    }

    #[test]
    fn filter_metadata() {
        let f = GateKeeperGpuFilter::new(4);
        assert_eq!(f.name(), "GateKeeper-GPU");
        assert_eq!(f.threshold(), 4);
        assert!(f.config().improved_boundaries);
        assert_eq!(GateKeeperFpgaFilter::new(2).name(), "GateKeeper-FPGA");
        assert_eq!(ShdFilter::new(2).name(), "SHD");
    }
}
