//! Per-base bitmasks — the Hamming / shifted / amended masks of GateKeeper.
//!
//! After the 2-bit XOR between read and reference, GateKeeper OR-combines the two
//! bits of every base "to simplify the differences on individual bitvectors and
//! reduce resource usage" (§2.1). The result is a mask with **one bit per base**:
//! `1` marks a mismatching base, `0` a matching one. [`BaseMask`] is that mask,
//! together with the operations the filtering pipeline needs:
//!
//! * bitwise AND/OR across masks (the final `2e + 1`-way AND),
//! * the *amendment* pass that turns short streaks of `0`s into `1`s so that
//!   meaningless 1–2 base random matches cannot hide errors during the AND,
//! * setting leading/trailing ranges to `1` (the GateKeeper-GPU boundary fix), and
//! * the two edit-counting schemes (distinct 1-runs, as the SHD/GateKeeper
//!   hardware effectively counts, or raw popcount for ablation).
//!
//! Every mask-walking operation ships in two implementations. The default
//! methods are **word-parallel**: amendment is a morphological closing built
//! from carry-propagating 1-bit shifts, run/edit counting uses
//! popcount-of-run-starts and `trailing_ones` scans, and range sets write
//! whole-word masks. The `*_reference` twins keep the original per-bit loops;
//! they are the runtime scalar fallback (`GK_SIMD=scalar`) and the oracle the
//! differential property suite checks the widened code against.
//!
//! Invariant: the bits beyond `len` in the last storage word are always zero
//! (every constructor and mutator restores this), so the word-parallel paths
//! can trust the padding.

use serde::{Deserialize, Serialize};
use std::fmt;

const WORD_BITS: usize = 64;

/// Number of maximal runs of 1s across LSB-first words with clean padding:
/// a run starts at every 1 bit whose predecessor (LSB-wards, carrying across
/// words) is 0.
pub(crate) fn count_runs_in_words(words: &[u64]) -> u32 {
    let mut runs = 0u32;
    let mut carry = 0u64; // MSB of the previous word, shifted into bit 0
    for &w in words {
        runs += (w & !((w << 1) | carry)).count_ones();
        carry = w >> 63;
    }
    runs
}

/// Windowed edit count across LSB-first words with clean padding: every
/// maximal streak of `L` ones contributes `⌈L / window⌉`. Scans streak by
/// streak with `trailing_zeros`/`trailing_ones`, carrying runs across word
/// boundaries, so the cost scales with the number of runs, not the length.
pub(crate) fn count_edits_windowed_in_words(words: &[u64], window: usize) -> u32 {
    let window = window.max(1);
    let mut edits = 0u32;
    let mut run = 0usize; // length of the streak continuing from the last word
    for &word in words {
        let mut w = word;
        let mut bits_left = WORD_BITS;
        while bits_left > 0 {
            if w & 1 == 0 {
                if run > 0 {
                    edits += run.div_ceil(window) as u32;
                    run = 0;
                }
                let zeros = (w.trailing_zeros() as usize).min(bits_left);
                w = w.checked_shr(zeros as u32).unwrap_or(0);
                bits_left -= zeros;
            } else {
                let ones = (w.trailing_ones() as usize).min(bits_left);
                run += ones;
                w = w.checked_shr(ones as u32).unwrap_or(0);
                bits_left -= ones;
            }
        }
    }
    if run > 0 {
        edits += run.div_ceil(window) as u32;
    }
    edits
}

/// Longest run of consecutive 0 bits within `[start, end)` of LSB-first
/// words; returns `(run_start, run_len)` or `None` if every bit is 1.
///
/// Word-parallel twin of the per-bit walk MAGNET's extraction loop was built
/// on: runs of 1s are skipped with `trailing_ones`, zero runs are measured
/// with `trailing_zeros`, whole-zero words are crossed in one step. The
/// strict `>` comparison keeps the leftmost run on equal lengths, matching
/// the reference bit for bit.
pub fn longest_zero_run_in_words(
    words: &[u64],
    start: usize,
    end: usize,
) -> Option<(usize, usize)> {
    let end = end.min(words.len() * WORD_BITS);
    let mut best: Option<(usize, usize)> = None;
    let mut i = start;
    while i < end {
        let chunk = words[i / WORD_BITS] >> (i % WORD_BITS);
        let ones = chunk.trailing_ones() as usize;
        if ones > 0 {
            // Skip the streak of 1s (clipped to this word; the loop re-reads).
            i += ones.min(WORD_BITS - i % WORD_BITS);
            continue;
        }
        let run_start = i;
        loop {
            if i >= end {
                break;
            }
            let chunk = words[i / WORD_BITS] >> (i % WORD_BITS);
            if chunk == 0 {
                i = (i / WORD_BITS + 1) * WORD_BITS;
            } else {
                i += chunk.trailing_zeros() as usize;
                break;
            }
        }
        let run_len = i.min(end) - run_start;
        if best.map(|(_, l)| run_len > l).unwrap_or(true) {
            best = Some((run_start, run_len));
        }
    }
    best
}

/// Per-bit reference for [`longest_zero_run_in_words`].
pub fn longest_zero_run_in_words_reference(
    words: &[u64],
    start: usize,
    end: usize,
) -> Option<(usize, usize)> {
    let end = end.min(words.len() * WORD_BITS);
    let get = |i: usize| words[i / WORD_BITS] >> (i % WORD_BITS) & 1 != 0;
    let mut best: Option<(usize, usize)> = None;
    let mut i = start;
    while i < end {
        if !get(i) {
            let run_start = i;
            while i < end && !get(i) {
                i += 1;
            }
            let run_len = i - run_start;
            if best.map(|(_, l)| run_len > l).unwrap_or(true) {
                best = Some((run_start, run_len));
            }
        } else {
            i += 1;
        }
    }
    best
}

/// Length of the run of consecutive 0 bits starting exactly at `pos`, bounded
/// by `end` — equivalently, the distance from `pos` to the next 1 bit. The
/// word-parallel step SneakySnake's traversal takes per diagonal probe.
pub fn zero_run_length_in_words(words: &[u64], pos: usize, end: usize) -> usize {
    let end = end.min(words.len() * WORD_BITS);
    let mut i = pos;
    while i < end {
        let chunk = words[i / WORD_BITS] >> (i % WORD_BITS);
        if chunk == 0 {
            i = (i / WORD_BITS + 1) * WORD_BITS;
        } else {
            i += chunk.trailing_zeros() as usize;
            break;
        }
    }
    i.min(end) - pos.min(end)
}

/// Per-bit reference for [`zero_run_length_in_words`].
pub fn zero_run_length_in_words_reference(words: &[u64], pos: usize, end: usize) -> usize {
    let end = end.min(words.len() * WORD_BITS);
    let mut i = pos;
    while i < end && words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 0 {
        i += 1;
    }
    i - pos.min(i)
}

/// Appends every maximal zero run within `[0, len)` of LSB-first words to
/// `out`, in position order, as `(start, len)` pairs.
///
/// MAGNET's extraction loop re-queries overlapping sub-intervals of the same
/// masks every round, so the kernel collects each mask's runs once with this
/// word-parallel walk and answers the queries from the run list instead of
/// re-walking mask bits.
pub fn zero_runs_in_words(words: &[u64], len: usize, out: &mut Vec<(u32, u32)>) {
    let end = len.min(words.len() * WORD_BITS);
    let mut i = 0usize;
    while i < end {
        let chunk = words[i / WORD_BITS] >> (i % WORD_BITS);
        let ones = chunk.trailing_ones() as usize;
        if ones > 0 {
            i += ones.min(WORD_BITS - i % WORD_BITS);
            continue;
        }
        let run_start = i;
        loop {
            if i >= end {
                break;
            }
            let chunk = words[i / WORD_BITS] >> (i % WORD_BITS);
            if chunk == 0 {
                i = (i / WORD_BITS + 1) * WORD_BITS;
            } else {
                i += chunk.trailing_zeros() as usize;
                break;
            }
        }
        out.push((run_start as u32, (i.min(end) - run_start) as u32));
    }
}

/// Per-bit reference for [`zero_runs_in_words`].
pub fn zero_runs_in_words_reference(words: &[u64], len: usize, out: &mut Vec<(u32, u32)>) {
    let end = len.min(words.len() * WORD_BITS);
    let get = |i: usize| words[i / WORD_BITS] >> (i % WORD_BITS) & 1 != 0;
    let mut i = 0usize;
    while i < end {
        if get(i) {
            i += 1;
            continue;
        }
        let run_start = i;
        while i < end && !get(i) {
            i += 1;
        }
        out.push((run_start as u32, (i - run_start) as u32));
    }
}

/// A bitmask over base positions (bit `i` describes base `i`; LSB-first layout).
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaseMask {
    bits: Vec<u64>,
    len: usize,
}

impl BaseMask {
    /// All-zero mask over `len` bases.
    pub fn zeros(len: usize) -> BaseMask {
        BaseMask {
            bits: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// All-one mask over `len` bases.
    pub fn ones(len: usize) -> BaseMask {
        let mut mask = BaseMask::zeros(len);
        for i in 0..mask.bits.len() {
            mask.bits[i] = u64::MAX;
        }
        mask.clear_padding();
        mask
    }

    /// Builds a mask from an iterator of booleans (`true` = 1).
    pub fn from_bools(values: impl IntoIterator<Item = bool>) -> BaseMask {
        let values: Vec<bool> = values.into_iter().collect();
        let mut mask = BaseMask::zeros(values.len());
        for (i, v) in values.iter().enumerate() {
            if *v {
                mask.set(i);
            }
        }
        mask
    }

    /// Builds a mask over `len` bases directly from LSB-first 64-bit words
    /// (bit `i` of the mask is bit `i % 64` of word `i / 64`). The word vector
    /// is resized to the exact storage size and any bits beyond `len` are
    /// cleared, so callers may hand over scratch words with dirty padding.
    pub fn from_words(mut bits: Vec<u64>, len: usize) -> BaseMask {
        bits.resize(len.div_ceil(WORD_BITS), 0);
        let mut mask = BaseMask { bits, len };
        mask.clear_padding();
        mask
    }

    /// The underlying LSB-first storage words (padding bits beyond
    /// [`BaseMask::len`] are guaranteed zero).
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Number of base positions covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers no positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to 1.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.bits[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.bits[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Sets every bit in `[start, end)` to 1 (clamped to the mask length).
    /// Word-parallel: whole-word masks instead of a per-bit loop.
    pub fn set_range(&mut self, start: usize, end: usize) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        let first = start / WORD_BITS;
        let last = (end - 1) / WORD_BITS;
        let head = u64::MAX << (start % WORD_BITS);
        let tail = u64::MAX >> (WORD_BITS - 1 - (end - 1) % WORD_BITS);
        if first == last {
            self.bits[first] |= head & tail;
        } else {
            self.bits[first] |= head;
            for w in &mut self.bits[first + 1..last] {
                *w = u64::MAX;
            }
            self.bits[last] |= tail;
        }
    }

    /// Per-bit reference implementation of [`BaseMask::set_range`] (the
    /// runtime scalar fallback and differential-test oracle).
    pub fn set_range_reference(&mut self, start: usize, end: usize) {
        let end = end.min(self.len);
        for i in start..end {
            self.set(i);
        }
    }

    /// In-place AND with another mask of the same length.
    pub fn and_assign(&mut self, other: &BaseMask) {
        assert_eq!(self.len, other.len, "mask length mismatch in AND");
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a &= b;
        }
    }

    /// In-place OR with another mask of the same length.
    pub fn or_assign(&mut self, other: &BaseMask) {
        assert_eq!(self.len, other.len, "mask length mismatch in OR");
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
    }

    /// Number of 1 bits.
    pub fn count_ones(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of maximal runs of consecutive 1 bits. Word-parallel:
    /// popcount of run-start bits with carry between words.
    pub fn count_runs(&self) -> u32 {
        count_runs_in_words(&self.bits)
    }

    /// Per-bit reference implementation of [`BaseMask::count_runs`].
    pub fn count_runs_reference(&self) -> u32 {
        let mut runs = 0u32;
        let mut in_run = false;
        for i in 0..self.len {
            if self.get(i) {
                if !in_run {
                    runs += 1;
                    in_run = true;
                }
            } else {
                in_run = false;
            }
        }
        runs
    }

    /// Windowed edit counting over the final bitvector: every maximal streak of 1s
    /// of length `L` contributes `⌈L / window⌉` edits.
    ///
    /// This models the window/LUT error counting of the GateKeeper hardware (§2.1:
    /// "the errors are counted by following a window approach with a look-up
    /// table"). With `window = amendment length + 1` a cluster of `d` true edits
    /// whose separating matches were flipped by the amendment pass produces a streak
    /// of at most `window·d - 2` bits and is therefore never counted as more than
    /// `d` edits — the property behind the paper's zero-false-reject observation —
    /// while a fully mismatching pair still counts ~`len / window` edits and is
    /// rejected. `window = 1` degenerates to a plain popcount.
    ///
    /// Word-parallel: streak-at-a-time `trailing_ones` scan over the storage
    /// words instead of a per-bit walk.
    pub fn count_edits_windowed(&self, window: usize) -> u32 {
        count_edits_windowed_in_words(&self.bits, window)
    }

    /// Per-bit reference implementation of [`BaseMask::count_edits_windowed`].
    pub fn count_edits_windowed_reference(&self, window: usize) -> u32 {
        let window = window.max(1);
        let mut edits = 0u32;
        let mut i = 0usize;
        while i < self.len {
            if self.get(i) {
                let start = i;
                while i < self.len && self.get(i) {
                    i += 1;
                }
                let run = i - start;
                edits += run.div_ceil(window) as u32;
            } else {
                i += 1;
            }
        }
        edits
    }

    /// Amendment pass: flips every maximal run of `0`s of length at most
    /// `max_run` that is flanked by `1`s on both sides (§2.1: "the bitvectors are
    /// amended before AND to turn short streaks of 0s into 1s considering these 0s
    /// are useless and do not represent an informative part").
    ///
    /// Word-parallel: the flanked-short-run flip is a morphological closing.
    /// Dilate with `m` iterations of `d |= d << 1` (so `d = OR of x << j` for
    /// `j = 0..=m`), erode with `m` iterations of `d &= d >> 1`, and OR the
    /// result back into the mask. A zero run of length `L ≤ m` flanked by 1s
    /// is fully covered by the dilation of its left flank and survives the
    /// erosion thanks to its right flank; longer runs keep a dead zone, and
    /// unflanked leading/trailing runs never dilate from the missing side. The
    /// scratch carries one spare word so dilation past a word-aligned `len`
    /// is not truncated, and the clean padding guarantees zeros beyond `len`.
    pub fn amend_short_zero_runs(&mut self, max_run: usize) {
        if self.len == 0 || max_run == 0 {
            return;
        }
        let m = max_run.min(self.len);
        if m > WORD_BITS {
            // The closing needs `len + m` bits of dilation head-room and `m`
            // shift passes; for amendment widths beyond a word (never reached
            // by the paper's configs) the per-bit walk is both simpler and
            // faster.
            return self.amend_short_zero_runs_reference(max_run);
        }
        let mut d: Vec<u64> = Vec::with_capacity(self.bits.len() + 2);
        d.extend_from_slice(&self.bits);
        d.push(0);
        d.push(0);
        for _ in 0..m {
            // d |= d << 1 across words, high row first so carries read the
            // not-yet-updated lower neighbour.
            for r in (0..d.len()).rev() {
                let carry = if r > 0 { d[r - 1] >> 63 } else { 0 };
                d[r] |= (d[r] << 1) | carry;
            }
        }
        for _ in 0..m {
            // d &= d >> 1 across words, low row first for the same reason.
            for r in 0..d.len() {
                let carry = if r + 1 < d.len() { d[r + 1] << 63 } else { 0 };
                d[r] &= (d[r] >> 1) | carry;
            }
        }
        for (bits, closed) in self.bits.iter_mut().zip(&d) {
            *bits |= closed;
        }
        self.clear_padding();
    }

    /// Per-bit reference implementation of [`BaseMask::amend_short_zero_runs`].
    pub fn amend_short_zero_runs_reference(&mut self, max_run: usize) {
        if self.len == 0 || max_run == 0 {
            return;
        }
        let mut i = 0usize;
        while i < self.len {
            if !self.get(i) {
                let start = i;
                while i < self.len && !self.get(i) {
                    i += 1;
                }
                let end = i; // [start, end) is a zero run
                let flanked_left = start > 0;
                let flanked_right = end < self.len;
                if end - start <= max_run && flanked_left && flanked_right {
                    for j in start..end {
                        self.set(j);
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    /// Longest run of consecutive 0 bits within `[start, end)`; returns
    /// `(run_start, run_len)` or `None` if every bit is 1. Word-parallel, with
    /// the leftmost run winning ties exactly like the per-bit reference.
    pub fn longest_zero_run_in(&self, start: usize, end: usize) -> Option<(usize, usize)> {
        longest_zero_run_in_words(&self.bits, start, end.min(self.len))
    }

    /// Per-bit reference implementation of [`BaseMask::longest_zero_run_in`].
    pub fn longest_zero_run_in_reference(
        &self,
        start: usize,
        end: usize,
    ) -> Option<(usize, usize)> {
        longest_zero_run_in_words_reference(&self.bits, start, end.min(self.len))
    }

    /// Length of the run of consecutive 0 bits starting exactly at `pos`.
    pub fn zero_run_length_at(&self, pos: usize) -> usize {
        zero_run_length_in_words(&self.bits, pos, self.len)
    }

    /// Per-bit reference implementation of [`BaseMask::zero_run_length_at`].
    pub fn zero_run_length_at_reference(&self, pos: usize) -> usize {
        zero_run_length_in_words_reference(&self.bits, pos, self.len)
    }

    fn clear_padding(&mut self) {
        let used = self.len % WORD_BITS;
        if used != 0 {
            if let Some(last) = self.bits.last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
        if self.len == 0 {
            self.bits.clear();
        }
    }
}

impl fmt::Debug for BaseMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rendered: String = (0..self.len.min(128))
            .map(|i| if self.get(i) { '1' } else { '0' })
            .collect();
        write!(f, "BaseMask(len={}, {})", self.len, rendered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_have_expected_counts() {
        assert_eq!(BaseMask::zeros(100).count_ones(), 0);
        assert_eq!(BaseMask::ones(100).count_ones(), 100);
        assert_eq!(BaseMask::ones(64).count_ones(), 64);
        assert_eq!(BaseMask::ones(65).count_ones(), 65);
    }

    #[test]
    fn set_get_clear() {
        let mut m = BaseMask::zeros(70);
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(69);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(69));
        assert!(!m.get(1) && !m.get(65));
        m.clear(64);
        assert!(!m.get(64));
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn from_bools_round_trips() {
        let pattern = [true, false, true, true, false, false, true];
        let m = BaseMask::from_bools(pattern);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(m.get(i), b);
        }
        assert_eq!(m.count_ones(), 4);
    }

    #[test]
    fn and_or_assign() {
        let a = BaseMask::from_bools([true, true, false, false]);
        let b = BaseMask::from_bools([true, false, true, false]);
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and, BaseMask::from_bools([true, false, false, false]));
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or, BaseMask::from_bools([true, true, true, false]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_with_mismatched_length_panics() {
        let mut a = BaseMask::zeros(4);
        a.and_assign(&BaseMask::zeros(5));
    }

    #[test]
    fn count_runs_counts_maximal_streaks() {
        let m = BaseMask::from_bools([true, true, false, true, false, false, true, true, true]);
        assert_eq!(m.count_runs(), 3);
        assert_eq!(BaseMask::zeros(10).count_runs(), 0);
        assert_eq!(BaseMask::ones(10).count_runs(), 1);
    }

    #[test]
    fn windowed_counting_rounds_runs_up() {
        let m = BaseMask::from_bools([true, true, false, true, false, false, true, true, true]);
        // Runs of length 2, 1, 3 with window 3 → 1 + 1 + 1.
        assert_eq!(m.count_edits_windowed(3), 3);
        // With window 1 it is a plain popcount.
        assert_eq!(m.count_edits_windowed(1), m.count_ones());
        // A long streak is charged proportionally.
        assert_eq!(BaseMask::ones(100).count_edits_windowed(3), 34);
        assert_eq!(BaseMask::zeros(50).count_edits_windowed(3), 0);
    }

    #[test]
    fn windowed_counting_with_zero_window_is_popcount() {
        let m = BaseMask::from_bools([true, false, true, true]);
        assert_eq!(m.count_edits_windowed(0), m.count_ones());
    }

    #[test]
    fn amendment_flips_short_flanked_zero_runs() {
        // 1 0 1  and  1 0 0 1 are flipped; 1 0 0 0 1 is not (run of 3 > 2).
        let mut m = BaseMask::from_bools([
            true, false, true, false, false, true, false, false, false, true,
        ]);
        m.amend_short_zero_runs(2);
        assert_eq!(
            m,
            BaseMask::from_bools([true, true, true, true, true, true, false, false, false, true])
        );
    }

    #[test]
    fn amendment_does_not_touch_unflanked_runs() {
        // Leading and trailing zero runs are not flanked on both sides.
        let mut m = BaseMask::from_bools([false, true, false, true, false]);
        m.amend_short_zero_runs(2);
        assert_eq!(m, BaseMask::from_bools([false, true, true, true, false]));
    }

    #[test]
    fn amendment_zero_window_is_a_noop() {
        let mut m = BaseMask::from_bools([true, false, true]);
        let before = m.clone();
        m.amend_short_zero_runs(0);
        assert_eq!(m, before);
    }

    #[test]
    fn set_range_clamps_to_len() {
        let mut m = BaseMask::zeros(10);
        m.set_range(7, 20);
        assert_eq!(m.count_ones(), 3);
        assert!(m.get(7) && m.get(9));
    }

    #[test]
    fn longest_zero_run_finds_the_longest() {
        let m = BaseMask::from_bools([true, false, false, true, false, false, false, true]);
        assert_eq!(m.longest_zero_run_in(0, 8), Some((4, 3)));
        assert_eq!(m.longest_zero_run_in(0, 4), Some((1, 2)));
        assert_eq!(BaseMask::ones(5).longest_zero_run_in(0, 5), None);
    }

    #[test]
    fn zero_run_length_at_position() {
        let m = BaseMask::from_bools([false, false, true, false]);
        assert_eq!(m.zero_run_length_at(0), 2);
        assert_eq!(m.zero_run_length_at(2), 0);
        assert_eq!(m.zero_run_length_at(3), 1);
    }

    #[test]
    fn widened_run_scans_match_their_references_on_random_words() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for case in 0..4_000 {
            let words: Vec<u64> = (0..rng.gen_range(0usize..4))
                .map(|_| {
                    // Mix dense, sparse and structured words so runs cross
                    // word boundaries and whole-zero words get exercised.
                    match rng.gen_range(0..4) {
                        0 => rng.gen(),
                        1 => 0,
                        2 => u64::MAX,
                        _ => rng.gen::<u64>() & rng.gen::<u64>() & rng.gen::<u64>(),
                    }
                })
                .collect();
            let total = words.len() * 64;
            let start = rng.gen_range(0..=total + 3);
            let end = rng.gen_range(0..=total + 3);
            assert_eq!(
                longest_zero_run_in_words(&words, start, end),
                longest_zero_run_in_words_reference(&words, start, end),
                "case {case}: words {words:?}, range [{start}, {end})"
            );
            assert_eq!(
                zero_run_length_in_words(&words, start, end),
                zero_run_length_in_words_reference(&words, start, end),
                "case {case}: words {words:?}, pos {start}, end {end}"
            );
            let len = end.min(total);
            let mut runs = Vec::new();
            let mut runs_ref = Vec::new();
            zero_runs_in_words(&words, len, &mut runs);
            zero_runs_in_words_reference(&words, len, &mut runs_ref);
            assert_eq!(runs, runs_ref, "case {case}: words {words:?}, len {len}");
            // The collected list is consistent with the single-run scanners:
            // position-ordered, disjoint, and its longest entry is the one
            // `longest_zero_run_in_words` reports over the same range.
            for pair in runs.windows(2) {
                assert!(pair[0].0 + pair[0].1 < pair[1].0, "overlapping runs");
            }
            let longest = runs
                .iter()
                .copied()
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(s, l)| (s as usize, l as usize));
            assert_eq!(longest, longest_zero_run_in_words(&words, 0, len));
        }
    }

    #[test]
    fn mask_run_scans_match_their_reference_methods() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..2_000 {
            let len = rng.gen_range(0usize..160);
            let m = BaseMask::from_bools((0..len).map(|_| rng.gen_bool(0.5)));
            let start = rng.gen_range(0..=len + 2);
            let end = rng.gen_range(0..=len + 2);
            assert_eq!(
                m.longest_zero_run_in(start, end),
                m.longest_zero_run_in_reference(start, end),
                "{m:?} [{start}, {end})"
            );
            if len > 0 {
                let pos = rng.gen_range(0..len);
                assert_eq!(
                    m.zero_run_length_at(pos),
                    m.zero_run_length_at_reference(pos),
                    "{m:?} at {pos}"
                );
            }
        }
    }

    #[test]
    fn padding_bits_never_leak_into_counts() {
        let m = BaseMask::ones(100);
        assert_eq!(m.count_ones(), 100);
        assert_eq!(m.count_runs(), 1);
    }
}
