//! Shouji pre-alignment filter (Alser et al. 2019).
//!
//! Shouji (§2.3) builds a *neighborhood map*: a `(2e + 1) × n` binary matrix whose
//! rows are the diagonals of the edit band and whose entry is `0` where the read
//! and reference bases on that diagonal agree. It then slides a small window (four
//! columns) over the map; inside each window it picks the diagonal segment with the
//! most matches and copies it into the *Shouji bit-vector*, keeping for every
//! column the best (most-matching) evidence seen so far. The number of `1`s left in
//! the Shouji bit-vector is the edit estimate; pairs whose estimate exceeds the
//! threshold are rejected.
//!
//! Accuracy sits between GateKeeper and MAGNET/SneakySnake, matching the ordering
//! of Figure 5 / Tables S.7–S.12 in the paper: better than GateKeeper-FPGA and SHD
//! everywhere, slightly better than GateKeeper-GPU at 150/250 bp, well behind
//! SneakySnake.

use crate::traits::{FilterDecision, PreAlignmentFilter};

/// Width of the sliding search window, as in the Shouji paper.
const WINDOW: usize = 4;

/// The Shouji pre-alignment filter.
#[derive(Debug, Clone)]
pub struct ShoujiFilter {
    threshold: u32,
}

impl ShoujiFilter {
    /// Creates a Shouji filter for error threshold `e`.
    pub fn new(threshold: u32) -> ShoujiFilter {
        ShoujiFilter { threshold }
    }

    /// Neighborhood-map entry for column `col` and diagonal `diag`: `false` (0)
    /// when the bases agree.
    #[inline]
    fn mismatch(read: &[u8], reference: &[u8], col: usize, diag: isize) -> bool {
        let t = col as isize + diag;
        if t < 0 || t as usize >= reference.len() {
            return true;
        }
        read[col] != reference[t as usize]
    }

    /// Builds the Shouji bit-vector and returns the number of 1s in it.
    ///
    /// The windows are non-overlapping: each four-column window independently picks
    /// the diagonal segment with the most matches and copies its bits into the
    /// Shouji bit-vector. (The original Shouji additionally searches overlapping
    /// window placements to stitch segments that straddle a window border; the
    /// non-overlapping approximation keeps the qualitative accuracy ordering of the
    /// paper — tighter than GateKeeper, looser than SneakySnake — at the cost of a
    /// rare over-estimate around indel junctions, noted in DESIGN.md.)
    fn estimate_edits(read: &[u8], reference: &[u8], e: u32) -> u32 {
        let len = read.len().min(reference.len());
        if len == 0 {
            return 0;
        }
        // Diagonals outside the reachable band (`col + diag` out of reference
        // range for every column) are all-mismatch and can never beat the seeded
        // window width, so clamp the sweep instead of walking up to ~2^33 no-op
        // diagonals per window when a caller passes a huge threshold.
        let lo = -((e as usize).min(len - 1) as isize);
        let hi = (e as usize).min(reference.len() - 1) as isize;
        let mut edits = 0u32;

        let mut col = 0usize;
        while col < len {
            let end = (col + WINDOW).min(len);
            // Find the diagonal whose segment over [col, end) has the most matches,
            // i.e. the fewest 1s to contribute to the Shouji bit-vector. The seed is
            // the all-mismatch score of the (possibly tail-truncated) window, which
            // every in-band diagonal can only improve on.
            let mut best_mismatches = (end - col) as u32;
            for diag in lo..=hi {
                let mismatches = (col..end)
                    .filter(|&c| Self::mismatch(read, reference, c, diag))
                    .count() as u32;
                if mismatches < best_mismatches {
                    best_mismatches = mismatches;
                    if best_mismatches == 0 {
                        break;
                    }
                }
            }
            edits += best_mismatches;
            col = end;
        }

        edits
    }
}

impl PreAlignmentFilter for ShoujiFilter {
    fn name(&self) -> &str {
        "Shouji"
    }

    fn threshold(&self) -> u32 {
        self.threshold
    }

    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision {
        let edits = Self::estimate_edits(read, reference, self.threshold);
        if edits <= self.threshold {
            FilterDecision::accept(edits)
        } else {
            FilterDecision::reject(edits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gatekeeper::GateKeeperFpgaFilter;
    use gk_align::edit_distance;
    use gk_seq::simulate::mutate_with_edits;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, rng: &mut StdRng) -> Vec<u8> {
        (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
    }

    /// Brute-force window scorer: enumerates the full `[-e, e]` band with naive
    /// indexing and seeds each window from `u32::MAX` rather than the window
    /// width, so it shares no shortcut with the production code — in particular
    /// not the truncated-width seed of the final, tail-overhanging window.
    fn brute_force_estimate(read: &[u8], reference: &[u8], e: u32) -> u32 {
        let len = read.len().min(reference.len());
        let mut edits = 0u32;
        let mut col = 0usize;
        while col < len {
            let end = (col + WINDOW).min(len);
            let mut best = u32::MAX;
            for diag in -(e as i64)..=(e as i64) {
                let mismatches = (col..end)
                    .filter(|&c| {
                        let t = c as i64 + diag;
                        t < 0 || t as usize >= reference.len() || read[c] != reference[t as usize]
                    })
                    .count() as u32;
                best = best.min(mismatches);
            }
            // The band always contains diag = 0, so `best` is a real score.
            edits += best;
            col = end;
        }
        edits
    }

    #[test]
    fn exact_match_is_accepted() {
        let seq: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        let d = ShoujiFilter::new(0).filter_pair(&seq, &seq);
        assert!(d.accepted);
        assert_eq!(d.estimated_edits, 0);
    }

    #[test]
    fn well_separated_substitutions_are_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        let reference = random_seq(120, &mut rng);
        let mut read = reference.clone();
        for &pos in &[15usize, 60, 100] {
            read[pos] = match read[pos] {
                b'A' => b'G',
                _ => b'A',
            };
        }
        let d = ShoujiFilter::new(3).filter_pair(&read, &reference);
        assert!(d.accepted);
        assert!(d.estimated_edits <= 3);
    }

    #[test]
    fn indel_within_threshold_is_accepted() {
        let mut rng = StdRng::seed_from_u64(2);
        let reference = random_seq(100, &mut rng);
        let mut read = reference.clone();
        read.remove(50);
        read.push(b'A');
        let d = ShoujiFilter::new(3).filter_pair(&read, &reference);
        assert!(d.accepted);
    }

    #[test]
    fn dissimilar_pair_is_rejected() {
        let a = vec![b'A'; 100];
        let b = vec![b'T'; 100];
        assert!(!ShoujiFilter::new(8).filter_pair(&a, &b).accepted);
    }

    #[test]
    fn no_false_rejects_on_substitution_only_pairs() {
        // With substitution-only edits the best diagonal of every window is the true
        // diagonal, so the estimate equals the true edit distance and can never
        // falsely reject. (Indel junctions can add a small over-estimate in this
        // non-overlapping-window approximation; see the module documentation.)
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let reference = random_seq(100, &mut rng);
            let e = rng.gen_range(1u32..=10);
            let read = mutate_with_edits(&reference, e as usize, 0.0, &mut rng);
            if edit_distance(&read, &reference) <= e {
                let d = ShoujiFilter::new(e).filter_pair(&read, &reference);
                assert!(d.accepted, "false reject at e = {e}");
            }
        }
    }

    #[test]
    fn false_rejects_are_rare_on_indel_pairs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut eligible = 0u32;
        let mut false_rejects = 0u32;
        for _ in 0..300 {
            let reference = random_seq(100, &mut rng);
            let e = rng.gen_range(2u32..=10);
            let read = mutate_with_edits(&reference, e as usize, 0.4, &mut rng);
            if edit_distance(&read, &reference) <= e {
                eligible += 1;
                if !ShoujiFilter::new(e).filter_pair(&read, &reference).accepted {
                    false_rejects += 1;
                }
            }
        }
        assert!(eligible > 50, "not enough eligible pairs ({eligible})");
        assert!(
            (false_rejects as f64) < 0.05 * eligible as f64,
            "{false_rejects} false rejects out of {eligible}"
        );
    }

    #[test]
    fn accepts_no_more_than_gatekeeper_fpga_on_divergent_population() {
        let mut rng = StdRng::seed_from_u64(4);
        let e = 5u32;
        let shouji = ShoujiFilter::new(e);
        let fpga = GateKeeperFpgaFilter::new(e);
        let mut shouji_accepts = 0;
        let mut fpga_accepts = 0;
        for _ in 0..300 {
            let reference = random_seq(100, &mut rng);
            let edits = rng.gen_range(6usize..20);
            let read = mutate_with_edits(&reference, edits, 0.3, &mut rng);
            if edit_distance(&read, &reference) <= e {
                continue;
            }
            if shouji.filter_pair(&read, &reference).accepted {
                shouji_accepts += 1;
            }
            if fpga.filter_pair(&read, &reference).accepted {
                fpga_accepts += 1;
            }
        }
        assert!(
            shouji_accepts <= fpga_accepts,
            "Shouji accepted {shouji_accepts}, GateKeeper-FPGA accepted {fpga_accepts}"
        );
    }

    #[test]
    fn window_scores_match_brute_force_scorer() {
        // Equivalence sweep for the window scoring, with deliberate coverage of
        // final windows that overhang the read tail (len % WINDOW != 0) and of
        // reads shorter/longer than the reference: the production scorer seeds
        // `best_mismatches` with the truncated window width, and this sweep
        // pins that seed to the naive full-band minimum.
        let mut rng = StdRng::seed_from_u64(7);
        for case in 0..400 {
            let ref_len = rng.gen_range(1usize..=70);
            let reference = random_seq(ref_len, &mut rng);
            let read = if case % 3 == 0 {
                // Ragged lengths, hitting every len % WINDOW residue over time.
                random_seq(rng.gen_range(1usize..=70), &mut rng)
            } else {
                mutate_with_edits(&reference, rng.gen_range(0usize..8), 0.4, &mut rng)
            };
            let e = rng.gen_range(0u32..=12);
            assert_eq!(
                ShoujiFilter::estimate_edits(&read, &reference, e),
                brute_force_estimate(&read, &reference, e),
                "read {} bp vs reference {} bp at e = {e}",
                read.len(),
                reference.len(),
            );
        }
    }

    #[test]
    fn overhanging_final_window_scores_match_brute_force_at_fixed_lengths() {
        // Deterministic pass over every window residue right at the tail.
        let mut rng = StdRng::seed_from_u64(8);
        for len in [
            1usize, 2, 3, 4, 5, 6, 7, 8, 9, 97, 98, 99, 100, 101, 102, 103,
        ] {
            let reference = random_seq(len, &mut rng);
            let read = mutate_with_edits(&reference, 3, 0.5, &mut rng);
            for e in [0u32, 1, 3, 5] {
                assert_eq!(
                    ShoujiFilter::estimate_edits(&read, &reference, e),
                    brute_force_estimate(&read, &reference, e),
                    "len {len}, e = {e}"
                );
            }
        }
    }

    #[test]
    fn huge_threshold_terminates() {
        // Regression: the diagonal sweep used to iterate the raw `-e..=e` range,
        // which at e = u32::MAX is ~8.6 billion no-op diagonals per window.
        let a: Vec<u8> = (0..101).map(|i| b"ACGT"[i % 4]).collect();
        let b: Vec<u8> = (0..97).map(|i| b"ACGT"[(i + 1) % 4]).collect();
        let d = ShoujiFilter::new(u32::MAX).filter_pair(&a, &b);
        assert!(d.accepted);
        assert_eq!(
            ShoujiFilter::estimate_edits(&a, &b, u32::MAX),
            brute_force_estimate(&a, &b, 150),
        );
    }

    #[test]
    fn empty_pair_is_accepted() {
        assert!(ShoujiFilter::new(2).filter_pair(b"", b"").accepted);
    }

    #[test]
    fn metadata() {
        let f = ShoujiFilter::new(6);
        assert_eq!(f.name(), "Shouji");
        assert_eq!(f.threshold(), 6);
    }
}
