//! Shouji pre-alignment filter (Alser et al. 2019).
//!
//! Shouji (§2.3) builds a *neighborhood map*: a `(2e + 1) × n` binary matrix whose
//! rows are the diagonals of the edit band and whose entry is `0` where the read
//! and reference bases on that diagonal agree. It then slides a small window (four
//! columns) over the map; inside each window it picks the diagonal segment with the
//! most matches and copies it into the *Shouji bit-vector*, keeping for every
//! column the best (most-matching) evidence seen so far. The number of `1`s left in
//! the Shouji bit-vector is the edit estimate; pairs whose estimate exceeds the
//! threshold are rejected.
//!
//! Accuracy sits between GateKeeper and MAGNET/SneakySnake, matching the ordering
//! of Figure 5 / Tables S.7–S.12 in the paper: better than GateKeeper-FPGA and SHD
//! everywhere, slightly better than GateKeeper-GPU at 150/250 bp, well behind
//! SneakySnake.

use crate::bitvec::BaseMask;
use crate::simd::{
    build_mask_rows, canonical_acgt, filter_block_slices_with, set_range_rows, shl_rows, shr_rows,
    LaneRow, SimdMode, LANE_BLOCK_PAIRS, WORD_BITS,
};
use crate::traits::{FilterDecision, PreAlignmentFilter};
use crate::words::{nibble_min, nibble_popcounts, sum_nibbles};
use gk_seq::pairs::{SequencePair, SoaGroup, SOA_LANES};
use rayon::prelude::*;

/// Width of the sliding search window, as in the Shouji paper.
const WINDOW: usize = 4;

/// The Shouji pre-alignment filter.
#[derive(Debug, Clone)]
pub struct ShoujiFilter {
    threshold: u32,
    simd: SimdMode,
}

impl ShoujiFilter {
    /// Creates a Shouji filter for error threshold `e`. The SIMD mode is
    /// resolved against `GK_SIMD` once, here — not per batch.
    pub fn new(threshold: u32) -> ShoujiFilter {
        ShoujiFilter {
            threshold,
            simd: SimdMode::Auto.resolve(),
        }
    }

    /// Selects the SIMD mode for `filter_batch` (resolved immediately; `Auto`
    /// consults `GK_SIMD` now, not on the hot path). Decisions are
    /// byte-identical across modes; only throughput changes.
    pub fn with_simd_mode(mut self, simd: SimdMode) -> ShoujiFilter {
        self.simd = simd.resolve();
        self
    }

    /// The resolved SIMD mode this instance runs batches with.
    pub fn simd_mode(&self) -> SimdMode {
        self.simd
    }

    /// Neighborhood-map entry for column `col` and diagonal `diag`: `false` (0)
    /// when the bases agree.
    #[inline]
    fn mismatch(read: &[u8], reference: &[u8], col: usize, diag: isize) -> bool {
        let t = col as isize + diag;
        if t < 0 || t as usize >= reference.len() {
            return true;
        }
        read[col] != reference[t as usize]
    }

    /// Builds the Shouji bit-vector and returns the number of 1s in it.
    ///
    /// The windows are non-overlapping: each four-column window independently picks
    /// the diagonal segment with the most matches and copies its bits into the
    /// Shouji bit-vector. (The original Shouji additionally searches overlapping
    /// window placements to stitch segments that straddle a window border; the
    /// non-overlapping approximation keeps the qualitative accuracy ordering of the
    /// paper — tighter than GateKeeper, looser than SneakySnake — at the cost of a
    /// rare over-estimate around indel junctions, noted in DESIGN.md.)
    fn estimate_edits(read: &[u8], reference: &[u8], e: u32) -> u32 {
        let len = read.len().min(reference.len());
        if len == 0 {
            return 0;
        }
        // Diagonals outside the reachable band (`col + diag` out of reference
        // range for every column) are all-mismatch and can never beat the seeded
        // window width, so clamp the sweep instead of walking up to ~2^33 no-op
        // diagonals per window when a caller passes a huge threshold.
        let lo = -((e as usize).min(len - 1) as isize);
        let hi = (e as usize).min(reference.len() - 1) as isize;
        let mut edits = 0u32;

        let mut col = 0usize;
        while col < len {
            let end = (col + WINDOW).min(len);
            // Find the diagonal whose segment over [col, end) has the most matches,
            // i.e. the fewest 1s to contribute to the Shouji bit-vector. The seed is
            // the all-mismatch score of the (possibly tail-truncated) window, which
            // every in-band diagonal can only improve on.
            let mut best_mismatches = (end - col) as u32;
            for diag in lo..=hi {
                let mismatches = (col..end)
                    .filter(|&c| Self::mismatch(read, reference, c, diag))
                    .count() as u32;
                if mismatches < best_mismatches {
                    best_mismatches = mismatches;
                    if best_mismatches == 0 {
                        break;
                    }
                }
            }
            edits += best_mismatches;
            col = end;
        }

        edits
    }
}

/// Decision for one pair on the per-byte scalar path.
pub fn shouji_pair_decision(read: &[u8], reference: &[u8], e: u32) -> FilterDecision {
    let edits = ShoujiFilter::estimate_edits(read, reference, e);
    if edits <= e {
        FilterDecision::accept(edits)
    } else {
        FilterDecision::reject(edits)
    }
}

/// Per-bit reference twin of [`shouji_pair_decision`] — the
/// `SimdMode::Scalar` differential leg, mirroring the GateKeeper and MAGNET
/// reference paths.
///
/// Materialises the full neighborhood map the paper describes (one mismatch
/// [`BaseMask`] per in-band diagonal, built from the same raw ASCII
/// comparisons as the per-byte sweep, with out-of-range columns as
/// mismatches) and scores every window on every diagonal one bit at a time
/// with no early exits. Decisions are byte-identical to the per-byte sweep
/// and the lane kernel; only throughput differs.
pub fn shouji_pair_decision_reference(read: &[u8], reference: &[u8], e: u32) -> FilterDecision {
    let len = read.len().min(reference.len());
    if len == 0 {
        return FilterDecision::accept(0);
    }
    // Same band clamp as the per-byte sweep: out-of-band diagonals are
    // all-mismatch and can never beat the seeded window width.
    let lo = -((e as usize).min(len - 1) as isize);
    let hi = (e as usize).min(reference.len() - 1) as isize;
    let map: Vec<BaseMask> = (lo..=hi)
        .map(|diag| {
            BaseMask::from_bools((0..len).map(|col| {
                let t = col as isize + diag;
                t < 0 || t as usize >= reference.len() || read[col] != reference[t as usize]
            }))
        })
        .collect();
    let mut edits = 0u32;
    let mut col = 0usize;
    while col < len {
        let end = (col + WINDOW).min(len);
        let mut best_mismatches = (end - col) as u32;
        for mask in &map {
            let mismatches = (col..end).filter(|&c| mask.get(c)).count() as u32;
            if mismatches < best_mismatches {
                best_mismatches = mismatches;
            }
        }
        edits += best_mismatches;
        col = end;
    }
    if edits <= e {
        FilterDecision::accept(edits)
    } else {
        FilterDecision::reject(edits)
    }
}

/// Per-window widths as packed nibbles, one nibble per window: `4` for every
/// full window, `len % 4` for a tail window, `0` past the sequence — the
/// all-mismatch seed every in-band diagonal can only improve on.
fn window_seed_words(len: usize, mask_rows: usize) -> Vec<u64> {
    const WINDOWS_PER_WORD: usize = WORD_BITS / WINDOW;
    let mut seed = vec![0u64; mask_rows];
    let full_windows = len / WINDOW;
    for window in 0..full_windows {
        seed[window / WINDOWS_PER_WORD] |= (WINDOW as u64) << (4 * (window % WINDOWS_PER_WORD));
    }
    let tail = len % WINDOW;
    if tail != 0 {
        seed[full_windows / WINDOWS_PER_WORD] |=
            (tail as u64) << (4 * (full_windows % WINDOWS_PER_WORD));
    }
    seed
}

/// Runs Shouji on all lanes of a struct-of-arrays group at once. Decisions of
/// inactive lanes (`lane >= group.lanes`) are meaningless.
///
/// The window width equals four bases — one nibble of the per-base mask rows
/// — and windows start at multiples of four, so every window is one
/// nibble-aligned 4-bit field: per diagonal, [`nibble_popcounts`] scores all
/// 16 windows of a word at once and [`nibble_min`] folds the per-window
/// minimum across diagonals, in every lane in parallel. The per-window sweep
/// is uniform across lanes (unlike MAGNET/SneakySnake no lane retires early),
/// so no active-mask is needed here.
pub fn shouji_kernel_x4(group: &SoaGroup, e: u32) -> [FilterDecision; SOA_LANES] {
    let len = group.len;
    debug_assert!(len > 0, "SoaGroup guarantees a nonzero length");
    let mask_rows = len.div_ceil(WORD_BITS);

    // Equal-length lanes make the scalar path's asymmetric band clamps
    // coincide: lo = −min(e, len−1), hi = +min(e, len−1).
    let maxd = (e as usize).min(len - 1);

    let seed = window_seed_words(len, mask_rows);
    let mut acc = vec![[0u64; SOA_LANES]; mask_rows];
    for (row, &seed_word) in acc.iter_mut().zip(seed.iter()) {
        *row = [seed_word; SOA_LANES];
    }

    let mut shifted = vec![[0u64; SOA_LANES]; group.ref_words.len()];
    let mut mask = vec![[0u64; SOA_LANES]; mask_rows];
    for d in -(maxd as isize)..=(maxd as isize) {
        // Diagonal d compares read[col] with ref[col + d]: shift the
        // *reference* so position col + d lands at col, then force the
        // out-of-range columns (t < 0 or t ≥ len) to mismatch — the shift
        // vacates them with zero bits, i.e. 'A' codes that could falsely
        // match.
        let mismatch_rows: &[LaneRow] = if d == 0 {
            &group.ref_words
        } else if d > 0 {
            shr_rows(&group.ref_words, 2 * d as usize, &mut shifted);
            &shifted
        } else {
            shl_rows(&group.ref_words, 2 * (-d) as usize, &mut shifted);
            &shifted
        };
        build_mask_rows(&group.read_words, mismatch_rows, len, &mut mask);
        if d > 0 {
            set_range_rows(&mut mask, len, len - d as usize, len);
        } else if d < 0 {
            set_range_rows(&mut mask, len, 0, (-d) as usize);
        }
        for (acc_row, mask_row) in acc.iter_mut().zip(mask.iter()) {
            for lane in 0..SOA_LANES {
                // Window scores are ≤ 4, well inside nibble_min's ≤ 7 domain.
                acc_row[lane] = nibble_min(acc_row[lane], nibble_popcounts(mask_row[lane]));
            }
        }
    }

    let mut out = [FilterDecision::accept(0); SOA_LANES];
    for (lane, decision) in out.iter_mut().enumerate().take(group.lanes) {
        let edits: u32 = acc.iter().map(|row| sum_nibbles(row[lane])).sum();
        *decision = if edits <= e {
            FilterDecision::accept(edits)
        } else {
            FilterDecision::reject(edits)
        };
    }
    out
}

/// Filters a block of raw ASCII pairs through Shouji, lane-parallel where
/// possible. The scalar sweep compares raw ASCII bytes (`'a' ≠ 'A'`) while
/// the lane kernel compares 2-bit codes, so lane eligibility is restricted to
/// uppercase `ACGT` pairs where the two comparisons provably agree; everything
/// else falls back to the per-byte path. In scalar mode every pair runs the
/// per-bit reference twin ([`shouji_pair_decision_reference`]), mirroring the
/// GateKeeper and MAGNET scalar legs. Output order matches input order.
pub fn shouji_filter_block_slices(
    pairs: &[(&[u8], &[u8])],
    threshold: u32,
    mode: SimdMode,
) -> Vec<FilterDecision> {
    filter_block_slices_with(
        pairs,
        mode,
        |read, reference| canonical_acgt(read) && canonical_acgt(reference),
        |group| shouji_kernel_x4(group, threshold),
        |read, reference| shouji_pair_decision(read, reference, threshold),
        |read, reference| shouji_pair_decision_reference(read, reference, threshold),
    )
}

/// [`shouji_filter_block_slices`] over owned [`SequencePair`]s.
pub fn shouji_filter_block(
    pairs: &[SequencePair],
    threshold: u32,
    mode: SimdMode,
) -> Vec<FilterDecision> {
    let slices: Vec<(&[u8], &[u8])> = pairs
        .iter()
        .map(|p| (p.read.as_slice(), p.reference.as_slice()))
        .collect();
    shouji_filter_block_slices(&slices, threshold, mode)
}

impl PreAlignmentFilter for ShoujiFilter {
    fn name(&self) -> &str {
        "Shouji"
    }

    fn threshold(&self) -> u32 {
        self.threshold
    }

    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision {
        shouji_pair_decision(read, reference, self.threshold)
    }

    fn filter_batch(&self, pairs: &[SequencePair]) -> Vec<FilterDecision> {
        pairs
            .par_chunks(LANE_BLOCK_PAIRS)
            .flat_map(|block| shouji_filter_block(block, self.threshold, self.simd))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gatekeeper::GateKeeperFpgaFilter;
    use gk_align::edit_distance;
    use gk_seq::simulate::mutate_with_edits;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, rng: &mut StdRng) -> Vec<u8> {
        (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
    }

    /// Brute-force window scorer: enumerates the full `[-e, e]` band with naive
    /// indexing and seeds each window from `u32::MAX` rather than the window
    /// width, so it shares no shortcut with the production code — in particular
    /// not the truncated-width seed of the final, tail-overhanging window.
    fn brute_force_estimate(read: &[u8], reference: &[u8], e: u32) -> u32 {
        let len = read.len().min(reference.len());
        let mut edits = 0u32;
        let mut col = 0usize;
        while col < len {
            let end = (col + WINDOW).min(len);
            let mut best = u32::MAX;
            for diag in -(e as i64)..=(e as i64) {
                let mismatches = (col..end)
                    .filter(|&c| {
                        let t = c as i64 + diag;
                        t < 0 || t as usize >= reference.len() || read[c] != reference[t as usize]
                    })
                    .count() as u32;
                best = best.min(mismatches);
            }
            // The band always contains diag = 0, so `best` is a real score.
            edits += best;
            col = end;
        }
        edits
    }

    #[test]
    fn exact_match_is_accepted() {
        let seq: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        let d = ShoujiFilter::new(0).filter_pair(&seq, &seq);
        assert!(d.accepted);
        assert_eq!(d.estimated_edits, 0);
    }

    #[test]
    fn well_separated_substitutions_are_accepted() {
        let mut rng = StdRng::seed_from_u64(1);
        let reference = random_seq(120, &mut rng);
        let mut read = reference.clone();
        for &pos in &[15usize, 60, 100] {
            read[pos] = match read[pos] {
                b'A' => b'G',
                _ => b'A',
            };
        }
        let d = ShoujiFilter::new(3).filter_pair(&read, &reference);
        assert!(d.accepted);
        assert!(d.estimated_edits <= 3);
    }

    #[test]
    fn indel_within_threshold_is_accepted() {
        let mut rng = StdRng::seed_from_u64(2);
        let reference = random_seq(100, &mut rng);
        let mut read = reference.clone();
        read.remove(50);
        read.push(b'A');
        let d = ShoujiFilter::new(3).filter_pair(&read, &reference);
        assert!(d.accepted);
    }

    #[test]
    fn dissimilar_pair_is_rejected() {
        let a = vec![b'A'; 100];
        let b = vec![b'T'; 100];
        assert!(!ShoujiFilter::new(8).filter_pair(&a, &b).accepted);
    }

    #[test]
    fn no_false_rejects_on_substitution_only_pairs() {
        // With substitution-only edits the best diagonal of every window is the true
        // diagonal, so the estimate equals the true edit distance and can never
        // falsely reject. (Indel junctions can add a small over-estimate in this
        // non-overlapping-window approximation; see the module documentation.)
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let reference = random_seq(100, &mut rng);
            let e = rng.gen_range(1u32..=10);
            let read = mutate_with_edits(&reference, e as usize, 0.0, &mut rng);
            if edit_distance(&read, &reference) <= e {
                let d = ShoujiFilter::new(e).filter_pair(&read, &reference);
                assert!(d.accepted, "false reject at e = {e}");
            }
        }
    }

    #[test]
    fn false_rejects_are_rare_on_indel_pairs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut eligible = 0u32;
        let mut false_rejects = 0u32;
        for _ in 0..300 {
            let reference = random_seq(100, &mut rng);
            let e = rng.gen_range(2u32..=10);
            let read = mutate_with_edits(&reference, e as usize, 0.4, &mut rng);
            if edit_distance(&read, &reference) <= e {
                eligible += 1;
                if !ShoujiFilter::new(e).filter_pair(&read, &reference).accepted {
                    false_rejects += 1;
                }
            }
        }
        assert!(eligible > 50, "not enough eligible pairs ({eligible})");
        assert!(
            (false_rejects as f64) < 0.05 * eligible as f64,
            "{false_rejects} false rejects out of {eligible}"
        );
    }

    #[test]
    fn accepts_no_more_than_gatekeeper_fpga_on_divergent_population() {
        let mut rng = StdRng::seed_from_u64(4);
        let e = 5u32;
        let shouji = ShoujiFilter::new(e);
        let fpga = GateKeeperFpgaFilter::new(e);
        let mut shouji_accepts = 0;
        let mut fpga_accepts = 0;
        for _ in 0..300 {
            let reference = random_seq(100, &mut rng);
            let edits = rng.gen_range(6usize..20);
            let read = mutate_with_edits(&reference, edits, 0.3, &mut rng);
            if edit_distance(&read, &reference) <= e {
                continue;
            }
            if shouji.filter_pair(&read, &reference).accepted {
                shouji_accepts += 1;
            }
            if fpga.filter_pair(&read, &reference).accepted {
                fpga_accepts += 1;
            }
        }
        assert!(
            shouji_accepts <= fpga_accepts,
            "Shouji accepted {shouji_accepts}, GateKeeper-FPGA accepted {fpga_accepts}"
        );
    }

    #[test]
    fn window_scores_match_brute_force_scorer() {
        // Equivalence sweep for the window scoring, with deliberate coverage of
        // final windows that overhang the read tail (len % WINDOW != 0) and of
        // reads shorter/longer than the reference: the production scorer seeds
        // `best_mismatches` with the truncated window width, and this sweep
        // pins that seed to the naive full-band minimum.
        let mut rng = StdRng::seed_from_u64(7);
        for case in 0..400 {
            let ref_len = rng.gen_range(1usize..=70);
            let reference = random_seq(ref_len, &mut rng);
            let read = if case % 3 == 0 {
                // Ragged lengths, hitting every len % WINDOW residue over time.
                random_seq(rng.gen_range(1usize..=70), &mut rng)
            } else {
                mutate_with_edits(&reference, rng.gen_range(0usize..8), 0.4, &mut rng)
            };
            let e = rng.gen_range(0u32..=12);
            assert_eq!(
                ShoujiFilter::estimate_edits(&read, &reference, e),
                brute_force_estimate(&read, &reference, e),
                "read {} bp vs reference {} bp at e = {e}",
                read.len(),
                reference.len(),
            );
        }
    }

    #[test]
    fn overhanging_final_window_scores_match_brute_force_at_fixed_lengths() {
        // Deterministic pass over every window residue right at the tail.
        let mut rng = StdRng::seed_from_u64(8);
        for len in [
            1usize, 2, 3, 4, 5, 6, 7, 8, 9, 97, 98, 99, 100, 101, 102, 103,
        ] {
            let reference = random_seq(len, &mut rng);
            let read = mutate_with_edits(&reference, 3, 0.5, &mut rng);
            for e in [0u32, 1, 3, 5] {
                assert_eq!(
                    ShoujiFilter::estimate_edits(&read, &reference, e),
                    brute_force_estimate(&read, &reference, e),
                    "len {len}, e = {e}"
                );
            }
        }
    }

    #[test]
    fn huge_threshold_terminates() {
        // Regression: the diagonal sweep used to iterate the raw `-e..=e` range,
        // which at e = u32::MAX is ~8.6 billion no-op diagonals per window.
        let a: Vec<u8> = (0..101).map(|i| b"ACGT"[i % 4]).collect();
        let b: Vec<u8> = (0..97).map(|i| b"ACGT"[(i + 1) % 4]).collect();
        let d = ShoujiFilter::new(u32::MAX).filter_pair(&a, &b);
        assert!(d.accepted);
        assert_eq!(
            ShoujiFilter::estimate_edits(&a, &b, u32::MAX),
            brute_force_estimate(&a, &b, 150),
        );
    }

    #[test]
    fn empty_pair_is_accepted() {
        assert!(ShoujiFilter::new(2).filter_pair(b"", b"").accepted);
    }

    #[test]
    fn metadata() {
        let f = ShoujiFilter::new(6);
        assert_eq!(f.name(), "Shouji");
        assert_eq!(f.threshold(), 6);
    }

    /// Satellite regression for the short-read window residues: every length
    /// around the window width, pinned to the independent brute-force scorer
    /// at the exact e values the sweep's clamps care about (0, 1, len−1, len).
    #[test]
    fn short_reads_around_window_width_match_brute_force() {
        let mut rng = StdRng::seed_from_u64(9);
        for len in [1usize, WINDOW - 1, WINDOW, WINDOW + 1] {
            for _ in 0..50 {
                let reference = random_seq(len, &mut rng);
                let read = mutate_with_edits(&reference, rng.gen_range(0..=len), 0.5, &mut rng);
                for e in [0u32, 1, len.saturating_sub(1) as u32, len as u32] {
                    assert_eq!(
                        ShoujiFilter::estimate_edits(&read, &reference, e),
                        brute_force_estimate(&read, &reference, e),
                        "len {len}, e = {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_x4_matches_per_pair_path_on_random_groups() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..200 {
            let len = rng.gen_range(1usize..=200);
            let e = rng.gen_range(0u32..=12);
            let lanes = rng.gen_range(1usize..=SOA_LANES);
            let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..lanes)
                .map(|_| {
                    let reference = random_seq(len, &mut rng);
                    let edits = rng.gen_range(0usize..=(e as usize + 4));
                    let read = mutate_with_edits(&reference, edits, 0.3, &mut rng);
                    (read, reference)
                })
                .collect();
            let slices: Vec<(&[u8], &[u8])> = pairs
                .iter()
                .map(|(r, s)| (r.as_slice(), s.as_slice()))
                .collect();
            let group = SoaGroup::encode_slices(&slices).expect("lane-eligible group");
            let lane_decisions = shouji_kernel_x4(&group, e);
            for (lane, (read, reference)) in pairs.iter().enumerate() {
                let expected = shouji_pair_decision(read, reference, e);
                assert_eq!(
                    lane_decisions[lane], expected,
                    "len = {len}, e = {e}, lane = {lane}"
                );
            }
        }
    }

    #[test]
    fn kernel_x4_handles_word_boundary_lengths() {
        let mut rng = StdRng::seed_from_u64(32);
        for len in [1usize, 3, 4, 5, 31, 32, 33, 63, 64, 65, 96, 127, 128, 129] {
            for e in [0u32, 1, 4, 40] {
                let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..SOA_LANES)
                    .map(|_| {
                        let reference = random_seq(len, &mut rng);
                        let read =
                            mutate_with_edits(&reference, rng.gen_range(0..=6), 0.3, &mut rng);
                        (read, reference)
                    })
                    .collect();
                let slices: Vec<(&[u8], &[u8])> = pairs
                    .iter()
                    .map(|(r, s)| (r.as_slice(), s.as_slice()))
                    .collect();
                let group = SoaGroup::encode_slices(&slices).unwrap();
                let lane_decisions = shouji_kernel_x4(&group, e);
                for (lane, (read, reference)) in pairs.iter().enumerate() {
                    let expected = shouji_pair_decision(read, reference, e);
                    assert_eq!(lane_decisions[lane], expected, "len = {len}, e = {e}");
                }
            }
        }
    }

    /// The per-bit reference twin must match the per-byte production sweep
    /// byte-for-byte, including ragged lengths, non-canonical bytes (raw
    /// ASCII semantics: `'a' ≠ 'A'`, `'N'` mismatches everything) and huge
    /// thresholds that exercise the band clamp.
    #[test]
    fn per_byte_path_matches_its_per_bit_reference_twin() {
        let mut rng = StdRng::seed_from_u64(33);
        for case in 0..400 {
            let len = rng.gen_range(0usize..=96);
            let e = if case % 17 == 0 {
                u32::MAX
            } else {
                rng.gen_range(0u32..=8)
            };
            let reference = random_seq(len, &mut rng);
            let mut read = if len == 0 {
                Vec::new()
            } else {
                mutate_with_edits(&reference, rng.gen_range(0..=8), 0.3, &mut rng)
            };
            if case % 5 == 0 && !read.is_empty() {
                let mid = read.len() / 2;
                read[mid] = if case % 10 == 0 { b'N' } else { b'a' };
            }
            if case % 7 == 0 {
                read.pop();
            }
            assert_eq!(
                shouji_pair_decision(&read, &reference, e),
                shouji_pair_decision_reference(&read, &reference, e),
                "case {case}: len = {len}, e = {e}"
            );
        }
    }

    #[test]
    fn block_driver_matches_per_pair_decisions_with_mixed_pairs() {
        // Mixed lengths, ragged pairs, empty pairs, and lowercase/N bases —
        // the latter two must take the per-byte fallback because Shouji's
        // scalar sweep is case-sensitive while the 2-bit lanes are not.
        let mut rng = StdRng::seed_from_u64(33);
        let e = 4u32;
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0..97 {
            let len = match i % 5 {
                0 | 1 => 100,
                2 => 64,
                3 => 33,
                _ => 100,
            };
            let reference = random_seq(len, &mut rng);
            let mut read = mutate_with_edits(&reference, rng.gen_range(0..8), 0.3, &mut rng);
            if i % 7 == 0 {
                read[len / 2] = read[len / 2].to_ascii_lowercase();
            }
            if i % 11 == 0 {
                read[len / 3] = b'N';
            }
            if i % 13 == 0 {
                read.pop();
            }
            pairs.push((read, reference));
        }
        pairs.push((Vec::new(), Vec::new()));
        let slices: Vec<(&[u8], &[u8])> = pairs
            .iter()
            .map(|(r, s)| (r.as_slice(), s.as_slice()))
            .collect();
        let expected: Vec<FilterDecision> = pairs
            .iter()
            .map(|(read, reference)| shouji_pair_decision(read, reference, e))
            .collect();
        let lanes = shouji_filter_block_slices(&slices, e, SimdMode::Lanes);
        assert_eq!(lanes, expected);
        let scalar = shouji_filter_block_slices(&slices, e, SimdMode::Scalar);
        assert_eq!(scalar, expected);
    }

    #[test]
    fn filter_batch_is_identical_across_simd_modes() {
        let mut rng = StdRng::seed_from_u64(34);
        let batch: Vec<SequencePair> = (0..600)
            .map(|_| {
                let reference = random_seq(100, &mut rng);
                let read = mutate_with_edits(&reference, rng.gen_range(0..10), 0.3, &mut rng);
                SequencePair::new(read, reference)
            })
            .collect();
        let filter = ShoujiFilter::new(5);
        let lanes = filter
            .clone()
            .with_simd_mode(SimdMode::Lanes)
            .filter_batch(&batch);
        let scalar = filter.with_simd_mode(SimdMode::Scalar).filter_batch(&batch);
        assert_eq!(lanes, scalar);
        let per_pair: Vec<FilterDecision> = batch
            .iter()
            .map(|p| shouji_pair_decision(&p.read, &p.reference, 5))
            .collect();
        assert_eq!(lanes, per_pair);
    }
}
