//! The common interface every pre-alignment filter implements.

use gk_seq::pairs::SequencePair;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Outcome of filtering one (read, reference segment) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterDecision {
    /// True if the pair passes the filter and should proceed to verification.
    pub accepted: bool,
    /// The filter's (approximate) edit-distance estimate. GateKeeper-GPU "does not
    /// calculate but approximates the edit distance between pairs" (§3.4); the
    /// estimate is written back alongside the accept/reject bit.
    pub estimated_edits: u32,
    /// True if the pair was passed through without filtration because it contains
    /// an unknown base (`N`) — the *undefined pair* handling of §3.3.
    pub undefined: bool,
}

impl FilterDecision {
    /// An accept decision produced by actual filtration.
    pub fn accept(estimated_edits: u32) -> FilterDecision {
        FilterDecision {
            accepted: true,
            estimated_edits,
            undefined: false,
        }
    }

    /// A reject decision produced by actual filtration.
    pub fn reject(estimated_edits: u32) -> FilterDecision {
        FilterDecision {
            accepted: false,
            estimated_edits,
            undefined: false,
        }
    }

    /// The free pass given to a pair containing an unknown base call.
    pub fn undefined_pass() -> FilterDecision {
        FilterDecision {
            accepted: true,
            estimated_edits: 0,
            undefined: true,
        }
    }
}

/// FNV-1a digest of a decision sequence — the oracle the differential
/// SIMD == scalar sweeps and the `simd_speedup` acceptance bench compare:
/// byte-identical decisions in identical order, nothing weaker.
pub fn decision_digest(decisions: &[FilterDecision]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    for d in decisions {
        let word = (u64::from(d.estimated_edits) << 2)
            | (u64::from(d.accepted) << 1)
            | u64::from(d.undefined);
        h = (h ^ word).wrapping_mul(0x0000_0100_0000_01b3); // FNV-1a prime
    }
    h
}

/// A pre-alignment filter: decides per pair whether expensive verification can be
/// skipped. Implementations carry their error threshold.
pub trait PreAlignmentFilter: Sync {
    /// Human-readable filter name, as used in the paper's tables.
    fn name(&self) -> &str;

    /// The error threshold `e` this filter instance was configured with.
    fn threshold(&self) -> u32;

    /// Filters a single pair.
    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision;

    /// Filters a batch of pairs in parallel. The default implementation fans the
    /// pairs out across the work-stealing pool (chunked, order-preserving — the
    /// decisions vector is identical to a sequential pass), which is also how
    /// the multicore GateKeeper-CPU baseline of the paper is organised.
    fn filter_batch(&self, pairs: &[SequencePair]) -> Vec<FilterDecision> {
        pairs
            .par_iter()
            .map(|p| self.filter_pair(&p.read, &p.reference))
            .collect()
    }

    /// Convenience: number of accepted pairs in a batch.
    fn count_accepted(&self, pairs: &[SequencePair]) -> usize {
        self.filter_batch(pairs)
            .iter()
            .filter(|d| d.accepted)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AcceptAll;
    impl PreAlignmentFilter for AcceptAll {
        fn name(&self) -> &str {
            "accept-all"
        }
        fn threshold(&self) -> u32 {
            0
        }
        fn filter_pair(&self, _read: &[u8], _reference: &[u8]) -> FilterDecision {
            FilterDecision::accept(0)
        }
    }

    struct RejectAll;
    impl PreAlignmentFilter for RejectAll {
        fn name(&self) -> &str {
            "reject-all"
        }
        fn threshold(&self) -> u32 {
            0
        }
        fn filter_pair(&self, _read: &[u8], _reference: &[u8]) -> FilterDecision {
            FilterDecision::reject(99)
        }
    }

    fn pairs(n: usize) -> Vec<SequencePair> {
        (0..n)
            .map(|i| SequencePair::new(vec![b"ACGT"[i % 4]; 8], b"ACGTACGT".to_vec()))
            .collect()
    }

    #[test]
    fn decision_constructors() {
        assert!(FilterDecision::accept(3).accepted);
        assert!(!FilterDecision::reject(9).accepted);
        let undef = FilterDecision::undefined_pass();
        assert!(undef.accepted && undef.undefined);
    }

    #[test]
    fn default_batch_filtering_matches_per_pair() {
        let filter = AcceptAll;
        let batch = filter.filter_batch(&pairs(37));
        assert_eq!(batch.len(), 37);
        assert!(batch.iter().all(|d| d.accepted));
        assert_eq!(filter.count_accepted(&pairs(37)), 37);
    }

    #[test]
    fn count_accepted_with_reject_all_is_zero() {
        assert_eq!(RejectAll.count_accepted(&pairs(10)), 0);
    }

    #[test]
    fn decision_digest_is_order_and_field_sensitive() {
        let a = [FilterDecision::accept(1), FilterDecision::reject(2)];
        let b = [FilterDecision::reject(2), FilterDecision::accept(1)];
        assert_ne!(decision_digest(&a), decision_digest(&b));
        let a_copy = a;
        assert_eq!(decision_digest(&a), decision_digest(&a_copy));
        assert_ne!(
            decision_digest(&[FilterDecision::accept(0)]),
            decision_digest(&[FilterDecision::undefined_pass()]),
        );
        // Empty input hashes to the FNV offset basis.
        assert_eq!(decision_digest(&[]), 0xcbf2_9ce4_8422_2325);
    }
}
