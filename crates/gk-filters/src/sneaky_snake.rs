//! SneakySnake pre-alignment filter (Alser et al. 2020).
//!
//! SneakySnake reformulates approximate string matching as a single-net routing
//! problem (§2.3): build a "chip maze" of `2e + 1` rows (one per diagonal within
//! the edit band) and `n` columns, where a cell is an *obstacle* if the two bases
//! on that diagonal/column disagree. A signal (the snake) must travel from the
//! first to the last column; it may switch rows freely, and passing through an
//! obstacle costs one edit. The greedy solution — repeatedly take the longest
//! obstacle-free horizontal segment available from the current column, then pay one
//! edit to cross into the next column — yields a lower bound on the true edit
//! distance, which is why SneakySnake produces no false rejects and the fewest
//! false accepts of all the filters compared in the paper.

use crate::bitvec::{zero_run_length_in_words_reference, BaseMask};
use crate::simd::{
    build_mask_rows, canonical_acgt, filter_block_slices_with, set_range_rows, shl_rows, shr_rows,
    LaneMask, LaneRow, SimdMode, LANE_BLOCK_PAIRS, WORD_BITS,
};
use crate::traits::{FilterDecision, PreAlignmentFilter};
use gk_seq::pairs::{SequencePair, SoaGroup, SOA_LANES};
use rayon::prelude::*;

/// The SneakySnake pre-alignment filter.
#[derive(Debug, Clone)]
pub struct SneakySnakeFilter {
    threshold: u32,
    simd: SimdMode,
}

impl SneakySnakeFilter {
    /// Creates a SneakySnake filter for error threshold `e`. The SIMD mode is
    /// resolved against `GK_SIMD` once, here — not per batch.
    pub fn new(threshold: u32) -> SneakySnakeFilter {
        SneakySnakeFilter {
            threshold,
            simd: SimdMode::Auto.resolve(),
        }
    }

    /// Selects the SIMD mode for `filter_batch` (resolved immediately; `Auto`
    /// consults `GK_SIMD` now, not on the hot path). Decisions are
    /// byte-identical across modes; only throughput changes.
    pub fn with_simd_mode(mut self, simd: SimdMode) -> SneakySnakeFilter {
        self.simd = simd.resolve();
        self
    }

    /// The resolved SIMD mode this instance runs batches with.
    pub fn simd_mode(&self) -> SimdMode {
        self.simd
    }

    /// Length of the obstacle-free run starting at column `col` on diagonal `diag`
    /// (`diag` is the reference offset relative to the read, in `[-e, e]`).
    fn free_run(read: &[u8], reference: &[u8], diag: isize, col: usize, max_len: usize) -> usize {
        let mut len = 0usize;
        while col + len < max_len {
            let r_idx = col + len;
            let t_idx = r_idx as isize + diag;
            if t_idx < 0 || t_idx as usize >= reference.len() {
                break;
            }
            if read[r_idx] != reference[t_idx as usize] {
                break;
            }
            len += 1;
        }
        len
    }

    /// The greedy snake traversal: returns the number of edits (obstacles crossed).
    fn count_obstacles(read: &[u8], reference: &[u8], e: u32) -> u32 {
        let len = read.len().min(reference.len());
        if len == 0 {
            return 0;
        }
        // Diagonals whose offset lands outside the reference for every column
        // yield empty runs; clamp the sweep to the reachable band so a huge
        // threshold does not turn each column advance into ~2^33 no-op probes.
        let lo = -((e as usize).min(len - 1) as isize);
        let hi = (e as usize).min(reference.len() - 1) as isize;
        let mut col = 0usize;
        let mut edits = 0u32;
        while col < len {
            let mut best = 0usize;
            for diag in lo..=hi {
                let run = Self::free_run(read, reference, diag, col, len);
                if run > best {
                    best = run;
                }
                if col + best >= len {
                    break;
                }
            }
            col += best;
            if col < len {
                // Crossing the obstacle in the next column costs one edit.
                edits += 1;
                col += 1;
            }
        }
        edits
    }
}

/// Decision for one pair on the per-byte scalar path.
pub fn sneaky_snake_pair_decision(read: &[u8], reference: &[u8], e: u32) -> FilterDecision {
    let edits = SneakySnakeFilter::count_obstacles(read, reference, e);
    if edits <= e {
        FilterDecision::accept(edits)
    } else {
        FilterDecision::reject(edits)
    }
}

/// Per-bit reference twin of [`sneaky_snake_pair_decision`] — the
/// `SimdMode::Scalar` differential leg, mirroring the GateKeeper and MAGNET
/// reference paths.
///
/// Materialises the full chip maze the paper describes (one obstacle
/// [`BaseMask`] per in-band diagonal, built from the same raw ASCII
/// comparisons as the per-byte walker, with out-of-range columns as
/// obstacles) and runs the same greedy traversal probing every free run one
/// bit at a time through [`zero_run_length_in_words_reference`]. Decisions
/// are byte-identical to the per-byte walker and the lane kernel; only
/// throughput differs.
pub fn sneaky_snake_pair_decision_reference(
    read: &[u8],
    reference: &[u8],
    e: u32,
) -> FilterDecision {
    let len = read.len().min(reference.len());
    if len == 0 {
        return FilterDecision::accept(0);
    }
    // Same band clamp as the per-byte walker: out-of-band diagonals are
    // all-obstacle and contribute no runs.
    let lo = -((e as usize).min(len - 1) as isize);
    let hi = (e as usize).min(reference.len() - 1) as isize;
    let maze: Vec<BaseMask> = (lo..=hi)
        .map(|diag| {
            BaseMask::from_bools((0..len).map(|col| {
                let t = col as isize + diag;
                t < 0 || t as usize >= reference.len() || read[col] != reference[t as usize]
            }))
        })
        .collect();
    let mut col = 0usize;
    let mut edits = 0u32;
    while col < len {
        let mut best = 0usize;
        for mask in &maze {
            let run = zero_run_length_in_words_reference(mask.words(), col, len);
            if run > best {
                best = run;
            }
        }
        col += best;
        if col < len {
            edits += 1;
            col += 1;
        }
    }
    if edits <= e {
        FilterDecision::accept(edits)
    } else {
        FilterDecision::reject(edits)
    }
}

/// The length of the zero run starting at `start` (clipped to `len`) in one
/// lane's column of a row-major `[LaneRow]` mask — the strided twin of
/// [`crate::bitvec::zero_run_length_in_words`], reading `rows[row][lane]` in
/// place so the
/// kernel never materialises per-lane word vectors.
fn strided_zero_run(rows: &[LaneRow], lane: usize, start: usize, len: usize) -> usize {
    let mut pos = start;
    while pos < len {
        let bit = pos % WORD_BITS;
        let word = rows[pos / WORD_BITS][lane] >> bit;
        if word != 0 {
            return (pos + word.trailing_zeros() as usize).min(len) - start;
        }
        pos += WORD_BITS - bit;
    }
    len - start
}

/// Runs SneakySnake on all lanes of a struct-of-arrays group at once.
/// Decisions of inactive lanes (`lane >= group.lanes`) are meaningless.
///
/// The `2·min(e, len−1) + 1` diagonal obstacle masks are built lane-parallel
/// with the same row primitives as the other kernels; each free-run probe is
/// then a whole-word trailing-zeros scan instead of a per-byte walk. The
/// traversal itself is where lanes diverge — each snake reaches the last
/// column after a different number of greedy steps — so the group steps
/// round-major and retires finished lanes from a [`LaneMask`] while the rest
/// keep walking.
pub fn sneaky_snake_kernel_x4(group: &SoaGroup, e: u32) -> [FilterDecision; SOA_LANES] {
    let len = group.len;
    debug_assert!(len > 0, "SoaGroup guarantees a nonzero length");
    let mask_rows = len.div_ceil(WORD_BITS);

    // Equal-length lanes make the scalar path's asymmetric band clamps
    // coincide: lo = −min(e, len−1), hi = +min(e, len−1).
    let maxd = (e as usize).min(len - 1);

    // All diagonal masks live in one flat row-major buffer (diagonal-major,
    // `mask_rows` rows each); the traversal probes them in place through
    // [`strided_zero_run`], so the whole group costs two mask allocations
    // plus the memo below instead of per-diagonal and per-lane vectors.
    let num_diags = 2 * maxd + 1;
    let mut diag_masks = vec![[0u64; SOA_LANES]; num_diags * mask_rows];
    let mut shifted = vec![[0u64; SOA_LANES]; group.ref_words.len()];
    for (d_idx, rows) in diag_masks.chunks_exact_mut(mask_rows).enumerate() {
        let d = d_idx as isize - maxd as isize;
        // Diagonal d compares read[col] with ref[col + d]: shift the
        // *reference* so position col + d lands at col, then force the
        // out-of-range columns (t < 0 or t ≥ len) to obstacles — the shift
        // vacates them with zero bits, i.e. 'A' codes that could falsely
        // match.
        let mismatch_rows: &[LaneRow] = if d == 0 {
            &group.ref_words
        } else if d > 0 {
            shr_rows(&group.ref_words, 2 * d as usize, &mut shifted);
            &shifted
        } else {
            shl_rows(&group.ref_words, 2 * (-d) as usize, &mut shifted);
            &shifted
        };
        build_mask_rows(&group.read_words, mismatch_rows, len, rows);
        if d > 0 {
            set_range_rows(rows, len, len - d as usize, len);
        } else if d < 0 {
            set_range_rows(rows, len, 0, (-d) as usize);
        }
    }

    let mut cols = [0usize; SOA_LANES];
    let mut edits = [0u32; SOA_LANES];

    // Round-major greedy traversal: every round advances each active snake by
    // one greedy step (longest free run over the band, then one edit to cross
    // the next obstacle). Each step advances the column by at least one, so
    // the loop terminates after at most `len` rounds. Probes always rescan
    // from the current column — a next-obstacle memo can never help here,
    // because every step advances the column past the probed obstacle of
    // *every* diagonal (the best run's obstacle is crossed, and all other
    // runs are shorter still).
    let mut active = LaneMask::active(group.lanes);
    while active.any() {
        for lane in 0..group.lanes {
            if !active.is_active(lane) {
                continue;
            }
            let col = cols[lane];
            let mut best = 0usize;
            for d_idx in 0..num_diags {
                let rows = &diag_masks[d_idx * mask_rows..][..mask_rows];
                let run = strided_zero_run(rows, lane, col, len);
                if run > best {
                    best = run;
                }
                if col + best >= len {
                    break;
                }
            }
            cols[lane] += best;
            if cols[lane] < len {
                // Crossing the obstacle in the next column costs one edit.
                edits[lane] += 1;
                cols[lane] += 1;
            }
            if cols[lane] >= len {
                active.retire(lane);
            }
        }
    }

    let mut out = [FilterDecision::accept(0); SOA_LANES];
    for (lane, &lane_edits) in edits.iter().enumerate().take(group.lanes) {
        out[lane] = if lane_edits <= e {
            FilterDecision::accept(lane_edits)
        } else {
            FilterDecision::reject(lane_edits)
        };
    }
    out
}

/// Filters a block of raw ASCII pairs through SneakySnake, lane-parallel
/// where possible. The scalar traversal compares raw ASCII bytes
/// (`'a' ≠ 'A'`) while the lane kernel compares 2-bit codes, so lane
/// eligibility is restricted to uppercase `ACGT` pairs where the two
/// comparisons provably agree; everything else falls back to the per-byte
/// path. In scalar mode every pair runs the per-bit reference twin
/// ([`sneaky_snake_pair_decision_reference`]), mirroring the GateKeeper and
/// MAGNET scalar legs. Output order matches input order.
pub fn sneaky_snake_filter_block_slices(
    pairs: &[(&[u8], &[u8])],
    threshold: u32,
    mode: SimdMode,
) -> Vec<FilterDecision> {
    filter_block_slices_with(
        pairs,
        mode,
        |read, reference| canonical_acgt(read) && canonical_acgt(reference),
        |group| sneaky_snake_kernel_x4(group, threshold),
        |read, reference| sneaky_snake_pair_decision(read, reference, threshold),
        |read, reference| sneaky_snake_pair_decision_reference(read, reference, threshold),
    )
}

/// [`sneaky_snake_filter_block_slices`] over owned [`SequencePair`]s.
pub fn sneaky_snake_filter_block(
    pairs: &[SequencePair],
    threshold: u32,
    mode: SimdMode,
) -> Vec<FilterDecision> {
    let slices: Vec<(&[u8], &[u8])> = pairs
        .iter()
        .map(|p| (p.read.as_slice(), p.reference.as_slice()))
        .collect();
    sneaky_snake_filter_block_slices(&slices, threshold, mode)
}

impl PreAlignmentFilter for SneakySnakeFilter {
    fn name(&self) -> &str {
        "SneakySnake"
    }

    fn threshold(&self) -> u32 {
        self.threshold
    }

    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision {
        sneaky_snake_pair_decision(read, reference, self.threshold)
    }

    fn filter_batch(&self, pairs: &[SequencePair]) -> Vec<FilterDecision> {
        pairs
            .par_chunks(LANE_BLOCK_PAIRS)
            .flat_map(|block| sneaky_snake_filter_block(block, self.threshold, self.simd))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_align::edit_distance;
    use gk_seq::simulate::mutate_with_edits;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, rng: &mut StdRng) -> Vec<u8> {
        (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
    }

    /// Brute-force greedy traversal: enumerates the full `[-e, e]` band with
    /// naive per-byte runs, no band clamp and no early break, so it shares no
    /// shortcut with the production code. Callers keep `e` small enough for
    /// the unclamped band to stay cheap.
    fn brute_force_obstacles(read: &[u8], reference: &[u8], e: u32) -> u32 {
        let len = read.len().min(reference.len());
        let mut col = 0usize;
        let mut edits = 0u32;
        while col < len {
            let mut best = 0usize;
            for diag in -(e as i64)..=(e as i64) {
                let mut run = 0usize;
                while col + run < len {
                    let t = (col + run) as i64 + diag;
                    if t < 0
                        || t as usize >= reference.len()
                        || read[col + run] != reference[t as usize]
                    {
                        break;
                    }
                    run += 1;
                }
                best = best.max(run);
            }
            col += best;
            if col < len {
                edits += 1;
                col += 1;
            }
        }
        edits
    }

    #[test]
    fn exact_match_has_zero_obstacles() {
        let seq: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        let d = SneakySnakeFilter::new(0).filter_pair(&seq, &seq);
        assert!(d.accepted);
        assert_eq!(d.estimated_edits, 0);
    }

    #[test]
    fn single_substitution_costs_one_edit() {
        let a: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        let mut b = a.clone();
        b[50] = if b[50] == b'A' { b'C' } else { b'A' };
        let d = SneakySnakeFilter::new(2).filter_pair(&b, &a);
        assert!(d.accepted);
        assert_eq!(d.estimated_edits, 1);
    }

    #[test]
    fn estimate_is_a_lower_bound_within_the_band() {
        // Whenever the true edit distance fits inside the band (d ≤ e), the snake's
        // obstacle count never exceeds it — exactly why SneakySnake has no false
        // rejects. (Outside the band the count is meaningless but the pair would be
        // rejected by verification anyway.)
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            let reference = random_seq(100, &mut rng);
            let edits = rng.gen_range(0usize..15);
            let read = mutate_with_edits(&reference, edits, 0.3, &mut rng);
            let e = rng.gen_range(0u32..=10);
            let truth = edit_distance(&read, &reference);
            if truth > e {
                continue;
            }
            let estimate = SneakySnakeFilter::count_obstacles(&read, &reference, e);
            assert!(
                estimate <= truth,
                "estimate {estimate} exceeds true distance {truth} (e = {e})"
            );
        }
    }

    #[test]
    fn no_false_rejects() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let reference = random_seq(150, &mut rng);
            let e = rng.gen_range(0u32..=15);
            let read = mutate_with_edits(&reference, e as usize, 0.3, &mut rng);
            if edit_distance(&read, &reference) <= e {
                let d = SneakySnakeFilter::new(e).filter_pair(&read, &reference);
                assert!(d.accepted, "false reject at e = {e}");
            }
        }
    }

    #[test]
    fn dissimilar_pair_is_rejected() {
        let a = vec![b'A'; 100];
        let b = vec![b'T'; 100];
        assert!(!SneakySnakeFilter::new(9).filter_pair(&a, &b).accepted);
    }

    #[test]
    fn accepts_fewer_pairs_than_gatekeeper_on_divergent_population() {
        use crate::gatekeeper::GateKeeperGpuFilter;
        let mut rng = StdRng::seed_from_u64(3);
        let e = 5u32;
        let snake = SneakySnakeFilter::new(e);
        let gk = GateKeeperGpuFilter::new(e);
        let mut snake_accepts = 0;
        let mut gk_accepts = 0;
        for _ in 0..300 {
            let reference = random_seq(100, &mut rng);
            let edits = rng.gen_range(6usize..20);
            let read = mutate_with_edits(&reference, edits, 0.3, &mut rng);
            if edit_distance(&read, &reference) <= e {
                continue;
            }
            if snake.filter_pair(&read, &reference).accepted {
                snake_accepts += 1;
            }
            if gk.filter_pair(&read, &reference).accepted {
                gk_accepts += 1;
            }
        }
        assert!(snake_accepts <= gk_accepts);
    }

    #[test]
    fn huge_threshold_terminates() {
        // Regression: the diagonal sweep used to iterate the raw `-e..=e` range,
        // which at e = u32::MAX is ~8.6 billion no-op diagonals per column.
        let a: Vec<u8> = (0..101).map(|i| b"ACGT"[i % 4]).collect();
        let b: Vec<u8> = (0..97).map(|i| b"ACGT"[(i + 1) % 4]).collect();
        let d = SneakySnakeFilter::new(u32::MAX).filter_pair(&a, &b);
        assert!(d.accepted);
        // The clamped band covers every reachable diagonal, so the count matches
        // a band that is merely "large enough".
        assert_eq!(
            d.estimated_edits,
            SneakySnakeFilter::count_obstacles(&a, &b, 150)
        );
    }

    #[test]
    fn empty_pair_is_accepted() {
        assert!(SneakySnakeFilter::new(0).filter_pair(b"", b"").accepted);
    }

    #[test]
    fn metadata() {
        let f = SneakySnakeFilter::new(3);
        assert_eq!(f.name(), "SneakySnake");
        assert_eq!(f.threshold(), 3);
    }

    /// Equivalence sweep for the traversal against the independent
    /// brute-force scorer, with ragged lengths and e = 0 included.
    #[test]
    fn traversal_matches_brute_force_scorer() {
        let mut rng = StdRng::seed_from_u64(11);
        for case in 0..400 {
            let ref_len = rng.gen_range(1usize..=70);
            let reference = random_seq(ref_len, &mut rng);
            let read = if case % 3 == 0 {
                random_seq(rng.gen_range(1usize..=70), &mut rng)
            } else {
                mutate_with_edits(&reference, rng.gen_range(0usize..8), 0.4, &mut rng)
            };
            let e = rng.gen_range(0u32..=12);
            assert_eq!(
                SneakySnakeFilter::count_obstacles(&read, &reference, e),
                brute_force_obstacles(&read, &reference, e),
                "read {} bp vs reference {} bp at e = {e}",
                read.len(),
                reference.len(),
            );
        }
    }

    /// Satellite regression for short reads (the lengths around Shouji's
    /// window width double as the interesting snake lengths: the band clamp
    /// `min(e, len−1)` and the first/last-column edge cases all trigger
    /// here), pinned to the brute-force scorer.
    #[test]
    fn short_reads_match_brute_force() {
        let mut rng = StdRng::seed_from_u64(12);
        for len in [1usize, 3, 4, 5] {
            for _ in 0..50 {
                let reference = random_seq(len, &mut rng);
                let read = mutate_with_edits(&reference, rng.gen_range(0..=len), 0.5, &mut rng);
                for e in [0u32, 1, len.saturating_sub(1) as u32, len as u32] {
                    assert_eq!(
                        SneakySnakeFilter::count_obstacles(&read, &reference, e),
                        brute_force_obstacles(&read, &reference, e),
                        "len {len}, e = {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_x4_matches_per_pair_path_on_random_groups() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..200 {
            let len = rng.gen_range(1usize..=200);
            let e = rng.gen_range(0u32..=12);
            let lanes = rng.gen_range(1usize..=SOA_LANES);
            let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..lanes)
                .map(|_| {
                    let reference = random_seq(len, &mut rng);
                    let edits = rng.gen_range(0usize..=(e as usize + 4));
                    let read = mutate_with_edits(&reference, edits, 0.3, &mut rng);
                    (read, reference)
                })
                .collect();
            let slices: Vec<(&[u8], &[u8])> = pairs
                .iter()
                .map(|(r, s)| (r.as_slice(), s.as_slice()))
                .collect();
            let group = SoaGroup::encode_slices(&slices).expect("lane-eligible group");
            let lane_decisions = sneaky_snake_kernel_x4(&group, e);
            for (lane, (read, reference)) in pairs.iter().enumerate() {
                let expected = sneaky_snake_pair_decision(read, reference, e);
                assert_eq!(
                    lane_decisions[lane], expected,
                    "len = {len}, e = {e}, lane = {lane}"
                );
            }
        }
    }

    #[test]
    fn kernel_x4_handles_word_boundary_lengths() {
        let mut rng = StdRng::seed_from_u64(42);
        for len in [1usize, 3, 4, 5, 31, 32, 33, 63, 64, 65, 96, 127, 128, 129] {
            for e in [0u32, 1, 4, 40] {
                let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..SOA_LANES)
                    .map(|_| {
                        let reference = random_seq(len, &mut rng);
                        let read =
                            mutate_with_edits(&reference, rng.gen_range(0..=6), 0.3, &mut rng);
                        (read, reference)
                    })
                    .collect();
                let slices: Vec<(&[u8], &[u8])> = pairs
                    .iter()
                    .map(|(r, s)| (r.as_slice(), s.as_slice()))
                    .collect();
                let group = SoaGroup::encode_slices(&slices).unwrap();
                let lane_decisions = sneaky_snake_kernel_x4(&group, e);
                for (lane, (read, reference)) in pairs.iter().enumerate() {
                    let expected = sneaky_snake_pair_decision(read, reference, e);
                    assert_eq!(lane_decisions[lane], expected, "len = {len}, e = {e}");
                }
            }
        }
    }

    /// The per-bit reference twin must match the per-byte production walker
    /// byte-for-byte, including ragged lengths, non-canonical bytes (raw
    /// ASCII semantics: `'a' ≠ 'A'`, `'N'` mismatches everything) and huge
    /// thresholds that exercise the band clamp.
    #[test]
    fn per_byte_path_matches_its_per_bit_reference_twin() {
        let mut rng = StdRng::seed_from_u64(44);
        for case in 0..400 {
            let len = rng.gen_range(0usize..=96);
            let e = if case % 17 == 0 {
                u32::MAX
            } else {
                rng.gen_range(0u32..=8)
            };
            let reference = random_seq(len, &mut rng);
            let mut read = if len == 0 {
                Vec::new()
            } else {
                mutate_with_edits(&reference, rng.gen_range(0..=8), 0.3, &mut rng)
            };
            if case % 5 == 0 && !read.is_empty() {
                let mid = read.len() / 2;
                read[mid] = if case % 10 == 0 { b'N' } else { b'a' };
            }
            if case % 7 == 0 {
                read.pop();
            }
            assert_eq!(
                sneaky_snake_pair_decision(&read, &reference, e),
                sneaky_snake_pair_decision_reference(&read, &reference, e),
                "case {case}: len = {len}, e = {e}"
            );
        }
    }

    #[test]
    fn block_driver_matches_per_pair_decisions_with_mixed_pairs() {
        // Mixed lengths, ragged pairs, empty pairs, and lowercase/N bases —
        // the latter two must take the per-byte fallback because the scalar
        // traversal is case-sensitive while the 2-bit lanes are not.
        let mut rng = StdRng::seed_from_u64(43);
        let e = 4u32;
        let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0..97 {
            let len = match i % 5 {
                0 | 1 => 100,
                2 => 64,
                3 => 33,
                _ => 100,
            };
            let reference = random_seq(len, &mut rng);
            let mut read = mutate_with_edits(&reference, rng.gen_range(0..8), 0.3, &mut rng);
            if i % 7 == 0 {
                read[len / 2] = read[len / 2].to_ascii_lowercase();
            }
            if i % 11 == 0 {
                read[len / 3] = b'N';
            }
            if i % 13 == 0 {
                read.pop();
            }
            pairs.push((read, reference));
        }
        pairs.push((Vec::new(), Vec::new()));
        let slices: Vec<(&[u8], &[u8])> = pairs
            .iter()
            .map(|(r, s)| (r.as_slice(), s.as_slice()))
            .collect();
        let expected: Vec<FilterDecision> = pairs
            .iter()
            .map(|(read, reference)| sneaky_snake_pair_decision(read, reference, e))
            .collect();
        let lanes = sneaky_snake_filter_block_slices(&slices, e, SimdMode::Lanes);
        assert_eq!(lanes, expected);
        let scalar = sneaky_snake_filter_block_slices(&slices, e, SimdMode::Scalar);
        assert_eq!(scalar, expected);
    }

    #[test]
    fn filter_batch_is_identical_across_simd_modes() {
        let mut rng = StdRng::seed_from_u64(44);
        let batch: Vec<SequencePair> = (0..600)
            .map(|_| {
                let reference = random_seq(100, &mut rng);
                let read = mutate_with_edits(&reference, rng.gen_range(0..10), 0.3, &mut rng);
                SequencePair::new(read, reference)
            })
            .collect();
        let filter = SneakySnakeFilter::new(5);
        let lanes = filter
            .clone()
            .with_simd_mode(SimdMode::Lanes)
            .filter_batch(&batch);
        let scalar = filter.with_simd_mode(SimdMode::Scalar).filter_batch(&batch);
        assert_eq!(lanes, scalar);
        let per_pair: Vec<FilterDecision> = batch
            .iter()
            .map(|p| sneaky_snake_pair_decision(&p.read, &p.reference, 5))
            .collect();
        assert_eq!(lanes, per_pair);
    }
}
