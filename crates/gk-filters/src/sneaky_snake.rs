//! SneakySnake pre-alignment filter (Alser et al. 2020).
//!
//! SneakySnake reformulates approximate string matching as a single-net routing
//! problem (§2.3): build a "chip maze" of `2e + 1` rows (one per diagonal within
//! the edit band) and `n` columns, where a cell is an *obstacle* if the two bases
//! on that diagonal/column disagree. A signal (the snake) must travel from the
//! first to the last column; it may switch rows freely, and passing through an
//! obstacle costs one edit. The greedy solution — repeatedly take the longest
//! obstacle-free horizontal segment available from the current column, then pay one
//! edit to cross into the next column — yields a lower bound on the true edit
//! distance, which is why SneakySnake produces no false rejects and the fewest
//! false accepts of all the filters compared in the paper.

use crate::traits::{FilterDecision, PreAlignmentFilter};

/// The SneakySnake pre-alignment filter.
#[derive(Debug, Clone)]
pub struct SneakySnakeFilter {
    threshold: u32,
}

impl SneakySnakeFilter {
    /// Creates a SneakySnake filter for error threshold `e`.
    pub fn new(threshold: u32) -> SneakySnakeFilter {
        SneakySnakeFilter { threshold }
    }

    /// Length of the obstacle-free run starting at column `col` on diagonal `diag`
    /// (`diag` is the reference offset relative to the read, in `[-e, e]`).
    fn free_run(read: &[u8], reference: &[u8], diag: isize, col: usize, max_len: usize) -> usize {
        let mut len = 0usize;
        while col + len < max_len {
            let r_idx = col + len;
            let t_idx = r_idx as isize + diag;
            if t_idx < 0 || t_idx as usize >= reference.len() {
                break;
            }
            if read[r_idx] != reference[t_idx as usize] {
                break;
            }
            len += 1;
        }
        len
    }

    /// The greedy snake traversal: returns the number of edits (obstacles crossed).
    fn count_obstacles(read: &[u8], reference: &[u8], e: u32) -> u32 {
        let len = read.len().min(reference.len());
        if len == 0 {
            return 0;
        }
        // Diagonals whose offset lands outside the reference for every column
        // yield empty runs; clamp the sweep to the reachable band so a huge
        // threshold does not turn each column advance into ~2^33 no-op probes.
        let lo = -((e as usize).min(len - 1) as isize);
        let hi = (e as usize).min(reference.len() - 1) as isize;
        let mut col = 0usize;
        let mut edits = 0u32;
        while col < len {
            let mut best = 0usize;
            for diag in lo..=hi {
                let run = Self::free_run(read, reference, diag, col, len);
                if run > best {
                    best = run;
                }
                if col + best >= len {
                    break;
                }
            }
            col += best;
            if col < len {
                // Crossing the obstacle in the next column costs one edit.
                edits += 1;
                col += 1;
            }
        }
        edits
    }
}

impl PreAlignmentFilter for SneakySnakeFilter {
    fn name(&self) -> &str {
        "SneakySnake"
    }

    fn threshold(&self) -> u32 {
        self.threshold
    }

    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision {
        let edits = Self::count_obstacles(read, reference, self.threshold);
        if edits <= self.threshold {
            FilterDecision::accept(edits)
        } else {
            FilterDecision::reject(edits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_align::edit_distance;
    use gk_seq::simulate::mutate_with_edits;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_seq(len: usize, rng: &mut StdRng) -> Vec<u8> {
        (0..len).map(|_| b"ACGT"[rng.gen_range(0..4)]).collect()
    }

    #[test]
    fn exact_match_has_zero_obstacles() {
        let seq: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        let d = SneakySnakeFilter::new(0).filter_pair(&seq, &seq);
        assert!(d.accepted);
        assert_eq!(d.estimated_edits, 0);
    }

    #[test]
    fn single_substitution_costs_one_edit() {
        let a: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        let mut b = a.clone();
        b[50] = if b[50] == b'A' { b'C' } else { b'A' };
        let d = SneakySnakeFilter::new(2).filter_pair(&b, &a);
        assert!(d.accepted);
        assert_eq!(d.estimated_edits, 1);
    }

    #[test]
    fn estimate_is_a_lower_bound_within_the_band() {
        // Whenever the true edit distance fits inside the band (d ≤ e), the snake's
        // obstacle count never exceeds it — exactly why SneakySnake has no false
        // rejects. (Outside the band the count is meaningless but the pair would be
        // rejected by verification anyway.)
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..300 {
            let reference = random_seq(100, &mut rng);
            let edits = rng.gen_range(0usize..15);
            let read = mutate_with_edits(&reference, edits, 0.3, &mut rng);
            let e = rng.gen_range(0u32..=10);
            let truth = edit_distance(&read, &reference);
            if truth > e {
                continue;
            }
            let estimate = SneakySnakeFilter::count_obstacles(&read, &reference, e);
            assert!(
                estimate <= truth,
                "estimate {estimate} exceeds true distance {truth} (e = {e})"
            );
        }
    }

    #[test]
    fn no_false_rejects() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let reference = random_seq(150, &mut rng);
            let e = rng.gen_range(0u32..=15);
            let read = mutate_with_edits(&reference, e as usize, 0.3, &mut rng);
            if edit_distance(&read, &reference) <= e {
                let d = SneakySnakeFilter::new(e).filter_pair(&read, &reference);
                assert!(d.accepted, "false reject at e = {e}");
            }
        }
    }

    #[test]
    fn dissimilar_pair_is_rejected() {
        let a = vec![b'A'; 100];
        let b = vec![b'T'; 100];
        assert!(!SneakySnakeFilter::new(9).filter_pair(&a, &b).accepted);
    }

    #[test]
    fn accepts_fewer_pairs_than_gatekeeper_on_divergent_population() {
        use crate::gatekeeper::GateKeeperGpuFilter;
        let mut rng = StdRng::seed_from_u64(3);
        let e = 5u32;
        let snake = SneakySnakeFilter::new(e);
        let gk = GateKeeperGpuFilter::new(e);
        let mut snake_accepts = 0;
        let mut gk_accepts = 0;
        for _ in 0..300 {
            let reference = random_seq(100, &mut rng);
            let edits = rng.gen_range(6usize..20);
            let read = mutate_with_edits(&reference, edits, 0.3, &mut rng);
            if edit_distance(&read, &reference) <= e {
                continue;
            }
            if snake.filter_pair(&read, &reference).accepted {
                snake_accepts += 1;
            }
            if gk.filter_pair(&read, &reference).accepted {
                gk_accepts += 1;
            }
        }
        assert!(snake_accepts <= gk_accepts);
    }

    #[test]
    fn huge_threshold_terminates() {
        // Regression: the diagonal sweep used to iterate the raw `-e..=e` range,
        // which at e = u32::MAX is ~8.6 billion no-op diagonals per column.
        let a: Vec<u8> = (0..101).map(|i| b"ACGT"[i % 4]).collect();
        let b: Vec<u8> = (0..97).map(|i| b"ACGT"[(i + 1) % 4]).collect();
        let d = SneakySnakeFilter::new(u32::MAX).filter_pair(&a, &b);
        assert!(d.accepted);
        // The clamped band covers every reachable diagonal, so the count matches
        // a band that is merely "large enough".
        assert_eq!(
            d.estimated_edits,
            SneakySnakeFilter::count_obstacles(&a, &b, 150)
        );
    }

    #[test]
    fn empty_pair_is_accepted() {
        assert!(SneakySnakeFilter::new(0).filter_pair(b"", b"").accepted);
    }

    #[test]
    fn metadata() {
        let f = SneakySnakeFilter::new(3);
        assert_eq!(f.name(), "SneakySnake");
        assert_eq!(f.threshold(), 3);
    }
}
