//! # gk-filters
//!
//! Pre-alignment filters: the improved GateKeeper algorithm of GateKeeper-GPU and
//! every baseline the paper compares against.
//!
//! A *pre-alignment filter* answers one question per (read, candidate reference
//! segment) pair: could this pair possibly align within `e` edits? Pairs that
//! cannot are rejected before the expensive dynamic-programming verification step.
//! A useful filter must never reject a pair that would verify (no false rejects)
//! and should reject as many hopeless pairs as possible (few false accepts).
//!
//! Implemented filters (all behind [`PreAlignmentFilter`]):
//!
//! | Filter | Paper | Notes |
//! |---|---|---|
//! | [`GateKeeperGpuFilter`] | this paper | GateKeeper with the leading/trailing-bit fix of §3.4 |
//! | [`GateKeeperFpgaFilter`] | Alser et al. 2017 | original GateKeeper semantics (no boundary fix) |
//! | [`ShdFilter`] | Xin et al. 2015 | Shifted Hamming Distance; same mask pipeline as GateKeeper |
//! | [`MagnetFilter`] | Alser et al. 2017 (MAGNET) | greedy extraction of longest zero segments |
//! | [`ShoujiFilter`] | Alser et al. 2019 | sliding-window neighborhood-map filter |
//! | [`SneakySnakeFilter`] | Alser et al. 2020 | single-net-routing greedy, exact lower bound |
//!
//! The [`accuracy`] module evaluates any filter against the Edlib-equivalent ground
//! truth from `gk-align`, producing the false-accept / false-reject / true-reject
//! counts reported in Figure 4, Figure 5 and Supplementary Tables S.2–S.12.

#![warn(missing_docs)]

pub mod accuracy;
pub mod bitvec;
pub mod gatekeeper;
pub mod magnet;
pub mod shouji;
pub mod simd;
pub mod sneaky_snake;
pub mod traits;
pub mod words;

pub use accuracy::{evaluate_filter, evaluate_with_truth, ground_truth_distances, AccuracyReport};
pub use bitvec::BaseMask;
pub use gatekeeper::{
    gatekeeper_kernel, gatekeeper_kernel_reference, EditCounting, GateKeeperConfig,
    GateKeeperFpgaFilter, GateKeeperGpuFilter, ShdFilter,
};
pub use magnet::{
    magnet_filter_block, magnet_filter_block_slices, magnet_kernel_x4, magnet_pair_decision,
    magnet_pair_decision_reference, MagnetFilter,
};
pub use shouji::{
    shouji_filter_block, shouji_filter_block_slices, shouji_kernel_x4, shouji_pair_decision,
    shouji_pair_decision_reference, ShoujiFilter,
};
pub use simd::{
    gatekeeper_filter_block, gatekeeper_filter_block_packed, gatekeeper_filter_block_slices,
    gatekeeper_kernel_x4, LaneMask, SimdMode, SIMD_MODE_ENV,
};
pub use sneaky_snake::{
    sneaky_snake_filter_block, sneaky_snake_filter_block_slices, sneaky_snake_kernel_x4,
    sneaky_snake_pair_decision, sneaky_snake_pair_decision_reference, SneakySnakeFilter,
};
pub use traits::{decision_digest, FilterDecision, PreAlignmentFilter};
