//! Property-based tests for the pre-alignment filters.
//!
//! The invariant that matters most is the paper's central accuracy claim: the
//! GateKeeper-GPU filter never rejects a pair whose true edit distance is within
//! the threshold (zero false rejects), for any read content, threshold, or edit mix.

use gk_align::edit_distance;
use gk_filters::bitvec::{
    longest_zero_run_in_words, longest_zero_run_in_words_reference, zero_run_length_in_words,
    zero_run_length_in_words_reference, BaseMask,
};
use gk_filters::gatekeeper::{gatekeeper_kernel, gatekeeper_kernel_reference, GateKeeperConfig};
use gk_filters::simd::{gatekeeper_filter_block_slices, SimdMode};
use gk_filters::words::{
    nibble_min, nibble_min_reference, nibble_popcounts, nibble_popcounts_reference,
    shift_left_bases, shift_right_bases, sum_nibbles, sum_nibbles_reference, xor_to_base_mask,
    xor_to_base_mask_reference,
};
use gk_filters::{
    decision_digest, magnet_filter_block_slices, magnet_kernel_x4, magnet_pair_decision,
    magnet_pair_decision_reference, shouji_filter_block_slices, shouji_kernel_x4,
    shouji_pair_decision, shouji_pair_decision_reference, sneaky_snake_filter_block_slices,
    sneaky_snake_kernel_x4, sneaky_snake_pair_decision, sneaky_snake_pair_decision_reference,
    GateKeeperFpgaFilter, GateKeeperGpuFilter, MagnetFilter, PreAlignmentFilter, ShdFilter,
    ShoujiFilter, SneakySnakeFilter,
};
use gk_seq::pairs::{SequencePair, SoaGroup};
use gk_seq::PackedSeq;
use proptest::prelude::*;
use rayon::slice::ParallelSlice;

fn dna(len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(vec![b'A', b'C', b'G', b'T']), len)
}

/// The filters that carry the paper's zero-false-reject guarantee for arbitrary
/// edit mixes (§5.1.1). MAGNET is excluded by design (it is the one baseline
/// documented to false-reject), and Shouji's guarantee only covers
/// substitution-only pairs — see `shouji_has_no_false_rejects_on_substitutions`.
fn sound_filters(e: u32) -> Vec<Box<dyn PreAlignmentFilter>> {
    vec![
        Box::new(GateKeeperGpuFilter::new(e)),
        Box::new(GateKeeperFpgaFilter::new(e)),
        Box::new(ShdFilter::new(e)),
        Box::new(SneakySnakeFilter::new(e)),
    ]
}

/// A pair differing from the reference by at most `max_subs` substitutions.
fn substituted_pair(len: usize, max_subs: usize) -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        dna(len),
        proptest::collection::vec(0usize..len, 0..=max_subs),
    )
        .prop_map(|(reference, positions)| {
            let mut read = reference.clone();
            for pos in positions {
                read[pos] = match read[pos] {
                    b'A' => b'C',
                    b'C' => b'G',
                    b'G' => b'T',
                    _ => b'A',
                };
            }
            (read, reference)
        })
}

/// A pair built from a reference plus a scripted list of edits, so the true edit
/// distance is bounded by construction.
fn edited_pair(len: usize, max_edits: usize) -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        dna(len),
        proptest::collection::vec((0usize..len, 0u8..3), 0..=max_edits),
    )
        .prop_map(move |(reference, edits)| {
            let mut read = reference.clone();
            for (pos, kind) in edits {
                let pos = pos.min(read.len().saturating_sub(1));
                match kind {
                    0 => {
                        // substitution
                        read[pos] = match read[pos] {
                            b'A' => b'C',
                            b'C' => b'G',
                            b'G' => b'T',
                            _ => b'A',
                        };
                    }
                    1 => {
                        // deletion (pad the tail to keep the read length)
                        read.remove(pos);
                        read.push(b'A');
                    }
                    _ => {
                        // insertion (truncate to keep the read length)
                        read.insert(pos, b'G');
                        read.truncate(len);
                    }
                }
            }
            (read, reference)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// GateKeeper-GPU never false-rejects: if the true edit distance is ≤ e, the
    /// pair is accepted.
    #[test]
    fn gatekeeper_gpu_has_no_false_rejects((read, reference) in edited_pair(100, 8), e in 0u32..=10) {
        let truth = edit_distance(&read, &reference);
        if truth <= e {
            let decision = GateKeeperGpuFilter::new(e).filter_pair(&read, &reference);
            prop_assert!(decision.accepted, "truth = {truth}, e = {e}");
        }
    }

    /// The same holds at 150 bp and 250 bp read lengths (multi-word masks).
    #[test]
    fn no_false_rejects_at_longer_read_lengths((read, reference) in edited_pair(250, 12), e in 0u32..=25) {
        let truth = edit_distance(&read, &reference);
        if truth <= e {
            let decision = GateKeeperGpuFilter::new(e).filter_pair(&read, &reference);
            prop_assert!(decision.accepted, "truth = {truth}, e = {e}");
        }
    }

    /// SneakySnake's obstacle count is a lower bound within the band, so it never
    /// false-rejects either.
    #[test]
    fn sneaky_snake_has_no_false_rejects((read, reference) in edited_pair(100, 8), e in 0u32..=10) {
        let truth = edit_distance(&read, &reference);
        if truth <= e {
            let decision = SneakySnakeFilter::new(e).filter_pair(&read, &reference);
            prop_assert!(decision.accepted, "truth = {truth}, e = {e}");
        }
    }

    /// Identical sequences pass every filter at every threshold.
    #[test]
    fn exact_matches_always_pass(reference in dna(100), e in 0u32..=10) {
        let filters: Vec<Box<dyn PreAlignmentFilter>> = vec![
            Box::new(GateKeeperGpuFilter::new(e)),
            Box::new(GateKeeperFpgaFilter::new(e)),
            Box::new(ShdFilter::new(e)),
            Box::new(MagnetFilter::new(e)),
            Box::new(SneakySnakeFilter::new(e)),
        ];
        for filter in &filters {
            prop_assert!(
                filter.filter_pair(&reference, &reference).accepted,
                "{} rejected an exact match at e = {e}",
                filter.name()
            );
        }
    }

    /// Accepting is monotone in the threshold: a pair accepted at e is accepted at
    /// every larger threshold.
    #[test]
    fn gatekeeper_acceptance_is_monotone_in_threshold((read, reference) in edited_pair(100, 10), e in 0u32..=8) {
        let at_e = GateKeeperGpuFilter::new(e).filter_pair(&read, &reference).accepted;
        let at_e_plus = GateKeeperGpuFilter::new(e + 2).filter_pair(&read, &reference).accepted;
        if at_e {
            prop_assert!(at_e_plus, "accepted at e = {e} but rejected at e = {}", e + 2);
        }
    }

    /// SHD and GateKeeper-FPGA implement the same algorithm and must agree.
    #[test]
    fn shd_equals_gatekeeper_fpga((read, reference) in edited_pair(150, 10), e in 0u32..=15) {
        let shd = ShdFilter::new(e).filter_pair(&read, &reference);
        let fpga = GateKeeperFpgaFilter::new(e).filter_pair(&read, &reference);
        prop_assert_eq!(shd.accepted, fpga.accepted);
        prop_assert_eq!(shd.estimated_edits, fpga.estimated_edits);
    }

    /// The paper's central soundness claim, checked against the Myers bit-vector
    /// oracle for every filter that carries the guarantee: if the true edit
    /// distance is within the threshold, no sound pre-alignment filter rejects.
    #[test]
    fn no_sound_filter_ever_false_rejects((read, reference) in edited_pair(100, 10), e in 0u32..=12) {
        let truth = edit_distance(&read, &reference);
        if truth <= e {
            for filter in sound_filters(e) {
                let decision = filter.filter_pair(&read, &reference);
                prop_assert!(
                    decision.accepted,
                    "{} false-rejected: truth = {truth}, e = {e}",
                    filter.name()
                );
            }
        }
    }

    /// The same soundness claim at 250 bp (multi-word masks, wider bands).
    #[test]
    fn no_sound_filter_ever_false_rejects_at_250bp((read, reference) in edited_pair(250, 14), e in 0u32..=20) {
        let truth = edit_distance(&read, &reference);
        if truth <= e {
            for filter in sound_filters(e) {
                let decision = filter.filter_pair(&read, &reference);
                prop_assert!(
                    decision.accepted,
                    "{} false-rejected: truth = {truth}, e = {e}",
                    filter.name()
                );
            }
        }
    }

    /// Shouji's guarantee covers substitution-only pairs; within that domain it
    /// must never reject a pair whose true edit distance is within threshold.
    #[test]
    fn shouji_has_no_false_rejects_on_substitutions((read, reference) in substituted_pair(100, 8), e in 0u32..=10) {
        let truth = edit_distance(&read, &reference);
        if truth <= e {
            let decision = ShoujiFilter::new(e).filter_pair(&read, &reference);
            prop_assert!(decision.accepted, "truth = {truth}, e = {e}");
        }
    }

    /// The filter decision only depends on the pair contents (purity / determinism).
    #[test]
    fn decisions_are_deterministic((read, reference) in edited_pair(100, 6), e in 0u32..=10) {
        let filter = GateKeeperGpuFilter::new(e);
        let a = filter.filter_pair(&read, &reference);
        let b = filter.filter_pair(&read, &reference);
        prop_assert_eq!(a, b);
    }

    /// Chunked parallel processing reassembles to the sequential result for
    /// arbitrary chunk sizes and input lengths: running `filter_batch` per
    /// `par_chunks` chunk and concatenating equals one whole-batch call.
    #[test]
    fn par_chunks_filter_batch_reassembles_to_sequential(
        raw_pairs in proptest::collection::vec(edited_pair(48, 6), 0..24),
        chunk_size in 1usize..10,
        e in 0u32..=6,
    ) {
        let pairs: Vec<SequencePair> = raw_pairs
            .into_iter()
            .map(|(read, reference)| SequencePair::new(read, reference))
            .collect();
        let filter = GateKeeperGpuFilter::new(e);
        let whole = filter.filter_batch(&pairs);
        let chunked: Vec<_> = pairs
            .par_chunks(chunk_size)
            .flat_map(|chunk| filter.filter_batch(chunk))
            .collect();
        prop_assert_eq!(whole, chunked);
    }

    /// The same reassembly property over plain data: a chunked parallel map
    /// concatenates to the sequential element-wise map, for any chunk size and
    /// any input length (including empty and chunk > len).
    #[test]
    fn par_chunks_map_reassembly_matches_sequential(
        data in proptest::collection::vec(0u32..10_000, 0..300),
        chunk_size in 1usize..40,
    ) {
        let parallel: Vec<u64> = data
            .par_chunks(chunk_size)
            .flat_map(|chunk| {
                chunk
                    .iter()
                    .map(|&x| u64::from(x) * 31 + 7)
                    .collect::<Vec<u64>>()
            })
            .collect();
        let sequential: Vec<u64> = data.iter().map(|&x| u64::from(x) * 31 + 7).collect();
        prop_assert_eq!(parallel, sequential);
        let chunk_count = data.par_chunks(chunk_size).count();
        prop_assert_eq!(chunk_count, data.len().div_ceil(chunk_size));
    }
}

// ---------------------------------------------------------------------------
// MAGNET: brute-force cross-check of the whole estimate pipeline.
// ---------------------------------------------------------------------------

/// Builds MAGNET's `2·min(e, len−1) + 1` masks from first principles using the
/// public word primitives: the Hamming mask plus, per shift distance, the
/// deletion/insertion masks with their vacated positions padded with 1s.
fn magnet_reference_masks(read: &[u8], reference: &[u8], e: u32) -> (Vec<BaseMask>, usize) {
    let read_packed = PackedSeq::from_ascii(read);
    let ref_packed = PackedSeq::from_ascii(reference);
    let len = read_packed.len().min(ref_packed.len());
    let mut masks = vec![xor_to_base_mask(
        read_packed.words(),
        ref_packed.words(),
        len,
    )];
    for k in 1..=(e as usize).min(len.saturating_sub(1)) {
        let mut del_mask = xor_to_base_mask(
            &shift_right_bases(read_packed.words(), k),
            ref_packed.words(),
            len,
        );
        del_mask.set_range(0, k);
        masks.push(del_mask);
        let mut ins_mask = xor_to_base_mask(
            &shift_left_bases(read_packed.words(), k),
            ref_packed.words(),
            len,
        );
        ins_mask.set_range(len - k, len);
        masks.push(ins_mask);
    }
    (masks, len)
}

/// Spec-faithful greedy extraction over explicit position sets: repeatedly take
/// the longest zero run across all masks inside any pending interval (leftmost
/// on ties), consume one divider position per interior side, at most `e + 1`
/// times; uncovered positions are the estimate. Naive O(len²)-per-round scans,
/// sharing no code with the implementation.
fn magnet_reference_estimate(masks: &[BaseMask], len: usize, e: u32) -> u32 {
    let mut intervals = vec![(0usize, len)];
    let mut covered = 0usize;
    for _ in 0..(e as usize).saturating_add(1).min(len + 1) {
        let mut best: Option<(usize, usize, usize)> = None;
        for (idx, &(start, end)) in intervals.iter().enumerate() {
            for mask in masks {
                let mut i = start;
                while i < end {
                    if mask.get(i) {
                        i += 1;
                        continue;
                    }
                    let run_start = i;
                    while i < end && !mask.get(i) {
                        i += 1;
                    }
                    let run_len = i - run_start;
                    let better = match best {
                        None => true,
                        Some((_, bs, bl)) => run_len > bl || (run_len == bl && run_start < bs),
                    };
                    if better {
                        best = Some((idx, run_start, run_len));
                    }
                }
            }
        }
        let Some((idx, run_start, run_len)) = best else {
            break;
        };
        covered += run_len;
        let (ivl_start, ivl_end) = intervals.remove(idx);
        if run_start > ivl_start + 1 {
            intervals.push((ivl_start, run_start - 1));
        }
        if run_start + run_len + 1 < ivl_end {
            intervals.push((run_start + run_len + 1, ivl_end));
        }
        intervals.sort_unstable();
    }
    (len - covered.min(len)) as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// MAGNET's reported estimate equals the brute-force reference built from
    /// first principles, for arbitrary pairs and thresholds — the regression
    /// net over the extraction loop's divider and tie-break bookkeeping.
    #[test]
    fn magnet_estimate_matches_brute_force_reference(
        (read, reference) in edited_pair(48, 8),
        e in 1u32..=8,
    ) {
        let (masks, len) = magnet_reference_masks(&read, &reference, e);
        let expected = magnet_reference_estimate(&masks, len, e);
        let decision = MagnetFilter::new(e).filter_pair(&read, &reference);
        prop_assert_eq!(
            decision.estimated_edits, expected,
            "read {:?} vs reference {:?} at e = {}", read, reference, e
        );
        prop_assert_eq!(decision.accepted, expected <= e);
    }

    /// The estimate is invariant under reversing both sequences' roles in the
    /// sense that it stays within [0, len] and rejects iff it exceeds e —
    /// guarding the threshold comparison around the extraction loop.
    #[test]
    fn magnet_estimate_is_bounded_by_length((read, reference) in edited_pair(48, 12), e in 1u32..=48) {
        let decision = MagnetFilter::new(e).filter_pair(&read, &reference);
        prop_assert!(decision.estimated_edits <= 48);
    }
}

// ---------------------------------------------------------------------------
// SIMD layer: widened word-parallel primitives vs. their per-bit references,
// with mask lengths deliberately pinned to the word-boundary edge cases
// (len == 0 and len % 64 == 0 included).
// ---------------------------------------------------------------------------

/// Boundary-heavy mask lengths: empty, word-exact multiples, and neighbors.
fn mask_len() -> impl Strategy<Value = usize> {
    proptest::sample::select(vec![
        0usize, 1, 31, 32, 33, 63, 64, 65, 96, 127, 128, 129, 191, 192, 200,
    ])
}

/// Raw backing words for a mask; `BaseMask::from_words` resizes and clears
/// the padding, so over- and under-length inputs are both fair game.
fn mask_words() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..=u64::MAX, 0..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `from_words` normalizes any raw buffer: exact word count for the length,
    /// every bit beyond `len` cleared — including at len == 0 and len % 64 == 0,
    /// where the padding mask degenerates.
    #[test]
    fn from_words_clears_dirty_padding(words in mask_words(), len in mask_len()) {
        let mask = BaseMask::from_words(words, len);
        prop_assert_eq!(mask.len(), len);
        prop_assert_eq!(mask.words().len(), len.div_ceil(64));
        let popcount: u32 = mask.words().iter().map(|w| w.count_ones()).sum();
        prop_assert_eq!(popcount, mask.count_ones());
        if len % 64 != 0 {
            let last = *mask.words().last().unwrap();
            prop_assert_eq!(last >> (len % 64), 0u64, "padding bits survived at len = {}", len);
        }
    }

    /// `ones` fills exactly `len` bits and counts as a single run (or zero runs
    /// for the empty mask), via both the widened and the per-bit counters.
    #[test]
    fn ones_is_exact_at_boundary_lengths(len in mask_len()) {
        let mask = BaseMask::ones(len);
        prop_assert_eq!(mask.count_ones() as usize, len);
        prop_assert_eq!(mask.count_runs(), u32::from(len > 0));
        prop_assert_eq!(mask.count_runs(), mask.count_runs_reference());
        prop_assert_eq!(mask.count_edits_windowed(3), mask.count_edits_windowed_reference(3));
    }

    /// Widened `set_range` equals the per-bit reference for every sub-range,
    /// including empty ranges and ranges ending exactly on word boundaries.
    #[test]
    fn set_range_matches_reference(
        words in mask_words(),
        len in mask_len(),
        s in 0usize..=200,
        t in 0usize..=200,
    ) {
        let mut wide = BaseMask::from_words(words, len);
        let mut narrow = wide.clone();
        let start = s.min(len);
        let end = t.clamp(start, len);
        wide.set_range(start, end);
        narrow.set_range_reference(start, end);
        prop_assert_eq!(wide.words(), narrow.words(), "range {}..{} at len {}", start, end, len);
    }

    /// Widened run counting and windowed edit counting equal their per-bit
    /// references for arbitrary bit patterns and window widths (including
    /// windows wider than a word).
    #[test]
    fn counters_match_reference(words in mask_words(), len in mask_len(), window in 1usize..=130) {
        let mask = BaseMask::from_words(words, len);
        prop_assert_eq!(mask.count_runs(), mask.count_runs_reference());
        prop_assert_eq!(
            mask.count_edits_windowed(window),
            mask.count_edits_windowed_reference(window)
        );
    }

    /// The morphological-closing amendment equals the per-bit run rewrite for
    /// any `max_run`, including 0, runs straddling word boundaries, and widths
    /// beyond one word (the delegation path).
    #[test]
    fn amend_matches_reference(words in mask_words(), len in mask_len(), max_run in 0usize..=130) {
        let mut wide = BaseMask::from_words(words, len);
        let mut narrow = wide.clone();
        wide.amend_short_zero_runs(max_run);
        narrow.amend_short_zero_runs_reference(max_run);
        prop_assert_eq!(wide.words(), narrow.words(), "max_run {} at len {}", max_run, len);
    }

    /// The log-step XOR-reduce equals the per-bit reference for arbitrary word
    /// arrays and lengths, including lengths past the arrays (missing words act
    /// as all-`A`, exactly like shifted-in padding).
    #[test]
    fn xor_reduce_matches_reference(
        a in proptest::collection::vec(0u32..=u32::MAX, 0..16),
        b in proptest::collection::vec(0u32..=u32::MAX, 0..16),
        len in 0usize..=224,
    ) {
        let wide = xor_to_base_mask(&a, &b, len);
        let narrow = xor_to_base_mask_reference(&a, &b, len);
        prop_assert_eq!(wide.len(), narrow.len());
        prop_assert_eq!(wide.words(), narrow.words());
    }

    /// The full widened kernel agrees with the per-bit reference kernel on
    /// bounded-edit pairs, for both boundary-handling variants.
    #[test]
    fn widened_kernel_matches_reference_on_edited_pairs(
        (read, reference) in edited_pair(100, 10),
        e in 0u32..=12,
    ) {
        let r = PackedSeq::from_ascii(&read);
        let f = PackedSeq::from_ascii(&reference);
        for config in [GateKeeperConfig::gpu(e), GateKeeperConfig::fpga(e)] {
            let wide = gatekeeper_kernel(&r, &f, &config);
            let narrow = gatekeeper_kernel_reference(&r, &f, &config);
            prop_assert_eq!(wide, narrow, "e = {}", e);
        }
    }

    /// The same agreement on unrelated ragged pairs (read and reference lengths
    /// independent, including empty and word-exact), with thresholds from 0 to
    /// far past the read length.
    #[test]
    fn widened_kernel_matches_reference_on_ragged_pairs(
        read in dna(200),
        reference in dna(200),
        read_len in proptest::sample::select(vec![0usize, 1, 31, 32, 33, 64, 100, 128, 200]),
        ref_len in proptest::sample::select(vec![0usize, 1, 31, 32, 33, 64, 100, 128, 200]),
        e in proptest::sample::select(vec![0u32, 1, 2, 5, 63, 64, 65, 1000]),
    ) {
        let r = PackedSeq::from_ascii(&read[..read_len]);
        let f = PackedSeq::from_ascii(&reference[..ref_len]);
        for config in [GateKeeperConfig::gpu(e), GateKeeperConfig::fpga(e)] {
            let wide = gatekeeper_kernel(&r, &f, &config);
            let narrow = gatekeeper_kernel_reference(&r, &f, &config);
            prop_assert_eq!(wide, narrow, "lens {}/{}, e = {}", read_len, ref_len, e);
        }
    }

    /// End to end: the lane block driver and the all-scalar block driver hand
    /// back identical decision vectors over mixed batches — ragged lengths,
    /// word-exact lengths, undefined (`N`) pairs, empty pairs.
    #[test]
    fn lane_block_driver_matches_scalar_block_driver(
        raw in proptest::collection::vec(
            (dna(96), dna(96), 0usize..=96, 0usize..=96, 0u8..=4),
            0..24,
        ),
        e in 0u32..=8,
    ) {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = raw
            .into_iter()
            .map(|(a, b, la, lb, tag)| {
                let mut read = a[..la].to_vec();
                let reference = b[..lb].to_vec();
                if tag == 0 && !read.is_empty() {
                    let mid = read.len() / 2;
                    read[mid] = b'N';
                }
                (read, reference)
            })
            .collect();
        let slices: Vec<(&[u8], &[u8])> = pairs
            .iter()
            .map(|(r, f)| (r.as_slice(), f.as_slice()))
            .collect();
        for config in [GateKeeperConfig::gpu(e), GateKeeperConfig::fpga(e)] {
            let lanes = gatekeeper_filter_block_slices(&slices, &config, SimdMode::Lanes);
            let scalar = gatekeeper_filter_block_slices(&slices, &config, SimdMode::Scalar);
            prop_assert_eq!(lanes, scalar, "e = {}", e);
        }
    }

    /// Both struct-of-arrays encode paths — straight from ASCII and transposed
    /// from packed `u32` words — lay every base out at the same LSB-first lane
    /// position, each under its own 2-bit coding (the codings differ on G/T,
    /// which XOR cannot see), with clean zeros beyond `len` and in the spare row.
    #[test]
    fn soa_encode_paths_lay_out_every_base_identically(
        pairs in proptest::collection::vec((dna(96), dna(96)), 1..=4),
        len in 1usize..=96,
    ) {
        let cut: Vec<(Vec<u8>, Vec<u8>)> = pairs
            .iter()
            .map(|(r, f)| (r[..len].to_vec(), f[..len].to_vec()))
            .collect();
        let slices: Vec<(&[u8], &[u8])> = cut
            .iter()
            .map(|(r, f)| (r.as_slice(), f.as_slice()))
            .collect();
        let from_ascii = SoaGroup::encode_slices(&slices).expect("eligible group");
        let packed: Vec<(PackedSeq, PackedSeq)> = cut
            .iter()
            .map(|(r, f)| (PackedSeq::from_ascii(r), PackedSeq::from_ascii(f)))
            .collect();
        let refs: Vec<(&PackedSeq, &PackedSeq)> = packed.iter().map(|(r, f)| (r, f)).collect();
        let from_packed = SoaGroup::from_packed(&refs).expect("eligible group");

        prop_assert_eq!(from_ascii.len, len);
        prop_assert_eq!(from_packed.len, len);
        prop_assert_eq!(from_ascii.lanes, cut.len());
        prop_assert_eq!(from_packed.lanes, cut.len());

        let code_at = |rows: &[[u64; 4]], lane: usize, i: usize| -> u64 {
            (rows[i / 32][lane] >> (2 * (i % 32))) & 3
        };
        for (lane, (read, reference)) in cut.iter().enumerate() {
            for i in 0..len {
                // ASCII fast path: (byte >> 1) & 3.
                prop_assert_eq!(
                    code_at(&from_ascii.read_words, lane, i),
                    u64::from((read[i] >> 1) & 3)
                );
                prop_assert_eq!(
                    code_at(&from_ascii.ref_words, lane, i),
                    u64::from((reference[i] >> 1) & 3)
                );
                // Packed path: the paper's A=00, C=01, G=10, T=11 coding.
                prop_assert_eq!(
                    code_at(&from_packed.read_words, lane, i),
                    u64::from(gk_seq::Base::from_ascii(read[i]).code().unwrap())
                );
                prop_assert_eq!(
                    code_at(&from_packed.ref_words, lane, i),
                    u64::from(gk_seq::Base::from_ascii(reference[i]).code().unwrap())
                );
            }
        }
        // Bases past `len` and the spare row must be zero in both layouts.
        for group in [&from_ascii, &from_packed] {
            for rows in [&group.read_words, &group.ref_words] {
                for lane in 0..group.lanes {
                    for i in len..rows.len() * 32 {
                        prop_assert_eq!(code_at(rows, lane, i), 0u64, "dirt at base {}", i);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lane-parallel MAGNET / Shouji / SneakySnake: differential SIMD oracles
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every widened primitive the new kernels lean on agrees bit-for-bit with
    /// its per-bit `_reference` twin over arbitrary words and clamped ranges.
    #[test]
    fn widened_primitives_match_reference_twins(
        x in 0u64..=u64::MAX,
        y in 0u64..=u64::MAX,
        words in mask_words(),
        start in 0usize..=300,
        end in 0usize..=300,
    ) {
        prop_assert_eq!(nibble_popcounts(x), nibble_popcounts_reference(x));
        prop_assert_eq!(sum_nibbles(x), sum_nibbles_reference(x));
        // `nibble_min`'s precondition: every nibble <= 7.
        let (a, b) = (x & 0x7777_7777_7777_7777, y & 0x7777_7777_7777_7777);
        prop_assert_eq!(nibble_min(a, b), nibble_min_reference(a, b));
        prop_assert_eq!(
            longest_zero_run_in_words(&words, start, end),
            longest_zero_run_in_words_reference(&words, start, end)
        );
        prop_assert_eq!(
            zero_run_length_in_words(&words, start, end),
            zero_run_length_in_words_reference(&words, start, end)
        );
    }

    /// The three new 4-lane kernels reproduce their per-pair paths exactly on
    /// random full and partial lane groups at every group length.
    #[test]
    fn new_lane_kernels_match_per_pair_decisions(
        pairs in proptest::collection::vec((dna(96), dna(96)), 1..=4),
        len in 1usize..=96,
        e in 0u32..=8,
    ) {
        let cut: Vec<(Vec<u8>, Vec<u8>)> = pairs
            .iter()
            .map(|(r, f)| (r[..len].to_vec(), f[..len].to_vec()))
            .collect();
        let slices: Vec<(&[u8], &[u8])> = cut
            .iter()
            .map(|(r, f)| (r.as_slice(), f.as_slice()))
            .collect();
        let group = SoaGroup::encode_slices(&slices).expect("eligible group");
        let magnet = magnet_kernel_x4(&group, e);
        let shouji = shouji_kernel_x4(&group, e);
        let snake = sneaky_snake_kernel_x4(&group, e);
        for (lane, (read, reference)) in cut.iter().enumerate() {
            prop_assert_eq!(
                magnet[lane],
                magnet_pair_decision(read, reference, e, false),
                "magnet lane {}, len {}, e {}", lane, len, e
            );
            prop_assert_eq!(
                shouji[lane],
                shouji_pair_decision(read, reference, e),
                "shouji lane {}, len {}, e {}", lane, len, e
            );
            prop_assert_eq!(
                snake[lane],
                sneaky_snake_pair_decision(read, reference, e),
                "sneaky-snake lane {}, len {}, e {}", lane, len, e
            );
            // The per-bit reference twins close the differential triangle:
            // lane kernel == widened per-pair path == scalar reference.
            prop_assert_eq!(
                magnet[lane],
                magnet_pair_decision_reference(read, reference, e),
                "magnet reference twin, lane {}, len {}, e {}", lane, len, e
            );
            prop_assert_eq!(
                shouji[lane],
                shouji_pair_decision_reference(read, reference, e),
                "shouji reference twin, lane {}, len {}, e {}", lane, len, e
            );
            prop_assert_eq!(
                snake[lane],
                sneaky_snake_pair_decision_reference(read, reference, e),
                "sneaky-snake reference twin, lane {}, len {}, e {}", lane, len, e
            );
        }
    }

    /// Block drivers for the three new filters: lane mode and all-scalar mode
    /// hand back digest-identical decision vectors over mixed batches — ragged
    /// lengths, undefined (`N`) pairs, lowercase bases (which the byte-exact
    /// Shouji/SneakySnake scalars treat as mismatches, forcing those pairs off
    /// the lane path), and empty pairs.
    #[test]
    fn new_filter_block_drivers_match_across_modes(
        raw in proptest::collection::vec(
            (dna(96), dna(96), 0usize..=96, 0usize..=96, 0u8..=5),
            0..24,
        ),
        e in 0u32..=8,
    ) {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = raw
            .into_iter()
            .map(|(a, b, la, lb, tag)| {
                let mut read = a[..la].to_vec();
                let reference = b[..lb].to_vec();
                if !read.is_empty() {
                    let mid = read.len() / 2;
                    if tag == 0 {
                        read[mid] = b'N';
                    } else if tag == 1 {
                        read[mid] = read[mid].to_ascii_lowercase();
                    }
                }
                (read, reference)
            })
            .collect();
        let slices: Vec<(&[u8], &[u8])> = pairs
            .iter()
            .map(|(r, f)| (r.as_slice(), f.as_slice()))
            .collect();

        let m_lanes = magnet_filter_block_slices(&slices, e, SimdMode::Lanes);
        let m_scalar = magnet_filter_block_slices(&slices, e, SimdMode::Scalar);
        prop_assert_eq!(decision_digest(&m_lanes), decision_digest(&m_scalar));
        prop_assert_eq!(m_lanes, m_scalar, "magnet, e = {}", e);

        let sh_lanes = shouji_filter_block_slices(&slices, e, SimdMode::Lanes);
        let sh_scalar = shouji_filter_block_slices(&slices, e, SimdMode::Scalar);
        prop_assert_eq!(decision_digest(&sh_lanes), decision_digest(&sh_scalar));
        prop_assert_eq!(sh_lanes, sh_scalar, "shouji, e = {}", e);

        let sn_lanes = sneaky_snake_filter_block_slices(&slices, e, SimdMode::Lanes);
        let sn_scalar = sneaky_snake_filter_block_slices(&slices, e, SimdMode::Scalar);
        prop_assert_eq!(decision_digest(&sn_lanes), decision_digest(&sn_scalar));
        prop_assert_eq!(sn_lanes, sn_scalar, "sneaky-snake, e = {}", e);
    }

    /// `SoaGroup` tail handling through the public `filter_batch` surface:
    /// batch sizes that are not multiples of 4 — including the empty batch and
    /// 1–3-pair partial groups — with maximal per-pair length spread produce
    /// digest-identical decisions in lane and scalar mode for every widened
    /// filter.
    #[test]
    fn tail_groups_and_length_spread_are_mode_invariant(
        raw in proptest::collection::vec((dna(96), dna(96), 1usize..=96), 0..=11),
        e in 0u32..=6,
    ) {
        let batch: Vec<SequencePair> = raw
            .iter()
            .map(|(r, f, len)| SequencePair::new(r[..*len].to_vec(), f[..*len].to_vec()))
            .collect();

        let magnet_lanes = MagnetFilter::new(e).with_simd_mode(SimdMode::Lanes);
        let magnet_scalar = MagnetFilter::new(e).with_simd_mode(SimdMode::Scalar);
        prop_assert_eq!(
            decision_digest(&magnet_lanes.filter_batch(&batch)),
            decision_digest(&magnet_scalar.filter_batch(&batch)),
            "magnet, batch of {}", batch.len()
        );

        let shouji_lanes = ShoujiFilter::new(e).with_simd_mode(SimdMode::Lanes);
        let shouji_scalar = ShoujiFilter::new(e).with_simd_mode(SimdMode::Scalar);
        prop_assert_eq!(
            decision_digest(&shouji_lanes.filter_batch(&batch)),
            decision_digest(&shouji_scalar.filter_batch(&batch)),
            "shouji, batch of {}", batch.len()
        );

        let snake_lanes = SneakySnakeFilter::new(e).with_simd_mode(SimdMode::Lanes);
        let snake_scalar = SneakySnakeFilter::new(e).with_simd_mode(SimdMode::Scalar);
        prop_assert_eq!(
            decision_digest(&snake_lanes.filter_batch(&batch)),
            decision_digest(&snake_scalar.filter_batch(&batch)),
            "sneaky-snake, batch of {}", batch.len()
        );
    }
}
