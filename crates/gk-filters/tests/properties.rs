//! Property-based tests for the pre-alignment filters.
//!
//! The invariant that matters most is the paper's central accuracy claim: the
//! GateKeeper-GPU filter never rejects a pair whose true edit distance is within
//! the threshold (zero false rejects), for any read content, threshold, or edit mix.

use gk_align::edit_distance;
use gk_filters::bitvec::BaseMask;
use gk_filters::words::{shift_left_bases, shift_right_bases, xor_to_base_mask};
use gk_filters::{
    GateKeeperFpgaFilter, GateKeeperGpuFilter, MagnetFilter, PreAlignmentFilter, ShdFilter,
    ShoujiFilter, SneakySnakeFilter,
};
use gk_seq::pairs::SequencePair;
use gk_seq::PackedSeq;
use proptest::prelude::*;
use rayon::slice::ParallelSlice;

fn dna(len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(vec![b'A', b'C', b'G', b'T']), len)
}

/// The filters that carry the paper's zero-false-reject guarantee for arbitrary
/// edit mixes (§5.1.1). MAGNET is excluded by design (it is the one baseline
/// documented to false-reject), and Shouji's guarantee only covers
/// substitution-only pairs — see `shouji_has_no_false_rejects_on_substitutions`.
fn sound_filters(e: u32) -> Vec<Box<dyn PreAlignmentFilter>> {
    vec![
        Box::new(GateKeeperGpuFilter::new(e)),
        Box::new(GateKeeperFpgaFilter::new(e)),
        Box::new(ShdFilter::new(e)),
        Box::new(SneakySnakeFilter::new(e)),
    ]
}

/// A pair differing from the reference by at most `max_subs` substitutions.
fn substituted_pair(len: usize, max_subs: usize) -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        dna(len),
        proptest::collection::vec(0usize..len, 0..=max_subs),
    )
        .prop_map(|(reference, positions)| {
            let mut read = reference.clone();
            for pos in positions {
                read[pos] = match read[pos] {
                    b'A' => b'C',
                    b'C' => b'G',
                    b'G' => b'T',
                    _ => b'A',
                };
            }
            (read, reference)
        })
}

/// A pair built from a reference plus a scripted list of edits, so the true edit
/// distance is bounded by construction.
fn edited_pair(len: usize, max_edits: usize) -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (
        dna(len),
        proptest::collection::vec((0usize..len, 0u8..3), 0..=max_edits),
    )
        .prop_map(move |(reference, edits)| {
            let mut read = reference.clone();
            for (pos, kind) in edits {
                let pos = pos.min(read.len().saturating_sub(1));
                match kind {
                    0 => {
                        // substitution
                        read[pos] = match read[pos] {
                            b'A' => b'C',
                            b'C' => b'G',
                            b'G' => b'T',
                            _ => b'A',
                        };
                    }
                    1 => {
                        // deletion (pad the tail to keep the read length)
                        read.remove(pos);
                        read.push(b'A');
                    }
                    _ => {
                        // insertion (truncate to keep the read length)
                        read.insert(pos, b'G');
                        read.truncate(len);
                    }
                }
            }
            (read, reference)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// GateKeeper-GPU never false-rejects: if the true edit distance is ≤ e, the
    /// pair is accepted.
    #[test]
    fn gatekeeper_gpu_has_no_false_rejects((read, reference) in edited_pair(100, 8), e in 0u32..=10) {
        let truth = edit_distance(&read, &reference);
        if truth <= e {
            let decision = GateKeeperGpuFilter::new(e).filter_pair(&read, &reference);
            prop_assert!(decision.accepted, "truth = {truth}, e = {e}");
        }
    }

    /// The same holds at 150 bp and 250 bp read lengths (multi-word masks).
    #[test]
    fn no_false_rejects_at_longer_read_lengths((read, reference) in edited_pair(250, 12), e in 0u32..=25) {
        let truth = edit_distance(&read, &reference);
        if truth <= e {
            let decision = GateKeeperGpuFilter::new(e).filter_pair(&read, &reference);
            prop_assert!(decision.accepted, "truth = {truth}, e = {e}");
        }
    }

    /// SneakySnake's obstacle count is a lower bound within the band, so it never
    /// false-rejects either.
    #[test]
    fn sneaky_snake_has_no_false_rejects((read, reference) in edited_pair(100, 8), e in 0u32..=10) {
        let truth = edit_distance(&read, &reference);
        if truth <= e {
            let decision = SneakySnakeFilter::new(e).filter_pair(&read, &reference);
            prop_assert!(decision.accepted, "truth = {truth}, e = {e}");
        }
    }

    /// Identical sequences pass every filter at every threshold.
    #[test]
    fn exact_matches_always_pass(reference in dna(100), e in 0u32..=10) {
        let filters: Vec<Box<dyn PreAlignmentFilter>> = vec![
            Box::new(GateKeeperGpuFilter::new(e)),
            Box::new(GateKeeperFpgaFilter::new(e)),
            Box::new(ShdFilter::new(e)),
            Box::new(MagnetFilter::new(e)),
            Box::new(SneakySnakeFilter::new(e)),
        ];
        for filter in &filters {
            prop_assert!(
                filter.filter_pair(&reference, &reference).accepted,
                "{} rejected an exact match at e = {e}",
                filter.name()
            );
        }
    }

    /// Accepting is monotone in the threshold: a pair accepted at e is accepted at
    /// every larger threshold.
    #[test]
    fn gatekeeper_acceptance_is_monotone_in_threshold((read, reference) in edited_pair(100, 10), e in 0u32..=8) {
        let at_e = GateKeeperGpuFilter::new(e).filter_pair(&read, &reference).accepted;
        let at_e_plus = GateKeeperGpuFilter::new(e + 2).filter_pair(&read, &reference).accepted;
        if at_e {
            prop_assert!(at_e_plus, "accepted at e = {e} but rejected at e = {}", e + 2);
        }
    }

    /// SHD and GateKeeper-FPGA implement the same algorithm and must agree.
    #[test]
    fn shd_equals_gatekeeper_fpga((read, reference) in edited_pair(150, 10), e in 0u32..=15) {
        let shd = ShdFilter::new(e).filter_pair(&read, &reference);
        let fpga = GateKeeperFpgaFilter::new(e).filter_pair(&read, &reference);
        prop_assert_eq!(shd.accepted, fpga.accepted);
        prop_assert_eq!(shd.estimated_edits, fpga.estimated_edits);
    }

    /// The paper's central soundness claim, checked against the Myers bit-vector
    /// oracle for every filter that carries the guarantee: if the true edit
    /// distance is within the threshold, no sound pre-alignment filter rejects.
    #[test]
    fn no_sound_filter_ever_false_rejects((read, reference) in edited_pair(100, 10), e in 0u32..=12) {
        let truth = edit_distance(&read, &reference);
        if truth <= e {
            for filter in sound_filters(e) {
                let decision = filter.filter_pair(&read, &reference);
                prop_assert!(
                    decision.accepted,
                    "{} false-rejected: truth = {truth}, e = {e}",
                    filter.name()
                );
            }
        }
    }

    /// The same soundness claim at 250 bp (multi-word masks, wider bands).
    #[test]
    fn no_sound_filter_ever_false_rejects_at_250bp((read, reference) in edited_pair(250, 14), e in 0u32..=20) {
        let truth = edit_distance(&read, &reference);
        if truth <= e {
            for filter in sound_filters(e) {
                let decision = filter.filter_pair(&read, &reference);
                prop_assert!(
                    decision.accepted,
                    "{} false-rejected: truth = {truth}, e = {e}",
                    filter.name()
                );
            }
        }
    }

    /// Shouji's guarantee covers substitution-only pairs; within that domain it
    /// must never reject a pair whose true edit distance is within threshold.
    #[test]
    fn shouji_has_no_false_rejects_on_substitutions((read, reference) in substituted_pair(100, 8), e in 0u32..=10) {
        let truth = edit_distance(&read, &reference);
        if truth <= e {
            let decision = ShoujiFilter::new(e).filter_pair(&read, &reference);
            prop_assert!(decision.accepted, "truth = {truth}, e = {e}");
        }
    }

    /// The filter decision only depends on the pair contents (purity / determinism).
    #[test]
    fn decisions_are_deterministic((read, reference) in edited_pair(100, 6), e in 0u32..=10) {
        let filter = GateKeeperGpuFilter::new(e);
        let a = filter.filter_pair(&read, &reference);
        let b = filter.filter_pair(&read, &reference);
        prop_assert_eq!(a, b);
    }

    /// Chunked parallel processing reassembles to the sequential result for
    /// arbitrary chunk sizes and input lengths: running `filter_batch` per
    /// `par_chunks` chunk and concatenating equals one whole-batch call.
    #[test]
    fn par_chunks_filter_batch_reassembles_to_sequential(
        raw_pairs in proptest::collection::vec(edited_pair(48, 6), 0..24),
        chunk_size in 1usize..10,
        e in 0u32..=6,
    ) {
        let pairs: Vec<SequencePair> = raw_pairs
            .into_iter()
            .map(|(read, reference)| SequencePair::new(read, reference))
            .collect();
        let filter = GateKeeperGpuFilter::new(e);
        let whole = filter.filter_batch(&pairs);
        let chunked: Vec<_> = pairs
            .par_chunks(chunk_size)
            .flat_map(|chunk| filter.filter_batch(chunk))
            .collect();
        prop_assert_eq!(whole, chunked);
    }

    /// The same reassembly property over plain data: a chunked parallel map
    /// concatenates to the sequential element-wise map, for any chunk size and
    /// any input length (including empty and chunk > len).
    #[test]
    fn par_chunks_map_reassembly_matches_sequential(
        data in proptest::collection::vec(0u32..10_000, 0..300),
        chunk_size in 1usize..40,
    ) {
        let parallel: Vec<u64> = data
            .par_chunks(chunk_size)
            .flat_map(|chunk| {
                chunk
                    .iter()
                    .map(|&x| u64::from(x) * 31 + 7)
                    .collect::<Vec<u64>>()
            })
            .collect();
        let sequential: Vec<u64> = data.iter().map(|&x| u64::from(x) * 31 + 7).collect();
        prop_assert_eq!(parallel, sequential);
        let chunk_count = data.par_chunks(chunk_size).count();
        prop_assert_eq!(chunk_count, data.len().div_ceil(chunk_size));
    }
}

// ---------------------------------------------------------------------------
// MAGNET: brute-force cross-check of the whole estimate pipeline.
// ---------------------------------------------------------------------------

/// Builds MAGNET's `2·min(e, len−1) + 1` masks from first principles using the
/// public word primitives: the Hamming mask plus, per shift distance, the
/// deletion/insertion masks with their vacated positions padded with 1s.
fn magnet_reference_masks(read: &[u8], reference: &[u8], e: u32) -> (Vec<BaseMask>, usize) {
    let read_packed = PackedSeq::from_ascii(read);
    let ref_packed = PackedSeq::from_ascii(reference);
    let len = read_packed.len().min(ref_packed.len());
    let mut masks = vec![xor_to_base_mask(
        read_packed.words(),
        ref_packed.words(),
        len,
    )];
    for k in 1..=(e as usize).min(len.saturating_sub(1)) {
        let mut del_mask = xor_to_base_mask(
            &shift_right_bases(read_packed.words(), k),
            ref_packed.words(),
            len,
        );
        del_mask.set_range(0, k);
        masks.push(del_mask);
        let mut ins_mask = xor_to_base_mask(
            &shift_left_bases(read_packed.words(), k),
            ref_packed.words(),
            len,
        );
        ins_mask.set_range(len - k, len);
        masks.push(ins_mask);
    }
    (masks, len)
}

/// Spec-faithful greedy extraction over explicit position sets: repeatedly take
/// the longest zero run across all masks inside any pending interval (leftmost
/// on ties), consume one divider position per interior side, at most `e + 1`
/// times; uncovered positions are the estimate. Naive O(len²)-per-round scans,
/// sharing no code with the implementation.
fn magnet_reference_estimate(masks: &[BaseMask], len: usize, e: u32) -> u32 {
    let mut intervals = vec![(0usize, len)];
    let mut covered = 0usize;
    for _ in 0..(e as usize).saturating_add(1).min(len + 1) {
        let mut best: Option<(usize, usize, usize)> = None;
        for (idx, &(start, end)) in intervals.iter().enumerate() {
            for mask in masks {
                let mut i = start;
                while i < end {
                    if mask.get(i) {
                        i += 1;
                        continue;
                    }
                    let run_start = i;
                    while i < end && !mask.get(i) {
                        i += 1;
                    }
                    let run_len = i - run_start;
                    let better = match best {
                        None => true,
                        Some((_, bs, bl)) => run_len > bl || (run_len == bl && run_start < bs),
                    };
                    if better {
                        best = Some((idx, run_start, run_len));
                    }
                }
            }
        }
        let Some((idx, run_start, run_len)) = best else {
            break;
        };
        covered += run_len;
        let (ivl_start, ivl_end) = intervals.remove(idx);
        if run_start > ivl_start + 1 {
            intervals.push((ivl_start, run_start - 1));
        }
        if run_start + run_len + 1 < ivl_end {
            intervals.push((run_start + run_len + 1, ivl_end));
        }
        intervals.sort_unstable();
    }
    (len - covered.min(len)) as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// MAGNET's reported estimate equals the brute-force reference built from
    /// first principles, for arbitrary pairs and thresholds — the regression
    /// net over the extraction loop's divider and tie-break bookkeeping.
    #[test]
    fn magnet_estimate_matches_brute_force_reference(
        (read, reference) in edited_pair(48, 8),
        e in 1u32..=8,
    ) {
        let (masks, len) = magnet_reference_masks(&read, &reference, e);
        let expected = magnet_reference_estimate(&masks, len, e);
        let decision = MagnetFilter::new(e).filter_pair(&read, &reference);
        prop_assert_eq!(
            decision.estimated_edits, expected,
            "read {:?} vs reference {:?} at e = {}", read, reference, e
        );
        prop_assert_eq!(decision.accepted, expected <= e);
    }

    /// The estimate is invariant under reversing both sequences' roles in the
    /// sense that it stays within [0, len] and rejects iff it exceeds e —
    /// guarding the threshold comparison around the extraction loop.
    #[test]
    fn magnet_estimate_is_bounded_by_length((read, reference) in edited_pair(48, 12), e in 1u32..=48) {
        let decision = MagnetFilter::new(e).filter_pair(&read, &reference);
        prop_assert!(decision.estimated_edits <= 48);
    }
}
