//! The client side: a thread-safe handle over one connection to a
//! [`GkServer`](crate::server::GkServer), with pipelined submissions and a
//! background reader dispatching responses to per-request channels.

use gk_core::backend::FilterKind;
use gk_filters::traits::FilterDecision;
use gk_seq::frame::{
    decision_word_fields, read_frame, write_frame, CancelFrame, Frame, RequestFrame, ResponseFrame,
    ResponseStatus,
};
use gk_seq::pairs::SequencePair;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Terminal result of one request, decoded from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Decisions for every submitted pair, in submission order.
    Decisions(Vec<FilterDecision>),
    /// Rejected by backpressure; resubmit after the hint.
    Rejected {
        /// Server-suggested backoff before resubmitting.
        retry_after: Duration,
    },
    /// Cancelled before execution completed.
    Cancelled,
    /// The server could not process the request.
    Error(String),
}

struct ClientShared {
    writer: Mutex<BufWriter<TcpStream>>,
    pending: Mutex<HashMap<u64, mpsc::Sender<ResponseFrame>>>,
    next_id: AtomicU64,
    tenant: u32,
}

/// A connection to the filter service. Cheap to clone; clones share the
/// connection and may submit concurrently.
#[derive(Clone)]
pub struct GkClient {
    shared: Arc<ClientShared>,
}

/// An in-flight request: redeem with [`PendingReply::wait`].
pub struct PendingReply {
    /// The request id, usable with [`GkClient::cancel`].
    pub id: u64,
    receiver: mpsc::Receiver<ResponseFrame>,
}

impl GkClient {
    /// Connects as tenant 0. See [`GkClient::connect_as`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<GkClient> {
        GkClient::connect_as(addr, 0)
    }

    /// Connects to a running server, accounting all submissions to `tenant`
    /// in the server's fair queue.
    pub fn connect_as<A: ToSocketAddrs>(addr: A, tenant: u32) -> io::Result<GkClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        let shared = Arc::new(ClientShared {
            writer: Mutex::new(BufWriter::new(stream)),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            tenant,
        });
        let reader_shared = shared.clone();
        std::thread::Builder::new()
            .name("gk-client-reader".to_string())
            .spawn(move || reader_loop(read_half, &reader_shared))
            .map_err(io::Error::other)?;
        Ok(GkClient { shared })
    }

    /// Submits a request without blocking on the result. `deadline` is the
    /// maximum queueing delay the server's batcher may impose before
    /// flushing this request's batch.
    pub fn submit(
        &self,
        kind: FilterKind,
        threshold: u32,
        deadline: Duration,
        pairs: Vec<SequencePair>,
    ) -> io::Result<PendingReply> {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed); // Relaxed: only uniqueness matters, no ordering with other memory.
        let (tx, rx) = mpsc::channel();
        match self.shared.pending.lock() {
            Ok(mut pending) => {
                pending.insert(id, tx);
            }
            Err(_) => return Err(io::Error::other("client reader panicked")),
        }
        let frame = Frame::Request(RequestFrame {
            id,
            tenant: self.shared.tenant,
            kind: kind.code(),
            threshold,
            deadline_micros: deadline.as_micros() as u64,
            pairs,
        });
        let result = match self.shared.writer.lock() {
            Ok(mut writer) => write_frame(&mut *writer, &frame),
            Err(_) => Err(io::Error::other("client writer panicked")),
        };
        if let Err(err) = result {
            if let Ok(mut pending) = self.shared.pending.lock() {
                pending.remove(&id);
            }
            return Err(err);
        }
        Ok(PendingReply { id, receiver: rx })
    }

    /// Asks the server to drop a request's not-yet-batched work. The pending
    /// reply still resolves — to `Cancelled` if the cancellation won the
    /// race, to its normal result otherwise.
    pub fn cancel(&self, id: u64) -> io::Result<()> {
        let frame = Frame::Cancel(CancelFrame { id });
        match self.shared.writer.lock() {
            Ok(mut writer) => write_frame(&mut *writer, &frame),
            Err(_) => Err(io::Error::other("client writer panicked")),
        }
    }

    /// Submit-and-wait sugar over [`GkClient::submit`].
    pub fn filter(
        &self,
        kind: FilterKind,
        threshold: u32,
        deadline: Duration,
        pairs: Vec<SequencePair>,
    ) -> io::Result<Reply> {
        self.submit(kind, threshold, deadline, pairs)?.wait()
    }
}

impl PendingReply {
    /// Blocks until the terminal reply arrives. Errors if the connection
    /// died first.
    pub fn wait(self) -> io::Result<Reply> {
        self.receiver
            .recv()
            .map(decode_response)
            .map_err(|_| io::Error::new(io::ErrorKind::ConnectionAborted, "connection closed"))
    }

    /// Like [`PendingReply::wait`] with a timeout; `Ok(None)` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> io::Result<Option<Reply>> {
        match self.receiver.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(decode_response(frame))),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "connection closed",
            )),
        }
    }
}

fn decode_response(frame: ResponseFrame) -> Reply {
    match frame.status {
        ResponseStatus::Ok => Reply::Decisions(
            frame
                .decisions
                .iter()
                .map(|&word| {
                    let (estimated_edits, accepted, undefined) = decision_word_fields(word);
                    FilterDecision {
                        accepted,
                        estimated_edits,
                        undefined,
                    }
                })
                .collect(),
        ),
        ResponseStatus::Rejected => Reply::Rejected {
            retry_after: Duration::from_micros(frame.retry_after_micros),
        },
        ResponseStatus::Cancelled => Reply::Cancelled,
        ResponseStatus::Error => Reply::Error(frame.message),
    }
}

fn reader_loop(stream: TcpStream, shared: &Arc<ClientShared>) {
    let mut reader = BufReader::new(stream);
    // Servers only send responses; any other frame, clean EOF, or read error
    // ends the session.
    while let Ok(Some(Frame::Response(response))) = read_frame(&mut reader) {
        let sender = match shared.pending.lock() {
            Ok(mut pending) => pending.remove(&response.id),
            Err(poisoned) => poisoned.into_inner().remove(&response.id),
        };
        if let Some(sender) = sender {
            let _ = sender.send(response);
        }
    }
    // Disconnect every waiter so `wait` errors instead of hanging.
    if let Ok(mut pending) = shared.pending.lock() {
        pending.clear();
    }
}
