//! The dynamic batcher: many small concurrent requests in, few large
//! backend invocations out.
//!
//! Requests are split into segments of at most
//! [`BatcherConfig::max_batch_pairs`] pairs and queued per tenant. A
//! dedicated batcher thread watches the queues and flushes a batch when any
//! of three triggers fires:
//!
//! 1. **size** — pairs pending for one coalescing key (filter kind,
//!    threshold, read length) reach `max_batch_pairs`;
//! 2. **timer** — the oldest queued segment has waited
//!    `min(flush_interval, its request deadline)`;
//! 3. **idle** — no batch is executing and the oldest segment has waited at
//!    least `idle_coalesce` (work-conserving: never hold work back while the
//!    executors sit idle).
//!
//! Batch assembly runs deficit-weighted round-robin across tenants, so a
//! tenant with weight 3 drains three pairs for every pair of a weight-1
//! tenant under contention. Admission is bounded by
//! [`BatcherConfig::queue_capacity_pairs`]: over-capacity submissions are
//! rejected synchronously with a retry hint instead of growing the heap.
//! Cancellation drops a request's not-yet-batched segments; work already
//! handed to an executor is never interrupted.
//!
//! # Example
//!
//! ```
//! use gk_serve::batcher::BatcherConfig;
//! use std::time::Duration;
//!
//! // The knobs of the size-or-timeout flush policy:
//! let config = BatcherConfig::default()
//!     .with_max_batch_pairs(4096)                      // size trigger + batch capacity
//!     .with_flush_interval(Duration::from_millis(2))   // max coalescing wait
//!     .with_idle_coalesce(Duration::from_micros(100))  // flush-when-idle window
//!     .with_queue_capacity_pairs(1 << 20)              // backpressure bound
//!     .with_executors(1)                               // one simulated device
//!     .with_tenant_weight(7, 3);                       // tenant 7 gets 3× the share
//! assert!(config.coalesce);
//! ```

use gk_core::backend::{FilterBackend, FilterJob, FilterKind};
use gk_filters::traits::FilterDecision;
use gk_seq::pairs::SequencePair;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of the dynamic batcher. See the [module docs](self) for the
/// flush policy they drive.
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Batch capacity in pairs, and the size-trigger threshold. Requests
    /// larger than this are split into segments of at most this many pairs.
    pub max_batch_pairs: usize,
    /// Longest time a request may wait for coalescing partners before its
    /// batch is flushed (clamped per request by the request's own deadline).
    pub flush_interval: Duration,
    /// With every executor idle, flush after this much wait instead of the
    /// full interval — coalescing only pays while the device is busy.
    pub idle_coalesce: Duration,
    /// Total pairs admitted but not yet batched before submissions are
    /// rejected with a retry hint.
    pub queue_capacity_pairs: usize,
    /// Worker threads executing assembled batches. `1` models a single
    /// serialized device; more executors model concurrent kernel streams.
    pub executors: usize,
    /// `false` disables coalescing: every request executes alone, in
    /// arrival order — the unbatched baseline `serve_bench` compares against.
    pub coalesce: bool,
    /// Deficit round-robin quantum in pairs credited per weight unit per
    /// sweep.
    pub quantum_pairs: usize,
    /// Weight for tenants not listed in `weights`.
    pub default_weight: u32,
    /// Per-tenant `(tenant, weight)` overrides for the fair queue.
    pub weights: Vec<(u32, u32)>,
}

impl Default for BatcherConfig {
    fn default() -> BatcherConfig {
        BatcherConfig {
            max_batch_pairs: 8192,
            flush_interval: Duration::from_millis(2),
            idle_coalesce: Duration::from_micros(100),
            queue_capacity_pairs: 1 << 20,
            executors: 1,
            coalesce: true,
            quantum_pairs: 512,
            default_weight: 1,
            weights: Vec::new(),
        }
    }
}

impl BatcherConfig {
    /// Sets the batch capacity / size trigger.
    pub fn with_max_batch_pairs(mut self, pairs: usize) -> BatcherConfig {
        self.max_batch_pairs = pairs.max(1);
        self
    }

    /// Sets the flush interval (timer trigger).
    pub fn with_flush_interval(mut self, interval: Duration) -> BatcherConfig {
        self.flush_interval = interval;
        self
    }

    /// Sets the idle-flush window.
    pub fn with_idle_coalesce(mut self, window: Duration) -> BatcherConfig {
        self.idle_coalesce = window;
        self
    }

    /// Sets the admission bound in pairs.
    pub fn with_queue_capacity_pairs(mut self, pairs: usize) -> BatcherConfig {
        self.queue_capacity_pairs = pairs.max(1);
        self
    }

    /// Sets the executor thread count.
    pub fn with_executors(mut self, executors: usize) -> BatcherConfig {
        self.executors = executors.max(1);
        self
    }

    /// Enables or disables coalescing.
    pub fn with_coalesce(mut self, coalesce: bool) -> BatcherConfig {
        self.coalesce = coalesce;
        self
    }

    /// Sets the deficit round-robin quantum.
    pub fn with_quantum_pairs(mut self, pairs: usize) -> BatcherConfig {
        self.quantum_pairs = pairs.max(1);
        self
    }

    /// Overrides one tenant's fair-queue weight.
    pub fn with_tenant_weight(mut self, tenant: u32, weight: u32) -> BatcherConfig {
        self.weights.retain(|(t, _)| *t != tenant);
        self.weights.push((tenant, weight.max(1)));
        self
    }

    fn weight_for(&self, tenant: u32) -> u32 {
        self.weights
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, w)| *w)
            .unwrap_or(self.default_weight)
            .max(1)
    }
}

/// One filter request as the batcher sees it.
#[derive(Debug, Clone)]
pub struct Request {
    /// Tenant the request is accounted against.
    pub tenant: u32,
    /// Which filter to run.
    pub kind: FilterKind,
    /// Edit-distance threshold `e`.
    pub threshold: u32,
    /// Maximum queueing delay the submitter tolerates; the effective flush
    /// budget is `min(deadline, flush_interval)`.
    pub deadline: Duration,
    /// The pairs to filter.
    pub pairs: Vec<SequencePair>,
}

/// Terminal outcome delivered to a request's responder (exactly once per
/// accepted submission).
#[derive(Debug)]
pub enum Outcome {
    /// Decisions for every submitted pair, in submission order.
    Done(Vec<FilterDecision>),
    /// The request was cancelled before all of its work was batched.
    Cancelled,
}

/// Callback receiving a request's terminal [`Outcome`].
pub type Responder = Box<dyn FnOnce(Outcome) + Send + 'static>;

/// Synchronous admission failures. Anything admitted gets its outcome via
/// the responder instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry after the hint.
    QueueFull {
        /// Suggested client-side backoff before resubmitting.
        retry_after: Duration,
    },
    /// The batcher is shutting down.
    Closed,
}

/// Counters exposed for benches and the smoke leg.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// Requests admitted (including empty ones answered inline).
    pub admitted: u64,
    /// Submissions rejected by backpressure.
    pub rejected: u64,
    /// Requests cancelled before execution.
    pub cancelled: u64,
    /// Batches handed to executors.
    pub batches: u64,
    /// Segments across all batches (≈ requests when requests fit one batch).
    pub batched_segments: u64,
    /// Pairs across all batches.
    pub batched_pairs: u64,
    /// Batches flushed by the size trigger.
    pub flush_size: u64,
    /// Batches flushed by the timer trigger.
    pub flush_timer: u64,
    /// Batches flushed by the idle trigger.
    pub flush_idle: u64,
    /// Batches flushed during drain or with coalescing off.
    pub flush_drain: u64,
}

/// Coalescing key: only homogeneous work shares a backend invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BatchKey {
    kind: FilterKind,
    threshold: u32,
    read_len: usize,
}

/// Shared per-request assembly: segments write their decision slices here;
/// the last one triggers the response.
struct Assembly {
    decisions: Vec<FilterDecision>,
    remaining: usize,
    cancelled: bool,
    responder: Option<Responder>,
}

/// A queued slice of one request, owning its pairs until batch assembly
/// moves them into the contiguous batch buffer.
struct Segment {
    ticket: u64,
    arrival: u64,
    enqueued: Instant,
    deadline: Duration,
    key: BatchKey,
    pairs: Vec<SequencePair>,
    dst_offset: usize,
    assembly: Arc<Mutex<Assembly>>,
}

struct BatchItem {
    batch_offset: usize,
    dst_offset: usize,
    len: usize,
    assembly: Arc<Mutex<Assembly>>,
}

struct Batch {
    key: BatchKey,
    pairs: Vec<SequencePair>,
    items: Vec<BatchItem>,
    reason: FlushReason,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushReason {
    Size,
    Timer,
    Idle,
    Drain,
}

struct TenantQueue {
    weight: u32,
    deficit: usize,
    queue: VecDeque<Segment>,
}

struct State {
    tenants: BTreeMap<u32, TenantQueue>,
    key_pairs: HashMap<BatchKey, usize>,
    pending_pairs: usize,
    next_arrival: u64,
    rr_last: Option<u32>,
    in_flight: usize,
    closed: bool,
    stats: BatcherStats,
}

struct Shared {
    config: BatcherConfig,
    backend: Arc<dyn FilterBackend>,
    state: Mutex<State>,
    work: Condvar,
}

/// Locks the batcher state, recovering from a poisoned mutex: the state is a
/// plain queue structure kept consistent at every unlock, so it stays usable
/// even if a peer thread panicked while holding the lock.
fn lock_state(shared: &Shared) -> MutexGuard<'_, State> {
    match shared.state.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn lock_assembly(assembly: &Mutex<Assembly>) -> MutexGuard<'_, Assembly> {
    match assembly.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The dynamic batcher: owns the batcher thread and the executor pool.
///
/// See the [module docs](self) for the flush policy; see
/// [`crate`] docs for an end-to-end example.
pub struct Batcher {
    shared: Arc<Shared>,
    batcher_thread: Option<JoinHandle<()>>,
    executor_threads: Vec<JoinHandle<()>>,
}

impl Batcher {
    /// Starts the batcher and `config.executors` executor threads over
    /// `backend`.
    pub fn start(config: BatcherConfig, backend: Arc<dyn FilterBackend>) -> Batcher {
        let executors = config.executors.max(1);
        let shared = Arc::new(Shared {
            config,
            backend,
            state: Mutex::new(State {
                tenants: BTreeMap::new(),
                key_pairs: HashMap::new(),
                pending_pairs: 0,
                next_arrival: 0,
                rr_last: None,
                in_flight: 0,
                closed: false,
                stats: BatcherStats::default(),
            }),
            work: Condvar::new(),
        });
        let (batch_tx, batch_rx) = mpsc::sync_channel::<Batch>(executors);
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let executor_threads = (0..executors)
            .map(|index| {
                let shared = shared.clone();
                let rx = batch_rx.clone();
                std::thread::Builder::new()
                    .name(format!("gk-serve-exec-{index}"))
                    .spawn(move || executor_loop(&shared, &rx))
            })
            .filter_map(|handle| handle.ok())
            .collect();

        let batcher_thread = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("gk-serve-batcher".to_string())
                .spawn(move || batcher_loop(&shared, &batch_tx))
                .ok()
        };

        Batcher {
            shared,
            batcher_thread,
            executor_threads,
        }
    }

    /// Admits a request. `ticket` is the caller's handle for
    /// [`Batcher::cancel`]; `respond` receives the terminal [`Outcome`]
    /// exactly once. Synchronous `Err` means nothing was queued and
    /// `respond` will never be called.
    pub fn submit(
        &self,
        ticket: u64,
        request: Request,
        respond: Responder,
    ) -> Result<(), SubmitError> {
        let total = request.pairs.len();
        if total == 0 {
            // Nothing to batch: answer inline, outside the state lock.
            let mut guard = lock_state(&self.shared);
            if guard.closed {
                return Err(SubmitError::Closed);
            }
            guard.stats.admitted += 1;
            drop(guard);
            respond(Outcome::Done(Vec::new()));
            return Ok(());
        }

        let key = BatchKey {
            kind: request.kind,
            threshold: request.threshold,
            read_len: request.pairs[0].read_len(),
        };
        let assembly = Arc::new(Mutex::new(Assembly {
            decisions: vec![FilterDecision::reject(0); total],
            remaining: 0,
            cancelled: false,
            responder: Some(respond),
        }));

        let mut guard = lock_state(&self.shared);
        if guard.closed {
            return Err(SubmitError::Closed);
        }
        if guard.pending_pairs + total > self.shared.config.queue_capacity_pairs {
            guard.stats.rejected += 1;
            // Hint: one flush interval per whole queue of backlog ahead.
            let backlog = guard.pending_pairs / self.shared.config.max_batch_pairs.max(1) + 1;
            let retry_after = self
                .shared
                .config
                .flush_interval
                .saturating_mul(backlog.min(16) as u32)
                .max(Duration::from_micros(200));
            return Err(SubmitError::QueueFull { retry_after });
        }

        let mut pairs = request.pairs;
        let max = self.shared.config.max_batch_pairs;
        let mut segments = Vec::with_capacity(total.div_ceil(max));
        let mut dst_offset = 0;
        let enqueued = Instant::now();
        while !pairs.is_empty() {
            let take = pairs.len().min(max);
            let rest = pairs.split_off(take);
            let segment_pairs = std::mem::replace(&mut pairs, rest);
            let arrival = guard.next_arrival;
            guard.next_arrival += 1;
            segments.push(Segment {
                ticket,
                arrival,
                enqueued,
                deadline: request.deadline,
                key,
                dst_offset,
                pairs: segment_pairs,
                assembly: assembly.clone(),
            });
            dst_offset += take;
        }
        lock_assembly(&assembly).remaining = segments.len();

        let weight = self.shared.config.weight_for(request.tenant);
        let tenant = guard
            .tenants
            .entry(request.tenant)
            .or_insert_with(|| TenantQueue {
                weight,
                deficit: 0,
                queue: VecDeque::new(),
            });
        tenant.queue.extend(segments);
        guard.pending_pairs += total;
        *guard.key_pairs.entry(key).or_insert(0) += total;
        guard.stats.admitted += 1;
        drop(guard);
        self.shared.work.notify_all();
        Ok(())
    }

    /// Cancels a request by ticket. Only not-yet-batched segments are
    /// dropped: if any were still queued the whole request resolves to
    /// [`Outcome::Cancelled`] (partial executed work is discarded) and this
    /// returns `true`; if everything was already batched the request
    /// completes normally and this returns `false`.
    pub fn cancel(&self, ticket: u64) -> bool {
        let mut guard = lock_state(&self.shared);
        let mut dropped_pairs = 0usize;
        let mut assembly: Option<Arc<Mutex<Assembly>>> = None;
        let mut dropped_segments = 0usize;
        for tenant in guard.tenants.values_mut() {
            tenant.queue.retain(|segment| {
                if segment.ticket == ticket {
                    dropped_pairs += segment.pairs.len();
                    dropped_segments += 1;
                    assembly = Some(segment.assembly.clone());
                    false
                } else {
                    true
                }
            });
        }
        let Some(assembly) = assembly else {
            return false;
        };
        guard.pending_pairs -= dropped_pairs;
        let responder = {
            let mut asm = lock_assembly(&assembly);
            asm.cancelled = true;
            asm.remaining -= dropped_segments;
            asm.decisions = Vec::new();
            asm.responder.take()
        };
        // key_pairs bookkeeping: the dropped segments all share one key.
        let keys: Vec<BatchKey> = guard.key_pairs.keys().copied().collect();
        for key in keys {
            let live: usize = guard
                .tenants
                .values()
                .flat_map(|t| t.queue.iter())
                .filter(|s| s.key == key)
                .map(|s| s.pairs.len())
                .sum();
            if live == 0 {
                guard.key_pairs.remove(&key);
            } else {
                guard.key_pairs.insert(key, live);
            }
        }
        guard.stats.cancelled += 1;
        drop(guard);
        if let Some(respond) = responder {
            respond(Outcome::Cancelled);
        }
        true
    }

    /// Snapshot of the batcher counters.
    pub fn stats(&self) -> BatcherStats {
        lock_state(&self.shared).stats
    }

    /// Drains queued work, answers every outstanding request and joins the
    /// worker threads. Called by `Drop` as well; explicit calls are only for
    /// deterministic teardown points.
    pub fn shutdown(&mut self) {
        {
            let mut guard = lock_state(&self.shared);
            guard.closed = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.batcher_thread.take() {
            let _ = handle.join();
        }
        for handle in self.executor_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn batcher_loop(shared: &Shared, batch_tx: &mpsc::SyncSender<Batch>) {
    let config = &shared.config;
    let mut guard = lock_state(shared);
    loop {
        let oldest = guard
            .tenants
            .values()
            .filter_map(|tenant| tenant.queue.front())
            .min_by_key(|segment| segment.arrival)
            .map(|segment| (segment.key, segment.enqueued, segment.deadline));
        let Some((key, enqueued, deadline)) = oldest else {
            if guard.closed {
                return; // Dropping batch_tx ends the executors after drain.
            }
            guard = match shared.work.wait(guard) {
                Ok(next) => next,
                Err(poisoned) => poisoned.into_inner(),
            };
            continue;
        };

        let age = enqueued.elapsed();
        let budget = deadline.min(config.flush_interval);
        let key_pending = guard.key_pairs.get(&key).copied().unwrap_or(0);
        let reason = if guard.closed || !config.coalesce {
            Some(FlushReason::Drain)
        } else if key_pending >= config.max_batch_pairs {
            Some(FlushReason::Size)
        } else if age >= budget {
            Some(FlushReason::Timer)
        } else if guard.in_flight == 0 && age >= config.idle_coalesce {
            Some(FlushReason::Idle)
        } else {
            None
        };

        if let Some(reason) = reason {
            if let Some(batch) = assemble(&mut guard, key, config, reason) {
                guard.in_flight += 1;
                guard.stats.batches += 1;
                guard.stats.batched_segments += batch.items.len() as u64;
                guard.stats.batched_pairs += batch.pairs.len() as u64;
                match batch.reason {
                    FlushReason::Size => guard.stats.flush_size += 1,
                    FlushReason::Timer => guard.stats.flush_timer += 1,
                    FlushReason::Idle => guard.stats.flush_idle += 1,
                    FlushReason::Drain => guard.stats.flush_drain += 1,
                }
                drop(guard);
                if batch_tx.send(batch).is_err() {
                    return; // Executors are gone; nothing left to do.
                }
                guard = lock_state(shared);
            }
        } else {
            let mut timeout = budget.saturating_sub(age);
            if guard.in_flight == 0 {
                timeout = timeout.min(config.idle_coalesce.saturating_sub(age));
            }
            let wait = timeout.max(Duration::from_micros(50));
            guard = match shared.work.wait_timeout(guard, wait) {
                Ok((next, _)) => next,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// Builds one batch for `key` by deficit-weighted round-robin over the
/// tenant queues. With coalescing off, takes exactly the globally oldest
/// segment. Returns `None` only if the queues emptied concurrently.
fn assemble(
    state: &mut State,
    key: BatchKey,
    config: &BatcherConfig,
    reason: FlushReason,
) -> Option<Batch> {
    let mut pairs: Vec<SequencePair> = Vec::new();
    let mut items: Vec<BatchItem> = Vec::new();

    let take_segment = |state: &mut State,
                        tenant_id: u32,
                        index: usize,
                        pairs: &mut Vec<SequencePair>,
                        items: &mut Vec<BatchItem>| {
        let Some(tenant) = state.tenants.get_mut(&tenant_id) else {
            return;
        };
        let Some(mut segment) = tenant.queue.remove(index) else {
            return;
        };
        let len = segment.pairs.len();
        tenant.deficit = tenant.deficit.saturating_sub(len);
        state.pending_pairs -= len;
        match state.key_pairs.get_mut(&segment.key) {
            Some(count) if *count > len => *count -= len,
            _ => {
                state.key_pairs.remove(&segment.key);
            }
        }
        items.push(BatchItem {
            batch_offset: pairs.len(),
            dst_offset: segment.dst_offset,
            len,
            assembly: segment.assembly.clone(),
        });
        pairs.append(&mut segment.pairs);
    };

    if !config.coalesce {
        // Solo mode: the globally oldest segment, alone.
        let target = state
            .tenants
            .iter()
            .filter_map(|(id, tenant)| tenant.queue.front().map(|s| (s.arrival, *id)))
            .min()?;
        take_segment(state, target.1, 0, &mut pairs, &mut items);
    } else {
        let tenant_ids: Vec<u32> = state.tenants.keys().copied().collect();
        let start = state
            .rr_last
            .and_then(|last| tenant_ids.iter().position(|&id| id > last))
            .unwrap_or(0);
        // Bounded by construction: each sweep either takes a segment or
        // grows every matching tenant's deficit by ≥ quantum_pairs, and a
        // segment is never longer than max_batch_pairs.
        let max_sweeps = config.max_batch_pairs / config.quantum_pairs.max(1) + 2;
        for _ in 0..max_sweeps {
            if pairs.len() >= config.max_batch_pairs {
                break;
            }
            let mut any_matching = false;
            let mut took_any = false;
            for offset in 0..tenant_ids.len() {
                let tenant_id = tenant_ids[(start + offset) % tenant_ids.len()];
                let matching = {
                    let Some(tenant) = state.tenants.get_mut(&tenant_id) else {
                        continue;
                    };
                    if tenant.queue.iter().any(|s| s.key == key) {
                        tenant.deficit = tenant
                            .deficit
                            .saturating_add(tenant.weight as usize * config.quantum_pairs);
                        true
                    } else {
                        tenant.deficit = 0;
                        false
                    }
                };
                if !matching {
                    continue;
                }
                any_matching = true;
                loop {
                    if pairs.len() >= config.max_batch_pairs {
                        break;
                    }
                    let next = state.tenants.get(&tenant_id).and_then(|tenant| {
                        tenant.queue.iter().position(|s| {
                            s.key == key
                                && s.pairs.len() <= tenant.deficit
                                && (pairs.is_empty()
                                    || pairs.len() + s.pairs.len() <= config.max_batch_pairs)
                        })
                    });
                    match next {
                        Some(index) => {
                            take_segment(state, tenant_id, index, &mut pairs, &mut items);
                            took_any = true;
                        }
                        None => break,
                    }
                }
                state.rr_last = Some(tenant_id);
            }
            if !any_matching || (!took_any && !pairs.is_empty()) {
                break;
            }
        }
        // Progress guarantee: a flush must always move the oldest segment.
        if items.is_empty() {
            let target = state
                .tenants
                .iter()
                .filter_map(|(id, tenant)| {
                    tenant
                        .queue
                        .iter()
                        .position(|s| s.key == key)
                        .map(|index| (tenant.queue[index].arrival, *id, index))
                })
                .min()?;
            take_segment(state, target.1, target.2, &mut pairs, &mut items);
        }
    }

    if items.is_empty() {
        return None;
    }
    Some(Batch {
        key,
        pairs,
        items,
        reason,
    })
}

fn executor_loop(shared: &Shared, rx: &Mutex<mpsc::Receiver<Batch>>) {
    loop {
        let batch = {
            let receiver = match rx.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            receiver.recv()
        };
        let Ok(batch) = batch else {
            return; // Channel closed: batcher drained and exited.
        };

        let job = FilterJob::new(batch.key.kind, batch.key.threshold, &batch.pairs)
            .with_read_len(batch.key.read_len);
        let decisions = shared.backend.run(&job);
        assert_eq!(
            decisions.len(),
            batch.pairs.len(),
            "backend returned a decision count mismatching its job"
        );

        for item in &batch.items {
            let mut asm = lock_assembly(&item.assembly);
            if !asm.cancelled {
                asm.decisions[item.dst_offset..item.dst_offset + item.len]
                    .copy_from_slice(&decisions[item.batch_offset..item.batch_offset + item.len]);
            }
            asm.remaining -= 1;
            if asm.remaining == 0 && !asm.cancelled {
                if let Some(respond) = asm.responder.take() {
                    let decisions = std::mem::take(&mut asm.decisions);
                    drop(asm);
                    respond(Outcome::Done(decisions));
                }
            }
        }

        let mut guard = lock_state(shared);
        guard.in_flight -= 1;
        drop(guard);
        shared.work.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_core::backend::CpuSimdBackend;
    use gk_filters::traits::decision_digest;
    use gk_seq::datasets::DatasetProfile;
    use std::sync::mpsc;

    fn backend() -> Arc<dyn FilterBackend> {
        Arc::new(CpuSimdBackend::new(1))
    }

    fn pairs(count: usize, seed: u64) -> Vec<SequencePair> {
        DatasetProfile::set3().generate(count, seed).pairs
    }

    fn request(tenant: u32, pairs: Vec<SequencePair>) -> Request {
        Request {
            tenant,
            kind: FilterKind::GateKeeper,
            threshold: 2,
            deadline: Duration::from_millis(50),
            pairs,
        }
    }

    fn responder(tx: mpsc::Sender<Outcome>) -> Responder {
        Box::new(move |outcome| {
            let _ = tx.send(outcome);
        })
    }

    #[test]
    fn batched_decisions_match_direct_backend() {
        let backend = backend();
        let batcher = Batcher::start(BatcherConfig::default(), backend.clone());
        let input = pairs(300, 7);
        let direct = backend.run(&FilterJob::new(FilterKind::GateKeeper, 2, &input));

        let (tx, rx) = mpsc::channel();
        batcher
            .submit(1, request(0, input), responder(tx))
            .expect("admitted");
        match rx.recv_timeout(Duration::from_secs(5)).expect("outcome") {
            Outcome::Done(decisions) => {
                assert_eq!(decision_digest(&decisions), decision_digest(&direct));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn oversized_requests_split_and_reassemble() {
        let backend = backend();
        let config = BatcherConfig::default().with_max_batch_pairs(128);
        let batcher = Batcher::start(config, backend.clone());
        let input = pairs(1000, 11); // 8 segments
        let direct = backend.run(&FilterJob::new(FilterKind::GateKeeper, 2, &input));

        let (tx, rx) = mpsc::channel();
        batcher
            .submit(1, request(0, input), responder(tx))
            .expect("admitted");
        match rx.recv_timeout(Duration::from_secs(5)).expect("outcome") {
            Outcome::Done(decisions) => {
                assert_eq!(decisions.len(), 1000);
                assert_eq!(decision_digest(&decisions), decision_digest(&direct));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn empty_request_answers_inline() {
        let batcher = Batcher::start(BatcherConfig::default(), backend());
        let (tx, rx) = mpsc::channel();
        batcher
            .submit(1, request(0, Vec::new()), responder(tx))
            .expect("admitted");
        match rx.recv_timeout(Duration::from_secs(1)).expect("outcome") {
            Outcome::Done(decisions) => assert!(decisions.is_empty()),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn backpressure_rejects_with_retry_hint() {
        // A backend that blocks until released, so the queue can fill.
        struct Gate(Mutex<()>, Arc<dyn FilterBackend>);
        impl FilterBackend for Gate {
            fn name(&self) -> &str {
                "gate"
            }
            fn run(&self, job: &FilterJob<'_>) -> Vec<FilterDecision> {
                let _hold = self.0.lock();
                self.1.run(job)
            }
        }
        let inner = backend();
        let gate = Arc::new(Gate(Mutex::new(()), inner));
        let config = BatcherConfig::default()
            .with_queue_capacity_pairs(64)
            .with_max_batch_pairs(32)
            .with_flush_interval(Duration::from_micros(100));
        let batcher = Batcher::start(config, gate.clone());

        let guard = gate.0.lock().expect("gate");
        let (tx, rx) = mpsc::channel();
        let mut rejected = None;
        // Keep submitting until the 64-pair bound trips (in-flight work
        // drains at most one 32-pair batch into the blocked executor).
        for ticket in 0..16 {
            match batcher.submit(ticket, request(0, pairs(16, ticket)), responder(tx.clone())) {
                Ok(()) => {}
                Err(err) => {
                    rejected = Some(err);
                    break;
                }
            }
        }
        let Some(SubmitError::QueueFull { retry_after }) = rejected else {
            panic!("queue never filled: {rejected:?}");
        };
        assert!(retry_after > Duration::ZERO);
        drop(guard);
        drop(tx);
        // Every admitted request still completes.
        while let Ok(outcome) = rx.recv_timeout(Duration::from_secs(5)) {
            assert!(matches!(outcome, Outcome::Done(_)));
        }
        assert!(batcher.stats().rejected >= 1);
    }

    #[test]
    fn cancel_drops_queued_work() {
        // Hold the executor on a first batch so a second request stays queued.
        struct Slow(Arc<dyn FilterBackend>);
        impl FilterBackend for Slow {
            fn name(&self) -> &str {
                "slow"
            }
            fn run(&self, job: &FilterJob<'_>) -> Vec<FilterDecision> {
                std::thread::sleep(Duration::from_millis(60));
                self.0.run(job)
            }
        }
        let batcher = Batcher::start(
            BatcherConfig::default().with_flush_interval(Duration::from_micros(50)),
            Arc::new(Slow(backend())),
        );
        let (tx1, rx1) = mpsc::channel();
        let (tx2, rx2) = mpsc::channel();
        batcher
            .submit(1, request(0, pairs(8, 1)), responder(tx1))
            .expect("admitted");
        // Give the idle flush a moment to hand request 1 to the executor.
        std::thread::sleep(Duration::from_millis(20));
        batcher
            .submit(2, request(0, pairs(8, 2)), responder(tx2))
            .expect("admitted");
        assert!(batcher.cancel(2), "request 2 was still queued");
        assert!(!batcher.cancel(2), "double cancel is a no-op");
        assert!(!batcher.cancel(99), "unknown ticket is a no-op");
        match rx2.recv_timeout(Duration::from_secs(5)).expect("outcome") {
            Outcome::Cancelled => {}
            other => panic!("unexpected outcome {other:?}"),
        }
        match rx1.recv_timeout(Duration::from_secs(5)).expect("outcome") {
            Outcome::Done(decisions) => assert_eq!(decisions.len(), 8),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(batcher.stats().cancelled, 1);
    }

    #[test]
    fn weighted_tenants_drain_proportionally() {
        // Stall the executor, enqueue contending tenants, then release and
        // inspect the first full batch's composition.
        struct Slow(Arc<dyn FilterBackend>);
        impl FilterBackend for Slow {
            fn name(&self) -> &str {
                "slow"
            }
            fn run(&self, job: &FilterJob<'_>) -> Vec<FilterDecision> {
                std::thread::sleep(Duration::from_millis(30));
                self.0.run(job)
            }
        }
        let config = BatcherConfig::default()
            .with_max_batch_pairs(256)
            .with_quantum_pairs(64)
            .with_tenant_weight(1, 3)
            .with_tenant_weight(2, 1);
        let batcher = Batcher::start(config, Arc::new(Slow(backend())));

        // Request 0 occupies the executor.
        let (tx0, rx0) = mpsc::channel();
        batcher
            .submit(0, request(9, pairs(4, 0)), responder(tx0))
            .expect("admitted");
        std::thread::sleep(Duration::from_millis(10));

        // Both tenants pile up 4 × 64-pair requests behind it.
        let mut receivers = Vec::new();
        let mut ticket = 10;
        for tenant in [1u32, 2u32] {
            for _ in 0..4 {
                let (tx, rx) = mpsc::channel();
                batcher
                    .submit(ticket, request(tenant, pairs(64, ticket)), responder(tx))
                    .expect("admitted");
                receivers.push((tenant, rx));
                ticket += 1;
            }
        }
        // Wait for everything; order of completion reflects batch packing.
        let mut completion: Vec<(u32, Instant)> = Vec::new();
        for (tenant, rx) in receivers {
            let outcome = rx.recv_timeout(Duration::from_secs(10)).expect("outcome");
            assert!(matches!(outcome, Outcome::Done(_)));
            completion.push((tenant, Instant::now()));
        }
        drop(rx0);
        // The 256-pair first batch after release holds 3 × tenant-1 and
        // 1 × tenant-2 requests under 3:1 weights; batches were cut, so
        // more than one batch ran in total.
        let stats = batcher.stats();
        assert!(stats.batches >= 2, "expected multiple batches: {stats:?}");
    }

    #[test]
    fn solo_mode_executes_per_request() {
        let backend = backend();
        let config = BatcherConfig::default().with_coalesce(false);
        let batcher = Batcher::start(config, backend.clone());
        let mut expected = Vec::new();
        let mut receivers = Vec::new();
        for ticket in 0..6 {
            let input = pairs(32, 100 + ticket);
            expected.push(backend.run(&FilterJob::new(FilterKind::GateKeeper, 2, &input)));
            let (tx, rx) = mpsc::channel();
            batcher
                .submit(ticket, request(0, input), responder(tx))
                .expect("admitted");
            receivers.push(rx);
        }
        for (rx, direct) in receivers.into_iter().zip(expected) {
            match rx.recv_timeout(Duration::from_secs(5)).expect("outcome") {
                Outcome::Done(decisions) => {
                    assert_eq!(decision_digest(&decisions), decision_digest(&direct));
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let stats = batcher.stats();
        assert_eq!(stats.batches, 6, "solo mode must not coalesce: {stats:?}");
    }

    #[test]
    fn shutdown_drains_outstanding_requests() {
        let mut batcher = Batcher::start(
            BatcherConfig::default().with_flush_interval(Duration::from_millis(20)),
            backend(),
        );
        let (tx, rx) = mpsc::channel();
        for ticket in 0..4 {
            batcher
                .submit(ticket, request(0, pairs(16, ticket)), responder(tx.clone()))
                .expect("admitted");
        }
        batcher.shutdown();
        drop(tx);
        let outcomes: Vec<Outcome> = rx.iter().collect();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| matches!(o, Outcome::Done(_))));
        assert!(matches!(
            batcher.submit(9, request(0, pairs(1, 9)), Box::new(|_| {})),
            Err(SubmitError::Closed)
        ));
    }
}
