//! The `gk-serve` daemon: filter-as-a-service over localhost TCP.
//!
//! ```text
//! gk-serve [--addr 127.0.0.1:7844] [--backend cpu-simd|gpu-sim|multi-gpu]
//!          [--threads N] [--devices N] [--topology private|shared|switch:N|nvlink]
//!          [--flush-ms MS] [--idle-us US] [--max-batch-pairs N]
//!          [--queue-pairs N] [--executors N] [--weight TENANT=W]...
//!          [--no-coalesce]
//! ```
//!
//! Clients speak the `gk_seq::frame` protocol (see `gk_serve::client::GkClient`
//! or `serve_bench --connect ADDR` in gk-bench).

use gk_core::backend::{BackendRegistry, CpuSimdBackend, GpuSimBackend, MultiGpuBackend};
use gk_gpusim::device::DeviceSpec;
use gk_gpusim::topology::TopologyKind;
use gk_serve::batcher::BatcherConfig;
use gk_serve::server::GkServer;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: gk-serve [--addr HOST:PORT] [--backend cpu-simd|gpu-sim|multi-gpu] \
         [--threads N] [--devices N] [--topology KIND] [--flush-ms MS] [--idle-us US] \
         [--max-batch-pairs N] [--queue-pairs N] [--executors N] [--weight TENANT=W]... \
         [--no-coalesce]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("gk-serve: {flag} needs a value");
        usage();
    };
    match value.parse() {
        Ok(parsed) => parsed,
        Err(_) => {
            eprintln!("gk-serve: could not parse {flag} value {value:?}");
            usage();
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:7844".to_string();
    let mut backend_name = "gpu-sim".to_string();
    let mut threads = 0usize; // 0 = pool default (RAYON_NUM_THREADS / cores)
    let mut devices = 4usize;
    let mut topology = TopologyKind::SharedRoot;
    let mut config = BatcherConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse("--addr", args.next()),
            "--backend" => backend_name = parse("--backend", args.next()),
            "--threads" => threads = parse("--threads", args.next()),
            "--devices" => devices = parse("--devices", args.next()),
            "--topology" => topology = parse("--topology", args.next()),
            "--flush-ms" => {
                let ms: u64 = parse("--flush-ms", args.next());
                config = config.with_flush_interval(Duration::from_millis(ms));
            }
            "--idle-us" => {
                let us: u64 = parse("--idle-us", args.next());
                config = config.with_idle_coalesce(Duration::from_micros(us));
            }
            "--max-batch-pairs" => {
                config = config.with_max_batch_pairs(parse("--max-batch-pairs", args.next()));
            }
            "--queue-pairs" => {
                config = config.with_queue_capacity_pairs(parse("--queue-pairs", args.next()));
            }
            "--executors" => config = config.with_executors(parse("--executors", args.next())),
            "--weight" => {
                let spec: String = parse("--weight", args.next());
                let Some((tenant, weight)) = spec.split_once('=') else {
                    eprintln!("gk-serve: --weight expects TENANT=W, got {spec:?}");
                    usage();
                };
                let (Ok(tenant), Ok(weight)) = (tenant.parse(), weight.parse()) else {
                    eprintln!("gk-serve: could not parse --weight {spec:?}");
                    usage();
                };
                config = config.with_tenant_weight(tenant, weight);
            }
            "--no-coalesce" => config = config.with_coalesce(false),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("gk-serve: unknown flag {other:?}");
                usage();
            }
        }
    }

    let mut registry = BackendRegistry::new();
    registry.register(Arc::new(CpuSimdBackend::new(threads)));
    registry.register(Arc::new(GpuSimBackend::new()));
    registry.register(Arc::new(MultiGpuBackend::with_device(
        DeviceSpec::gtx_1080_ti(),
        devices,
        topology,
    )));
    let Some(backend) = registry.get(&backend_name) else {
        eprintln!(
            "gk-serve: unknown backend {backend_name:?} (available: {:?})",
            registry.names()
        );
        std::process::exit(2);
    };

    let coalesce = if config.coalesce { "on" } else { "off" };
    let flush_ms = config.flush_interval.as_secs_f64() * 1e3;
    let max_batch = config.max_batch_pairs;
    let server = match GkServer::start(&addr, backend, config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("gk-serve: could not bind {addr}: {err}");
            std::process::exit(1);
        }
    };
    println!(
        "gk-serve listening on {} (backend {backend_name}, coalesce {coalesce}, \
         flush {flush_ms:.1} ms, max batch {max_batch} pairs)",
        server.local_addr()
    );
    // Serve until killed; connection threads do all the work.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
