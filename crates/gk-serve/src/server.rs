//! The daemon side: a TCP listener on localhost speaking the
//! `gk_seq::frame` protocol, one reader + one writer thread per connection,
//! all requests funneled into one [`Batcher`].
//!
//! The server binds, accepts, and answers; policy (coalescing, fairness,
//! backpressure) lives entirely in the [`batcher`](crate::batcher). Start
//! one in-process for tests and benches — `"127.0.0.1:0"` picks a free
//! ephemeral port — or run the `gk-serve` binary as a standalone daemon.

use crate::batcher::{Batcher, BatcherConfig, Outcome, Request, SubmitError};
use gk_core::backend::{FilterBackend, FilterKind};
use gk_seq::frame::{
    decision_word, read_frame, write_frame, Frame, RequestFrame, ResponseFrame, ResponseStatus,
};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop naps when no connection is pending (the listener
/// is non-blocking so shutdown can interrupt it).
const ACCEPT_POLL: Duration = Duration::from_millis(2);

struct ServerShared {
    batcher: Batcher,
    stop: AtomicBool,
    next_ticket: AtomicU64,
    connections: Mutex<Vec<TcpStream>>,
    connection_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A running filter service.
///
/// See the [crate docs](crate) for an end-to-end client/server example.
pub struct GkServer {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl GkServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// serving requests through `backend` under `config`'s batching policy.
    pub fn start(
        addr: &str,
        backend: Arc<dyn FilterBackend>,
        config: BatcherConfig,
    ) -> io::Result<GkServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ServerShared {
            batcher: Batcher::start(config, backend),
            stop: AtomicBool::new(false),
            next_ticket: AtomicU64::new(1),
            connections: Mutex::new(Vec::new()),
            connection_threads: Mutex::new(Vec::new()),
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("gk-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .ok();
        Ok(GkServer {
            local_addr,
            shared,
            accept_thread,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the batcher counters.
    pub fn stats(&self) -> crate::batcher::BatcherStats {
        self.shared.batcher.stats()
    }

    /// Stops accepting, closes live connections, drains the batcher and
    /// joins every worker thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Ok(mut connections) = self.shared.connections.lock() {
            for stream in connections.drain(..) {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        if let Ok(mut threads) = self.shared.connection_threads.lock() {
            for handle in threads.drain(..) {
                let _ = handle.join();
            }
        }
        // Batcher::drop drains outstanding work when `self.shared` releases;
        // nothing submits after the connections are gone.
    }
}

impl Drop for GkServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    if let Ok(mut connections) = shared.connections.lock() {
                        connections.push(clone);
                    }
                }
                let conn_shared = shared.clone();
                let handle = std::thread::Builder::new()
                    .name("gk-serve-conn".to_string())
                    .spawn(move || connection_loop(stream, &conn_shared));
                if let (Ok(handle), Ok(mut threads)) = (handle, shared.connection_threads.lock()) {
                    threads.push(handle);
                }
            }
            Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn connection_loop(stream: TcpStream, shared: &Arc<ServerShared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (response_tx, response_rx) = mpsc::channel::<ResponseFrame>();
    let writer_thread = std::thread::Builder::new()
        .name("gk-serve-conn-writer".to_string())
        .spawn(move || {
            let mut writer = BufWriter::new(write_half);
            while let Ok(response) = response_rx.recv() {
                if write_frame(&mut writer, &Frame::Response(response)).is_err() {
                    return;
                }
            }
        });

    let mut reader = BufReader::new(stream);
    // request id (per connection) → batcher ticket, for cancellation.
    let mut tickets: HashMap<u64, u64> = HashMap::new();
    loop {
        match read_frame(&mut reader) {
            Ok(Some(Frame::Request(request))) => {
                handle_request(shared, &response_tx, &mut tickets, request);
            }
            Ok(Some(Frame::Cancel(cancel))) => {
                if let Some(ticket) = tickets.get(&cancel.id) {
                    shared.batcher.cancel(*ticket);
                }
            }
            // A client must not send response frames; drop the connection.
            Ok(Some(Frame::Response(_))) | Ok(None) | Err(_) => break,
        }
    }
    drop(response_tx); // Lets the writer finish flushing queued responses.
    if let Ok(handle) = writer_thread {
        let _ = handle.join();
    }
}

fn handle_request(
    shared: &Arc<ServerShared>,
    response_tx: &mpsc::Sender<ResponseFrame>,
    tickets: &mut HashMap<u64, u64>,
    request: RequestFrame,
) {
    let id = request.id;
    let Some(kind) = FilterKind::from_code(request.kind) else {
        let _ = response_tx.send(error_response(
            id,
            format!("unknown filter kind code {}", request.kind),
        ));
        return;
    };
    let ticket = shared.next_ticket.fetch_add(1, Ordering::Relaxed); // Relaxed: only uniqueness matters, no ordering with other memory.
    tickets.insert(id, ticket);
    let tx = response_tx.clone();
    let respond = Box::new(move |outcome: Outcome| {
        let response = match outcome {
            Outcome::Done(decisions) => ResponseFrame {
                id,
                status: ResponseStatus::Ok,
                retry_after_micros: 0,
                decisions: decisions
                    .iter()
                    .map(|d| decision_word(d.estimated_edits, d.accepted, d.undefined))
                    .collect(),
                message: String::new(),
            },
            Outcome::Cancelled => ResponseFrame {
                id,
                status: ResponseStatus::Cancelled,
                retry_after_micros: 0,
                decisions: Vec::new(),
                message: String::new(),
            },
        };
        let _ = tx.send(response);
    });
    let submit = shared.batcher.submit(
        ticket,
        Request {
            tenant: request.tenant,
            kind,
            threshold: request.threshold,
            deadline: Duration::from_micros(request.deadline_micros.max(1)),
            pairs: request.pairs,
        },
        respond,
    );
    match submit {
        Ok(()) => {}
        Err(SubmitError::QueueFull { retry_after }) => {
            let _ = response_tx.send(ResponseFrame {
                id,
                status: ResponseStatus::Rejected,
                retry_after_micros: retry_after.as_micros() as u64,
                decisions: Vec::new(),
                message: String::new(),
            });
        }
        Err(SubmitError::Closed) => {
            let _ = response_tx.send(error_response(id, "server shutting down".to_string()));
        }
    }
}

fn error_response(id: u64, message: String) -> ResponseFrame {
    ResponseFrame {
        id,
        status: ResponseStatus::Error,
        retry_after_micros: 0,
        decisions: Vec::new(),
        message,
    }
}
