//! # gk-serve
//!
//! Filter-as-a-service: a daemon that accepts read-pair filter requests
//! from many concurrent clients and coalesces them into large backend
//! invocations — the ROADMAP's millions-of-users direction, built entirely
//! on the existing execution substrates.
//!
//! * [`batcher`] — the dynamic batcher: size-or-timeout flush with an
//!   idle-flush fast path, per-tenant deficit-weighted fair queuing,
//!   bounded-queue backpressure (reject-with-retry-after, never OOM) and
//!   client-initiated cancellation of not-yet-batched work.
//! * [`server`] — [`server::GkServer`]: a localhost TCP listener speaking
//!   the length-prefixed binary frames of `gk_seq::frame`, one reader +
//!   writer thread per connection, everything funneled into one batcher.
//! * [`client`] — [`client::GkClient`]: a thread-safe pipelined client with
//!   blocking and non-blocking submission, cancellation and decoded
//!   [`client::Reply`] results.
//!
//! Execution goes through the [`gk_core::backend::FilterBackend`] registry
//! (`cpu-simd`, `gpu-sim`, `multi-gpu`), so service decisions are
//! digest-identical to the offline harness paths — that equivalence is a
//! tested invariant (`tests/service_equivalence.rs`), not an aspiration.
//!
//! # Quickstart
//!
//! ```
//! use gk_core::backend::{CpuSimdBackend, FilterKind};
//! use gk_serve::batcher::BatcherConfig;
//! use gk_serve::client::{GkClient, Reply};
//! use gk_serve::server::GkServer;
//! use gk_seq::pairs::SequencePair;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! // Daemon on an ephemeral localhost port.
//! let server = GkServer::start(
//!     "127.0.0.1:0",
//!     Arc::new(CpuSimdBackend::new(1)),
//!     BatcherConfig::default(),
//! )?;
//!
//! // One client, one two-pair GateKeeper request with e = 2.
//! let client = GkClient::connect(server.local_addr())?;
//! let pairs = vec![
//!     SequencePair::new(&b"ACGTACGT"[..], &b"ACGTACGT"[..]),
//!     SequencePair::new(&b"ACGTACGT"[..], &b"TGCATGCA"[..]),
//! ];
//! let reply = client.filter(
//!     FilterKind::GateKeeper,
//!     2,
//!     Duration::from_millis(50),
//!     pairs,
//! )?;
//! match reply {
//!     Reply::Decisions(decisions) => {
//!         assert!(decisions[0].accepted);
//!         assert!(!decisions[1].accepted);
//!     }
//!     other => panic!("unexpected reply {other:?}"),
//! }
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod server;

pub use batcher::{Batcher, BatcherConfig, BatcherStats, Outcome, Request, SubmitError};
pub use client::{GkClient, PendingReply, Reply};
pub use server::GkServer;

#[cfg(test)]
mod tests {
    use crate::batcher::BatcherConfig;
    use crate::client::{GkClient, Reply};
    use crate::server::GkServer;
    use gk_core::backend::{CpuSimdBackend, FilterJob, FilterKind};
    use gk_core::FilterBackend;
    use gk_filters::traits::decision_digest;
    use gk_seq::datasets::DatasetProfile;
    use std::sync::Arc;
    use std::time::Duration;

    fn start_server(config: BatcherConfig) -> (GkServer, Arc<CpuSimdBackend>) {
        let backend = Arc::new(CpuSimdBackend::new(1));
        let server =
            GkServer::start("127.0.0.1:0", backend.clone(), config).expect("bind ephemeral port");
        (server, backend)
    }

    #[test]
    fn socket_round_trip_matches_direct_backend() {
        let (server, backend) = start_server(BatcherConfig::default());
        let client = GkClient::connect(server.local_addr()).expect("connect");
        let pairs = DatasetProfile::set3().generate(200, 3).pairs;
        let direct = backend.run(&FilterJob::new(FilterKind::Shouji, 3, &pairs));
        let reply = client
            .filter(FilterKind::Shouji, 3, Duration::from_millis(50), pairs)
            .expect("reply");
        match reply {
            Reply::Decisions(decisions) => {
                assert_eq!(decision_digest(&decisions), decision_digest(&direct));
            }
            other => panic!("unexpected reply {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn malformed_kind_yields_error_reply() {
        use gk_seq::frame::{read_frame, write_frame, Frame, RequestFrame, ResponseStatus};
        use std::io::{BufReader, BufWriter};
        use std::net::TcpStream;

        let (server, _backend) = start_server(BatcherConfig::default());
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        write_frame(
            &mut writer,
            &Frame::Request(RequestFrame {
                id: 1,
                tenant: 0,
                kind: 200, // no such filter
                threshold: 2,
                deadline_micros: 1000,
                pairs: vec![],
            }),
        )
        .expect("write");
        let mut reader = BufReader::new(stream);
        let frame = read_frame(&mut reader).expect("read").expect("frame");
        match frame {
            Frame::Response(response) => {
                assert_eq!(response.status, ResponseStatus::Error);
                assert!(response.message.contains("unknown filter kind"));
            }
            other => panic!("unexpected frame {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_each_get_their_own_answers() {
        let (server, backend) = start_server(BatcherConfig::default());
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4u64)
            .map(|seed| {
                let backend = backend.clone();
                std::thread::spawn(move || {
                    let client = GkClient::connect_as(addr, seed as u32).expect("connect");
                    for round in 0..3u64 {
                        let pairs = DatasetProfile::set3()
                            .generate(64, seed * 100 + round)
                            .pairs;
                        let direct =
                            backend.run(&FilterJob::new(FilterKind::GateKeeper, 2, &pairs));
                        let reply = client
                            .filter(FilterKind::GateKeeper, 2, Duration::from_millis(50), pairs)
                            .expect("reply");
                        match reply {
                            Reply::Decisions(decisions) => {
                                assert_eq!(decision_digest(&decisions), decision_digest(&direct));
                            }
                            other => panic!("unexpected reply {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
        let stats = server.stats();
        assert_eq!(stats.admitted, 12);
        server.shutdown();
    }
}
