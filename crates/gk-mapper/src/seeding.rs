//! Seeding: candidate-location generation from k-mer hits.
//!
//! mrFAST guarantees full sensitivity within the error threshold by the
//! pigeonhole principle: a read partitioned into `e + 1` non-overlapping segments
//! must contain at least one segment with no edit when the read maps within `e`
//! edits, so looking up `e + 1` seeds and verifying every hit finds every valid
//! location. This module reproduces that strategy (on both strands) on top of the
//! [`crate::index::KmerIndex`]. Because genomic repeats make seeds hit many places,
//! the number of candidates per read is large — the over-production that makes
//! pre-alignment filtering worthwhile (§1).

use crate::index::KmerIndex;
use gk_seq::alphabet::reverse_complement;
use serde::{Deserialize, Serialize};

/// A candidate mapping location produced by seeding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CandidateLocation {
    /// 0-based reference position where the read would start.
    pub position: u32,
    /// True if the candidate is on the reverse strand (the reverse-complemented
    /// read is compared against the forward reference segment).
    pub reverse: bool,
}

/// Seeding parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedingConfig {
    /// Error threshold the mapper runs with; `threshold + 1` seeds are queried.
    pub threshold: u32,
    /// Map the reverse strand as well (true for all whole-genome experiments).
    pub both_strands: bool,
    /// Drop seeds whose hit list exceeds this length (mrFAST's repeat masking);
    /// `0` disables the cap.
    pub max_hits_per_seed: usize,
}

impl SeedingConfig {
    /// Default configuration for an error threshold.
    pub fn new(threshold: u32) -> SeedingConfig {
        SeedingConfig {
            threshold,
            both_strands: true,
            max_hits_per_seed: 0,
        }
    }
}

/// Generates candidate locations for one read.
///
/// The read is partitioned into non-overlapping k-mers; the first `e + 1` of them
/// (or all, when the read is short) are looked up in the index, and every hit is
/// translated back to the position where the *read* would start. Candidates closer
/// than one seed length to each other collapse into one (verification is banded, so
/// nearby starts verify identically).
pub fn candidates_for_read(
    read: &[u8],
    index: &KmerIndex,
    config: &SeedingConfig,
) -> Vec<CandidateLocation> {
    let mut candidates = Vec::new();
    collect_candidates(read, index, config, false, &mut candidates);
    if config.both_strands {
        let rc = reverse_complement(read);
        collect_candidates(&rc, index, config, true, &mut candidates);
    }
    dedupe(candidates)
}

fn collect_candidates(
    read: &[u8],
    index: &KmerIndex,
    config: &SeedingConfig,
    reverse: bool,
    out: &mut Vec<CandidateLocation>,
) {
    let k = index.k();
    if read.len() < k {
        return;
    }
    let available_seeds = read.len() / k;
    let seeds_to_use = (config.threshold as usize + 1).min(available_seeds).max(1);
    for seed_idx in 0..seeds_to_use {
        let offset = seed_idx * k;
        let seed = &read[offset..offset + k];
        let hits = index.lookup(seed);
        if config.max_hits_per_seed > 0 && hits.len() > config.max_hits_per_seed {
            continue;
        }
        for &hit in hits {
            let position = hit as i64 - offset as i64;
            if position < 0 {
                continue;
            }
            let position = position as u32;
            if (position as usize + read.len()) > index.reference_len() + config.threshold as usize
            {
                continue;
            }
            out.push(CandidateLocation { position, reverse });
        }
    }
}

/// Collapses candidates that are duplicates or within one base of each other on the
/// same strand.
fn dedupe(mut candidates: Vec<CandidateLocation>) -> Vec<CandidateLocation> {
    candidates.sort_by_key(|c| (c.reverse, c.position));
    candidates.dedup_by(|a, b| a.reverse == b.reverse && a.position == b.position);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_seq::reference::{Reference, ReferenceBuilder};
    use gk_seq::simulate::{ErrorProfile, ReadSimulator};

    fn indexed_reference() -> (Reference, KmerIndex) {
        let reference = ReferenceBuilder::new(60_000).seed(5).n_gaps(0, 0).build();
        let index = KmerIndex::build(&reference);
        (reference, index)
    }

    #[test]
    fn perfect_forward_read_finds_its_origin() {
        let (reference, index) = indexed_reference();
        let origin = 12_345usize;
        let read = reference.segment(origin, 100).to_vec();
        let candidates = candidates_for_read(&read, &index, &SeedingConfig::new(2));
        assert!(candidates
            .iter()
            .any(|c| !c.reverse && c.position == origin as u32));
    }

    #[test]
    fn reverse_strand_read_finds_its_origin() {
        let (reference, index) = indexed_reference();
        let origin = 30_000usize;
        let segment = reference.segment(origin, 100);
        let read = reverse_complement(segment);
        let candidates = candidates_for_read(&read, &index, &SeedingConfig::new(2));
        assert!(candidates
            .iter()
            .any(|c| c.reverse && c.position == origin as u32));
    }

    #[test]
    fn read_with_edits_still_finds_its_origin_by_pigeonhole() {
        let (reference, index) = indexed_reference();
        let reads = ReadSimulator::new(100, ErrorProfile::low_indel())
            .seed(9)
            .reverse_fraction(0.0)
            .simulate(&reference, 50);
        let config = SeedingConfig::new(3);
        let mut found = 0;
        for read in &reads {
            let candidates = candidates_for_read(&read.sequence, &index, &config);
            if candidates
                .iter()
                .any(|c| !c.reverse && c.position.abs_diff(read.origin as u32) <= 3)
            {
                found += 1;
            }
        }
        // Pigeonhole holds when the planted edits are at most the threshold; the
        // low-indel profile occasionally exceeds it, so demand a high hit rate
        // rather than perfection.
        assert!(found >= 45, "only {found}/50 reads recovered their origin");
    }

    #[test]
    fn candidates_are_deduplicated_and_sorted() {
        let (reference, index) = indexed_reference();
        let read = reference.segment(5_000, 100).to_vec();
        let candidates = candidates_for_read(&read, &index, &SeedingConfig::new(4));
        for pair in candidates.windows(2) {
            assert!(
                (pair[0].reverse, pair[0].position) < (pair[1].reverse, pair[1].position),
                "candidates not strictly ordered"
            );
        }
    }

    #[test]
    fn repeat_rich_references_produce_many_candidates() {
        let reference = ReferenceBuilder::new(100_000)
            .seed(11)
            .repeat_fraction(0.6)
            .repeat_divergence(0.0)
            .repeat_family_copies(16)
            .n_gaps(0, 0)
            .build();
        let index = KmerIndex::build(&reference);
        let reads = ReadSimulator::new(100, ErrorProfile::perfect())
            .seed(13)
            .reverse_fraction(0.0)
            .simulate(&reference, 100);
        let config = SeedingConfig::new(2);
        let total: usize = reads
            .iter()
            .map(|r| candidates_for_read(&r.sequence, &index, &config).len())
            .sum();
        // On average more than one candidate per read: repeats inflate the list.
        assert!(total > 120, "total candidates = {total}");
    }

    #[test]
    fn max_hits_cap_prunes_repetitive_seeds() {
        let reference = Reference::from_ascii("t", &b"ACGT".repeat(1000));
        let index = KmerIndex::build_with_k(&reference, 4);
        let read = b"ACGTACGTACGTACGTACGT".to_vec();
        let unlimited = candidates_for_read(&read, &index, &SeedingConfig::new(1));
        let mut capped_config = SeedingConfig::new(1);
        capped_config.max_hits_per_seed = 10;
        let capped = candidates_for_read(&read, &index, &capped_config);
        assert!(capped.len() < unlimited.len());
    }

    #[test]
    fn short_reads_produce_no_candidates() {
        let (_, index) = indexed_reference();
        let candidates = candidates_for_read(b"ACGT", &index, &SeedingConfig::new(2));
        assert!(candidates.is_empty());
    }

    #[test]
    fn forward_only_configuration_skips_reverse_candidates() {
        let (reference, index) = indexed_reference();
        let origin = 9_000usize;
        let read = reverse_complement(reference.segment(origin, 100));
        let mut config = SeedingConfig::new(2);
        config.both_strands = false;
        let candidates = candidates_for_read(&read, &index, &config);
        assert!(candidates.iter().all(|c| !c.reverse));
    }
}
