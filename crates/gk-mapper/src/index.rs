//! k-mer hash index over the reference genome.
//!
//! mrFAST builds an index of fixed-length k-mers (12-mers by default) over the
//! reference; seeding looks up the k-mers extracted from each read and every hit
//! becomes a candidate mapping location. Regions containing `N` are skipped during
//! construction, mirroring §3.5 ("the locations of 'N' bases on the reference
//! genome are also recorded since the segments containing this character will not
//! be evaluated").

use gk_seq::alphabet::encode_base;
use gk_seq::reference::Reference;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Default seed length, matching mrFAST's 12-mer index.
pub const DEFAULT_KMER_LEN: usize = 12;

/// A k-mer hash index over one reference sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KmerIndex {
    k: usize,
    /// 2-bit packed k-mer value → sorted reference positions.
    entries: HashMap<u64, Vec<u32>>,
    reference_len: usize,
}

impl KmerIndex {
    /// Builds an index with the default k-mer length.
    pub fn build(reference: &Reference) -> KmerIndex {
        KmerIndex::build_with_k(reference, DEFAULT_KMER_LEN)
    }

    /// Builds an index with an explicit k-mer length (2–31).
    pub fn build_with_k(reference: &Reference, k: usize) -> KmerIndex {
        assert!(
            (2..=31).contains(&k),
            "k-mer length {k} out of range 2..=31"
        );
        let seq = &reference.sequence;
        let mut entries: HashMap<u64, Vec<u32>> = HashMap::new();
        if seq.len() >= k {
            let mask = (1u64 << (2 * k)) - 1;
            let mut value = 0u64;
            let mut valid = 0usize; // number of consecutive definite bases ending here
            for (i, &base) in seq.iter().enumerate() {
                match encode_base(base) {
                    Some(code) => {
                        value = ((value << 2) | code as u64) & mask;
                        valid += 1;
                    }
                    None => {
                        valid = 0;
                        value = 0;
                    }
                }
                if valid >= k {
                    let pos = (i + 1 - k) as u32;
                    entries.entry(value).or_default().push(pos);
                }
            }
        }
        KmerIndex {
            k,
            entries,
            reference_len: seq.len(),
        }
    }

    /// The seed length of the index.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Length of the indexed reference.
    pub fn reference_len(&self) -> usize {
        self.reference_len
    }

    /// Number of distinct k-mers present.
    pub fn distinct_kmers(&self) -> usize {
        self.entries.len()
    }

    /// Total number of indexed positions.
    pub fn total_positions(&self) -> usize {
        self.entries.values().map(|v| v.len()).sum()
    }

    /// Packs an ASCII k-mer into its 2-bit value; `None` if it contains a non-ACGT
    /// base or has the wrong length.
    pub fn pack_kmer(&self, kmer: &[u8]) -> Option<u64> {
        if kmer.len() != self.k {
            return None;
        }
        let mut value = 0u64;
        for &base in kmer {
            value = (value << 2) | encode_base(base)? as u64;
        }
        Some(value)
    }

    /// Reference positions where the k-mer occurs (empty slice if absent or invalid).
    pub fn lookup(&self, kmer: &[u8]) -> &[u32] {
        match self.pack_kmer(kmer) {
            Some(value) => self
                .entries
                .get(&value)
                .map(|v| v.as_slice())
                .unwrap_or(&[]),
            None => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_seq::reference::ReferenceBuilder;

    #[test]
    fn indexes_every_position_of_a_small_reference() {
        let reference = Reference::from_ascii("t", b"ACGTACGTACGT");
        let index = KmerIndex::build_with_k(&reference, 4);
        assert_eq!(index.total_positions(), 12 - 4 + 1);
        assert_eq!(index.lookup(b"ACGT"), &[0, 4, 8]);
        assert_eq!(index.lookup(b"CGTA"), &[1, 5]);
        assert_eq!(index.lookup(b"TTTT"), &[] as &[u32]);
    }

    #[test]
    fn skips_kmers_spanning_n_bases() {
        let reference = Reference::from_ascii("t", b"ACGTNACGT");
        let index = KmerIndex::build_with_k(&reference, 4);
        // Only positions 0 and 5 host N-free 4-mers.
        assert_eq!(index.lookup(b"ACGT"), &[0, 5]);
        assert_eq!(index.total_positions(), 2);
    }

    #[test]
    fn lookup_of_invalid_kmer_is_empty() {
        let reference = Reference::from_ascii("t", b"ACGTACGT");
        let index = KmerIndex::build_with_k(&reference, 4);
        assert_eq!(index.lookup(b"ACGN"), &[] as &[u32]);
        assert_eq!(index.lookup(b"ACG"), &[] as &[u32]);
    }

    #[test]
    fn finds_planted_kmers_in_a_synthetic_genome() {
        let reference = ReferenceBuilder::new(50_000).seed(7).n_gaps(0, 0).build();
        let index = KmerIndex::build(&reference);
        assert_eq!(index.k(), DEFAULT_KMER_LEN);
        for start in [0usize, 1_000, 25_000, 49_900 - DEFAULT_KMER_LEN] {
            let kmer = &reference.sequence[start..start + DEFAULT_KMER_LEN];
            assert!(
                index.lookup(kmer).contains(&(start as u32)),
                "position {start} missing"
            );
        }
    }

    #[test]
    fn repeats_create_multi_hit_kmers() {
        let reference = ReferenceBuilder::new(100_000)
            .seed(3)
            .repeat_fraction(0.5)
            .repeat_divergence(0.0)
            .n_gaps(0, 0)
            .build();
        let index = KmerIndex::build(&reference);
        let multi_hit = index
            .entries
            .values()
            .filter(|positions| positions.len() > 1)
            .count();
        assert!(
            multi_hit > 0,
            "expected repeated k-mers in a repeat-rich genome"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unreasonable_k_panics() {
        let reference = Reference::from_ascii("t", b"ACGT");
        KmerIndex::build_with_k(&reference, 40);
    }

    #[test]
    fn short_reference_yields_empty_index() {
        let reference = Reference::from_ascii("t", b"ACG");
        let index = KmerIndex::build_with_k(&reference, 5);
        assert_eq!(index.total_positions(), 0);
        assert_eq!(index.distinct_kmers(), 0);
    }
}
