//! # gk-mapper
//!
//! A seed-and-extend short-read mapper in the mould of mrFAST, used for the
//! whole-genome experiments of the paper (§3.5, §5.3).
//!
//! mrFAST is a *fully sensitive* mapper: seeding enumerates every candidate
//! location that could possibly align within the error threshold, and verification
//! (banded edit-distance DP) decides which candidates are real mappings. Because
//! seeding over-produces candidates by orders of magnitude, the verification stage
//! dominates the runtime — which is exactly the stage GateKeeper-GPU shields.
//!
//! The crate provides:
//!
//! * [`index`] — a k-mer hash index over the reference;
//! * [`seeding`] — candidate generation by non-overlapping k-mer seeds on both
//!   strands (the e+1 partition strategy);
//! * [`pipeline`] — the full mapper: batching, the pre-alignment-filter hook
//!   (none / any host filter / GateKeeper-GPU / multi-GPU), verification, and the
//!   mapping statistics the paper reports (mappings, mapped reads, verification
//!   pairs, rejected pairs, stage timings);
//! * [`record`] — mapping records with CIGARs and SAM-style rendering.

#![warn(missing_docs)]

pub mod index;
pub mod pipeline;
pub mod record;
pub mod seeding;

pub use index::KmerIndex;
pub use pipeline::{MapperConfig, MappingOutcome, MappingStats, PreFilter, ReadMapper};
pub use record::MappingRecord;
pub use seeding::{CandidateLocation, SeedingConfig};
