//! Mapping records and SAM-style rendering.

use gk_align::cigar::Cigar;
use serde::{Deserialize, Serialize};

/// One reported alignment of a read at a verified location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingRecord {
    /// Read identifier.
    pub read_id: String,
    /// Reference contig name.
    pub reference_name: String,
    /// 0-based mapping position on the forward reference.
    pub position: u32,
    /// True for reverse-strand mappings.
    pub reverse: bool,
    /// Edit distance of the verified alignment.
    pub edit_distance: u32,
    /// Alignment CIGAR.
    pub cigar: Cigar,
}

impl MappingRecord {
    /// SAM flag field for this record (only the strand bit is modelled).
    pub fn sam_flag(&self) -> u32 {
        if self.reverse {
            16
        } else {
            0
        }
    }

    /// Renders the record as a SAM-like line (QNAME FLAG RNAME POS MAPQ CIGAR NM).
    pub fn to_sam_line(&self, sequence: &[u8]) -> String {
        format!(
            "{}\t{}\t{}\t{}\t255\t{}\t*\t0\t0\t{}\t*\tNM:i:{}",
            self.read_id,
            self.sam_flag(),
            self.reference_name,
            self.position + 1,
            self.cigar,
            String::from_utf8_lossy(sequence),
            self.edit_distance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_align::cigar::CigarOp;

    fn record(reverse: bool) -> MappingRecord {
        let mut cigar = Cigar::new();
        cigar.push(CigarOp::Match, 100);
        MappingRecord {
            read_id: "read1".to_string(),
            reference_name: "chrSim".to_string(),
            position: 41,
            reverse,
            edit_distance: 2,
            cigar,
        }
    }

    #[test]
    fn sam_flag_encodes_strand() {
        assert_eq!(record(false).sam_flag(), 0);
        assert_eq!(record(true).sam_flag(), 16);
    }

    #[test]
    fn sam_line_contains_one_based_position_and_nm_tag() {
        let line = record(false).to_sam_line(b"ACGT");
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields[0], "read1");
        assert_eq!(fields[2], "chrSim");
        assert_eq!(fields[3], "42");
        assert_eq!(fields[5], "100M");
        assert!(line.ends_with("NM:i:2"));
    }
}
