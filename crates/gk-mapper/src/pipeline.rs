//! The full read-mapping pipeline with the pre-alignment-filter hook.
//!
//! The paper integrates GateKeeper-GPU into mrFAST (§3.5): reads are processed in
//! batches of up to 100,000; seeding produces candidate locations; the batch of
//! (read, candidate reference segment) pairs goes through the filter on the GPU;
//! only accepted pairs enter verification; and the mapper reports the metrics of
//! §4.5 — number of mappings, mapped reads, candidate mappings, candidate mappings
//! that enter verification, and the time spent in each stage. [`ReadMapper`]
//! reproduces that workflow with a pluggable [`PreFilter`].

use crate::index::KmerIndex;
use crate::record::MappingRecord;
use crate::seeding::{candidates_for_read, CandidateLocation, SeedingConfig};
use gk_align::cigar::{Cigar, CigarOp};
use gk_align::dp::banded_levenshtein;
use gk_align::nw::{needleman_wunsch, ScoringScheme};
use gk_core::gpu::GateKeeperGpu;
use gk_core::multi_gpu::MultiGpuGateKeeper;
use gk_filters::traits::{FilterDecision, PreAlignmentFilter};
use gk_seq::alphabet::reverse_complement;
use gk_seq::fastq::FastqRecord;
use gk_seq::pairs::{PairSet, SequencePair};
use gk_seq::reference::Reference;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Mapper configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// Error threshold `e` for both filtering and verification.
    pub threshold: u32,
    /// Seeding parameters.
    pub seeding: SeedingConfig,
    /// Maximum number of reads whose candidates are batched before filtering
    /// (100,000 in the paper; Table 1 sweeps this value).
    pub max_reads_per_batch: usize,
    /// Produce full traceback CIGARs for reported mappings (slower; off for the
    /// throughput experiments).
    pub report_alignments: bool,
}

impl MapperConfig {
    /// Default configuration for an error threshold.
    pub fn new(threshold: u32) -> MapperConfig {
        MapperConfig {
            threshold,
            seeding: SeedingConfig::new(threshold),
            max_reads_per_batch: 100_000,
            report_alignments: false,
        }
    }

    /// Sets the number of reads per batch.
    pub fn with_max_reads_per_batch(mut self, reads: usize) -> MapperConfig {
        self.max_reads_per_batch = reads.max(1);
        self
    }

    /// Enables traceback CIGAR reporting.
    pub fn with_alignments(mut self) -> MapperConfig {
        self.report_alignments = true;
        self
    }
}

/// The pre-alignment filter plugged into the mapper.
pub enum PreFilter {
    /// No filtering: every candidate enters verification (the "No Filter" rows).
    None,
    /// Any host-side filter (GateKeeper-CPU, SneakySnake, MAGNET, …).
    Host(Box<dyn PreAlignmentFilter + Send + Sync>),
    /// GateKeeper-GPU on one simulated device.
    Gpu(GateKeeperGpu),
    /// GateKeeper-GPU across several simulated devices.
    MultiGpu(MultiGpuGateKeeper),
}

impl PreFilter {
    /// Human-readable name for reports.
    pub fn name(&self) -> &str {
        match self {
            PreFilter::None => "No Filter",
            PreFilter::Host(filter) => filter.name(),
            PreFilter::Gpu(_) => "GateKeeper-GPU",
            PreFilter::MultiGpu(_) => "GateKeeper-GPU (multi)",
        }
    }

    /// Applies the filter to a batch of pairs. Returns the per-pair decisions plus
    /// (kernel seconds, filter seconds).
    fn apply(&self, pairs: &PairSet) -> (Vec<FilterDecision>, f64, f64) {
        match self {
            PreFilter::None => (vec![FilterDecision::accept(0); pairs.len()], 0.0, 0.0),
            PreFilter::Host(filter) => {
                let start = Instant::now();
                let decisions = filter.filter_batch(&pairs.pairs);
                let elapsed = start.elapsed().as_secs_f64();
                (decisions, elapsed, elapsed)
            }
            PreFilter::Gpu(gpu) => {
                let run = gpu.filter_set(pairs);
                let (kernel, filter) = (run.kernel_seconds(), run.filter_seconds());
                (run.decisions, kernel, filter)
            }
            PreFilter::MultiGpu(multi) => {
                let run = multi.filter_set(pairs);
                (run.decisions, run.kernel_seconds, run.filter_seconds)
            }
        }
    }
}

/// The whole-genome metrics of §4.5 / Tables 3, S.24–S.26.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MappingStats {
    /// Number of reads processed.
    pub reads: usize,
    /// Number of reported mappings (a read can map to several locations).
    pub mappings: u64,
    /// Number of reads with at least one mapping.
    pub mapped_reads: u64,
    /// Total candidate mappings produced by seeding.
    pub candidate_pairs: u64,
    /// Candidate mappings that entered verification (passed the filter).
    pub verification_pairs: u64,
    /// Candidate mappings rejected by the pre-alignment filter.
    pub rejected_pairs: u64,
    /// Time spent preparing batches (seeding, segment extraction, buffer filling).
    pub preprocessing_seconds: f64,
    /// Device kernel time spent filtering (zero without a GPU filter).
    pub filter_kernel_seconds: f64,
    /// Total filtering time from the host's perspective (modelled for the simulated
    /// GPU filters, measured for host filters).
    pub filter_seconds: f64,
    /// Wall-clock time this process actually spent producing the filter decisions
    /// (functional simulation cost; lets reports exclude it when modelling a real
    /// device).
    pub filter_wall_seconds: f64,
    /// Verification (banded DP) time.
    pub verification_seconds: f64,
    /// End-to-end mapping time.
    pub total_seconds: f64,
}

impl MappingStats {
    /// Fraction of candidate mappings removed before verification (the
    /// "(Reduction)" column of Table 3).
    pub fn reduction_fraction(&self) -> f64 {
        if self.candidate_pairs == 0 {
            0.0
        } else {
            self.rejected_pairs as f64 / self.candidate_pairs as f64
        }
    }

    /// Combined filtering + verification time (the "Filtering + DP Time" column of
    /// Table 5; kernel time is used for the filter, as in the paper).
    pub fn filtering_plus_dp_seconds(&self) -> f64 {
        self.filter_kernel_seconds + self.verification_seconds
    }
}

/// Result of mapping a read set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MappingOutcome {
    /// Reported mappings.
    pub records: Vec<MappingRecord>,
    /// Aggregate statistics.
    pub stats: MappingStats,
}

/// One read's contribution to a filter batch: the candidate pairs plus, for
/// each pair, the (read index, candidate location) it came from.
type ReadCandidates = (Vec<SequencePair>, Vec<(usize, CandidateLocation)>);

/// The seed-and-extend read mapper.
pub struct ReadMapper {
    reference: Reference,
    index: KmerIndex,
    config: MapperConfig,
}

impl ReadMapper {
    /// Builds a mapper (and its k-mer index) over a reference.
    pub fn new(reference: Reference, config: MapperConfig) -> ReadMapper {
        let index = KmerIndex::build(&reference);
        ReadMapper {
            reference,
            index,
            config,
        }
    }

    /// The reference being mapped against.
    pub fn reference(&self) -> &Reference {
        &self.reference
    }

    /// The mapper configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Maps a set of reads with the given pre-alignment filter.
    pub fn map_reads(&self, reads: &[FastqRecord], filter: &PreFilter) -> MappingOutcome {
        let total_start = Instant::now();
        let mut stats = MappingStats {
            reads: reads.len(),
            ..Default::default()
        };
        let mut records = Vec::new();

        for batch in reads.chunks(self.config.max_reads_per_batch.max(1)) {
            self.map_batch(batch, filter, &mut stats, &mut records);
        }

        stats.total_seconds = total_start.elapsed().as_secs_f64();
        MappingOutcome { records, stats }
    }

    /// Maps a *stream* of read batches without materializing the whole read set:
    /// each incoming batch is cut at `max_reads_per_batch`, seeded, filtered and
    /// verified, and only its mapping records are retained — the 30M-pair
    /// whole-genome entry point matching the GPU path's `filter_stream`.
    /// Feeding the same reads as one slice to [`ReadMapper::map_reads`] produces
    /// record-identical output (timing fields are wall-clock and may differ).
    pub fn map_read_batches<I>(&self, batches: I, filter: &PreFilter) -> MappingOutcome
    where
        I: IntoIterator<Item = Vec<FastqRecord>>,
    {
        let total_start = Instant::now();
        let mut stats = MappingStats::default();
        let mut records = Vec::new();

        for batch in batches {
            stats.reads += batch.len();
            for chunk in batch.chunks(self.config.max_reads_per_batch.max(1)) {
                self.map_batch(chunk, filter, &mut stats, &mut records);
            }
        }

        stats.total_seconds = total_start.elapsed().as_secs_f64();
        MappingOutcome { records, stats }
    }

    fn map_batch(
        &self,
        reads: &[FastqRecord],
        filter: &PreFilter,
        stats: &mut MappingStats,
        records: &mut Vec<MappingRecord>,
    ) {
        let read_len = reads.first().map(|r| r.sequence.len()).unwrap_or(0);
        if read_len == 0 {
            return;
        }

        // Preprocessing: seeding + candidate segment extraction + buffer filling,
        // fanned out per read in a single parallel pass (seeding, segment copies
        // and reverse-complement orientation are all per-read independent). The
        // flatten below walks the per-read results in read order, so the batch
        // is identical to a sequential build.
        let prep_start = Instant::now();
        let per_read: Vec<ReadCandidates> = reads
            .par_iter()
            .enumerate()
            .map(|(read_idx, read)| {
                let candidates =
                    candidates_for_read(&read.sequence, &self.index, &self.config.seeding);
                let mut read_pairs = Vec::with_capacity(candidates.len());
                let mut owners = Vec::with_capacity(candidates.len());
                // Computed at most once per read, shared by all its
                // reverse-strand candidates.
                let mut reverse_read: Option<Vec<u8>> = None;
                for candidate in candidates {
                    let segment = self
                        .reference
                        .segment(candidate.position as usize, read.sequence.len());
                    if segment.len() < read.sequence.len() {
                        continue;
                    }
                    let oriented_read = if candidate.reverse {
                        reverse_read
                            .get_or_insert_with(|| reverse_complement(&read.sequence))
                            .clone()
                    } else {
                        read.sequence.clone()
                    };
                    read_pairs.push(SequencePair::new(oriented_read, segment.to_vec()));
                    owners.push((read_idx, candidate));
                }
                (read_pairs, owners)
            })
            .collect();

        let mut pairs: Vec<SequencePair> = Vec::new();
        let mut pair_owner: Vec<(usize, CandidateLocation)> = Vec::new();
        for (read_pairs, owners) in per_read {
            pairs.extend(read_pairs);
            pair_owner.extend(owners);
        }
        let pair_set = PairSet::new("mapper batch", read_len, pairs);
        stats.preprocessing_seconds += prep_start.elapsed().as_secs_f64();
        stats.candidate_pairs += pair_set.len() as u64;

        // Pre-alignment filtering.
        let filter_wall_start = Instant::now();
        let (decisions, kernel_seconds, filter_seconds) = filter.apply(&pair_set);
        stats.filter_wall_seconds += filter_wall_start.elapsed().as_secs_f64();
        stats.filter_kernel_seconds += kernel_seconds;
        stats.filter_seconds += filter_seconds;
        let accepted: Vec<usize> = decisions
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.accepted.then_some(i))
            .collect();
        stats.verification_pairs += accepted.len() as u64;
        stats.rejected_pairs += (pair_set.len() - accepted.len()) as u64;

        // Verification: banded edit distance against the threshold.
        let verify_start = Instant::now();
        let threshold = self.config.threshold;
        let verified: Vec<(usize, u32)> = accepted
            .par_iter()
            .filter_map(|&pair_idx| {
                let pair = &pair_set.pairs[pair_idx];
                banded_levenshtein(&pair.read, &pair.reference, threshold)
                    .map(|distance| (pair_idx, distance))
            })
            .collect();
        stats.verification_seconds += verify_start.elapsed().as_secs_f64();

        // Reporting.
        let mut read_mapped = vec![false; reads.len()];
        for (pair_idx, distance) in verified {
            let (read_idx, candidate) = pair_owner[pair_idx];
            read_mapped[read_idx] = true;
            stats.mappings += 1;
            let pair = &pair_set.pairs[pair_idx];
            let cigar = if self.config.report_alignments {
                needleman_wunsch(
                    &pair.read,
                    &pair.reference,
                    ScoringScheme {
                        match_score: 0,
                        mismatch: -1,
                        gap: -1,
                    },
                )
                .cigar
            } else {
                let mut cigar = Cigar::new();
                cigar.push(CigarOp::Match, pair.read.len() as u32);
                cigar
            };
            records.push(MappingRecord {
                read_id: reads[read_idx].id.clone(),
                reference_name: self.reference.name.clone(),
                position: candidate.position,
                reverse: candidate.reverse,
                edit_distance: distance,
                cigar,
            });
        }
        stats.mapped_reads += read_mapped.iter().filter(|&&m| m).count() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_core::config::FilterConfig;
    use gk_filters::SneakySnakeFilter;
    use gk_seq::reference::ReferenceBuilder;
    use gk_seq::simulate::{ErrorProfile, ReadSimulator};

    fn reference() -> Reference {
        ReferenceBuilder::new(80_000)
            .seed(21)
            .repeat_fraction(0.3)
            .n_gaps(0, 0)
            .build()
    }

    fn simulated_reads(
        reference: &Reference,
        count: usize,
        profile: ErrorProfile,
    ) -> Vec<FastqRecord> {
        ReadSimulator::new(100, profile)
            .seed(17)
            .simulate(reference, count)
            .iter()
            .map(|r| r.to_fastq())
            .collect()
    }

    fn gpu_filter(threshold: u32) -> PreFilter {
        PreFilter::Gpu(GateKeeperGpu::with_default_device(FilterConfig::new(
            100, threshold,
        )))
    }

    #[test]
    fn perfect_reads_all_map_to_their_origin() {
        let reference = reference();
        let reads = simulated_reads(&reference, 100, ErrorProfile::perfect());
        let mapper = ReadMapper::new(reference, MapperConfig::new(2));
        let outcome = mapper.map_reads(&reads, &PreFilter::None);
        assert_eq!(outcome.stats.mapped_reads, 100);
        assert!(outcome.stats.mappings >= 100);
        assert_eq!(outcome.stats.reads, 100);
        assert_eq!(
            outcome.stats.candidate_pairs,
            outcome.stats.verification_pairs
        );
    }

    #[test]
    fn filtering_does_not_change_the_mappings() {
        // Table 3 at e = 0: the number of mappings and mapped reads is identical
        // with and without GateKeeper-GPU; only the verification workload shrinks.
        let reference = reference();
        let reads = simulated_reads(&reference, 120, ErrorProfile::illumina());
        let mapper = ReadMapper::new(reference, MapperConfig::new(3));

        let unfiltered = mapper.map_reads(&reads, &PreFilter::None);
        let filtered = mapper.map_reads(&reads, &gpu_filter(3));

        assert_eq!(unfiltered.stats.mappings, filtered.stats.mappings);
        assert_eq!(unfiltered.stats.mapped_reads, filtered.stats.mapped_reads);
        assert_eq!(
            unfiltered.stats.candidate_pairs,
            filtered.stats.candidate_pairs
        );
        assert!(filtered.stats.verification_pairs <= unfiltered.stats.verification_pairs);
        assert!(filtered.stats.rejected_pairs > 0);
    }

    #[test]
    fn filter_reduces_verification_workload_substantially() {
        let reference = reference();
        let reads = simulated_reads(&reference, 150, ErrorProfile::illumina());
        let mapper = ReadMapper::new(reference, MapperConfig::new(2));
        let filtered = mapper.map_reads(&reads, &gpu_filter(2));
        // Repeat-rich seeding produces many hopeless candidates; GateKeeper-GPU
        // should reject a large share of them.
        assert!(
            filtered.stats.reduction_fraction() > 0.2,
            "reduction = {}",
            filtered.stats.reduction_fraction()
        );
    }

    #[test]
    fn host_filter_hook_works_too() {
        let reference = reference();
        let reads = simulated_reads(&reference, 60, ErrorProfile::illumina());
        let mapper = ReadMapper::new(reference, MapperConfig::new(2));
        let snake = PreFilter::Host(Box::new(SneakySnakeFilter::new(2)));
        assert_eq!(snake.name(), "SneakySnake");
        let outcome = mapper.map_reads(&reads, &snake);
        let unfiltered = mapper.map_reads(&reads, &PreFilter::None);
        assert_eq!(outcome.stats.mappings, unfiltered.stats.mappings);
        assert!(outcome.stats.verification_pairs <= unfiltered.stats.verification_pairs);
    }

    #[test]
    fn stats_are_internally_consistent() {
        let reference = reference();
        let reads = simulated_reads(&reference, 80, ErrorProfile::low_indel());
        let mapper = ReadMapper::new(reference, MapperConfig::new(4));
        let outcome = mapper.map_reads(&reads, &gpu_filter(4));
        let stats = outcome.stats;
        assert_eq!(
            stats.candidate_pairs,
            stats.verification_pairs + stats.rejected_pairs
        );
        assert!(stats.mapped_reads <= stats.reads as u64);
        assert!(stats.mappings >= stats.mapped_reads);
        assert!(stats.total_seconds > 0.0);
        assert!(stats.filter_kernel_seconds <= stats.filter_seconds);
        assert_eq!(outcome.records.len() as u64, stats.mappings);
    }

    #[test]
    fn reported_positions_match_planted_origins() {
        let reference = reference();
        let sim_reads = ReadSimulator::new(100, ErrorProfile::perfect())
            .seed(33)
            .reverse_fraction(0.0)
            .simulate(&reference, 50);
        let fastq: Vec<FastqRecord> = sim_reads.iter().map(|r| r.to_fastq()).collect();
        let mapper = ReadMapper::new(reference, MapperConfig::new(2));
        let outcome = mapper.map_reads(&fastq, &gpu_filter(2));
        for sim in &sim_reads {
            let found = outcome
                .records
                .iter()
                .any(|r| r.read_id == sim.id && r.position as usize == sim.origin);
            assert!(found, "read {} not mapped to its origin", sim.id);
        }
    }

    #[test]
    fn alignment_reporting_produces_traceback_cigars() {
        let reference = reference();
        let reads = simulated_reads(&reference, 20, ErrorProfile::low_indel());
        let mapper = ReadMapper::new(reference, MapperConfig::new(3).with_alignments());
        let outcome = mapper.map_reads(&reads, &PreFilter::None);
        for record in &outcome.records {
            assert_eq!(record.cigar.read_len() as usize, 100);
            assert!(record.cigar.reference_len() > 0);
        }
    }

    #[test]
    fn batching_does_not_change_results() {
        let reference = reference();
        let reads = simulated_reads(&reference, 90, ErrorProfile::illumina());
        let single = ReadMapper::new(reference.clone(), MapperConfig::new(2));
        let batched = ReadMapper::new(reference, MapperConfig::new(2).with_max_reads_per_batch(10));
        let a = single.map_reads(&reads, &PreFilter::None);
        let b = batched.map_reads(&reads, &PreFilter::None);
        assert_eq!(a.stats.mappings, b.stats.mappings);
        assert_eq!(a.stats.candidate_pairs, b.stats.candidate_pairs);
        assert_eq!(a.stats.mapped_reads, b.stats.mapped_reads);
    }

    #[test]
    fn streamed_read_batches_match_materialized_mapping() {
        let reference = reference();
        let reads = simulated_reads(&reference, 90, ErrorProfile::illumina());
        let mapper = ReadMapper::new(reference, MapperConfig::new(2));

        let materialized = mapper.map_reads(&reads, &gpu_filter(2));
        let batches: Vec<Vec<FastqRecord>> = reads.chunks(25).map(|c| c.to_vec()).collect();
        let streamed = mapper.map_read_batches(batches, &gpu_filter(2));

        assert_eq!(streamed.records, materialized.records);
        assert_eq!(streamed.stats.reads, materialized.stats.reads);
        assert_eq!(streamed.stats.mappings, materialized.stats.mappings);
        assert_eq!(streamed.stats.mapped_reads, materialized.stats.mapped_reads);
        assert_eq!(
            streamed.stats.candidate_pairs,
            materialized.stats.candidate_pairs
        );
        assert_eq!(
            streamed.stats.verification_pairs,
            materialized.stats.verification_pairs
        );
    }

    #[test]
    fn empty_read_set_maps_nothing() {
        let reference = reference();
        let mapper = ReadMapper::new(reference, MapperConfig::new(2));
        let outcome = mapper.map_reads(&[], &PreFilter::None);
        assert_eq!(outcome.stats.mappings, 0);
        assert_eq!(outcome.records.len(), 0);
    }
}
