//! The five workspace invariants, as per-file token scans plus one
//! workspace-level pass (kernel/reference twinning).
//!
//! | rule            | scope                              | requirement |
//! |-----------------|------------------------------------|-------------|
//! | `unsafe-safety` | every `.rs` file                   | each `unsafe` block carries a `// SAFETY:` comment; each `unsafe fn` documents `# Safety` |
//! | `kernel-twin`   | `crates/gk-filters`                | every `*_kernel_x4` has a `*_reference` twin referenced from the differential property suite |
//! | `host-clock`    | `crates/gk-gpusim/src`             | no `std::time::{Instant, SystemTime}` in simulated-time code |
//! | `unwrap`        | non-test library code              | no `.unwrap()` / `.expect()` outside the allowlist |
//! | `relaxed`       | non-test library code              | `Ordering::Relaxed` carries a justification comment |
//!
//! "Non-test" excludes `#[cfg(test)]` regions (any `cfg` predicate naming
//! `test`, so `#[cfg(any(test, gk_schedules))]` layers count as test code),
//! integration `tests/`, `benches/`, `examples/`, and `src/bin/` harness
//! binaries.

use crate::lexer::{char_before, ident_positions, lex, FileView};

pub const RULES: [&str; 5] = [
    "unsafe-safety",
    "kernel-twin",
    "host-clock",
    "unwrap",
    "relaxed",
];

pub struct Violation {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// How a file participates in the rules, derived from its workspace path.
#[derive(Clone, Copy, PartialEq)]
pub enum Scope {
    /// `crates/*/src`, `shims/*/src`, or the root `src/` — full rule set.
    Library,
    /// `src/bin/`, `tests/`, `benches/`, `examples/` — `unsafe-safety` only
    /// (panicking on bad input is the job of harnesses and tests).
    HarnessOrTest,
}

pub fn scope_of(rel_path: &str) -> Scope {
    let in_src = rel_path.starts_with("src/")
        || ((rel_path.starts_with("crates/") || rel_path.starts_with("shims/"))
            && rel_path.contains("/src/"));
    if in_src && !rel_path.contains("/src/bin/") {
        Scope::Library
    } else {
        Scope::HarnessOrTest
    }
}

/// One `fn` definition found while scanning (for the twin check).
pub struct FnDef {
    pub name: String,
    pub path: String,
    pub line: usize,
}

/// Per-file analysis state shared by all rules.
pub struct SourceFile {
    pub rel_path: String,
    pub view: FileView,
    /// `test_lines[i]` — line `i+1` sits inside a `#[cfg(..test..)]` region.
    pub test_lines: Vec<bool>,
}

impl SourceFile {
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let view = lex(text);
        let test_lines = mark_test_regions(&view.code);
        SourceFile {
            rel_path: rel_path.to_string(),
            view,
            test_lines,
        }
    }

    fn is_test_line(&self, idx: usize) -> bool {
        self.test_lines.get(idx).copied().unwrap_or(false)
    }

    /// True when a comment containing `tag` sits on line `idx` or on the
    /// contiguous run of comment/attribute/blank lines directly above it.
    fn tagged_above(&self, idx: usize, tags: &[&str]) -> bool {
        let has_tag = |line: &str| -> bool { tags.iter().any(|tag| line.contains(tag)) };
        if has_tag(&self.view.comments[idx]) {
            return true;
        }
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let code = self.view.code[j].trim();
            if !(code.is_empty() || code.starts_with("#[") || code.starts_with("#!")) {
                return false;
            }
            if has_tag(&self.view.comments[j]) {
                return true;
            }
        }
        false
    }

    /// The identifier token following byte column `col` on line `idx`
    /// (crossing line breaks), e.g. the `fn` after `unsafe`.
    fn next_word(&self, idx: usize, col: usize) -> Option<String> {
        let mut line = idx;
        let mut from = col;
        while line < self.view.code.len() {
            let text = &self.view.code[line][from.min(self.view.code[line].len())..];
            let trimmed = text.trim_start();
            if !trimmed.is_empty() {
                let word: String = trimmed
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                return Some(word);
            }
            line += 1;
            from = 0;
        }
        None
    }
}

/// Marks `#[cfg(..test..)]`-gated regions (attribute through the end of the
/// item it covers, brace-matched on the code view).
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut test = vec![false; code.len()];
    for start in 0..code.len() {
        let Some(attr_col) = find_test_cfg(&code[start]) else {
            continue;
        };
        // Walk from the end of the attribute to the item's closing `}` (or a
        // `;` for brace-less items), marking every line on the way.
        let mut depth = 0i32;
        let mut line = start;
        let mut col = attr_col;
        'scan: while line < code.len() {
            let bytes = code[line].as_bytes();
            while col < bytes.len() {
                match bytes[col] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            test[start..=line].iter_mut().for_each(|t| *t = true);
                            break 'scan;
                        }
                    }
                    b';' if depth == 0 => {
                        test[start..=line].iter_mut().for_each(|t| *t = true);
                        break 'scan;
                    }
                    _ => {}
                }
                col += 1;
            }
            line += 1;
            col = 0;
        }
    }
    test
}

/// If `line` carries a `#[cfg(...)]` attribute whose predicate names `test`,
/// returns the column just past the attribute's closing bracket.
fn find_test_cfg(line: &str) -> Option<usize> {
    let at = line.find("#[cfg(")?;
    let bytes = line.as_bytes();
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate().skip(at + 1) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    let predicate = &line[at..=i];
                    return if ident_positions(predicate, "test").is_empty() {
                        None
                    } else {
                        Some(i + 1)
                    };
                }
            }
            _ => {}
        }
    }
    None
}

/// Rule `unsafe-safety`: every `unsafe` site carries a written contract.
pub fn check_unsafe_safety(file: &SourceFile, out: &mut Vec<Violation>) {
    for (idx, code) in file.view.code.iter().enumerate() {
        for (start, end) in ident_positions(code, "unsafe") {
            // `r#unsafe` or similar cannot occur; `unsafe` as a word in code
            // view is the keyword.
            let next = file.next_word(idx, end);
            let is_fn_decl = next.as_deref() == Some("fn");
            let _ = start;
            if is_fn_decl {
                if !file.tagged_above(idx, &["# Safety", "SAFETY:"]) {
                    out.push(Violation {
                        path: file.rel_path.clone(),
                        line: idx + 1,
                        rule: "unsafe-safety",
                        message: "`unsafe fn` without a `# Safety` doc section (or `// SAFETY:` \
                                  comment) stating the caller contract"
                            .into(),
                    });
                }
            } else if !file.tagged_above(idx, &["SAFETY:"]) {
                out.push(Violation {
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    rule: "unsafe-safety",
                    message: "`unsafe` block without a `// SAFETY:` comment on or above it \
                              explaining why the contract holds"
                        .into(),
                });
            }
        }
    }
}

/// Rule `host-clock`: simulated device time must never read the host clock.
pub fn check_host_clock(file: &SourceFile, out: &mut Vec<Violation>) {
    if !file.rel_path.starts_with("crates/gk-gpusim/src/") {
        return;
    }
    for (idx, code) in file.view.code.iter().enumerate() {
        if file.is_test_line(idx) {
            continue;
        }
        for token in ["Instant", "SystemTime"] {
            if !ident_positions(code, token).is_empty() {
                out.push(Violation {
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    rule: "host-clock",
                    message: format!(
                        "`{token}` in a simulated-time module: gk-gpusim models device time \
                         analytically and must stay independent of the host clock"
                    ),
                });
            }
        }
    }
}

/// Rule `unwrap`: no `.unwrap()` / `.expect()` in non-test library code.
pub fn check_unwrap(file: &SourceFile, out: &mut Vec<Violation>) {
    for (idx, code) in file.view.code.iter().enumerate() {
        if file.is_test_line(idx) {
            continue;
        }
        for method in ["unwrap", "expect"] {
            for (start, end) in ident_positions(code, method) {
                let is_method_call = char_before(code, start) == Some('.')
                    && code[end..].trim_start().starts_with('(');
                if is_method_call {
                    out.push(Violation {
                        path: file.rel_path.clone(),
                        line: idx + 1,
                        rule: "unwrap",
                        message: format!(
                            "`.{method}()` in non-test library code: handle the failure, \
                             restructure so it cannot occur, or add an allowlist entry with a \
                             written reason"
                        ),
                    });
                }
            }
        }
    }
}

/// Rule `relaxed`: `Ordering::Relaxed` outside `#[cfg(test)]` needs a written
/// justification (a comment mentioning `Relaxed` on or above the line).
pub fn check_relaxed(file: &SourceFile, out: &mut Vec<Violation>) {
    for (idx, code) in file.view.code.iter().enumerate() {
        if file.is_test_line(idx) {
            continue;
        }
        for (start, _) in ident_positions(code, "Relaxed") {
            if !code[..start].trim_end().ends_with("::") {
                continue;
            }
            if !file.tagged_above(idx, &["Relaxed"]) {
                out.push(Violation {
                    path: file.rel_path.clone(),
                    line: idx + 1,
                    rule: "relaxed",
                    message: "`Ordering::Relaxed` without a justification comment: state why \
                              relaxed ordering is sound here (`// Relaxed: ...`)"
                        .into(),
                });
            }
        }
    }
}

/// Collects non-test `fn` definitions for the twin check.
pub fn collect_fns(file: &SourceFile, out: &mut Vec<FnDef>) {
    for (idx, code) in file.view.code.iter().enumerate() {
        if file.is_test_line(idx) {
            continue;
        }
        for (_, end) in ident_positions(code, "fn") {
            if let Some(name) = file.next_word(idx, end) {
                if !name.is_empty() {
                    out.push(FnDef {
                        name,
                        path: file.rel_path.clone(),
                        line: idx + 1,
                    });
                }
            }
        }
    }
}

/// Rule `kernel-twin`, workspace level: every `*_kernel_x4` lane kernel in
/// gk-filters has a scalar `*_reference` twin, and that twin is exercised by
/// the differential property suite.
pub fn check_kernel_twins(
    filter_fns: &[FnDef],
    property_suite: Option<&str>,
    out: &mut Vec<Violation>,
) {
    for def in filter_fns {
        let Some(stem) = def.name.strip_suffix("kernel_x4") else {
            continue;
        };
        let twins: Vec<&FnDef> = filter_fns
            .iter()
            .filter(|f| f.name.starts_with(stem) && f.name.ends_with("_reference"))
            .collect();
        if twins.is_empty() {
            out.push(Violation {
                path: def.path.clone(),
                line: def.line,
                rule: "kernel-twin",
                message: format!(
                    "lane kernel `{}` has no per-bit reference twin: define a `{}*_reference` \
                     scalar function computing the same decision",
                    def.name, stem
                ),
            });
            continue;
        }
        let Some(suite) = property_suite else {
            out.push(Violation {
                path: def.path.clone(),
                line: def.line,
                rule: "kernel-twin",
                message: "differential property suite (crates/gk-filters/tests/properties.rs) \
                          is missing"
                    .into(),
            });
            continue;
        };
        if !twins
            .iter()
            .any(|twin| !ident_positions(suite, &twin.name).is_empty())
        {
            out.push(Violation {
                path: def.path.clone(),
                line: def.line,
                rule: "kernel-twin",
                message: format!(
                    "reference twin of `{}` exists ({}) but the differential property suite \
                     never references it",
                    def.name,
                    twins
                        .iter()
                        .map(|t| t.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, text: &str) -> SourceFile {
        SourceFile::parse(path, text)
    }

    #[test]
    fn cfg_test_regions_cover_the_whole_item() {
        let f = file(
            "crates/x/src/lib.rs",
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n",
        );
        assert_eq!(f.test_lines, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_any_with_test_counts_as_test_layer() {
        let f = file(
            "crates/x/src/lib.rs",
            "#[cfg(any(test, gk_schedules))]\nfn x() { y.unwrap(); }\nfn z() {}\n",
        );
        let mut v = Vec::new();
        check_unwrap(&f, &mut v);
        assert!(v.is_empty());
        // `attest` must not match the `test` token.
        assert!(find_test_cfg("#[cfg(attest)]").is_none());
        assert!(find_test_cfg("#[cfg(not(feature = \"x\"))]").is_none());
    }

    #[test]
    fn unsafe_requires_safety_tag() {
        let mut v = Vec::new();
        check_unsafe_safety(&file("a.rs", "fn f() {\n    unsafe { g() }\n}\n"), &mut v);
        assert_eq!(v.len(), 1);
        v.clear();
        check_unsafe_safety(
            &file(
                "a.rs",
                "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g() }\n}\n",
            ),
            &mut v,
        );
        assert!(v.is_empty());
        // `# Safety` doc section satisfies the fn form.
        check_unsafe_safety(
            &file(
                "a.rs",
                "/// Does things.\n///\n/// # Safety\n///\n/// Caller must hold X.\nunsafe fn f() {}\n",
            ),
            &mut v,
        );
        assert!(v.is_empty());
    }

    #[test]
    fn unwrap_flags_method_calls_only() {
        let mut v = Vec::new();
        let f = file(
            "crates/x/src/lib.rs",
            "fn f() {\n    a.unwrap();\n    b.unwrap_or_else(c);\n    d.expect(\"x\");\n}\n",
        );
        check_unwrap(&f, &mut v);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn relaxed_needs_justification() {
        let mut v = Vec::new();
        let good = file(
            "crates/x/src/lib.rs",
            "fn f() {\n    // Relaxed: counter is read only after the latch synchronizes.\n    \
             c.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        check_relaxed(&good, &mut v);
        assert!(v.is_empty());
        let bad = file(
            "crates/x/src/lib.rs",
            "fn f() {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n",
        );
        check_relaxed(&bad, &mut v);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn kernel_twin_demands_reference_and_suite_use() {
        let defs = vec![
            FnDef {
                name: "demo_kernel_x4".into(),
                path: "crates/gk-filters/src/demo.rs".into(),
                line: 1,
            },
            FnDef {
                name: "demo_pair_decision_reference".into(),
                path: "crates/gk-filters/src/demo.rs".into(),
                line: 9,
            },
        ];
        let mut v = Vec::new();
        check_kernel_twins(
            &defs,
            Some("uses demo_pair_decision_reference here"),
            &mut v,
        );
        assert!(v.is_empty());
        check_kernel_twins(&defs, Some("suite without the twin"), &mut v);
        assert_eq!(v.len(), 1);
        check_kernel_twins(&defs[..1], Some(""), &mut v);
        assert_eq!(v.len(), 2);
    }
}
