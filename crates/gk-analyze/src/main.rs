//! `gk-analyze` — the workspace invariant analyzer.
//!
//! ```text
//! cargo run -p gk-analyze -- check            # analyze the workspace (cwd)
//! cargo run -p gk-analyze -- check --root X   # analyze another tree (fixtures)
//! ```
//!
//! Walks every `.rs` file under the root and enforces the project invariants
//! described in [`checks`] as hard failures (exit code 1). Suppressions live
//! in `gk-analyze.allow` at the root — one `<rule> <path> <reason>` line per
//! file, reason mandatory, stale entries rejected. See the README section
//! "Static analysis & concurrency audit" for the invariant list and the
//! workflow for adding an allowlist entry.

mod allowlist;
mod checks;
mod lexer;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use allowlist::Allowlist;
use checks::{Scope, SourceFile, Violation};

/// Directories never walked: build output, VCS state, and the analyzer's own
/// seeded-violation fixtures (which must keep failing, not fail CI).
const SKIP_DIRS: [&str; 3] = ["target", ".git", "crates/gk-analyze/fixtures"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut command = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "check" => command = Some("check"),
            "--root" => match iter.next() {
                Some(path) => root = PathBuf::from(path),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if command != Some("check") {
        return usage("expected the `check` subcommand");
    }
    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "gk-analyze: `{}` does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }
    match run_check(&root) {
        Ok(violations) if violations.is_empty() => ExitCode::SUCCESS,
        Ok(violations) => {
            for violation in &violations {
                println!("{violation}");
            }
            println!("gk-analyze: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("gk-analyze: {message}");
            ExitCode::from(2)
        }
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("gk-analyze: {error}");
    }
    eprintln!("usage: gk-analyze check [--root <workspace-root>]");
    eprintln!();
    eprintln!("rules: {}", checks::RULES.join(", "));
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

/// Runs every check over the tree under `root`; returns the surviving
/// (non-allowlisted) violations, sorted for stable output.
fn run_check(root: &Path) -> Result<Vec<Violation>, String> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();

    let mut raw = Vec::new();
    let mut filter_fns = Vec::new();
    let mut property_suite = None;
    let mut file_count = 0usize;
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("reading {}: {e}", rel.display()))?;
        let rel_str = rel
            .to_str()
            .ok_or_else(|| format!("non-UTF-8 path {}", rel.display()))?
            .replace('\\', "/");
        let file = SourceFile::parse(&rel_str, &text);
        file_count += 1;

        checks::check_unsafe_safety(&file, &mut raw);
        checks::check_host_clock(&file, &mut raw);
        if checks::scope_of(&rel_str) == Scope::Library {
            checks::check_unwrap(&file, &mut raw);
            checks::check_relaxed(&file, &mut raw);
        }
        if rel_str.starts_with("crates/gk-filters/src/") {
            checks::collect_fns(&file, &mut filter_fns);
        }
        if rel_str == "crates/gk-filters/tests/properties.rs" {
            // Match references on the code view so a name inside a comment
            // cannot satisfy the twin rule.
            property_suite = Some(file.view.code.join("\n"));
        }
    }
    checks::check_kernel_twins(&filter_fns, property_suite.as_deref(), &mut raw);

    let mut violations = Vec::new();
    let allow = Allowlist::load(root, &mut violations);
    for violation in raw {
        if !allow.permits(violation.rule, &violation.path) {
            violations.push(violation);
        }
    }
    allow.report_stale(&mut violations);
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    println!(
        "gk-analyze: checked {file_count} files, {} violation(s)",
        violations.len()
    );
    Ok(violations)
}

/// Depth-first walk collecting `.rs` files as root-relative paths.
fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            let name = entry.file_name();
            let skip = SKIP_DIRS
                .iter()
                .any(|s| rel_str == *s || name.to_string_lossy() == "target");
            if !skip {
                walk(root, &path, out)?;
            }
        } else if rel_str.ends_with(".rs") {
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}
