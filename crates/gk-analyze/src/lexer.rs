//! A lightweight Rust lexer: just enough to tell code from comments from
//! string literals, line by line.
//!
//! The checks in [`crate::checks`] are structural ("is there a `// SAFETY:`
//! comment above this `unsafe` token?"), so they need three synchronized views
//! of every file:
//!
//! * the raw text, for reporting;
//! * a **code view**, where comment text and string/char-literal *contents*
//!   are blanked to spaces (delimiters kept), so token scans cannot match
//!   inside a string like `".unwrap()"` and brace matching cannot be confused
//!   by `"{"`;
//! * a **comment view**, where everything *except* comment text is blanked,
//!   so "does the line above carry a SAFETY tag" is a plain substring probe.
//!
//! The lexer handles line comments, nested block comments, doc comments
//! (treated as comments), string / raw-string / byte-string / char literals,
//! and the char-vs-lifetime ambiguity with the usual lookahead heuristic. It
//! does not attempt macros, shebangs beyond line one, or frontier syntax —
//! the workspace is plain 2021-edition code and the fixture tests pin the
//! behaviours the checks rely on.

/// One lexed source file: raw text plus the code and comment views, split
/// into parallel line vectors (index = line number - 1).
pub struct FileView {
    pub code: Vec<String>,
    pub comments: Vec<String>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    /// Nested block comments carry their depth.
    BlockComment(u32),
    Str,
    /// Raw string with the given number of `#` marks.
    RawStr(u32),
    Char,
}

/// True if `c` can continue an identifier.
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `text` into synchronized code/comment line views.
pub fn lex(text: &str) -> FileView {
    let chars: Vec<char> = text.chars().collect();
    let mut code = String::with_capacity(text.len());
    let mut comments = String::with_capacity(text.len());
    let mut state = State::Normal;
    let mut i = 0usize;

    // Pushes one input char to both views, keeping `kept` visible in `code`
    // (comment chars go to the comment view instead; blanked chars become
    // spaces in both). Newlines always pass through both views.
    let push = |code: &mut String, comments: &mut String, c: char, to_code: bool, to_cmt: bool| {
        if c == '\n' {
            code.push('\n');
            comments.push('\n');
            return;
        }
        code.push(if to_code { c } else { ' ' });
        comments.push(if to_cmt { c } else { ' ' });
    };

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Normal => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    push(&mut code, &mut comments, c, false, true);
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    push(&mut code, &mut comments, c, false, true);
                } else if c == '"' {
                    state = State::Str;
                    push(&mut code, &mut comments, c, true, false);
                } else if c == 'r'
                    && matches!(next, Some('"') | Some('#'))
                    && !prev_ident(&chars, i)
                {
                    // Possible raw string: r"..." or r#"..."#.
                    if let Some(hashes) = raw_str_hashes(&chars, i + 1) {
                        push(&mut code, &mut comments, c, true, false);
                        for _ in 0..hashes {
                            i += 1;
                            push(&mut code, &mut comments, chars[i], true, false);
                        }
                        i += 1;
                        push(&mut code, &mut comments, chars[i], true, false); // opening quote
                        state = State::RawStr(hashes);
                    } else {
                        push(&mut code, &mut comments, c, true, false);
                    }
                } else if c == 'b' && next == Some('"') && !prev_ident(&chars, i) {
                    push(&mut code, &mut comments, c, true, false);
                    i += 1;
                    push(&mut code, &mut comments, chars[i], true, false);
                    state = State::Str;
                } else if c == 'b' && next == Some('\'') && !prev_ident(&chars, i) {
                    push(&mut code, &mut comments, c, true, false);
                    i += 1;
                    push(&mut code, &mut comments, chars[i], true, false);
                    state = State::Char;
                } else if c == '\'' {
                    // Char literal vs lifetime: a backslash or a close quote
                    // two characters on means a literal; otherwise a lifetime.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    push(&mut code, &mut comments, c, true, false);
                    if is_char {
                        state = State::Char;
                    }
                } else {
                    push(&mut code, &mut comments, c, true, false);
                }
            }
            State::LineComment => {
                if c == '\n' {
                    state = State::Normal;
                }
                push(&mut code, &mut comments, c, false, true);
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    push(&mut code, &mut comments, c, false, true);
                    i += 1;
                    push(&mut code, &mut comments, chars[i], false, true);
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if c == '/' && next == Some('*') {
                    push(&mut code, &mut comments, c, false, true);
                    i += 1;
                    push(&mut code, &mut comments, chars[i], false, true);
                    state = State::BlockComment(depth + 1);
                } else {
                    push(&mut code, &mut comments, c, false, true);
                }
            }
            State::Str => {
                if c == '\\' {
                    // Escape: consume both characters, stay in the string.
                    push(&mut code, &mut comments, c, false, false);
                    if let Some(n) = next {
                        i += 1;
                        push(&mut code, &mut comments, n, false, false);
                    }
                } else if c == '"' {
                    push(&mut code, &mut comments, c, true, false);
                    state = State::Normal;
                } else {
                    push(&mut code, &mut comments, c, false, false);
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_str_closes(&chars, i + 1, hashes) {
                    push(&mut code, &mut comments, c, true, false);
                    for _ in 0..hashes {
                        i += 1;
                        push(&mut code, &mut comments, chars[i], true, false);
                    }
                    state = State::Normal;
                } else {
                    push(&mut code, &mut comments, c, false, false);
                }
            }
            State::Char => {
                if c == '\\' {
                    push(&mut code, &mut comments, c, false, false);
                    if let Some(n) = next {
                        i += 1;
                        push(&mut code, &mut comments, n, false, false);
                    }
                } else if c == '\'' {
                    push(&mut code, &mut comments, c, true, false);
                    state = State::Normal;
                } else {
                    push(&mut code, &mut comments, c, false, false);
                }
            }
        }
        i += 1;
    }

    FileView {
        code: code.lines().map(str::to_string).collect(),
        comments: comments.lines().map(str::to_string).collect(),
    }
}

/// True if the char before position `i` continues an identifier (so an `r` or
/// `b` there is part of a name like `for` / `attr`, not a literal prefix).
fn prev_ident(chars: &[char], i: usize) -> bool {
    i > 0 && is_ident(chars[i - 1])
}

/// If `chars[from..]` is `#*"` (a raw-string opener minus the `r`), returns
/// the hash count.
fn raw_str_hashes(chars: &[char], from: usize) -> Option<u32> {
    let mut hashes = 0u32;
    let mut j = from;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// True if `hashes` hash marks follow position `from` (a raw-string closer).
fn raw_str_closes(chars: &[char], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(from + k) == Some(&'#'))
}

/// Byte ranges of `ident` appearing as a whole word in `line` (a code-view
/// line), as (start, end) column pairs.
pub fn ident_positions(line: &str, ident: &str) -> Vec<(usize, usize)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(at) = line[from..].find(ident) {
        let start = from + at;
        let end = start + ident.len();
        let left_ok = start == 0 || !is_ident(bytes[start - 1] as char);
        let right_ok = end >= bytes.len() || !is_ident(bytes[end] as char);
        if left_ok && right_ok {
            out.push((start, end));
        }
        from = end;
    }
    out
}

/// The first non-space character before column `col` on `line`, if any.
pub fn char_before(line: &str, col: usize) -> Option<char> {
    line[..col].chars().rev().find(|c| !c.is_whitespace())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_separated() {
        let v = lex("let x = \".unwrap()\"; // SAFETY: not code\nunsafe { f() }\n");
        assert!(!v.code[0].contains("unwrap"));
        assert!(v.comments[0].contains("SAFETY: not code"));
        assert!(v.code[1].contains("unsafe"));
        assert!(v.comments[1].trim().is_empty());
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let v = lex("let s = r#\"unsafe { \" } \"#; let c = '{'; let lt: &'static str = \"\";\n");
        assert!(!v.code[0].contains("unsafe"));
        // The brace inside the char literal is blanked; the lifetime is kept.
        let opens = v.code[0].matches('{').count();
        assert_eq!(opens, 0);
        assert!(v.code[0].contains("'static"));
    }

    #[test]
    fn nested_block_comments_close_at_depth_zero() {
        let v = lex("/* a /* b */ still */ code()\n");
        assert!(v.code[0].contains("code()"));
        assert!(!v.code[0].contains("still"));
        assert!(v.comments[0].contains("still"));
    }

    #[test]
    fn ident_positions_respect_word_boundaries() {
        assert_eq!(ident_positions("x.unwrap_or_else(y)", "unwrap"), vec![]);
        assert_eq!(ident_positions("x.unwrap()", "unwrap"), vec![(2, 8)]);
    }
}
