//! The explicit allowlist: `gk-analyze.allow` at the workspace root.
//!
//! One entry per line: `<rule> <path> <reason...>`. The rule is one of the
//! check ids (`unwrap`, `relaxed`, `host-clock`, `unsafe-safety`,
//! `kernel-twin`), the path is workspace-relative with forward slashes, and
//! the reason is mandatory free text — an entry without a written
//! justification is itself a violation. Entries that match nothing are
//! reported as stale, so the list can only shrink as code is fixed.

use std::cell::Cell;
use std::path::Path;

use crate::checks::Violation;

pub struct Entry {
    pub rule: String,
    pub path: String,
    pub reason: String,
    pub line: usize,
    used: Cell<bool>,
}

#[derive(Default)]
pub struct Allowlist {
    entries: Vec<Entry>,
}

impl Allowlist {
    /// Parses `gk-analyze.allow` under `root`; a missing file is an empty
    /// list. Malformed lines become violations against the allowlist itself.
    pub fn load(root: &Path, violations: &mut Vec<Violation>) -> Allowlist {
        let file = root.join("gk-analyze.allow");
        let text = match std::fs::read_to_string(&file) {
            Ok(text) => text,
            Err(_) => return Allowlist::default(),
        };
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let rule = parts.next().unwrap_or_default().to_string();
            let path = parts.next().unwrap_or_default().to_string();
            let reason = parts.next().unwrap_or_default().trim().to_string();
            if !crate::checks::RULES.contains(&rule.as_str()) {
                violations.push(Violation {
                    path: "gk-analyze.allow".into(),
                    line: idx + 1,
                    rule: "allowlist",
                    message: format!(
                        "unknown rule `{rule}` (expected one of: {})",
                        crate::checks::RULES.join(", ")
                    ),
                });
                continue;
            }
            if path.is_empty() || reason.is_empty() {
                violations.push(Violation {
                    path: "gk-analyze.allow".into(),
                    line: idx + 1,
                    rule: "allowlist",
                    message: "entry needs `<rule> <path> <reason>` — the reason is mandatory"
                        .into(),
                });
                continue;
            }
            entries.push(Entry {
                rule,
                path,
                reason,
                line: idx + 1,
                used: Cell::new(false),
            });
        }
        Allowlist { entries }
    }

    /// True when `rule` violations in `path` are allowlisted; marks the entry
    /// as used so stale entries can be reported afterwards.
    pub fn permits(&self, rule: &str, path: &str) -> bool {
        let mut hit = false;
        for entry in &self.entries {
            if entry.rule == rule && entry.path == path {
                entry.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// Reports entries that never matched a violation: the suppressed problem
    /// has been fixed, so the entry must be deleted.
    pub fn report_stale(&self, violations: &mut Vec<Violation>) {
        for entry in &self.entries {
            if !entry.used.get() {
                violations.push(Violation {
                    path: "gk-analyze.allow".into(),
                    line: entry.line,
                    rule: "allowlist",
                    message: format!(
                        "stale entry: no `{}` violation in `{}` — delete it (reason was: {})",
                        entry.rule, entry.path, entry.reason
                    ),
                });
            }
        }
    }
}
