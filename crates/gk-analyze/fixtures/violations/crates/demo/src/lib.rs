//! Seeded violations: one `unsafe` block without a SAFETY comment, one
//! `unwrap()` in library code, one unjustified `Ordering::Relaxed`.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn missing_safety_comment(values: &[u32]) -> u32 {
    unsafe { *values.get_unchecked(0) }
}

pub fn library_unwrap(text: &str) -> u32 {
    text.parse::<u32>().unwrap()
}

pub fn unjustified_relaxed(counter: &AtomicUsize) -> usize {
    counter.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    // Inside a test region both patterns are fine; the analyzer must not
    // report these lines.
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!("7".parse::<u32>().unwrap(), 7);
    }
}
