//! Seeded violation: a `*_kernel_x4` lane kernel with no `*_reference` twin
//! (and therefore nothing the differential property suite could pin it to).

pub fn demo_kernel_x4(lanes: [u64; 4]) -> [u64; 4] {
    lanes.map(|lane| lane ^ 0x5555_5555_5555_5555)
}
