//! Seeded violation: host wall-clock in a simulated-time module.

use std::time::Instant;

pub fn simulated_step_with_host_clock() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}
