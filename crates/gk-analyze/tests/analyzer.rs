//! End-to-end tests for the `gk-analyze` binary: the seeded fixture tree must
//! fail with every rule represented, and the real workspace must pass — which
//! makes plain `cargo test` enforce the invariants even before CI's dedicated
//! `analyze` job runs.

use std::path::Path;
use std::process::{Command, Output};

fn run_on(root: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gk-analyze"))
        .args(["check", "--root"])
        .arg(root)
        .output()
        .expect("failed to launch gk-analyze")
}

#[test]
fn seeded_fixture_tree_fails_with_every_rule() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/violations");
    let output = run_on(&fixtures);
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(
        output.status.code(),
        Some(1),
        "fixture tree must fail the analyzer; stdout:\n{stdout}"
    );
    for needle in [
        "[unsafe-safety]",
        "[unwrap]",
        "[relaxed]",
        "[host-clock]",
        "[kernel-twin]",
        "[allowlist]",
        "crates/demo/src/lib.rs",
        "crates/gk-gpusim/src/sim.rs",
        "demo_kernel_x4",
        "stale entry",
    ] {
        assert!(
            stdout.contains(needle),
            "expected `{needle}` in analyzer output:\n{stdout}"
        );
    }
    // Test-region code must never be flagged: the fixture's #[cfg(test)]
    // unwrap is the canary.
    assert!(
        !stdout.contains("unwrap_is_fine_in_tests"),
        "analyzer flagged test-region code:\n{stdout}"
    );
}

#[test]
fn real_workspace_is_clean() {
    let workspace = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let output = run_on(&workspace);
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(0),
        "workspace must satisfy every invariant.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}

#[test]
fn usage_errors_exit_2() {
    let output = Command::new(env!("CARGO_BIN_EXE_gk-analyze"))
        .arg("frobnicate")
        .output()
        .expect("failed to launch gk-analyze");
    assert_eq!(output.status.code(), Some(2));
}
