//! Integration round-trips across the gk-seq modules: FASTA/FASTQ render↔parse
//! (in memory and through files), 2-bit packing with `N` handling, and the
//! determinism contract of the read simulator — the properties the rest of the
//! workspace assumes when it moves sequences between text, packed, and
//! simulated representations.

use gk_seq::fasta::{read_fasta, read_fasta_file, write_fasta, write_fasta_file, FastaRecord};
use gk_seq::fastq::{read_fastq, read_fastq_file, write_fastq, write_fastq_file, FastqRecord};
use gk_seq::reference::{Reference, ReferenceBuilder};
use gk_seq::simulate::{ErrorProfile, ReadSimulator};
use gk_seq::PackedSeq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_dna(len: usize, allow_n: bool, rng: &mut StdRng) -> Vec<u8> {
    let alphabet: &[u8] = if allow_n { b"ACGTN" } else { b"ACGT" };
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("gk-seq-roundtrip-{}-{name}", std::process::id()));
    path
}

#[test]
fn fasta_write_then_read_is_identity_across_wrap_widths() {
    let mut rng = StdRng::seed_from_u64(11);
    let records: Vec<FastaRecord> = (0..8)
        .map(|i| {
            let mut rec =
                FastaRecord::new(format!("chr{i}"), random_dna(137 + 31 * i, true, &mut rng));
            if i % 2 == 0 {
                rec.description = Some(format!("simulated contig {i}"));
            }
            rec
        })
        .collect();

    for width in [1usize, 7, 60, 70, 10_000] {
        let mut buffer = Vec::new();
        write_fasta(&mut buffer, &records, width).unwrap();
        let parsed = read_fasta(buffer.as_slice()).unwrap();
        assert_eq!(parsed, records, "round-trip failed at wrap width {width}");
    }
}

#[test]
fn fasta_file_round_trip_preserves_records() {
    let records = vec![
        FastaRecord::new("ref1", b"ACGTACGTNNACGT".to_vec()),
        FastaRecord::new("ref2", b"TTTTGGGGCCCCAAAA".to_vec()),
    ];
    let path = temp_path("genome.fa");
    write_fasta_file(&path, &records).unwrap();
    let parsed = read_fasta_file(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(parsed, records);
}

#[test]
fn fasta_parser_handles_blank_lines_and_descriptions() {
    let text = b">chr1 primary assembly\nACGT\n\nACGT\n>chr2\nTTTT\n";
    let parsed = read_fasta(&text[..]).unwrap();
    assert_eq!(parsed.len(), 2);
    assert_eq!(parsed[0].id, "chr1");
    assert_eq!(parsed[0].description.as_deref(), Some("primary assembly"));
    assert_eq!(parsed[0].sequence, b"ACGTACGT");
    assert_eq!(parsed[1].id, "chr2");
    assert_eq!(parsed[1].description, None);
}

#[test]
fn fastq_write_then_read_is_identity() {
    let mut rng = StdRng::seed_from_u64(12);
    let records: Vec<FastqRecord> = (0..16)
        .map(|i| {
            FastqRecord::with_uniform_quality(format!("read{i}"), random_dna(100, true, &mut rng))
        })
        .collect();

    let mut buffer = Vec::new();
    write_fastq(&mut buffer, &records).unwrap();
    let parsed = read_fastq(buffer.as_slice()).unwrap();
    assert_eq!(parsed, records);
}

#[test]
fn fastq_file_round_trip_preserves_records() {
    let records = vec![
        FastqRecord::with_uniform_quality("r1", b"ACGTNACGT".to_vec()),
        FastqRecord::with_uniform_quality("r2", b"GGGGCCCC".to_vec()),
    ];
    let path = temp_path("reads.fq");
    write_fastq_file(&path, &records).unwrap();
    let parsed = read_fastq_file(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(parsed, records);
}

#[test]
fn packed_round_trip_preserves_acgt_content() {
    let mut rng = StdRng::seed_from_u64(13);
    for len in [0usize, 1, 15, 16, 17, 100, 250, 333] {
        let seq = random_dna(len, false, &mut rng);
        let packed = PackedSeq::from_ascii(&seq);
        assert_eq!(packed.len(), len);
        assert!(!packed.is_undefined());
        assert_eq!(
            packed.to_ascii(),
            seq,
            "ASCII round-trip failed at length {len}"
        );
    }
}

#[test]
fn packed_round_trip_marks_and_restores_n_positions() {
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..32 {
        let seq = random_dna(120, true, &mut rng);
        let packed = PackedSeq::from_ascii(&seq);
        let n_positions: Vec<u32> = seq
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'N')
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(packed.is_undefined(), !n_positions.is_empty());
        assert_eq!(packed.undefined_positions(), n_positions.as_slice());
        assert_eq!(packed.to_ascii(), seq, "N round-trip changed the sequence");
    }
}

#[test]
fn reference_to_fasta_and_back_preserves_n_intervals() {
    let reference = ReferenceBuilder::new(50_000)
        .seed(21)
        .n_gaps(3, 100)
        .build();
    assert!(reference.n_fraction() > 0.0);

    let rebuilt = Reference::from_fasta(&reference.to_fasta());
    assert_eq!(rebuilt.sequence, reference.sequence);
    assert_eq!(rebuilt.n_intervals, reference.n_intervals);
}

#[test]
fn simulator_is_deterministic_for_a_fixed_seed() {
    let reference = ReferenceBuilder::new(40_000).seed(31).build();
    let simulate = || {
        ReadSimulator::new(100, ErrorProfile::illumina())
            .seed(77)
            .simulate(&reference, 500)
    };
    let first = simulate();
    let second = simulate();

    assert_eq!(first.len(), 500);
    for (a, b) in first.iter().zip(second.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.sequence, b.sequence);
        assert_eq!(a.origin, b.origin);
        assert_eq!(a.reverse_strand, b.reverse_strand);
        assert_eq!(a.planted_edits(), b.planted_edits());
    }
}

#[test]
fn different_seeds_produce_different_read_sets() {
    let reference = ReferenceBuilder::new(40_000).seed(31).build();
    let reads_a = ReadSimulator::new(100, ErrorProfile::illumina())
        .seed(1)
        .simulate(&reference, 200);
    let reads_b = ReadSimulator::new(100, ErrorProfile::illumina())
        .seed(2)
        .simulate(&reference, 200);
    let differing = reads_a
        .iter()
        .zip(reads_b.iter())
        .filter(|(a, b)| a.sequence != b.sequence)
        .count();
    assert!(
        differing > 150,
        "only {differing}/200 reads differed between seeds"
    );
}

#[test]
fn simulated_reads_survive_a_fastq_round_trip() {
    let reference = ReferenceBuilder::new(40_000).seed(41).build();
    let reads = ReadSimulator::new(150, ErrorProfile::low_indel())
        .seed(5)
        .simulate(&reference, 64);

    let records: Vec<FastqRecord> = reads.iter().map(|r| r.to_fastq()).collect();
    let mut buffer = Vec::new();
    write_fastq(&mut buffer, &records).unwrap();
    let parsed = read_fastq(buffer.as_slice()).unwrap();

    assert_eq!(parsed.len(), reads.len());
    for (record, read) in parsed.iter().zip(reads.iter()) {
        assert_eq!(record.id, read.id);
        assert_eq!(record.sequence, read.sequence);
        assert_eq!(record.quality.len(), record.sequence.len());
    }
}
