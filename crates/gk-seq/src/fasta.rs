//! Minimal FASTA reader/writer.
//!
//! The whole-genome experiments load a reference genome (GRCh37 in the paper) from
//! FASTA. This module keeps the format support intentionally small and allocation
//! friendly: multi-record files, arbitrary line wrapping (including CRLF line
//! endings), `>`-prefixed headers with an optional description, and nothing else.
//! Soft-masked (lowercase) bases are uppercased at parse time so the raw-ASCII
//! filter paths, which compare bytes directly, score them like their uppercase
//! forms.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// A single FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Record identifier (the first whitespace-delimited token after `>`).
    pub id: String,
    /// Remainder of the header line after the identifier, if any.
    pub description: Option<String>,
    /// Sequence bytes with line breaks removed.
    pub sequence: Vec<u8>,
}

impl FastaRecord {
    /// Creates a record with no description.
    pub fn new(id: impl Into<String>, sequence: impl Into<Vec<u8>>) -> FastaRecord {
        FastaRecord {
            id: id.into(),
            description: None,
            sequence: sequence.into(),
        }
    }

    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// True when the record carries no sequence.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }
}

/// Errors produced while parsing FASTA input.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Sequence data encountered before any `>` header.
    MissingHeader {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// A header line with an empty identifier.
    EmptyHeader {
        /// 1-based line number of the offending line.
        line: usize,
    },
}

impl fmt::Display for FastaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "I/O error while reading FASTA: {e}"),
            FastaError::MissingHeader { line } => {
                write!(f, "line {line}: sequence data before any '>' header")
            }
            FastaError::EmptyHeader { line } => write!(f, "line {line}: empty FASTA header"),
        }
    }
}

impl std::error::Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Parses all records from a reader.
pub fn read_fasta<R: Read>(reader: R) -> Result<Vec<FastaRecord>, FastaError> {
    let reader = BufReader::new(reader);
    let mut records: Vec<FastaRecord> = Vec::new();
    let mut current: Option<FastaRecord> = None;

    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(header) = trimmed.strip_prefix('>') {
            if let Some(done) = current.take() {
                records.push(done);
            }
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").trim().to_string();
            if id.is_empty() {
                return Err(FastaError::EmptyHeader { line: line_no });
            }
            let description = parts
                .next()
                .map(|d| d.trim().to_string())
                .filter(|d| !d.is_empty());
            current = Some(FastaRecord {
                id,
                description,
                sequence: Vec::new(),
            });
        } else {
            match current.as_mut() {
                Some(rec) => rec.sequence.extend(
                    trimmed
                        .bytes()
                        .filter(|b| !b.is_ascii_whitespace())
                        .map(|b| b.to_ascii_uppercase()),
                ),
                None => return Err(FastaError::MissingHeader { line: line_no }),
            }
        }
    }
    if let Some(done) = current.take() {
        records.push(done);
    }
    Ok(records)
}

/// Reads all records from a FASTA file on disk.
pub fn read_fasta_file(path: impl AsRef<Path>) -> Result<Vec<FastaRecord>, FastaError> {
    let file = std::fs::File::open(path)?;
    read_fasta(file)
}

/// Writes records to a writer, wrapping sequence lines at `width` bases.
pub fn write_fasta<W: Write>(
    writer: &mut W,
    records: &[FastaRecord],
    width: usize,
) -> io::Result<()> {
    let width = width.max(1);
    for rec in records {
        match &rec.description {
            Some(desc) => writeln!(writer, ">{} {}", rec.id, desc)?,
            None => writeln!(writer, ">{}", rec.id)?,
        }
        for chunk in rec.sequence.chunks(width) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Writes records to a FASTA file on disk with 70-column wrapping.
pub fn write_fasta_file(path: impl AsRef<Path>, records: &[FastaRecord]) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    write_fasta(&mut file, records, 70)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_record_wrapped_fasta() {
        let data = b">chr1 test chromosome\nACGTACGT\nACGT\n>chr2\nTTTT\n";
        let records = read_fasta(&data[..]).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "chr1");
        assert_eq!(records[0].description.as_deref(), Some("test chromosome"));
        assert_eq!(records[0].sequence, b"ACGTACGTACGT".to_vec());
        assert_eq!(records[1].id, "chr2");
        assert_eq!(records[1].description, None);
        assert_eq!(records[1].sequence, b"TTTT".to_vec());
    }

    #[test]
    fn crlf_line_endings_parse_like_lf() {
        let unix = b">chr1 test chromosome\nACGTACGT\nACGT\n>chr2\nTTTT\n";
        let dos = b">chr1 test chromosome\r\nACGTACGT\r\nACGT\r\n>chr2\r\nTTTT\r\n";
        assert_eq!(
            read_fasta(&unix[..]).unwrap(),
            read_fasta(&dos[..]).unwrap()
        );
    }

    #[test]
    fn soft_masked_lowercase_bases_are_uppercased() {
        // Soft-masked references mark repeats in lowercase; byte-comparing
        // filters must see the canonical uppercase form.
        let data = b">chr1\nacgtACGT\nnNtt\n";
        let records = read_fasta(&data[..]).unwrap();
        assert_eq!(records[0].sequence, b"ACGTACGTNNTT".to_vec());
    }

    #[test]
    fn skips_blank_lines() {
        let data = b">r\n\nACGT\n\nACGT\n";
        let records = read_fasta(&data[..]).unwrap();
        assert_eq!(records[0].sequence.len(), 8);
    }

    #[test]
    fn sequence_before_header_is_an_error() {
        let data = b"ACGT\n>r\nACGT\n";
        assert!(matches!(
            read_fasta(&data[..]),
            Err(FastaError::MissingHeader { line: 1 })
        ));
    }

    #[test]
    fn empty_header_is_an_error() {
        let data = b">\nACGT\n";
        assert!(matches!(
            read_fasta(&data[..]),
            Err(FastaError::EmptyHeader { line: 1 })
        ));
    }

    #[test]
    fn write_then_read_round_trips() {
        let records = vec![
            FastaRecord::new("a", b"ACGTACGTACGTACGT".to_vec()),
            FastaRecord {
                id: "b".to_string(),
                description: Some("simulated".to_string()),
                sequence: b"TTTTGGGG".to_vec(),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 4).unwrap();
        let parsed = read_fasta(&buf[..]).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("gk_seq_fasta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.fa");
        let records = vec![FastaRecord::new("chrT", b"ACGTNNACGT".to_vec())];
        write_fasta_file(&path, &records).unwrap();
        let parsed = read_fasta_file(&path).unwrap();
        assert_eq!(parsed, records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let err = FastaError::MissingHeader { line: 3 };
        assert!(err.to_string().contains("line 3"));
    }
}
