//! Raw (unencoded) pair batches: the transfer representation of the
//! device-side encoding path.
//!
//! With the host encoding actor (§3.3) the CPU packs every sequence into 2-bit
//! words *before* the transfer, so the H2D buffers hold `⌈len/16⌉` `u32` words
//! per sequence. With the **device** encoding actor the host ships the raw
//! 1-byte-per-base sequences instead — roughly 4× the bytes on the PCIe link —
//! and each GPU thread packs its own pair at the top of the fused
//! encode+filter kernel, where the bit twiddling is effectively free next to
//! the `2e + 1` mask computations. [`RawPairBatch`] is that transfer buffer: a
//! flat, stride-addressed byte arena holding every read and candidate
//! reference segment of a batch contiguously, exactly the layout a
//! `cudaMemcpy`/unified-memory prefetch would move.
//!
//! The arena supports **zero-copy slicing**: [`RawPairBatch::slice`] and
//! [`RawPairSlice::slice`] return borrowed views at pair granularity, so a
//! pipeline can gather one arena per source batch and feed plan-sized chunks
//! to the device stage without re-copying a single base. Sequences shorter
//! than the stride are zero-padded in the arena and their true lengths kept in
//! a side table, so ragged batches (e.g. indel-mutated references) round-trip
//! exactly.

use crate::pairs::SequencePair;
use serde::{Deserialize, Serialize};

/// A batch of (read, reference segment) pairs in the raw 1-byte-per-base
/// transfer layout: two flat arenas (`reads`, `refs`) addressed with a common
/// per-pair stride, plus the true per-sequence lengths.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawPairBatch {
    stride: usize,
    len: usize,
    reads: Vec<u8>,
    refs: Vec<u8>,
    read_lens: Vec<u32>,
    ref_lens: Vec<u32>,
}

impl RawPairBatch {
    /// Gathers a batch of pairs into the flat transfer arenas (the host-side
    /// buffer-preparation step of §3.5, minus the encoding). The stride is the
    /// longest sequence in the batch; shorter sequences are zero-padded.
    pub fn from_pairs(pairs: &[SequencePair]) -> RawPairBatch {
        let stride = pairs
            .iter()
            .map(|p| p.read.len().max(p.reference.len()))
            .max()
            .unwrap_or(0)
            .max(1);
        let mut reads = vec![0u8; stride * pairs.len()];
        let mut refs = vec![0u8; stride * pairs.len()];
        let mut read_lens = Vec::with_capacity(pairs.len());
        let mut ref_lens = Vec::with_capacity(pairs.len());
        for (i, pair) in pairs.iter().enumerate() {
            let slot = i * stride;
            reads[slot..slot + pair.read.len()].copy_from_slice(&pair.read);
            refs[slot..slot + pair.reference.len()].copy_from_slice(&pair.reference);
            read_lens.push(pair.read.len() as u32);
            ref_lens.push(pair.reference.len() as u32);
        }
        RawPairBatch {
            stride,
            len: pairs.len(),
            reads,
            refs,
            read_lens,
            ref_lens,
        }
    }

    /// Number of pairs in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the batch holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes reserved per sequence slot (the transfer stride).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Total bytes the batch occupies on the H2D link (read + reference
    /// arenas, padding included — padding is transferred like real bases).
    pub fn h2d_bytes(&self) -> u64 {
        2 * (self.stride * self.len) as u64
    }

    /// Borrows the whole batch as a zero-copy view.
    pub fn view(&self) -> RawPairSlice<'_> {
        self.slice(0, self.len)
    }

    /// Borrows pairs `[start, end)` as a zero-copy view of the arenas.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> RawPairSlice<'_> {
        assert!(
            start <= end && end <= self.len,
            "slice [{start}, {end}) out of range (len {})",
            self.len
        );
        RawPairSlice {
            stride: self.stride,
            reads: &self.reads[start * self.stride..end * self.stride],
            refs: &self.refs[start * self.stride..end * self.stride],
            read_lens: &self.read_lens[start..end],
            ref_lens: &self.ref_lens[start..end],
        }
    }
}

/// A zero-copy view over a contiguous range of a [`RawPairBatch`]'s arenas.
#[derive(Debug, Clone, Copy)]
pub struct RawPairSlice<'a> {
    stride: usize,
    reads: &'a [u8],
    refs: &'a [u8],
    read_lens: &'a [u32],
    ref_lens: &'a [u32],
}

impl<'a> RawPairSlice<'a> {
    /// Number of pairs in the view.
    pub fn len(&self) -> usize {
        self.read_lens.len()
    }

    /// True when the view holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.read_lens.is_empty()
    }

    /// Bytes reserved per sequence slot (the transfer stride).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The raw read bytes of pair `i` (no padding).
    pub fn read(&self, i: usize) -> &'a [u8] {
        let slot = i * self.stride;
        &self.reads[slot..slot + self.read_lens[i] as usize]
    }

    /// The raw reference-segment bytes of pair `i` (no padding).
    pub fn reference(&self, i: usize) -> &'a [u8] {
        let slot = i * self.stride;
        &self.refs[slot..slot + self.ref_lens[i] as usize]
    }

    /// Bytes this view occupies on the H2D link.
    pub fn h2d_bytes(&self) -> u64 {
        2 * (self.stride * self.len()) as u64
    }

    /// Sub-view of pairs `[start, end)` relative to this view — still
    /// zero-copy.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> RawPairSlice<'a> {
        assert!(
            start <= end && end <= self.len(),
            "slice [{start}, {end}) out of range (len {})",
            self.len()
        );
        RawPairSlice {
            stride: self.stride,
            reads: &self.reads[start * self.stride..end * self.stride],
            refs: &self.refs[start * self.stride..end * self.stride],
            read_lens: &self.read_lens[start..end],
            ref_lens: &self.ref_lens[start..end],
        }
    }

    /// Reconstructs the owned pairs (test/diagnostic helper; the hot paths
    /// never need this).
    pub fn to_pairs(&self) -> Vec<SequencePair> {
        (0..self.len())
            .map(|i| SequencePair::new(self.read(i), self.reference(i)))
            .collect()
    }
}

/// Adapter turning an iterator of pair batches into an iterator of raw
/// transfer batches (the device-encoding counterpart of
/// [`crate::stream::EncodedPairBatches`]).
#[derive(Debug, Clone)]
pub struct RawPairBatches<I> {
    inner: I,
}

impl<I> RawPairBatches<I>
where
    I: Iterator<Item = Vec<SequencePair>>,
{
    /// Wraps a pair-batch iterator.
    pub fn new(inner: I) -> RawPairBatches<I> {
        RawPairBatches { inner }
    }
}

impl<I> Iterator for RawPairBatches<I>
where
    I: Iterator<Item = Vec<SequencePair>>,
{
    type Item = RawPairBatch;

    fn next(&mut self) -> Option<RawPairBatch> {
        self.inner
            .next()
            .map(|batch| RawPairBatch::from_pairs(&batch))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetProfile;

    fn pair(read: &[u8], reference: &[u8]) -> SequencePair {
        SequencePair::new(read.to_vec(), reference.to_vec())
    }

    #[test]
    fn gather_round_trips_uniform_pairs() {
        let pairs = vec![pair(b"ACGT", b"TGCA"), pair(b"AAAA", b"CCCC")];
        let raw = RawPairBatch::from_pairs(&pairs);
        assert_eq!(raw.len(), 2);
        assert_eq!(raw.stride(), 4);
        assert_eq!(raw.h2d_bytes(), 16);
        assert_eq!(raw.view().to_pairs(), pairs);
        assert_eq!(raw.view().read(1), b"AAAA");
        assert_eq!(raw.view().reference(0), b"TGCA");
    }

    #[test]
    fn ragged_pairs_keep_their_true_lengths() {
        let pairs = vec![pair(b"ACGTACGT", b"ACG"), pair(b"AC", b"TTTTTT")];
        let raw = RawPairBatch::from_pairs(&pairs);
        assert_eq!(raw.stride(), 8);
        assert_eq!(raw.view().to_pairs(), pairs);
        assert_eq!(raw.view().read(1), b"AC");
        assert_eq!(raw.view().reference(0), b"ACG");
    }

    #[test]
    fn undefined_bases_survive_the_gather_verbatim() {
        let pairs = vec![pair(b"ACNT", b"NNNN")];
        let raw = RawPairBatch::from_pairs(&pairs);
        assert_eq!(raw.view().read(0), b"ACNT");
        assert_eq!(raw.view().reference(0), b"NNNN");
    }

    #[test]
    fn slicing_is_zero_copy_and_composes() {
        let pairs = DatasetProfile::set3().generate(100, 7).pairs;
        let raw = RawPairBatch::from_pairs(&pairs);
        let mid = raw.slice(20, 80);
        assert_eq!(mid.len(), 60);
        // A sub-slice of a slice addresses the same arena bytes.
        let sub = mid.slice(10, 20);
        for i in 0..10 {
            assert_eq!(sub.read(i), pairs[30 + i].read.as_slice());
            assert_eq!(sub.reference(i), pairs[30 + i].reference.as_slice());
            // Pointer identity: the view borrows the original arena.
            assert_eq!(sub.read(i).as_ptr(), raw.slice(30, 40).read(i).as_ptr());
        }
        assert_eq!(raw.slice(0, 0).len(), 0);
        assert!(raw.slice(5, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_slice_panics() {
        let raw = RawPairBatch::from_pairs(&[pair(b"ACGT", b"ACGT")]);
        raw.slice(0, 2);
    }

    #[test]
    fn empty_batch_is_well_formed() {
        let raw = RawPairBatch::from_pairs(&[]);
        assert!(raw.is_empty());
        assert_eq!(raw.h2d_bytes(), 0);
        assert!(raw.view().to_pairs().is_empty());
    }

    #[test]
    fn raw_batches_adapter_matches_direct_gather() {
        let profile = DatasetProfile::set3();
        let direct: Vec<RawPairBatch> = profile
            .stream_batches(500, 9, 64)
            .map(|b| RawPairBatch::from_pairs(&b))
            .collect();
        let adapted: Vec<RawPairBatch> = profile.stream_batches(500, 9, 64).raw().collect();
        assert_eq!(adapted, direct);
        assert_eq!(adapted.len(), 8);
    }

    #[test]
    fn raw_transfer_is_about_four_times_the_packed_transfer() {
        // 250 bp packs into 16 u32 words = 64 bytes; raw ASCII is 250 bytes.
        let pairs = DatasetProfile::set9().generate(10, 3).pairs;
        let raw = RawPairBatch::from_pairs(&pairs);
        let packed_bytes = 2 * 16 * 4 * pairs.len() as u64;
        let ratio = raw.h2d_bytes() as f64 / packed_bytes as f64;
        assert!(ratio > 3.5 && ratio < 4.5, "ratio = {ratio}");
    }
}
