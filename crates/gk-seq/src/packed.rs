//! 2-bit packed sequences stored in `u32` words.
//!
//! GateKeeper-GPU represents sequences as arrays of 32-bit words, 16 bases per
//! word (§3.3: "a 16-character window is encoded into an unsigned integer … thus a
//! 100bp read is represented as seven words"). Bases are stored left-to-right from
//! the most significant bit pair of word 0, which keeps the word array in the same
//! visual order as the sequence and lets the filter implement base-granular shifts
//! with explicit carry transfer between adjacent words — the correction the paper
//! highlights as a difference from the FPGA's arbitrarily wide registers (§3.4).
//!
//! `N` bases have no 2-bit code. A [`PackedSeq`] therefore carries a parallel
//! *undefined flag*: if any input base was not `ACGT` the sequence is marked
//! undefined and GateKeeper-GPU gives the pair a free pass (§3.3). The packed words
//! encode `N` as `A` so that word arithmetic stays well-defined.

use crate::alphabet::Base;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of bases packed into a single `u32` word.
pub const BASES_PER_WORD: usize = 16;
/// Number of bits used per base.
pub const BITS_PER_BASE: usize = 2;

/// A DNA sequence packed two bits per base into `u32` words.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PackedSeq {
    words: Vec<u32>,
    len: usize,
    undefined: bool,
    n_positions: Vec<u32>,
}

impl PackedSeq {
    /// Packs an ASCII sequence. Characters outside `ACGTacgt` are encoded as `A`
    /// and the sequence is flagged [`PackedSeq::is_undefined`].
    pub fn from_ascii(seq: &[u8]) -> PackedSeq {
        let len = seq.len();
        let mut words = vec![0u32; Self::words_for_len(len)];
        let mut undefined = false;
        let mut n_positions = Vec::new();
        for (i, &ch) in seq.iter().enumerate() {
            let base = Base::from_ascii(ch);
            let code = match base.code() {
                Some(code) => code,
                None => {
                    undefined = true;
                    n_positions.push(i as u32);
                    0
                }
            };
            let word = i / BASES_PER_WORD;
            let slot = i % BASES_PER_WORD;
            let shift = (BASES_PER_WORD - 1 - slot) * BITS_PER_BASE;
            words[word] |= (code as u32) << shift;
        }
        PackedSeq {
            words,
            len,
            undefined,
            n_positions,
        }
    }

    /// Packs a slice of [`Base`]s.
    pub fn from_bases(seq: &[Base]) -> PackedSeq {
        let ascii: Vec<u8> = seq.iter().map(|b| b.to_ascii()).collect();
        PackedSeq::from_ascii(&ascii)
    }

    /// Builds a packed sequence directly from words. The caller asserts that only
    /// the first `len` base slots are meaningful; trailing slots are zeroed.
    pub fn from_words(mut words: Vec<u32>, len: usize) -> PackedSeq {
        let needed = Self::words_for_len(len);
        words.resize(needed, 0);
        // Zero the padding slots so equality and hashing are canonical.
        if !len.is_multiple_of(BASES_PER_WORD) {
            let used_bits = (len % BASES_PER_WORD) * BITS_PER_BASE;
            let mask = if used_bits == 0 {
                0
            } else {
                !0u32 << (32 - used_bits)
            };
            if let Some(last) = words.last_mut() {
                *last &= mask;
            }
        }
        PackedSeq {
            words,
            len,
            undefined: false,
            n_positions: Vec::new(),
        }
    }

    /// Number of `u32` words needed for a sequence of `len` bases.
    #[inline]
    pub fn words_for_len(len: usize) -> usize {
        len.div_ceil(BASES_PER_WORD)
    }

    /// Sequence length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the sequence has no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if the original input contained a base outside `ACGT` (e.g. `N`).
    #[inline]
    pub fn is_undefined(&self) -> bool {
        self.undefined
    }

    /// Positions (0-based) of the undefined bases in the original input.
    #[inline]
    pub fn undefined_positions(&self) -> &[u32] {
        &self.n_positions
    }

    /// The packed word array (16 bases per word, sequence start at the MSB of word 0).
    #[inline]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Returns the 2-bit code of the base at `pos`.
    ///
    /// # Panics
    /// Panics if `pos >= self.len()`.
    #[inline]
    pub fn code_at(&self, pos: usize) -> u8 {
        assert!(
            pos < self.len,
            "position {pos} out of range (len {})",
            self.len
        );
        let word = self.words[pos / BASES_PER_WORD];
        let slot = pos % BASES_PER_WORD;
        let shift = (BASES_PER_WORD - 1 - slot) * BITS_PER_BASE;
        ((word >> shift) & 0b11) as u8
    }

    /// Returns the base at `pos`. Undefined input bases decode as [`Base::A`]
    /// (their packed placeholder); use [`PackedSeq::undefined_positions`] to
    /// recover where the `N`s were.
    #[inline]
    pub fn base_at(&self, pos: usize) -> Base {
        Base::from_code(self.code_at(pos))
    }

    /// Decodes back to an ASCII sequence, restoring `N` at the recorded positions.
    pub fn to_ascii(&self) -> Vec<u8> {
        let mut out: Vec<u8> = (0..self.len).map(|i| self.base_at(i).to_ascii()).collect();
        for &pos in &self.n_positions {
            out[pos as usize] = b'N';
        }
        out
    }

    /// Extracts a sub-sequence `[start, start + len)` as a new packed sequence.
    ///
    /// # Panics
    /// Panics if the range does not lie within the sequence.
    pub fn slice(&self, start: usize, len: usize) -> PackedSeq {
        assert!(
            start + len <= self.len,
            "slice [{start}, {}) out of range (len {})",
            start + len,
            self.len
        );
        let ascii = self.to_ascii();
        PackedSeq::from_ascii(&ascii[start..start + len])
    }

    /// Hamming distance between two equal-length packed sequences, computed with
    /// word-level XOR + popcount on the per-base OR-reduced difference — the same
    /// primitive GateKeeper uses for its Hamming mask.
    pub fn hamming_distance(&self, other: &PackedSeq) -> Option<u32> {
        if self.len != other.len {
            return None;
        }
        let mut total = 0u32;
        for (i, (&a, &b)) in self.words.iter().zip(other.words.iter()).enumerate() {
            let mut diff = a ^ b;
            if i == self.words.len() - 1 && !self.len.is_multiple_of(BASES_PER_WORD) {
                let used_bits = (self.len % BASES_PER_WORD) * BITS_PER_BASE;
                diff &= !0u32 << (32 - used_bits);
            }
            // OR the two bits of every base so each mismatching base counts once.
            let hi = diff & 0xAAAA_AAAA;
            let lo = diff & 0x5555_5555;
            let per_base = (hi >> 1) | lo;
            total += per_base.count_ones();
        }
        Some(total)
    }
}

impl fmt::Debug for PackedSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ascii = self.to_ascii();
        let shown = if ascii.len() > 48 {
            format!("{}…", String::from_utf8_lossy(&ascii[..48]))
        } else {
            String::from_utf8_lossy(&ascii).into_owned()
        };
        f.debug_struct("PackedSeq")
            .field("len", &self.len)
            .field("undefined", &self.undefined)
            .field("seq", &shown)
            .finish()
    }
}

impl fmt::Display for PackedSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&String::from_utf8_lossy(&self.to_ascii()))
    }
}

/// Encodes a batch of ASCII sequences across the worker pool. This is the
/// "encoding in host" path of the paper (§3.3): the CPU packs the reads before they
/// are copied to the device. Output order matches input order, so the result is
/// identical to a sequential `seqs.iter().map(PackedSeq::from_ascii)` pass;
/// set `RAYON_NUM_THREADS=1` to force that sequential fallback.
pub fn encode_batch_parallel(seqs: &[&[u8]]) -> Vec<PackedSeq> {
    use rayon::prelude::*;
    seqs.par_iter().map(|s| PackedSeq::from_ascii(s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count_matches_paper() {
        // "a 100bp read is represented as seven words"
        assert_eq!(PackedSeq::words_for_len(100), 7);
        assert_eq!(PackedSeq::words_for_len(150), 10);
        assert_eq!(PackedSeq::words_for_len(250), 16);
        assert_eq!(PackedSeq::words_for_len(16), 1);
        assert_eq!(PackedSeq::words_for_len(17), 2);
        assert_eq!(PackedSeq::words_for_len(0), 0);
    }

    #[test]
    fn round_trip_ascii() {
        let seq = b"ACGTACGTACGTACGTTGCA";
        let packed = PackedSeq::from_ascii(seq);
        assert_eq!(packed.len(), seq.len());
        assert_eq!(packed.to_ascii(), seq.to_vec());
        assert!(!packed.is_undefined());
    }

    #[test]
    fn n_bases_flag_undefined_and_round_trip() {
        let seq = b"ACGTNACGT";
        let packed = PackedSeq::from_ascii(seq);
        assert!(packed.is_undefined());
        assert_eq!(packed.undefined_positions(), &[4]);
        assert_eq!(packed.to_ascii(), seq.to_vec());
    }

    #[test]
    fn code_at_matches_encoding() {
        let packed = PackedSeq::from_ascii(b"ACGT");
        assert_eq!(packed.code_at(0), 0b00);
        assert_eq!(packed.code_at(1), 0b01);
        assert_eq!(packed.code_at(2), 0b10);
        assert_eq!(packed.code_at(3), 0b11);
    }

    #[test]
    fn first_base_occupies_most_significant_bits() {
        let packed = PackedSeq::from_ascii(b"T");
        assert_eq!(packed.words()[0] >> 30, 0b11);
    }

    #[test]
    fn slice_extracts_expected_sub_sequence() {
        let packed = PackedSeq::from_ascii(b"AAAACCCCGGGGTTTTACGT");
        let sub = packed.slice(4, 8);
        assert_eq!(sub.to_ascii(), b"CCCCGGGG".to_vec());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        PackedSeq::from_ascii(b"ACGT").slice(2, 10);
    }

    #[test]
    fn hamming_distance_counts_mismatching_bases_once() {
        let a = PackedSeq::from_ascii(b"ACGTACGTACGTACGTA");
        let b = PackedSeq::from_ascii(b"ACGTACGTACGTACGTT");
        assert_eq!(a.hamming_distance(&b), Some(1));
        // A (00) vs T (11) differs in both bits but is a single base mismatch.
        let c = PackedSeq::from_ascii(b"AAAA");
        let d = PackedSeq::from_ascii(b"TTTT");
        assert_eq!(c.hamming_distance(&d), Some(4));
    }

    #[test]
    fn hamming_distance_rejects_length_mismatch() {
        let a = PackedSeq::from_ascii(b"ACGT");
        let b = PackedSeq::from_ascii(b"ACG");
        assert_eq!(a.hamming_distance(&b), None);
    }

    #[test]
    fn hamming_distance_ignores_padding() {
        let a = PackedSeq::from_ascii(b"ACGTACG");
        let b = PackedSeq::from_ascii(b"ACGTACG");
        assert_eq!(a.hamming_distance(&b), Some(0));
    }

    #[test]
    fn from_words_zeroes_padding() {
        let words = vec![u32::MAX];
        let packed = PackedSeq::from_words(words, 4);
        // Only the first 8 bits (4 bases) should survive.
        assert_eq!(packed.words()[0], 0xFF00_0000);
        assert_eq!(packed.to_ascii(), b"TTTT".to_vec());
    }

    #[test]
    fn parallel_batch_encoding_matches_serial() {
        let seqs: Vec<Vec<u8>> = (0..64)
            .map(|i| {
                (0..100)
                    .map(|j| b"ACGT"[(i * 7 + j * 3) % 4])
                    .collect::<Vec<u8>>()
            })
            .collect();
        let refs: Vec<&[u8]> = seqs.iter().map(|s| s.as_slice()).collect();
        let batch = encode_batch_parallel(&refs);
        for (seq, packed) in seqs.iter().zip(batch.iter()) {
            assert_eq!(&packed.to_ascii(), seq);
        }
    }

    #[test]
    fn display_and_debug_render() {
        let packed = PackedSeq::from_ascii(b"ACGTN");
        assert_eq!(format!("{packed}"), "ACGTN");
        assert!(format!("{packed:?}").contains("undefined: true"));
    }
}
