//! Minimal FASTQ reader/writer.
//!
//! Short reads (the `ERR…`/`SRR…` sets of the paper) arrive as FASTQ. Only the
//! strict 4-line record layout is supported (`@header`, sequence, `+`, quality) —
//! the layout emitted by Illumina pipelines and by this crate's read simulator.
//! CRLF line endings are accepted, and soft-masked (lowercase) bases are
//! uppercased at parse time so the raw-ASCII filter paths, which compare bytes
//! directly, score them like their uppercase forms.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// A single FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read identifier (text after `@`, up to the first whitespace).
    pub id: String,
    /// Sequence bytes.
    pub sequence: Vec<u8>,
    /// Phred+33 quality string, same length as the sequence.
    pub quality: Vec<u8>,
}

impl FastqRecord {
    /// Creates a record with a flat quality string of `I` (Phred 40).
    pub fn with_uniform_quality(id: impl Into<String>, sequence: impl Into<Vec<u8>>) -> Self {
        let sequence = sequence.into();
        let quality = vec![b'I'; sequence.len()];
        FastqRecord {
            id: id.into(),
            sequence,
            quality,
        }
    }

    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// True when the record carries no sequence.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// Mean Phred quality score of the read (0 for an empty read).
    pub fn mean_quality(&self) -> f64 {
        if self.quality.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .quality
            .iter()
            .map(|&q| q.saturating_sub(33) as u64)
            .sum();
        total as f64 / self.quality.len() as f64
    }
}

/// Errors produced while parsing FASTQ input.
#[derive(Debug)]
pub enum FastqError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Record did not start with `@`.
    BadHeader {
        /// 1-based line number.
        line: usize,
    },
    /// The `+` separator line is missing.
    BadSeparator {
        /// 1-based line number.
        line: usize,
    },
    /// Quality string length does not match the sequence length.
    LengthMismatch {
        /// Identifier of the offending record.
        id: String,
    },
    /// Quality string contains a byte outside the printable Phred+33 range
    /// (`'!'`..=`'~'`). Mapping such bytes to quality 0 would silently mask
    /// malformed input, so they are rejected at parse time instead.
    InvalidQuality {
        /// Identifier of the offending record.
        id: String,
        /// The offending byte.
        byte: u8,
        /// 0-based position of the byte within the quality string.
        position: usize,
    },
    /// File ended in the middle of a record.
    TruncatedRecord {
        /// Identifier of the partial record, if the header was read.
        id: Option<String>,
    },
}

impl fmt::Display for FastqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FastqError::Io(e) => write!(f, "I/O error while reading FASTQ: {e}"),
            FastqError::BadHeader { line } => write!(f, "line {line}: expected '@' header"),
            FastqError::BadSeparator { line } => write!(f, "line {line}: expected '+' separator"),
            FastqError::LengthMismatch { id } => {
                write!(
                    f,
                    "record {id}: quality length differs from sequence length"
                )
            }
            FastqError::InvalidQuality { id, byte, position } => {
                write!(
                    f,
                    "record {id}: quality byte 0x{byte:02x} at position {position} \
                     is outside the Phred+33 range '!'..='~'"
                )
            }
            FastqError::TruncatedRecord { id } => match id {
                Some(id) => write!(f, "record {id}: truncated"),
                None => write!(f, "truncated record at end of file"),
            },
        }
    }
}

impl std::error::Error for FastqError {}

impl From<io::Error> for FastqError {
    fn from(e: io::Error) -> Self {
        FastqError::Io(e)
    }
}

/// Parses all records from a reader.
pub fn read_fastq<R: Read>(reader: R) -> Result<Vec<FastqRecord>, FastqError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();
    let mut records = Vec::new();

    while let Some((idx, line)) = lines.next() {
        let header = line?;
        let header = header.trim_end();
        if header.is_empty() {
            continue;
        }
        if !header.starts_with('@') {
            return Err(FastqError::BadHeader { line: idx + 1 });
        }
        let id = header[1..]
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_string();

        let mut sequence = match lines.next() {
            Some((_, line)) => line?.trim_end().as_bytes().to_vec(),
            None => return Err(FastqError::TruncatedRecord { id: Some(id) }),
        };
        crate::alphabet::normalize_sequence(&mut sequence);
        let (sep_idx, separator) = match lines.next() {
            Some((idx, line)) => (idx, line?),
            None => return Err(FastqError::TruncatedRecord { id: Some(id) }),
        };
        if !separator.trim_end().starts_with('+') {
            return Err(FastqError::BadSeparator { line: sep_idx + 1 });
        }
        let quality = match lines.next() {
            Some((_, line)) => line?.trim_end().as_bytes().to_vec(),
            None => return Err(FastqError::TruncatedRecord { id: Some(id) }),
        };
        if quality.len() != sequence.len() {
            return Err(FastqError::LengthMismatch { id });
        }
        // Phred+33 qualities are printable ASCII: '!' (Phred 0) through '~'
        // (Phred 93). Anything else is a malformed record, not quality 0.
        if let Some(position) = quality.iter().position(|&q| !(b'!'..=b'~').contains(&q)) {
            return Err(FastqError::InvalidQuality {
                id,
                byte: quality[position],
                position,
            });
        }
        records.push(FastqRecord {
            id,
            sequence,
            quality,
        });
    }
    Ok(records)
}

/// Reads all records from a FASTQ file on disk.
pub fn read_fastq_file(path: impl AsRef<Path>) -> Result<Vec<FastqRecord>, FastqError> {
    let file = std::fs::File::open(path)?;
    read_fastq(file)
}

/// Writes records in strict 4-line layout.
pub fn write_fastq<W: Write>(writer: &mut W, records: &[FastqRecord]) -> io::Result<()> {
    for rec in records {
        writeln!(writer, "@{}", rec.id)?;
        writer.write_all(&rec.sequence)?;
        writer.write_all(b"\n+\n")?;
        writer.write_all(&rec.quality)?;
        writer.write_all(b"\n")?;
    }
    Ok(())
}

/// Writes records to a FASTQ file on disk.
pub fn write_fastq_file(path: impl AsRef<Path>, records: &[FastqRecord]) -> io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    write_fastq(&mut file, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_two_records() {
        let data = b"@r1 extra\nACGT\n+\nIIII\n@r2\nTTTT\n+\n!!!!\n";
        let records = read_fastq(&data[..]).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].id, "r1");
        assert_eq!(records[0].sequence, b"ACGT".to_vec());
        assert_eq!(records[1].quality, b"!!!!".to_vec());
    }

    #[test]
    fn crlf_line_endings_parse_like_lf() {
        let unix = b"@r1 extra\nACGT\n+\nIIII\n@r2\nTTTT\n+\n!!!!\n";
        let dos = b"@r1 extra\r\nACGT\r\n+\r\nIIII\r\n@r2\r\nTTTT\r\n+\r\n!!!!\r\n";
        assert_eq!(
            read_fastq(&unix[..]).unwrap(),
            read_fastq(&dos[..]).unwrap()
        );
    }

    #[test]
    fn soft_masked_lowercase_bases_are_uppercased() {
        let data = b"@r1\nacgtn\n+\nIIIII\n";
        let records = read_fastq(&data[..]).unwrap();
        assert_eq!(records[0].sequence, b"ACGTN".to_vec());
    }

    #[test]
    fn bad_header_is_detected() {
        let data = b"r1\nACGT\n+\nIIII\n";
        assert!(matches!(
            read_fastq(&data[..]),
            Err(FastqError::BadHeader { line: 1 })
        ));
    }

    #[test]
    fn bad_separator_is_detected() {
        let data = b"@r1\nACGT\nX\nIIII\n";
        assert!(matches!(
            read_fastq(&data[..]),
            Err(FastqError::BadSeparator { line: 3 })
        ));
    }

    #[test]
    fn length_mismatch_is_detected() {
        let data = b"@r1\nACGT\n+\nIII\n";
        assert!(matches!(
            read_fastq(&data[..]),
            Err(FastqError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn truncated_record_is_detected() {
        let data = b"@r1\nACGT\n";
        assert!(matches!(
            read_fastq(&data[..]),
            Err(FastqError::TruncatedRecord { .. })
        ));
    }

    #[test]
    fn out_of_range_quality_bytes_are_rejected_not_masked() {
        // A space (0x20) is below '!' and used to be silently mapped to
        // quality 0 by `saturating_sub(33)`; it must be a parse error.
        let data = b"@r1\nACGT\n+\nII I\n";
        match read_fastq(&data[..]) {
            Err(FastqError::InvalidQuality { id, byte, position }) => {
                assert_eq!(id, "r1");
                assert_eq!(byte, b' ');
                assert_eq!(position, 2);
            }
            other => panic!("expected InvalidQuality, got {other:?}"),
        }
        // Bytes above '~' (e.g. DEL = 0x7f) are equally malformed.
        let data = b"@r1\nACGT\n+\nII\x7fI\n";
        assert!(matches!(
            read_fastq(&data[..]),
            Err(FastqError::InvalidQuality { byte: 0x7f, .. })
        ));
        // The full valid Phred+33 range still parses.
        let data = b"@r1\nACGT\n+\n!I5~\n";
        let records = read_fastq(&data[..]).unwrap();
        assert_eq!(records[0].quality, b"!I5~".to_vec());
    }

    #[test]
    fn invalid_quality_error_message_names_the_byte() {
        let err = FastqError::InvalidQuality {
            id: "r9".to_string(),
            byte: 0x1f,
            position: 4,
        };
        let message = err.to_string();
        assert!(message.contains("r9"));
        assert!(message.contains("0x1f"));
        assert!(message.contains("position 4"));
    }

    #[test]
    fn write_then_read_round_trips() {
        let records = vec![
            FastqRecord::with_uniform_quality("a", b"ACGTACGT".to_vec()),
            FastqRecord {
                id: "b".to_string(),
                sequence: b"NNNN".to_vec(),
                quality: b"!!!!".to_vec(),
            },
        ];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        assert_eq!(read_fastq(&buf[..]).unwrap(), records);
    }

    #[test]
    fn mean_quality_is_phred_scaled() {
        let rec = FastqRecord::with_uniform_quality("a", b"ACGT".to_vec());
        assert!((rec.mean_quality() - 40.0).abs() < 1e-9);
        let empty = FastqRecord::with_uniform_quality("e", Vec::new());
        assert_eq!(empty.mean_quality(), 0.0);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("gk_seq_fastq_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.fq");
        let records = vec![FastqRecord::with_uniform_quality("x", b"ACGT".to_vec())];
        write_fastq_file(&path, &records).unwrap();
        assert_eq!(read_fastq_file(&path).unwrap(), records);
        std::fs::remove_file(&path).ok();
    }
}
