//! DNA alphabet and the 2-bit base encoding used throughout GateKeeper.
//!
//! GateKeeper encodes each base in two bits (`A=00, C=01, G=10, T=11`, §2.1 of the
//! paper). The unknown base call `N` is *not* representable in two bits; pairs that
//! contain an `N` are called *undefined* and are passed through the filter
//! unfiltered (§3.3). This module provides the scalar encoding primitives; the
//! packed word-level representation lives in [`crate::packed`].

use serde::{Deserialize, Serialize};

/// A DNA nucleotide, including the IUPAC unknown base `N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Base {
    /// Adenine, encoded as `00`.
    A,
    /// Cytosine, encoded as `01`.
    C,
    /// Guanine, encoded as `10`.
    G,
    /// Thymine, encoded as `11`.
    T,
    /// Unknown base call. Has no 2-bit encoding; sequences containing `N` are
    /// treated as *undefined* by the pre-alignment filters.
    N,
}

impl Base {
    /// All four definite bases in encoding order.
    pub const DEFINITE: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Returns the 2-bit code of the base, or `None` for [`Base::N`].
    #[inline]
    pub fn code(self) -> Option<u8> {
        match self {
            Base::A => Some(0b00),
            Base::C => Some(0b01),
            Base::G => Some(0b10),
            Base::T => Some(0b11),
            Base::N => None,
        }
    }

    /// Builds a base from a 2-bit code. Codes larger than 3 are masked.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0b00 => Base::A,
            0b01 => Base::C,
            0b10 => Base::G,
            _ => Base::T,
        }
    }

    /// Parses an ASCII character (case-insensitive). Any IUPAC ambiguity code other
    /// than `ACGT` collapses to [`Base::N`], mirroring how mrFAST treats them.
    #[inline]
    pub fn from_ascii(ch: u8) -> Base {
        match ch.to_ascii_uppercase() {
            b'A' => Base::A,
            b'C' => Base::C,
            b'G' => Base::G,
            b'T' => Base::T,
            _ => Base::N,
        }
    }

    /// ASCII representation of the base.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
            Base::N => b'N',
        }
    }

    /// Watson-Crick complement. `N` complements to `N`.
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
            Base::N => Base::N,
        }
    }

    /// True for `A`, `C`, `G`, `T`; false for `N`.
    #[inline]
    pub fn is_definite(self) -> bool {
        !matches!(self, Base::N)
    }
}

/// Encodes an ASCII base into its 2-bit code, or `None` for non-`ACGT` characters.
#[inline]
pub fn encode_base(ch: u8) -> Option<u8> {
    Base::from_ascii(ch).code()
}

/// Decodes a 2-bit code back into an ASCII base.
#[inline]
pub fn decode_base(code: u8) -> u8 {
    Base::from_code(code).to_ascii()
}

/// Returns true if the character is one of `ACGTacgt`.
#[inline]
pub fn is_valid_base(ch: u8) -> bool {
    matches!(ch.to_ascii_uppercase(), b'A' | b'C' | b'G' | b'T')
}

/// Returns the complement of an ASCII base (`N` and unknown characters map to `N`).
#[inline]
pub fn complement(ch: u8) -> u8 {
    Base::from_ascii(ch).complement().to_ascii()
}

/// Reverse-complements an ASCII sequence in place-allocating fashion.
pub fn reverse_complement(seq: &[u8]) -> Vec<u8> {
    seq.iter().rev().map(|&b| complement(b)).collect()
}

/// Uppercases an ASCII sequence in place.
///
/// Reference genomes ship soft-masked repeats as lowercase bases. The packed
/// 2-bit encoders fold case, but the raw-ASCII filter paths compare bytes
/// directly, where `b'a' != b'A'` would silently score a soft-masked base as a
/// mismatch — so the parsers normalize at read time instead.
#[inline]
pub fn normalize_sequence(seq: &mut [u8]) {
    seq.make_ascii_uppercase();
}

/// Counts the `N` (or otherwise undefined) bases in an ASCII sequence.
pub fn count_undefined(seq: &[u8]) -> usize {
    seq.iter().filter(|&&b| !is_valid_base(b)).count()
}

/// Returns true if the ASCII sequence contains any base outside `ACGT`.
pub fn has_undefined(seq: &[u8]) -> bool {
    seq.iter().any(|&b| !is_valid_base(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_paper_encoding() {
        assert_eq!(Base::A.code(), Some(0b00));
        assert_eq!(Base::C.code(), Some(0b01));
        assert_eq!(Base::G.code(), Some(0b10));
        assert_eq!(Base::T.code(), Some(0b11));
        assert_eq!(Base::N.code(), None);
    }

    #[test]
    fn from_code_round_trips() {
        for base in Base::DEFINITE {
            assert_eq!(Base::from_code(base.code().unwrap()), base);
        }
    }

    #[test]
    fn ascii_round_trips_case_insensitive() {
        for (lower, upper) in [(b'a', b'A'), (b'c', b'C'), (b'g', b'G'), (b't', b'T')] {
            assert_eq!(Base::from_ascii(lower), Base::from_ascii(upper));
            assert_eq!(Base::from_ascii(upper).to_ascii(), upper);
        }
    }

    #[test]
    fn ambiguity_codes_collapse_to_n() {
        for ch in [
            b'R', b'Y', b'S', b'W', b'K', b'M', b'B', b'D', b'H', b'V', b'N', b'-',
        ] {
            assert_eq!(Base::from_ascii(ch), Base::N);
        }
    }

    #[test]
    fn complement_is_an_involution() {
        for base in [Base::A, Base::C, Base::G, Base::T, Base::N] {
            assert_eq!(base.complement().complement(), base);
        }
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn reverse_complement_of_palindrome() {
        assert_eq!(reverse_complement(b"ACGT"), b"ACGT".to_vec());
        assert_eq!(reverse_complement(b"AACC"), b"GGTT".to_vec());
    }

    #[test]
    fn undefined_counting() {
        assert_eq!(count_undefined(b"ACGTN"), 1);
        assert_eq!(count_undefined(b"ACGT"), 0);
        assert!(has_undefined(b"ACGNT"));
        assert!(!has_undefined(b"acgt"));
    }

    #[test]
    fn encode_decode_scalar() {
        for &ch in b"ACGT" {
            let code = encode_base(ch).unwrap();
            assert_eq!(decode_base(code), ch);
        }
        assert_eq!(encode_base(b'N'), None);
    }
}
