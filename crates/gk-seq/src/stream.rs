//! Streaming pair sources: iterators of pair batches generated on the fly.
//!
//! The paper's evaluation sets hold 30 million pairs each (§4.1) — materializing
//! one as a [`crate::pairs::PairSet`] costs gigabytes. A [`PairBatches`] source
//! instead drives the same deterministic generator one batch at a time, so a
//! whole-genome-scale run only ever holds one batch (plus whatever the consumer
//! keeps in flight). Concatenating the batches reproduces
//! [`DatasetProfile::generate`] with the same seed **byte for byte**, because
//! both walk a single seeded RNG pair by pair.
//!
//! [`EncodedPairBatches`] adapts any pair-batch iterator into an iterator of
//! 2-bit *encoded* batches (the host-encoding stage of §3.3), for consumers
//! that want packed words rather than ASCII pairs.

use crate::datasets::DatasetProfile;
use crate::packed::PackedSeq;
use crate::pairs::{encode_pair_batch, SequencePair};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Iterator of deterministically generated pair batches.
#[derive(Debug, Clone)]
pub struct PairBatches {
    profile: DatasetProfile,
    rng: StdRng,
    remaining: usize,
    batch_pairs: usize,
}

impl PairBatches {
    /// Creates a source that yields `count` pairs of `profile` (seeded with
    /// `seed`) in batches of at most `batch_pairs`.
    pub fn new(
        profile: DatasetProfile,
        count: usize,
        seed: u64,
        batch_pairs: usize,
    ) -> PairBatches {
        PairBatches {
            profile,
            rng: StdRng::seed_from_u64(seed),
            remaining: count,
            batch_pairs: batch_pairs.max(1),
        }
    }

    /// Pairs not yet yielded.
    pub fn remaining_pairs(&self) -> usize {
        self.remaining
    }

    /// Read length of the generated pairs.
    pub fn read_len(&self) -> usize {
        self.profile.read_len
    }

    /// Adapts the source into an iterator of 2-bit encoded batches.
    pub fn encoded(self) -> EncodedPairBatches<PairBatches> {
        EncodedPairBatches::new(self)
    }

    /// Adapts the source into an iterator of raw transfer batches
    /// ([`crate::raw::RawPairBatch`]) — the device-encoding counterpart of
    /// [`PairBatches::encoded`]: the host gathers each batch into flat
    /// 1-byte-per-base arenas but leaves the 2-bit packing to the kernel.
    pub fn raw(self) -> crate::raw::RawPairBatches<PairBatches> {
        crate::raw::RawPairBatches::new(self)
    }

    /// Adapts the source into a read-ahead iterator: the next batch is
    /// generated as a task on the worker pool while the consumer processes the
    /// current one, so generation cost hides under downstream work. Yields
    /// exactly the same batches in the same order.
    pub fn read_ahead(self) -> ReadAhead<PairBatches> {
        ReadAhead::new(self)
    }
}

impl Iterator for PairBatches {
    type Item = Vec<SequencePair>;

    fn next(&mut self) -> Option<Vec<SequencePair>> {
        if self.remaining == 0 {
            return None;
        }
        let take = self.remaining.min(self.batch_pairs);
        let mut batch = Vec::with_capacity(take);
        for _ in 0..take {
            batch.push(self.profile.generate_pair(&mut self.rng));
        }
        self.remaining -= take;
        Some(batch)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let batches = self.remaining.div_ceil(self.batch_pairs);
        (batches, Some(batches))
    }
}

impl ExactSizeIterator for PairBatches {}

/// Adapter turning an iterator of pair batches into an iterator of encoded
/// batches (each pair packed into its 2-bit device representation, fanned out
/// across the thread pool exactly like the host encoding actor).
#[derive(Debug, Clone)]
pub struct EncodedPairBatches<I> {
    inner: I,
}

impl<I> EncodedPairBatches<I>
where
    I: Iterator<Item = Vec<SequencePair>>,
{
    /// Wraps a pair-batch iterator.
    pub fn new(inner: I) -> EncodedPairBatches<I> {
        EncodedPairBatches { inner }
    }
}

impl<I> Iterator for EncodedPairBatches<I>
where
    I: Iterator<Item = Vec<SequencePair>>,
{
    type Item = Vec<(PackedSeq, PackedSeq)>;

    fn next(&mut self) -> Option<Vec<(PackedSeq, PackedSeq)>> {
        self.inner.next().map(|batch| encode_pair_batch(&batch))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Read-ahead adapter over any owned iterator: item *i+1* is produced by a
/// task on the worker pool while the consumer is still busy with item *i*.
///
/// The inner iterator travels inside the in-flight task (it is moved into the
/// spawn and handed back with the produced item), so ordering and values are
/// identical to driving the iterator directly — only *where* and *when* the
/// production work happens changes. Exactly one item is generated ahead, so
/// memory stays bounded at one extra batch. Under the `RAYON_NUM_THREADS=1`
/// sequential fallback the spawn runs inline, degrading to an eager-by-one
/// serial iterator with unchanged output.
#[derive(Debug)]
pub struct ReadAhead<I: Iterator> {
    inflight: Option<rayon::JoinHandle<(Option<I::Item>, I)>>,
}

impl<I> ReadAhead<I>
where
    I: Iterator + Send + 'static,
    I::Item: Send + 'static,
{
    /// Wraps an iterator and immediately starts producing its first item on
    /// the pool.
    pub fn new(inner: I) -> ReadAhead<I> {
        ReadAhead {
            inflight: Some(Self::advance(inner)),
        }
    }

    fn advance(mut inner: I) -> rayon::JoinHandle<(Option<I::Item>, I)> {
        rayon::spawn(move || {
            let item = inner.next();
            (item, inner)
        })
    }
}

impl<I> Iterator for ReadAhead<I>
where
    I: Iterator + Send + 'static,
    I::Item: Send + 'static,
{
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        let (item, inner) = self.inflight.take()?.join();
        if item.is_some() {
            // Start producing the following item before handing this one to
            // the consumer — that is the whole point of the adapter.
            self.inflight = Some(Self::advance(inner));
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // The inner iterator is inside the in-flight task; without it the only
        // universally correct hint is the trivial one.
        (0, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_batches_reproduce_generate_exactly() {
        let profile = DatasetProfile::set3();
        let reference = profile.generate(1_000, 42);
        let streamed: Vec<SequencePair> =
            profile.stream_batches(1_000, 42, 128).flatten().collect();
        assert_eq!(streamed, reference.pairs);
    }

    #[test]
    fn batch_sizes_and_counts_are_as_requested() {
        let profile = DatasetProfile::set1();
        let mut source = profile.stream_batches(1_000, 7, 300);
        assert_eq!(source.len(), 4);
        assert_eq!(source.remaining_pairs(), 1_000);
        let sizes: Vec<usize> = source.by_ref().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![300, 300, 300, 100]);
        assert_eq!(source.remaining_pairs(), 0);
        assert!(source.next().is_none());
    }

    #[test]
    fn zero_batch_size_is_clamped() {
        let profile = DatasetProfile::set1();
        let batches: Vec<_> = profile.stream_batches(5, 3, 0).collect();
        assert_eq!(batches.len(), 5);
    }

    #[test]
    fn encoded_batches_match_direct_encoding() {
        let profile = DatasetProfile::set3();
        let raw = profile.generate(500, 9);
        let encoded: Vec<(PackedSeq, PackedSeq)> = profile
            .stream_batches(500, 9, 64)
            .encoded()
            .flatten()
            .collect();
        let direct = encode_pair_batch(&raw.pairs);
        assert_eq!(encoded, direct);
        assert_eq!(encoded.len(), 500);
    }

    #[test]
    fn read_len_is_exposed_for_downstream_config() {
        let source = DatasetProfile::set9().stream_batches(10, 1, 4);
        assert_eq!(source.read_len(), 250);
    }

    #[test]
    fn read_ahead_yields_identical_batches_in_order() {
        let profile = DatasetProfile::set3();
        let direct: Vec<Vec<SequencePair>> = profile.stream_batches(1_000, 13, 128).collect();
        let ahead: Vec<Vec<SequencePair>> = profile
            .stream_batches(1_000, 13, 128)
            .read_ahead()
            .collect();
        assert_eq!(ahead, direct);
    }

    #[test]
    fn read_ahead_handles_empty_and_single_batch_sources() {
        let profile = DatasetProfile::set1();
        let empty: Vec<Vec<SequencePair>> = profile.stream_batches(0, 1, 10).read_ahead().collect();
        assert!(empty.is_empty());
        let single: Vec<Vec<SequencePair>> =
            profile.stream_batches(5, 1, 10).read_ahead().collect();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].len(), 5);
    }

    #[test]
    fn read_ahead_is_fused_after_exhaustion() {
        let mut ahead = DatasetProfile::set1().stream_batches(4, 2, 2).read_ahead();
        assert!(ahead.next().is_some());
        assert!(ahead.next().is_some());
        assert!(ahead.next().is_none());
        assert!(ahead.next().is_none());
    }

    #[test]
    fn read_ahead_composes_with_generic_iterators() {
        let items: Vec<u32> = ReadAhead::new(0u32..50).collect();
        assert_eq!(items, (0..50).collect::<Vec<u32>>());
    }
}
