//! Length-prefixed binary framing for the filter service (`gk-serve`).
//!
//! One frame = a little-endian `u32` payload length followed by the payload:
//! a protocol-version byte, a frame-tag byte, and the tag-specific body. The
//! format is deliberately dependency-free (no serde on the wire) so any
//! client in any language can speak it with a few dozen lines of code.
//!
//! Frames:
//!
//! * [`RequestFrame`] — a filter request: id, tenant, filter kind code
//!   (`gk_core::backend::FilterKind::code`), edit threshold, a queueing
//!   deadline in microseconds, and the read pairs (per-pair lengths + raw
//!   ASCII bases).
//! * [`CancelFrame`] — drop a request's not-yet-batched work.
//! * [`ResponseFrame`] — terminal reply: [`ResponseStatus`], an optional
//!   retry hint for backpressure rejections, and the decisions as packed
//!   words (see [`decision_word`]).
//!
//! Decisions travel as `u64` words in the same packing the FNV decision
//! digest hashes — `estimated_edits << 2 | accepted << 1 | undefined` — so a
//! client can digest a response without ever materializing decision structs.
//!
//! ```
//! use gk_seq::frame::{read_frame, write_frame, Frame, RequestFrame};
//! use gk_seq::pairs::SequencePair;
//!
//! let request = Frame::Request(RequestFrame {
//!     id: 7,
//!     tenant: 1,
//!     kind: 0, // gatekeeper
//!     threshold: 2,
//!     deadline_micros: 50_000,
//!     pairs: vec![SequencePair::new(&b"ACGT"[..], &b"ACGT"[..])],
//! });
//! let mut wire = Vec::new();
//! write_frame(&mut wire, &request).unwrap();
//! let back = read_frame(&mut wire.as_slice()).unwrap();
//! assert_eq!(back, Some(request));
//! // A cleanly closed stream reads as `None`, not an error.
//! assert_eq!(read_frame(&mut &[][..]).unwrap(), None);
//! ```

use crate::pairs::SequencePair;
use std::io::{self, Read, Write};

/// Wire protocol version carried in every frame.
pub const FRAME_PROTOCOL_VERSION: u8 = 1;

/// Upper bound on a single frame's payload, rejecting corrupt or hostile
/// length prefixes before any allocation happens (256 MiB ≈ 600k pairs of
/// 250 bp — far above any sane request).
pub const MAX_FRAME_BYTES: usize = 256 << 20;

const TAG_REQUEST: u8 = 1;
const TAG_CANCEL: u8 = 2;
const TAG_RESPONSE: u8 = 3;

/// A filter request as it travels client → daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    /// Client-chosen request id, echoed in the response (unique per
    /// connection).
    pub id: u64,
    /// Tenant the request is accounted against in the fair queue.
    pub tenant: u32,
    /// Filter kind wire code (`gk_core::backend::FilterKind::code`).
    pub kind: u8,
    /// Edit-distance threshold `e`.
    pub threshold: u32,
    /// Maximum queueing delay the client tolerates, in microseconds; the
    /// batcher flushes the request's batch no later than this (clamped to
    /// its own flush interval).
    pub deadline_micros: u64,
    /// The read pairs to filter.
    pub pairs: Vec<SequencePair>,
}

/// Client-initiated cancellation of an in-flight request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancelFrame {
    /// The id of the request to cancel.
    pub id: u64,
}

/// Terminal status of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseStatus {
    /// Filtered; decisions attached.
    Ok,
    /// Rejected by backpressure before queueing; retry after the hint.
    Rejected,
    /// Cancelled before execution; no decisions were produced.
    Cancelled,
    /// The daemon could not process the request (malformed kind, shutdown).
    Error,
}

impl ResponseStatus {
    /// Stable one-byte wire code.
    pub fn code(self) -> u8 {
        match self {
            ResponseStatus::Ok => 0,
            ResponseStatus::Rejected => 1,
            ResponseStatus::Cancelled => 2,
            ResponseStatus::Error => 3,
        }
    }

    /// Inverse of [`ResponseStatus::code`].
    pub fn from_code(code: u8) -> Option<ResponseStatus> {
        match code {
            0 => Some(ResponseStatus::Ok),
            1 => Some(ResponseStatus::Rejected),
            2 => Some(ResponseStatus::Cancelled),
            3 => Some(ResponseStatus::Error),
            _ => None,
        }
    }
}

/// A reply as it travels daemon → client. Every accepted request receives
/// exactly one response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Echo of the request id.
    pub id: u64,
    /// Terminal status.
    pub status: ResponseStatus,
    /// Backpressure retry hint in microseconds (0 unless `Rejected`).
    pub retry_after_micros: u64,
    /// Per-pair decisions as packed words (see [`decision_word`]); empty
    /// unless `Ok`.
    pub decisions: Vec<u64>,
    /// Human-readable detail for `Error` responses, empty otherwise.
    pub message: String,
}

/// Any frame of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → daemon filter request.
    Request(RequestFrame),
    /// Client → daemon cancellation.
    Cancel(CancelFrame),
    /// Daemon → client terminal reply.
    Response(ResponseFrame),
}

/// Packs one decision into its wire word: `edits << 2 | accepted << 1 |
/// undefined` — bit-compatible with the word the FNV decision digest hashes.
pub fn decision_word(estimated_edits: u32, accepted: bool, undefined: bool) -> u64 {
    (u64::from(estimated_edits) << 2) | (u64::from(accepted) << 1) | u64::from(undefined)
}

/// Unpacks a wire word into `(estimated_edits, accepted, undefined)`.
pub fn decision_word_fields(word: u64) -> (u32, bool, bool) {
    ((word >> 2) as u32, word & 0b10 != 0, word & 0b1 != 0)
}

fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Bounds-checked little-endian reader over a received payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, len: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| invalid("frame body truncated"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let bytes = self.take(8)?;
        let mut word = [0u8; 8];
        word.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(word))
    }

    fn finish(self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(invalid("trailing bytes after frame body"))
        }
    }
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut out = vec![FRAME_PROTOCOL_VERSION];
    match frame {
        Frame::Request(req) => {
            out.push(TAG_REQUEST);
            out.extend_from_slice(&req.id.to_le_bytes());
            out.extend_from_slice(&req.tenant.to_le_bytes());
            out.push(req.kind);
            out.extend_from_slice(&req.threshold.to_le_bytes());
            out.extend_from_slice(&req.deadline_micros.to_le_bytes());
            out.extend_from_slice(&(req.pairs.len() as u32).to_le_bytes());
            for pair in &req.pairs {
                out.extend_from_slice(&(pair.read.len() as u32).to_le_bytes());
                out.extend_from_slice(&(pair.reference.len() as u32).to_le_bytes());
                out.extend_from_slice(&pair.read);
                out.extend_from_slice(&pair.reference);
            }
        }
        Frame::Cancel(cancel) => {
            out.push(TAG_CANCEL);
            out.extend_from_slice(&cancel.id.to_le_bytes());
        }
        Frame::Response(resp) => {
            out.push(TAG_RESPONSE);
            out.extend_from_slice(&resp.id.to_le_bytes());
            out.push(resp.status.code());
            out.extend_from_slice(&resp.retry_after_micros.to_le_bytes());
            out.extend_from_slice(&(resp.message.len() as u32).to_le_bytes());
            out.extend_from_slice(resp.message.as_bytes());
            out.extend_from_slice(&(resp.decisions.len() as u32).to_le_bytes());
            for word in &resp.decisions {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
    }
    out
}

fn decode_payload(payload: &[u8]) -> io::Result<Frame> {
    let mut cursor = Cursor::new(payload);
    let version = cursor.u8()?;
    if version != FRAME_PROTOCOL_VERSION {
        return Err(invalid(format!(
            "unsupported frame protocol version {version} (expected {FRAME_PROTOCOL_VERSION})"
        )));
    }
    let tag = cursor.u8()?;
    let frame = match tag {
        TAG_REQUEST => {
            let id = cursor.u64()?;
            let tenant = cursor.u32()?;
            let kind = cursor.u8()?;
            let threshold = cursor.u32()?;
            let deadline_micros = cursor.u64()?;
            let count = cursor.u32()? as usize;
            let mut pairs = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                let read_len = cursor.u32()? as usize;
                let ref_len = cursor.u32()? as usize;
                let read = cursor.take(read_len)?.to_vec();
                let reference = cursor.take(ref_len)?.to_vec();
                pairs.push(SequencePair { read, reference });
            }
            Frame::Request(RequestFrame {
                id,
                tenant,
                kind,
                threshold,
                deadline_micros,
                pairs,
            })
        }
        TAG_CANCEL => Frame::Cancel(CancelFrame { id: cursor.u64()? }),
        TAG_RESPONSE => {
            let id = cursor.u64()?;
            let status = ResponseStatus::from_code(cursor.u8()?)
                .ok_or_else(|| invalid("unknown response status code"))?;
            let retry_after_micros = cursor.u64()?;
            let message_len = cursor.u32()? as usize;
            let message = String::from_utf8(cursor.take(message_len)?.to_vec())
                .map_err(|_| invalid("response message is not UTF-8"))?;
            let count = cursor.u32()? as usize;
            let mut decisions = Vec::with_capacity(count.min(1 << 24));
            for _ in 0..count {
                decisions.push(cursor.u64()?);
            }
            Frame::Response(ResponseFrame {
                id,
                status,
                retry_after_micros,
                decisions,
                message,
            })
        }
        other => return Err(invalid(format!("unknown frame tag {other}"))),
    };
    cursor.finish()?;
    Ok(frame)
}

/// Writes one frame (length prefix + payload) and flushes the writer.
pub fn write_frame<W: Write>(writer: &mut W, frame: &Frame) -> io::Result<()> {
    let payload = encode_payload(frame);
    if payload.len() > MAX_FRAME_BYTES {
        return Err(invalid(format!(
            "frame payload of {} bytes exceeds MAX_FRAME_BYTES",
            payload.len()
        )));
    }
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(&payload)?;
    writer.flush()
}

/// Reads one frame. Returns `Ok(None)` when the stream is cleanly closed at
/// a frame boundary; a close mid-frame is an `UnexpectedEof` error.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Option<Frame>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        let n = reader.read(&mut len_bytes[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream closed inside a frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(invalid(format!(
            "frame length prefix of {len} bytes exceeds MAX_FRAME_BYTES"
        )));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    decode_payload(&payload).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).expect("write");
        let mut reader = wire.as_slice();
        assert_eq!(read_frame(&mut reader).expect("read"), Some(frame));
        assert_eq!(read_frame(&mut reader).expect("eof"), None);
    }

    #[test]
    fn request_round_trips() {
        roundtrip(Frame::Request(RequestFrame {
            id: 42,
            tenant: 9,
            kind: 3,
            threshold: 5,
            deadline_micros: 75_000,
            pairs: vec![
                SequencePair::new(&b"ACGTN"[..], &b"ACGTA"[..]),
                SequencePair::new(&b""[..], &b"GG"[..]),
            ],
        }));
    }

    #[test]
    fn cancel_and_response_round_trip() {
        roundtrip(Frame::Cancel(CancelFrame { id: u64::MAX }));
        roundtrip(Frame::Response(ResponseFrame {
            id: 1,
            status: ResponseStatus::Rejected,
            retry_after_micros: 2_000,
            decisions: vec![decision_word(3, true, false), decision_word(0, true, true)],
            message: "queue full".to_string(),
        }));
    }

    #[test]
    fn decision_words_pack_and_unpack() {
        for (edits, accepted, undefined) in [(0, false, false), (7, true, false), (0, true, true)] {
            let word = decision_word(edits, accepted, undefined);
            assert_eq!(decision_word_fields(word), (edits, accepted, undefined));
        }
    }

    #[test]
    fn multiple_frames_stream_in_order() {
        let frames = vec![
            Frame::Cancel(CancelFrame { id: 1 }),
            Frame::Cancel(CancelFrame { id: 2 }),
        ];
        let mut wire = Vec::new();
        for frame in &frames {
            write_frame(&mut wire, frame).expect("write");
        }
        let mut reader = wire.as_slice();
        for frame in &frames {
            assert_eq!(read_frame(&mut reader).expect("read"), Some(frame.clone()));
        }
        assert_eq!(read_frame(&mut reader).expect("eof"), None);
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        // Oversized length prefix.
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        assert!(read_frame(&mut huge.as_slice()).is_err());

        // Truncated mid-frame.
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Cancel(CancelFrame { id: 3 })).expect("write");
        wire.truncate(wire.len() - 2);
        assert!(read_frame(&mut wire.as_slice()).is_err());

        // Unknown tag.
        let payload = [FRAME_PROTOCOL_VERSION, 99];
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);
        assert!(read_frame(&mut wire.as_slice()).is_err());

        // Wrong version.
        let payload = [
            FRAME_PROTOCOL_VERSION + 1,
            TAG_CANCEL,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
        ];
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);
        assert!(read_frame(&mut wire.as_slice()).is_err());

        // Trailing garbage after a valid body.
        let mut payload = vec![FRAME_PROTOCOL_VERSION, TAG_CANCEL];
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.push(0xFF);
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);
        assert!(read_frame(&mut wire.as_slice()).is_err());
    }
}
