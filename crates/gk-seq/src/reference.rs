//! Reference genome representation and synthetic reference generation.
//!
//! The paper maps reads against GRCh37. Because the real reference cannot be
//! shipped, [`ReferenceBuilder`] synthesizes references with the two properties the
//! experiments actually depend on:
//!
//! 1. **Repeat structure** — genomic repeats are the reason seeding produces many
//!    candidate locations per read (§1), which is what makes pre-alignment
//!    filtering worthwhile. The builder plants tandem and dispersed repeats with a
//!    configurable fraction of the genome covered.
//! 2. **Unknown bases** — runs of `N` appear in real references (assembly gaps) and
//!    drive the *undefined pair* handling of GateKeeper-GPU (§3.3/§3.5).
//!
//! A [`Reference`] also records where its `N` runs are so the mapper can skip them,
//! mirroring the mrFAST integration ("the locations of 'N' bases on the reference
//! genome are also recorded", §3.5).

use crate::alphabet::is_valid_base;
use crate::fasta::FastaRecord;
use crate::packed::PackedSeq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An in-memory reference sequence (one chromosome / contig).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reference {
    /// Contig name, e.g. `"chr1"`.
    pub name: String,
    /// Uppercase ASCII sequence.
    pub sequence: Vec<u8>,
    /// Half-open `[start, end)` intervals covering every run of `N` bases.
    pub n_intervals: Vec<(usize, usize)>,
}

impl Reference {
    /// Builds a reference from raw ASCII, normalising case and recording `N` runs.
    pub fn from_ascii(name: impl Into<String>, sequence: &[u8]) -> Reference {
        let sequence: Vec<u8> = sequence
            .iter()
            .map(|&b| {
                let up = b.to_ascii_uppercase();
                if is_valid_base(up) {
                    up
                } else {
                    b'N'
                }
            })
            .collect();
        let n_intervals = find_n_intervals(&sequence);
        Reference {
            name: name.into(),
            sequence,
            n_intervals,
        }
    }

    /// Builds a reference from a parsed FASTA record.
    pub fn from_fasta(record: &FastaRecord) -> Reference {
        Reference::from_ascii(record.id.clone(), &record.sequence)
    }

    /// Reference length in bases.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// True when the reference holds no sequence.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// Extracts the segment `[start, start + len)`, clamped to the reference end.
    /// This is the "candidate reference segment" extraction each GPU thread performs
    /// from its candidate index (§3.5).
    pub fn segment(&self, start: usize, len: usize) -> &[u8] {
        let start = start.min(self.sequence.len());
        let end = (start + len).min(self.sequence.len());
        &self.sequence[start..end]
    }

    /// Returns true if `[start, start + len)` overlaps any recorded `N` run.
    pub fn overlaps_n(&self, start: usize, len: usize) -> bool {
        let end = start + len;
        self.n_intervals
            .iter()
            .any(|&(ns, ne)| start < ne && ns < end)
    }

    /// Encodes the whole reference into the 2-bit packed representation used by the
    /// device. mrFAST integration encodes the reference once up front with OpenMP
    /// multithreading (§3.5); here the packing is handed to Rayon by the caller via
    /// [`crate::packed::encode_batch_parallel`] when chunked.
    pub fn to_packed(&self) -> PackedSeq {
        PackedSeq::from_ascii(&self.sequence)
    }

    /// Converts back into a FASTA record.
    pub fn to_fasta(&self) -> FastaRecord {
        FastaRecord::new(self.name.clone(), self.sequence.clone())
    }

    /// Fraction of the reference covered by `N` bases.
    pub fn n_fraction(&self) -> f64 {
        if self.sequence.is_empty() {
            return 0.0;
        }
        let n: usize = self.n_intervals.iter().map(|&(s, e)| e - s).sum();
        n as f64 / self.sequence.len() as f64
    }
}

fn find_n_intervals(seq: &[u8]) -> Vec<(usize, usize)> {
    let mut intervals = Vec::new();
    let mut run_start: Option<usize> = None;
    for (i, &b) in seq.iter().enumerate() {
        if b == b'N' {
            if run_start.is_none() {
                run_start = Some(i);
            }
        } else if let Some(start) = run_start.take() {
            intervals.push((start, i));
        }
    }
    if let Some(start) = run_start {
        intervals.push((start, seq.len()));
    }
    intervals
}

/// Configurable synthetic reference generator.
///
/// The generated sequence is a random i.i.d. background with planted repeat
/// families (each family is one random template copied, with light mutation, to
/// several dispersed locations) plus optional `N` gaps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReferenceBuilder {
    length: usize,
    seed: u64,
    repeat_fraction: f64,
    repeat_unit_len: usize,
    repeat_family_copies: usize,
    repeat_divergence: f64,
    n_gap_count: usize,
    n_gap_len: usize,
    name: String,
}

impl Default for ReferenceBuilder {
    fn default() -> Self {
        ReferenceBuilder {
            length: 1_000_000,
            seed: 0xBEEF_CAFE,
            repeat_fraction: 0.25,
            repeat_unit_len: 500,
            repeat_family_copies: 8,
            repeat_divergence: 0.02,
            n_gap_count: 2,
            n_gap_len: 500,
            name: "chrSim".to_string(),
        }
    }
}

impl ReferenceBuilder {
    /// Creates a builder for a reference of `length` bases.
    pub fn new(length: usize) -> ReferenceBuilder {
        ReferenceBuilder {
            length,
            ..ReferenceBuilder::default()
        }
    }

    /// Sets the RNG seed (generation is fully deterministic for a given seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the contig name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the approximate fraction of the genome covered by repeats (0.0–0.9).
    pub fn repeat_fraction(mut self, fraction: f64) -> Self {
        self.repeat_fraction = fraction.clamp(0.0, 0.9);
        self
    }

    /// Sets the length of one repeat unit.
    pub fn repeat_unit_len(mut self, len: usize) -> Self {
        self.repeat_unit_len = len.max(10);
        self
    }

    /// Sets how many (lightly mutated) copies each repeat family gets.
    pub fn repeat_family_copies(mut self, copies: usize) -> Self {
        self.repeat_family_copies = copies.max(1);
        self
    }

    /// Sets the per-base divergence applied to each repeat copy.
    pub fn repeat_divergence(mut self, divergence: f64) -> Self {
        self.repeat_divergence = divergence.clamp(0.0, 0.5);
        self
    }

    /// Sets how many `N` gaps to plant and their length.
    pub fn n_gaps(mut self, count: usize, len: usize) -> Self {
        self.n_gap_count = count;
        self.n_gap_len = len;
        self
    }

    /// Generates the reference.
    pub fn build(&self) -> Reference {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut seq: Vec<u8> = (0..self.length)
            .map(|_| b"ACGT"[rng.gen_range(0..4)])
            .collect();

        if self.length > self.repeat_unit_len * 2 && self.repeat_fraction > 0.0 {
            let target_repeat_bases = (self.length as f64 * self.repeat_fraction) as usize;
            let bases_per_family = self.repeat_unit_len * self.repeat_family_copies;
            let families = (target_repeat_bases / bases_per_family.max(1)).max(1);
            for _ in 0..families {
                let template: Vec<u8> = (0..self.repeat_unit_len)
                    .map(|_| b"ACGT"[rng.gen_range(0..4)])
                    .collect();
                for _ in 0..self.repeat_family_copies {
                    let pos = rng.gen_range(0..self.length - self.repeat_unit_len);
                    for (offset, &base) in template.iter().enumerate() {
                        let mutated = if rng.gen_bool(self.repeat_divergence) {
                            b"ACGT"[rng.gen_range(0..4)]
                        } else {
                            base
                        };
                        seq[pos + offset] = mutated;
                    }
                }
            }
        }

        if self.n_gap_len > 0 {
            for _ in 0..self.n_gap_count {
                if self.length <= self.n_gap_len {
                    break;
                }
                let pos = rng.gen_range(0..self.length - self.n_gap_len);
                for b in seq.iter_mut().skip(pos).take(self.n_gap_len) {
                    *b = b'N';
                }
            }
        }

        Reference::from_ascii(self.name.clone(), &seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n_intervals_cover_all_runs() {
        let r = Reference::from_ascii("t", b"NNACGTNNNACGTN");
        assert_eq!(r.n_intervals, vec![(0, 2), (6, 9), (13, 14)]);
    }

    #[test]
    fn lowercase_and_ambiguity_are_normalised() {
        let r = Reference::from_ascii("t", b"acgtRyacgt");
        assert_eq!(r.sequence, b"ACGTNNACGT".to_vec());
        assert_eq!(r.n_intervals, vec![(4, 6)]);
    }

    #[test]
    fn segment_clamps_to_reference_end() {
        let r = Reference::from_ascii("t", b"ACGTACGT");
        assert_eq!(r.segment(4, 100), b"ACGT");
        assert_eq!(r.segment(100, 10), b"");
    }

    #[test]
    fn overlaps_n_detects_overlap_and_non_overlap() {
        let r = Reference::from_ascii("t", b"ACGTNNNNACGT");
        assert!(r.overlaps_n(2, 4));
        assert!(r.overlaps_n(4, 4));
        assert!(!r.overlaps_n(0, 4));
        assert!(!r.overlaps_n(8, 4));
    }

    #[test]
    fn builder_is_deterministic_for_a_seed() {
        let a = ReferenceBuilder::new(10_000).seed(7).build();
        let b = ReferenceBuilder::new(10_000).seed(7).build();
        let c = ReferenceBuilder::new(10_000).seed(8).build();
        assert_eq!(a.sequence, b.sequence);
        assert_ne!(a.sequence, c.sequence);
    }

    #[test]
    fn builder_plants_n_gaps() {
        let r = ReferenceBuilder::new(50_000).seed(3).n_gaps(3, 200).build();
        assert!(r.n_fraction() > 0.0);
        assert!(!r.n_intervals.is_empty());
    }

    #[test]
    fn builder_without_gaps_has_no_n() {
        let r = ReferenceBuilder::new(20_000).seed(3).n_gaps(0, 0).build();
        assert_eq!(r.n_fraction(), 0.0);
        assert!(r.n_intervals.is_empty());
    }

    #[test]
    fn builder_repeats_create_duplicated_kmers() {
        // With strong repeat content, some 32-mers must occur more than once.
        let r = ReferenceBuilder::new(100_000)
            .seed(11)
            .repeat_fraction(0.5)
            .repeat_divergence(0.0)
            .n_gaps(0, 0)
            .build();
        use std::collections::HashMap;
        let mut counts: HashMap<&[u8], usize> = HashMap::new();
        for w in r.sequence.windows(32).step_by(16) {
            *counts.entry(w).or_default() += 1;
        }
        assert!(counts.values().any(|&c| c > 1));
    }

    #[test]
    fn to_packed_round_trips_definite_bases() {
        let r = Reference::from_ascii("t", b"ACGTACGTAC");
        assert_eq!(r.to_packed().to_ascii(), r.sequence);
    }

    #[test]
    fn fasta_round_trip() {
        let r = ReferenceBuilder::new(1000).seed(1).build();
        let rec = r.to_fasta();
        let back = Reference::from_fasta(&rec);
        assert_eq!(back, r);
    }
}
