//! Dataset-profile generators reproducing the paper's evaluation sets.
//!
//! The accuracy and throughput experiments of the paper run on twelve pair sets
//! ("Set 1" … "Set 12", Sup. Table S.1) seeded by mrFAST from 1000-Genomes reads at
//! three read lengths (100/150/250 bp), plus candidate sets extracted from Minimap2
//! and BWA-MEM. What matters for every reported number is the *edit-distance
//! profile* of the pair population (how many pairs lie below each threshold) and
//! the number of *undefined* (`N`-containing) pairs — not the literal genomic
//! sequences. This module therefore generates synthetic pair sets whose edit
//! profiles mimic each paper dataset:
//!
//! * low-edit profiles (Sets 1, 5, 9): candidates seeded with a small mapper
//!   threshold, so a meaningful fraction of pairs is within a few edits while the
//!   bulk is moderately divergent;
//! * high-edit profiles (Sets 4, 8, 12): candidates seeded with a huge threshold,
//!   so nearly everything is highly divergent;
//! * mapper-like profiles (Minimap2 / BWA-MEM): chaining/extension candidates with
//!   a higher fraction of near-matches.
//!
//! Generation is deterministic for a given seed, so tables regenerate identically.

use crate::pairs::{PairSet, SequencePair};
use crate::simulate::mutate_with_edits;
use crate::stream::PairBatches;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Distribution of planted edit counts across a pair population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EditDistribution {
    /// Every pair receives exactly this many edits.
    Constant(usize),
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Lower bound (inclusive).
        lo: usize,
        /// Upper bound (inclusive).
        hi: usize,
    },
    /// Geometric-like decay: `P(k) ∝ (1 - p)^k` truncated at `max`.
    Geometric {
        /// Success probability (larger means edits concentrate near zero).
        p: f64,
        /// Truncation bound.
        max: usize,
    },
    /// Weighted mixture of component distributions.
    Mixture(Vec<(f64, EditDistribution)>),
}

impl EditDistribution {
    /// Samples one edit count.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        match self {
            EditDistribution::Constant(k) => *k,
            EditDistribution::Uniform { lo, hi } => {
                if lo >= hi {
                    *lo
                } else {
                    rng.gen_range(*lo..=*hi)
                }
            }
            EditDistribution::Geometric { p, max } => {
                let p = p.clamp(1e-6, 1.0 - 1e-6);
                let mut k = 0usize;
                while k < *max && !rng.gen_bool(p) {
                    k += 1;
                }
                k
            }
            EditDistribution::Mixture(components) => {
                let total: f64 = components.iter().map(|(w, _)| w).sum();
                let mut roll = rng.gen::<f64>() * total;
                for (w, dist) in components {
                    if roll < *w {
                        return dist.sample(rng);
                    }
                    roll -= w;
                }
                components.last().map(|(_, d)| d.sample(rng)).unwrap_or(0)
            }
        }
    }
}

/// Full description of a synthetic dataset mirroring one of the paper's sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset name (e.g. `"Set 3"`).
    pub name: String,
    /// Read length in bases.
    pub read_len: usize,
    /// Fraction of pairs that contain an `N` base (the paper's "undefined pairs").
    pub undefined_fraction: f64,
    /// Distribution of planted edit counts.
    pub edit_distribution: EditDistribution,
    /// Fraction of planted edits that are indels rather than substitutions.
    pub indel_fraction: f64,
}

impl DatasetProfile {
    /// Generic low-edit candidate profile for a given read length: a visible mass of
    /// near-matches (the mapper seeded with a small threshold) on top of a broad
    /// divergent background.
    pub fn low_edit(read_len: usize) -> DatasetProfile {
        DatasetProfile {
            name: format!("low-edit {read_len}bp"),
            read_len,
            undefined_fraction: 0.001,
            edit_distribution: EditDistribution::Mixture(vec![
                (0.004, EditDistribution::Constant(0)),
                (
                    0.06,
                    EditDistribution::Geometric {
                        p: 0.35,
                        max: read_len / 10 + 2,
                    },
                ),
                (
                    0.936,
                    EditDistribution::Uniform {
                        lo: read_len / 25 + 1,
                        hi: read_len / 3,
                    },
                ),
            ]),
            indel_fraction: 0.25,
        }
    }

    /// Generic high-edit candidate profile: nearly every pair is far beyond any
    /// usable threshold (mapper seeded with a huge threshold such as e = 40 for
    /// 100 bp reads).
    pub fn high_edit(read_len: usize) -> DatasetProfile {
        DatasetProfile {
            name: format!("high-edit {read_len}bp"),
            read_len,
            undefined_fraction: 0.001,
            edit_distribution: EditDistribution::Mixture(vec![
                (0.0005, EditDistribution::Constant(0)),
                (
                    0.01,
                    EditDistribution::Uniform {
                        lo: 1,
                        hi: read_len / 10,
                    },
                ),
                (
                    0.9895,
                    EditDistribution::Uniform {
                        lo: read_len / 8,
                        hi: read_len / 2,
                    },
                ),
            ]),
            indel_fraction: 0.3,
        }
    }

    /// Set 1 of the paper: 100 bp, mrFAST e = 2, low-edit profile, 28,009 undefined
    /// pairs out of 30 M (≈ 0.093%).
    pub fn set1() -> DatasetProfile {
        let mut p = Self::low_edit(100);
        p.name = "Set 1".into();
        p.undefined_fraction = 28_009.0 / 30_000_000.0;
        p
    }

    /// Set 3: 100 bp, mrFAST e = 5 (throughput + accuracy-vs-Edlib set).
    pub fn set3() -> DatasetProfile {
        let mut p = Self::low_edit(100);
        p.name = "Set 3".into();
        p.undefined_fraction = 92_414.0 / 30_000_000.0;
        p
    }

    /// Set 4: 100 bp, mrFAST e = 40, high-edit profile.
    pub fn set4() -> DatasetProfile {
        let mut p = Self::high_edit(100);
        p.name = "Set 4".into();
        p.undefined_fraction = 31_487.0 / 30_000_000.0;
        p
    }

    /// Set 5: 150 bp, mrFAST e = 4, low-edit profile.
    pub fn set5() -> DatasetProfile {
        let mut p = Self::low_edit(150);
        p.name = "Set 5".into();
        p.undefined_fraction = 30_142.0 / 30_000_000.0;
        p
    }

    /// Set 6: 150 bp, mrFAST e = 6 (accuracy-vs-Edlib set).
    pub fn set6() -> DatasetProfile {
        let mut p = Self::low_edit(150);
        p.name = "Set 6".into();
        p.undefined_fraction = 15_141.0 / 30_000_000.0;
        p
    }

    /// Set 7: 150 bp, mrFAST e = 10, high-edit profile (throughput set).
    pub fn set7() -> DatasetProfile {
        let mut p = Self::high_edit(150);
        p.name = "Set 7".into();
        p.undefined_fraction = 329.0 / 30_000_000.0;
        p
    }

    /// Set 8: 150 bp, mrFAST e = 70, high-edit profile.
    pub fn set8() -> DatasetProfile {
        let mut p = Self::high_edit(150);
        p.name = "Set 8".into();
        p.undefined_fraction = 309.0 / 30_000_000.0;
        p
    }

    /// Set 9: 250 bp, mrFAST e = 8, low-edit profile.
    pub fn set9() -> DatasetProfile {
        let mut p = Self::low_edit(250);
        p.name = "Set 9".into();
        p.undefined_fraction = 35_072.0 / 30_000_000.0;
        p
    }

    /// Set 10: 250 bp, mrFAST e = 12 (accuracy-vs-Edlib set).
    pub fn set10() -> DatasetProfile {
        let mut p = Self::low_edit(250);
        p.name = "Set 10".into();
        p.undefined_fraction = 379_292.0 / 30_000_000.0;
        p
    }

    /// Set 11: 250 bp, mrFAST e = 15, high-edit profile (throughput set).
    pub fn set11() -> DatasetProfile {
        let mut p = Self::high_edit(250);
        p.name = "Set 11".into();
        p.undefined_fraction = 1_273_260.0 / 30_000_000.0;
        p
    }

    /// Set 12: 250 bp, mrFAST e = 100, high-edit profile.
    pub fn set12() -> DatasetProfile {
        let mut p = Self::high_edit(250);
        p.name = "Set 12".into();
        p.undefined_fraction = 4_763_682.0 / 30_000_000.0;
        p
    }

    /// Minimap2-like candidate profile (pairs extracted before the first chaining
    /// DP): a larger fraction of true near-matches than mrFAST's exhaustive seeding.
    pub fn minimap2_like() -> DatasetProfile {
        DatasetProfile {
            name: "Minimap2 candidates".into(),
            read_len: 100,
            undefined_fraction: 26_759.0 / 30_000_000.0,
            edit_distribution: EditDistribution::Mixture(vec![
                (0.027, EditDistribution::Constant(0)),
                (0.07, EditDistribution::Geometric { p: 0.25, max: 12 }),
                (0.903, EditDistribution::Uniform { lo: 5, hi: 35 }),
            ]),
            indel_fraction: 0.25,
        }
    }

    /// BWA-MEM-like candidate profile (pairs extracted before the final global
    /// alignment): small sets dominated by true matches.
    pub fn bwa_mem_like() -> DatasetProfile {
        DatasetProfile {
            name: "BWA-MEM candidates".into(),
            read_len: 100,
            undefined_fraction: 0.0,
            edit_distribution: EditDistribution::Mixture(vec![
                (0.6, EditDistribution::Geometric { p: 0.5, max: 10 }),
                (0.4, EditDistribution::Uniform { lo: 3, hi: 25 }),
            ]),
            indel_fraction: 0.2,
        }
    }

    /// Generates the next pair of an RNG-driven sequence. Consuming pairs one by
    /// one from the same seeded RNG is exactly what [`DatasetProfile::generate`]
    /// does internally, which is why the streaming source in [`crate::stream`]
    /// yields byte-identical pairs without materializing the whole set.
    pub fn generate_pair(&self, rng: &mut StdRng) -> SequencePair {
        let reference: Vec<u8> = (0..self.read_len)
            .map(|_| b"ACGT"[rng.gen_range(0..4)])
            .collect();
        let edits = self.edit_distribution.sample(rng);
        let mut read = mutate_with_edits(&reference, edits, self.indel_fraction, rng);
        if rng.gen_bool(self.undefined_fraction.clamp(0.0, 1.0)) {
            let pos = rng.gen_range(0..read.len().max(1));
            read[pos] = b'N';
        }
        SequencePair::new(read, reference)
    }

    /// Generates `count` pairs under this profile. Deterministic for a given seed.
    pub fn generate(&self, count: usize, seed: u64) -> PairSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(count);
        for _ in 0..count {
            pairs.push(self.generate_pair(&mut rng));
        }
        PairSet::new(self.name.clone(), self.read_len, pairs)
    }

    /// Streams `count` pairs in batches of `batch_pairs` without ever holding
    /// more than one batch in memory; concatenating the batches reproduces
    /// [`DatasetProfile::generate`] with the same seed byte for byte.
    pub fn stream_batches(&self, count: usize, seed: u64, batch_pairs: usize) -> PairBatches {
        PairBatches::new(self.clone(), count, seed, batch_pairs)
    }
}

/// Convenience listing of every "Set N" profile in paper order.
pub fn all_paper_sets() -> Vec<DatasetProfile> {
    vec![
        DatasetProfile::set1(),
        DatasetProfile::set3(),
        DatasetProfile::set4(),
        DatasetProfile::set5(),
        DatasetProfile::set6(),
        DatasetProfile::set7(),
        DatasetProfile::set8(),
        DatasetProfile::set9(),
        DatasetProfile::set10(),
        DatasetProfile::set11(),
        DatasetProfile::set12(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let profile = DatasetProfile::set1();
        let a = profile.generate(500, 42);
        let b = profile.generate(500, 42);
        let c = profile.generate(500, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_pairs_have_requested_read_length() {
        for profile in [
            DatasetProfile::set3(),
            DatasetProfile::set7(),
            DatasetProfile::set11(),
        ] {
            let set = profile.generate(200, 1);
            assert_eq!(set.len(), 200);
            assert!(set.pairs.iter().all(|p| p.read.len() == profile.read_len));
            assert!(set
                .pairs
                .iter()
                .all(|p| p.reference.len() == profile.read_len));
        }
    }

    #[test]
    fn low_edit_profile_has_more_near_matches_than_high_edit() {
        let low = DatasetProfile::low_edit(100).generate(3_000, 7);
        let high = DatasetProfile::high_edit(100).generate(3_000, 7);
        let near = |set: &PairSet| {
            set.pairs
                .iter()
                .filter(|p| {
                    p.read
                        .iter()
                        .zip(p.reference.iter())
                        .filter(|(a, b)| a != b)
                        .count()
                        <= 5
                })
                .count()
        };
        assert!(near(&low) > near(&high));
    }

    #[test]
    fn undefined_fraction_is_roughly_respected() {
        let mut profile = DatasetProfile::low_edit(100);
        profile.undefined_fraction = 0.05;
        let set = profile.generate(5_000, 3);
        let undefined = set.undefined_count();
        assert!(
            undefined > 100 && undefined < 500,
            "undefined = {undefined}"
        );
    }

    #[test]
    fn zero_undefined_fraction_gives_no_undefined_pairs() {
        let mut profile = DatasetProfile::high_edit(150);
        profile.undefined_fraction = 0.0;
        assert_eq!(profile.generate(1_000, 4).undefined_count(), 0);
    }

    #[test]
    fn geometric_distribution_is_truncated() {
        let dist = EditDistribution::Geometric { p: 0.01, max: 5 };
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            assert!(dist.sample(&mut rng) <= 5);
        }
    }

    #[test]
    fn uniform_distribution_respects_bounds() {
        let dist = EditDistribution::Uniform { lo: 3, hi: 7 };
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..200 {
            let k = dist.sample(&mut rng);
            assert!((3..=7).contains(&k));
        }
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let dist = EditDistribution::Uniform { lo: 4, hi: 4 };
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(dist.sample(&mut rng), 4);
    }

    #[test]
    fn mixture_samples_from_components() {
        let dist = EditDistribution::Mixture(vec![
            (0.5, EditDistribution::Constant(1)),
            (0.5, EditDistribution::Constant(9)),
        ]);
        let mut rng = StdRng::seed_from_u64(12);
        let samples: Vec<usize> = (0..300).map(|_| dist.sample(&mut rng)).collect();
        assert!(samples.contains(&1));
        assert!(samples.contains(&9));
        assert!(samples.iter().all(|&k| k == 1 || k == 9));
    }

    #[test]
    fn all_paper_sets_have_expected_read_lengths() {
        let sets = all_paper_sets();
        assert_eq!(sets.len(), 11);
        let lens: Vec<usize> = sets.iter().map(|p| p.read_len).collect();
        assert_eq!(lens.iter().filter(|&&l| l == 100).count(), 3);
        assert_eq!(lens.iter().filter(|&&l| l == 150).count(), 4);
        assert_eq!(lens.iter().filter(|&&l| l == 250).count(), 4);
    }

    #[test]
    fn mapper_like_profiles_generate() {
        assert_eq!(DatasetProfile::minimap2_like().generate(100, 5).len(), 100);
        assert_eq!(DatasetProfile::bwa_mem_like().generate(100, 5).len(), 100);
    }
}
