//! (read, candidate reference segment) pairs — the unit of work of a pre-alignment
//! filter.
//!
//! Every filtering, accuracy and throughput experiment in the paper operates on
//! sets of 30 million such pairs seeded by mrFAST (or extracted from Minimap2 /
//! BWA-MEM just before their first dynamic-programming step, §4.1). [`SequencePair`]
//! is one pair; [`PairSet`] is a named collection with the bookkeeping the
//! experiments need (read length, undefined-pair counting, batching).

use crate::alphabet::has_undefined;
use crate::packed::PackedSeq;
use serde::{Deserialize, Serialize};

/// A read and the candidate reference segment it may align to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequencePair {
    /// The read sequence (ASCII).
    pub read: Vec<u8>,
    /// The candidate reference segment (ASCII), normally the same length as the read.
    pub reference: Vec<u8>,
}

impl SequencePair {
    /// Creates a pair from ASCII sequences.
    pub fn new(read: impl Into<Vec<u8>>, reference: impl Into<Vec<u8>>) -> SequencePair {
        SequencePair {
            read: read.into(),
            reference: reference.into(),
        }
    }

    /// Read length in bases.
    pub fn read_len(&self) -> usize {
        self.read.len()
    }

    /// True if either sequence contains a base outside `ACGT` (an *undefined* pair,
    /// which GateKeeper-GPU passes through the filter without examining, §3.3).
    pub fn is_undefined(&self) -> bool {
        has_undefined(&self.read) || has_undefined(&self.reference)
    }

    /// Packs both sequences into the 2-bit device representation.
    pub fn packed(&self) -> (PackedSeq, PackedSeq) {
        (
            PackedSeq::from_ascii(&self.read),
            PackedSeq::from_ascii(&self.reference),
        )
    }
}

/// A named collection of sequence pairs, as used by the accuracy and throughput
/// experiments (the paper's "Set 1" … "Set 12").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairSet {
    /// Human-readable dataset name.
    pub name: String,
    /// Read length of the pairs in the set.
    pub read_len: usize,
    /// The pairs themselves.
    pub pairs: Vec<SequencePair>,
}

impl PairSet {
    /// Creates a pair set, asserting that all reads share `read_len`.
    pub fn new(name: impl Into<String>, read_len: usize, pairs: Vec<SequencePair>) -> PairSet {
        PairSet {
            name: name.into(),
            read_len,
            pairs,
        }
    }

    /// Number of pairs in the set.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the set holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of undefined pairs (pairs containing an `N`), the quantity the paper
    /// reports per dataset in Sup. Table S.1.
    pub fn undefined_count(&self) -> usize {
        self.pairs.iter().filter(|p| p.is_undefined()).count()
    }

    /// Splits the set into batches of at most `batch_size` pairs, preserving order.
    /// This mirrors the batched kernel launches of GateKeeper-GPU (§3.1).
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = &[SequencePair]> {
        let batch_size = batch_size.max(1);
        self.pairs.chunks(batch_size)
    }

    /// Appends another set's pairs (read lengths must match).
    pub fn extend_from(&mut self, other: &PairSet) {
        assert_eq!(
            self.read_len, other.read_len,
            "cannot merge pair sets with different read lengths"
        );
        self.pairs.extend(other.pairs.iter().cloned());
    }

    /// Borrow the pairs as parallel slices of (read, reference) for bulk encoding.
    pub fn as_slices(&self) -> (Vec<&[u8]>, Vec<&[u8]>) {
        let reads = self.pairs.iter().map(|p| p.read.as_slice()).collect();
        let refs = self.pairs.iter().map(|p| p.reference.as_slice()).collect();
        (reads, refs)
    }
}

/// Packs every pair into the 2-bit device representation, fanning the batch
/// out across the thread pool. This is the host-side encoding stage shared by
/// the GPU system (host-encoding actor, §3.3) and the multicore CPU baseline;
/// output order matches input order exactly, so results are identical to a
/// sequential `pairs.iter().map(|p| p.packed())` pass.
pub fn encode_pair_batch(pairs: &[SequencePair]) -> Vec<(PackedSeq, PackedSeq)> {
    use rayon::prelude::*;
    pairs.par_iter().map(|p| p.packed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(read: &[u8], reference: &[u8]) -> SequencePair {
        SequencePair::new(read.to_vec(), reference.to_vec())
    }

    #[test]
    fn undefined_detection_checks_both_sides() {
        assert!(pair(b"ACGN", b"ACGT").is_undefined());
        assert!(pair(b"ACGT", b"NCGT").is_undefined());
        assert!(!pair(b"ACGT", b"ACGT").is_undefined());
    }

    #[test]
    fn packed_round_trips() {
        let p = pair(b"ACGTACGT", b"TGCATGCA");
        let (r, s) = p.packed();
        assert_eq!(r.to_ascii(), p.read);
        assert_eq!(s.to_ascii(), p.reference);
    }

    #[test]
    fn undefined_count_matches_manual_count() {
        let set = PairSet::new(
            "test",
            4,
            vec![
                pair(b"ACGT", b"ACGT"),
                pair(b"ACGN", b"ACGT"),
                pair(b"ACGT", b"NNNN"),
            ],
        );
        assert_eq!(set.undefined_count(), 2);
    }

    #[test]
    fn batches_cover_all_pairs_in_order() {
        let pairs: Vec<SequencePair> = (0..10)
            .map(|i| pair(&[b"ACGT"[i % 4]; 4], b"ACGT"))
            .collect();
        let set = PairSet::new("test", 4, pairs.clone());
        let collected: Vec<SequencePair> = set.batches(3).flatten().cloned().collect();
        assert_eq!(collected, pairs);
        assert_eq!(set.batches(3).count(), 4);
        assert_eq!(set.batches(100).count(), 1);
    }

    #[test]
    fn batches_with_zero_size_does_not_panic() {
        let set = PairSet::new("test", 4, vec![pair(b"ACGT", b"ACGT")]);
        assert_eq!(set.batches(0).count(), 1);
    }

    #[test]
    fn extend_from_merges_pairs() {
        let mut a = PairSet::new("a", 4, vec![pair(b"ACGT", b"ACGT")]);
        let b = PairSet::new("b", 4, vec![pair(b"TTTT", b"AAAA")]);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different read lengths")]
    fn extend_from_rejects_mismatched_lengths() {
        let mut a = PairSet::new("a", 4, vec![]);
        let b = PairSet::new("b", 8, vec![]);
        a.extend_from(&b);
    }

    #[test]
    fn as_slices_preserves_order() {
        let set = PairSet::new(
            "test",
            4,
            vec![pair(b"AAAA", b"CCCC"), pair(b"GGGG", b"TTTT")],
        );
        let (reads, refs) = set.as_slices();
        assert_eq!(reads, vec![b"AAAA".as_slice(), b"GGGG".as_slice()]);
        assert_eq!(refs, vec![b"CCCC".as_slice(), b"TTTT".as_slice()]);
    }
}
