//! (read, candidate reference segment) pairs — the unit of work of a pre-alignment
//! filter.
//!
//! Every filtering, accuracy and throughput experiment in the paper operates on
//! sets of 30 million such pairs seeded by mrFAST (or extracted from Minimap2 /
//! BWA-MEM just before their first dynamic-programming step, §4.1). [`SequencePair`]
//! is one pair; [`PairSet`] is a named collection with the bookkeeping the
//! experiments need (read length, undefined-pair counting, batching).

use crate::alphabet::has_undefined;
use crate::packed::PackedSeq;
use serde::{Deserialize, Serialize};

/// Number of sequences processed lane-parallel by one struct-of-arrays group
/// (four 64-bit lanes = one 256-bit SIMD-style vector).
pub const SOA_LANES: usize = 4;

/// Bases carried per 64-bit word in the struct-of-arrays layout (2 bits/base).
pub const SOA_BASES_PER_WORD: usize = 32;

/// A read and the candidate reference segment it may align to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequencePair {
    /// The read sequence (ASCII).
    pub read: Vec<u8>,
    /// The candidate reference segment (ASCII), normally the same length as the read.
    pub reference: Vec<u8>,
}

impl SequencePair {
    /// Creates a pair from ASCII sequences.
    pub fn new(read: impl Into<Vec<u8>>, reference: impl Into<Vec<u8>>) -> SequencePair {
        SequencePair {
            read: read.into(),
            reference: reference.into(),
        }
    }

    /// Read length in bases.
    pub fn read_len(&self) -> usize {
        self.read.len()
    }

    /// True if either sequence contains a base outside `ACGT` (an *undefined* pair,
    /// which GateKeeper-GPU passes through the filter without examining, §3.3).
    pub fn is_undefined(&self) -> bool {
        has_undefined(&self.read) || has_undefined(&self.reference)
    }

    /// Packs both sequences into the 2-bit device representation.
    pub fn packed(&self) -> (PackedSeq, PackedSeq) {
        (
            PackedSeq::from_ascii(&self.read),
            PackedSeq::from_ascii(&self.reference),
        )
    }
}

/// A named collection of sequence pairs, as used by the accuracy and throughput
/// experiments (the paper's "Set 1" … "Set 12").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairSet {
    /// Human-readable dataset name.
    pub name: String,
    /// Read length of the pairs in the set.
    pub read_len: usize,
    /// The pairs themselves.
    pub pairs: Vec<SequencePair>,
}

impl PairSet {
    /// Creates a pair set, asserting that all reads share `read_len`.
    pub fn new(name: impl Into<String>, read_len: usize, pairs: Vec<SequencePair>) -> PairSet {
        PairSet {
            name: name.into(),
            read_len,
            pairs,
        }
    }

    /// Number of pairs in the set.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the set holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of undefined pairs (pairs containing an `N`), the quantity the paper
    /// reports per dataset in Sup. Table S.1.
    pub fn undefined_count(&self) -> usize {
        self.pairs.iter().filter(|p| p.is_undefined()).count()
    }

    /// Splits the set into batches of at most `batch_size` pairs, preserving order.
    /// This mirrors the batched kernel launches of GateKeeper-GPU (§3.1).
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = &[SequencePair]> {
        let batch_size = batch_size.max(1);
        self.pairs.chunks(batch_size)
    }

    /// Appends another set's pairs (read lengths must match).
    pub fn extend_from(&mut self, other: &PairSet) {
        assert_eq!(
            self.read_len, other.read_len,
            "cannot merge pair sets with different read lengths"
        );
        self.pairs.extend(other.pairs.iter().cloned());
    }

    /// Borrow the pairs as parallel slices of (read, reference) for bulk encoding.
    pub fn as_slices(&self) -> (Vec<&[u8]>, Vec<&[u8]>) {
        let reads = self.pairs.iter().map(|p| p.read.as_slice()).collect();
        let refs = self.pairs.iter().map(|p| p.reference.as_slice()).collect();
        (reads, refs)
    }
}

/// Struct-of-arrays transpose of up to [`SOA_LANES`] equal-length, fully
/// defined (ACGT-only) pairs, laid out for lane-parallel filtering.
///
/// Row `w` holds the `w`-th 2-bit word of **every** lane's sequence:
/// `read_words[w][lane]` is word `w` of read `lane`. Within a word the layout
/// is LSB-first — base `i` of a sequence sits at bit pair `2·(i % 32)` of word
/// `i / 32` — so a shift of the sequence towards higher base positions is a
/// plain left shift of the bit string, lane-wise, with carry between rows.
///
/// The 2-bit code is derived directly from ASCII as `(byte >> 1) & 3`
/// (`A=00, C=01, T=10, G=11`, case-insensitive). This differs from the
/// [`PackedSeq`] code assignment, but any injective recoding of `ACGT`
/// preserves the per-base mismatch structure — and both codings encode `A`
/// as `00`, so the zeros vacated by shifts compare exactly like the `A`s
/// vacated in the word-at-a-time path. Filter decisions are therefore
/// byte-identical to the [`PackedSeq`] pipeline.
///
/// One spare all-zero row is kept past the last sequence word, and all bits
/// beyond `2·len` are zero: the lane kernels rely on clean padding for their
/// carry-propagating shifts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoaGroup {
    /// Uniform sequence length (bases) of every lane, > 0.
    pub len: usize,
    /// Number of active lanes (1..=[`SOA_LANES`]); results of inactive lanes
    /// are meaningless and must be ignored.
    pub lanes: usize,
    /// SoA read words: `len.div_ceil(32) + 1` rows (last row is the zero spare).
    pub read_words: Vec<[u64; SOA_LANES]>,
    /// SoA reference words, same shape as `read_words`.
    pub ref_words: Vec<[u64; SOA_LANES]>,
}

impl SoaGroup {
    /// Transposes up to [`SOA_LANES`] pairs into the lane layout.
    ///
    /// Returns `None` when the group is not lane-eligible: empty, more pairs
    /// than lanes, any sequence length differing from the first read's, a zero
    /// length, or any base outside `ACGT`/`acgt` (undefined pairs keep their
    /// scalar undefined-pass handling).
    pub fn encode(pairs: &[&SequencePair]) -> Option<SoaGroup> {
        let slices: Vec<(&[u8], &[u8])> = pairs
            .iter()
            .map(|p| (p.read.as_slice(), p.reference.as_slice()))
            .collect();
        SoaGroup::encode_slices(&slices)
    }

    /// [`SoaGroup::encode`] over raw ASCII `(read, reference)` slices.
    pub fn encode_slices(pairs: &[(&[u8], &[u8])]) -> Option<SoaGroup> {
        let mut group = SoaGroup::scratch();
        group.encode_slices_into(pairs).then_some(group)
    }

    /// An empty placeholder group for buffer reuse with
    /// [`SoaGroup::encode_slices_into`]. Not a valid group (`len == 0`,
    /// `lanes == 0`) until an encode into it succeeds.
    pub fn scratch() -> SoaGroup {
        SoaGroup {
            len: 0,
            lanes: 0,
            read_words: Vec::new(),
            ref_words: Vec::new(),
        }
    }

    /// Re-encodes `pairs` into `self`, reusing its row buffers — the hot-loop
    /// twin of [`SoaGroup::encode_slices`] (block drivers encode one group per
    /// four pairs; reuse keeps that off the allocator). Eligibility is
    /// identical; returns `false` — leaving `self` unspecified — when the
    /// group is not lane-eligible.
    pub fn encode_slices_into(&mut self, pairs: &[(&[u8], &[u8])]) -> bool {
        let lanes = pairs.len();
        if lanes == 0 || lanes > SOA_LANES {
            return false;
        }
        let len = pairs[0].0.len();
        if len == 0 {
            return false;
        }
        for (read, reference) in pairs {
            if read.len() != len || reference.len() != len {
                return false;
            }
            if has_undefined(read) || has_undefined(reference) {
                return false;
            }
        }
        let rows = len.div_ceil(SOA_BASES_PER_WORD) + 1;
        self.len = len;
        self.lanes = lanes;
        self.read_words.clear();
        self.read_words.resize(rows, [0u64; SOA_LANES]);
        self.ref_words.clear();
        self.ref_words.resize(rows, [0u64; SOA_LANES]);
        for (lane, (read, reference)) in pairs.iter().enumerate() {
            pack_ascii_lane(read, lane, &mut self.read_words);
            pack_ascii_lane(reference, lane, &mut self.ref_words);
        }
        true
    }

    /// Transposes up to [`SOA_LANES`] already-packed pairs into the lane
    /// layout, reversing each `u32`'s MSB-first 2-bit fields into the
    /// LSB-first lane order. Eligibility mirrors [`SoaGroup::encode`]:
    /// uniform nonzero length and no undefined sequences.
    pub fn from_packed(pairs: &[(&PackedSeq, &PackedSeq)]) -> Option<SoaGroup> {
        let lanes = pairs.len();
        if lanes == 0 || lanes > SOA_LANES {
            return None;
        }
        let len = pairs[0].0.len();
        if len == 0 {
            return None;
        }
        for (read, reference) in pairs {
            if read.len() != len || reference.len() != len {
                return None;
            }
            if read.is_undefined() || reference.is_undefined() {
                return None;
            }
        }
        let rows = len.div_ceil(SOA_BASES_PER_WORD) + 1;
        let mut read_words = vec![[0u64; SOA_LANES]; rows];
        let mut ref_words = vec![[0u64; SOA_LANES]; rows];
        for (lane, (read, reference)) in pairs.iter().enumerate() {
            pack_words_lane(read.words(), lane, &mut read_words);
            pack_words_lane(reference.words(), lane, &mut ref_words);
        }
        Some(SoaGroup {
            len,
            lanes,
            read_words,
            ref_words,
        })
    }

    /// Number of meaningful (non-spare) 64-bit words per sequence.
    pub fn words_per_sequence(&self) -> usize {
        self.len.div_ceil(SOA_BASES_PER_WORD)
    }
}

/// Compacts the 2-bit codes of eight ASCII bases (one little-endian `u64`
/// load) into sixteen LSB-first bits: extract bits 1–2 of every byte, then
/// fold the byte-stride fields down to 2-bit stride in three halving steps.
#[inline]
fn pack8_ascii(bytes: u64) -> u64 {
    let x = (bytes >> 1) & 0x0303_0303_0303_0303;
    let x = (x | (x >> 6)) & 0x000F_000F_000F_000F;
    let x = (x | (x >> 12)) & 0x0000_00FF_0000_00FF;
    (x | (x >> 24)) & 0xFFFF
}

/// Packs one ASCII sequence into lane `lane` of the SoA rows, eight bases per
/// step on the aligned body and byte-at-a-time on the tail.
fn pack_ascii_lane(seq: &[u8], lane: usize, rows: &mut [[u64; SOA_LANES]]) {
    for (row, chunk) in seq.chunks(SOA_BASES_PER_WORD).enumerate() {
        let mut word = 0u64;
        let mut eights = chunk.chunks_exact(8);
        for (i, eight) in eights.by_ref().enumerate() {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(eight);
            word |= pack8_ascii(u64::from_le_bytes(raw)) << (16 * i);
        }
        let packed = chunk.len() / 8 * 8;
        for (i, &b) in eights.remainder().iter().enumerate() {
            word |= u64::from((b >> 1) & 3) << (2 * (packed + i));
        }
        rows[row][lane] = word;
    }
}

/// Packs one [`PackedSeq`] word array into lane `lane` of the SoA rows: each
/// MSB-first `u32` (16 bases) has its 2-bit fields order-reversed, and two
/// reversed `u32`s form one LSB-first `u64` row entry.
fn pack_words_lane(words: &[u32], lane: usize, rows: &mut [[u64; SOA_LANES]]) {
    for (w, &word) in words.iter().enumerate() {
        let reversed = u64::from(reverse_base_fields(word));
        rows[w / 2][lane] |= reversed << (32 * (w % 2));
    }
}

/// Reverses the order of the sixteen 2-bit fields of a `u32` (base slot `s`
/// moves from bit pair `(15 − s)·2` to bit pair `s·2`) without altering the
/// bits inside each field.
#[inline]
fn reverse_base_fields(v: u32) -> u32 {
    let v = ((v >> 2) & 0x3333_3333) | ((v & 0x3333_3333) << 2);
    let v = ((v >> 4) & 0x0F0F_0F0F) | ((v & 0x0F0F_0F0F) << 4);
    let v = ((v >> 8) & 0x00FF_00FF) | ((v & 0x00FF_00FF) << 8);
    v.rotate_left(16)
}

/// Packs every pair into the 2-bit device representation, fanning the batch
/// out across the thread pool. This is the host-side encoding stage shared by
/// the GPU system (host-encoding actor, §3.3) and the multicore CPU baseline;
/// output order matches input order exactly, so results are identical to a
/// sequential `pairs.iter().map(|p| p.packed())` pass.
pub fn encode_pair_batch(pairs: &[SequencePair]) -> Vec<(PackedSeq, PackedSeq)> {
    use rayon::prelude::*;
    pairs.par_iter().map(|p| p.packed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(read: &[u8], reference: &[u8]) -> SequencePair {
        SequencePair::new(read.to_vec(), reference.to_vec())
    }

    #[test]
    fn undefined_detection_checks_both_sides() {
        assert!(pair(b"ACGN", b"ACGT").is_undefined());
        assert!(pair(b"ACGT", b"NCGT").is_undefined());
        assert!(!pair(b"ACGT", b"ACGT").is_undefined());
    }

    #[test]
    fn packed_round_trips() {
        let p = pair(b"ACGTACGT", b"TGCATGCA");
        let (r, s) = p.packed();
        assert_eq!(r.to_ascii(), p.read);
        assert_eq!(s.to_ascii(), p.reference);
    }

    #[test]
    fn undefined_count_matches_manual_count() {
        let set = PairSet::new(
            "test",
            4,
            vec![
                pair(b"ACGT", b"ACGT"),
                pair(b"ACGN", b"ACGT"),
                pair(b"ACGT", b"NNNN"),
            ],
        );
        assert_eq!(set.undefined_count(), 2);
    }

    #[test]
    fn batches_cover_all_pairs_in_order() {
        let pairs: Vec<SequencePair> = (0..10)
            .map(|i| pair(&[b"ACGT"[i % 4]; 4], b"ACGT"))
            .collect();
        let set = PairSet::new("test", 4, pairs.clone());
        let collected: Vec<SequencePair> = set.batches(3).flatten().cloned().collect();
        assert_eq!(collected, pairs);
        assert_eq!(set.batches(3).count(), 4);
        assert_eq!(set.batches(100).count(), 1);
    }

    #[test]
    fn batches_with_zero_size_does_not_panic() {
        let set = PairSet::new("test", 4, vec![pair(b"ACGT", b"ACGT")]);
        assert_eq!(set.batches(0).count(), 1);
    }

    #[test]
    fn extend_from_merges_pairs() {
        let mut a = PairSet::new("a", 4, vec![pair(b"ACGT", b"ACGT")]);
        let b = PairSet::new("b", 4, vec![pair(b"TTTT", b"AAAA")]);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different read lengths")]
    fn extend_from_rejects_mismatched_lengths() {
        let mut a = PairSet::new("a", 4, vec![]);
        let b = PairSet::new("b", 8, vec![]);
        a.extend_from(&b);
    }

    #[test]
    fn as_slices_preserves_order() {
        let set = PairSet::new(
            "test",
            4,
            vec![pair(b"AAAA", b"CCCC"), pair(b"GGGG", b"TTTT")],
        );
        let (reads, refs) = set.as_slices();
        assert_eq!(reads, vec![b"AAAA".as_slice(), b"GGGG".as_slice()]);
        assert_eq!(refs, vec![b"CCCC".as_slice(), b"TTTT".as_slice()]);
    }
}
