//! # gk-seq
//!
//! Sequence substrate for the GateKeeper-GPU reproduction.
//!
//! The paper's experiments run on Illumina short reads (50–300 bp) drawn from the
//! 1000 Genomes Project mapped against GRCh37, plus reads simulated with Mason.
//! None of that data can be bundled here, so this crate provides everything needed
//! to *synthesize* workloads with the same statistical shape:
//!
//! * [`alphabet`] — the DNA alphabet, 2-bit base codes (`A=00, C=01, G=10, T=11`,
//!   exactly the encoding of GateKeeper), complements and validation helpers.
//! * [`packed`] — [`packed::PackedSeq`], a 2-bit packed sequence stored in `u32`
//!   words (16 bases per word; a 100 bp read occupies 7 words as in §3.3 of the
//!   paper), with encode/decode, slicing and word-level access used by the filters.
//! * [`fasta`] / [`fastq`] — minimal, dependency-free FASTA/FASTQ readers and
//!   writers for interoperability with real data when available.
//! * [`mod@reference`] — synthetic reference-genome generator with controllable repeat
//!   structure (repeats are what make seeding produce many candidate locations).
//! * [`simulate`] — a Mason-like read simulator: samples reads from a reference and
//!   injects substitutions, insertions, deletions and unknown (`N`) bases according
//!   to a configurable [`simulate::ErrorProfile`].
//! * [`pairs`] — (read, candidate reference segment) pair containers used by the
//!   filtering and accuracy experiments.
//! * [`datasets`] — generators reproducing the *edit-distance profiles* of the
//!   paper's datasets (Set 1 … Set 12, the Minimap2 and BWA-MEM candidate sets),
//!   so that every accuracy table and figure can be regenerated without access to
//!   the original read archives.
//! * [`raw`] — the raw 1-byte-per-base transfer representation of the
//!   device-side encoding path: flat stride-addressed arenas with zero-copy
//!   pair-granular slicing, as a `cudaMemcpy` of unencoded reads would move.
//! * [`stream`] — streaming pair sources: deterministic iterators of (optionally
//!   2-bit encoded or raw-gathered) pair batches, so 30-million-pair runs never
//!   materialize a full set.
//! * [`frame`] — the length-prefixed binary wire format of the `gk-serve`
//!   filter service: request/cancel/response frames and the packed decision
//!   words clients receive.

#![warn(missing_docs)]

pub mod alphabet;
pub mod datasets;
pub mod fasta;
pub mod fastq;
pub mod frame;
pub mod packed;
pub mod pairs;
pub mod raw;
pub mod reference;
pub mod simulate;
pub mod stream;

pub use alphabet::{complement, decode_base, encode_base, is_valid_base, normalize_sequence, Base};
pub use packed::PackedSeq;
pub use pairs::{encode_pair_batch, PairSet, SequencePair};
pub use raw::{RawPairBatch, RawPairBatches, RawPairSlice};
pub use reference::{Reference, ReferenceBuilder};
pub use simulate::{ErrorProfile, ReadSimulator, SimulatedRead};
pub use stream::{EncodedPairBatches, PairBatches};
