//! Mason-like short-read simulation.
//!
//! The paper evaluates on reads simulated with Mason at several lengths and error
//! profiles ("sim set 1": 300 bp with a rich deletion profile, "sim set 2": 150 bp
//! with a low indel profile, Sup. Table S.1). [`ReadSimulator`] reproduces that
//! capability: it samples read positions from a [`Reference`], optionally from the
//! reverse strand, and injects substitutions, insertions, deletions and `N` calls
//! according to an [`ErrorProfile`]. Every simulated read remembers its origin so
//! mapper accuracy can be checked against the planted truth.
//!
//! The module also provides [`mutate_with_edits`], the primitive used by the
//! dataset generators to plant a *known number* of edits into a reference segment —
//! this is how the accuracy experiments control the edit-distance profile of each
//! pair population.

use crate::alphabet::complement;
use crate::fastq::FastqRecord;
use crate::reference::Reference;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-base error rates applied while simulating a read.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorProfile {
    /// Probability of substituting a base.
    pub substitution_rate: f64,
    /// Probability of inserting a random base before a position.
    pub insertion_rate: f64,
    /// Probability of deleting a base.
    pub deletion_rate: f64,
    /// Probability of replacing a base call with `N`.
    pub n_rate: f64,
}

impl ErrorProfile {
    /// Typical Illumina profile: ~0.1% substitutions, rare indels, rare `N`s.
    pub fn illumina() -> ErrorProfile {
        ErrorProfile {
            substitution_rate: 0.001,
            insertion_rate: 0.0001,
            deletion_rate: 0.0001,
            n_rate: 0.0005,
        }
    }

    /// "sim set 2" of the paper: low indel profile (mostly substitutions).
    pub fn low_indel() -> ErrorProfile {
        ErrorProfile {
            substitution_rate: 0.01,
            insertion_rate: 0.0002,
            deletion_rate: 0.0002,
            n_rate: 0.0,
        }
    }

    /// "sim set 1" of the paper: rich deletion profile.
    pub fn rich_deletion() -> ErrorProfile {
        ErrorProfile {
            substitution_rate: 0.005,
            insertion_rate: 0.001,
            deletion_rate: 0.02,
            n_rate: 0.0,
        }
    }

    /// Error-free reads (useful for exact-match experiments at e = 0).
    pub fn perfect() -> ErrorProfile {
        ErrorProfile {
            substitution_rate: 0.0,
            insertion_rate: 0.0,
            deletion_rate: 0.0,
            n_rate: 0.0,
        }
    }

    /// Expected number of edits for a read of `len` bases under this profile.
    pub fn expected_edits(&self, len: usize) -> f64 {
        (self.substitution_rate + self.insertion_rate + self.deletion_rate) * len as f64
    }
}

/// A simulated read together with its planted ground truth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulatedRead {
    /// Read identifier.
    pub id: String,
    /// Read sequence (ASCII).
    pub sequence: Vec<u8>,
    /// 0-based origin position on the forward strand of the reference.
    pub origin: usize,
    /// True if the read was sampled from the reverse strand.
    pub reverse_strand: bool,
    /// Number of substitutions injected.
    pub substitutions: u32,
    /// Number of insertions injected.
    pub insertions: u32,
    /// Number of deletions injected.
    pub deletions: u32,
    /// Number of `N` calls injected.
    pub n_calls: u32,
}

impl SimulatedRead {
    /// Total number of edits (substitutions + indels) planted into the read.
    pub fn planted_edits(&self) -> u32 {
        self.substitutions + self.insertions + self.deletions
    }

    /// Converts to a FASTQ record with uniform quality.
    pub fn to_fastq(&self) -> FastqRecord {
        FastqRecord::with_uniform_quality(self.id.clone(), self.sequence.clone())
    }
}

/// Deterministic, seedable read simulator over a reference.
#[derive(Debug, Clone)]
pub struct ReadSimulator {
    read_len: usize,
    profile: ErrorProfile,
    reverse_fraction: f64,
    seed: u64,
}

impl ReadSimulator {
    /// Creates a simulator producing reads of `read_len` bases under `profile`.
    pub fn new(read_len: usize, profile: ErrorProfile) -> ReadSimulator {
        ReadSimulator {
            read_len,
            profile,
            reverse_fraction: 0.5,
            seed: 0x5EED,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fraction of reads sampled from the reverse strand (default 0.5).
    pub fn reverse_fraction(mut self, fraction: f64) -> Self {
        self.reverse_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Read length this simulator produces.
    pub fn read_len(&self) -> usize {
        self.read_len
    }

    /// Simulates `count` reads from `reference`. Reads never start inside an `N`
    /// gap (origins overlapping gaps are re-drawn, as Mason does by rejecting
    /// windows with too many `N`s).
    pub fn simulate(&self, reference: &Reference, count: usize) -> Vec<SimulatedRead> {
        assert!(
            reference.len() > self.read_len + self.read_len / 4 + 1,
            "reference ({}) too short for {}bp reads",
            reference.len(),
            self.read_len
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut reads = Vec::with_capacity(count);
        // Sample a slightly longer window so deletions can still fill the read.
        let window = self.read_len + self.read_len / 4;
        let max_start = reference.len() - window;
        for i in 0..count {
            let mut origin = rng.gen_range(0..=max_start);
            let mut tries = 0;
            while reference.overlaps_n(origin, window) && tries < 64 {
                origin = rng.gen_range(0..=max_start);
                tries += 1;
            }
            let template = reference.segment(origin, window);
            let reverse = rng.gen_bool(self.reverse_fraction);
            let oriented: Vec<u8> = if reverse {
                template.iter().rev().map(|&b| complement(b)).collect()
            } else {
                template.to_vec()
            };
            let (sequence, stats) = apply_profile(&oriented, self.read_len, self.profile, &mut rng);
            reads.push(SimulatedRead {
                id: format!("simread_{i}"),
                sequence,
                origin,
                reverse_strand: reverse,
                substitutions: stats.0,
                insertions: stats.1,
                deletions: stats.2,
                n_calls: stats.3,
            });
        }
        reads
    }
}

/// Applies an error profile to `template`, producing a read of exactly `read_len`
/// bases (or shorter if the template runs out). Returns the read and the counts of
/// (substitutions, insertions, deletions, n_calls).
fn apply_profile(
    template: &[u8],
    read_len: usize,
    profile: ErrorProfile,
    rng: &mut StdRng,
) -> (Vec<u8>, (u32, u32, u32, u32)) {
    let mut out = Vec::with_capacity(read_len);
    let mut subs = 0;
    let mut ins = 0;
    let mut dels = 0;
    let mut ns = 0;
    let mut i = 0;
    while out.len() < read_len && i < template.len() {
        if rng.gen_bool(profile.insertion_rate) {
            out.push(b"ACGT"[rng.gen_range(0..4)]);
            ins += 1;
            continue;
        }
        if rng.gen_bool(profile.deletion_rate) {
            i += 1;
            dels += 1;
            continue;
        }
        let mut base = template[i];
        if rng.gen_bool(profile.substitution_rate) {
            let original = base;
            while base == original {
                base = b"ACGT"[rng.gen_range(0..4)];
            }
            subs += 1;
        }
        if rng.gen_bool(profile.n_rate) {
            base = b'N';
            ns += 1;
        }
        out.push(base);
        i += 1;
    }
    (out, (subs, ins, dels, ns))
}

/// Plants exactly `edits` edits (random mix of substitutions, insertions and
/// deletions, according to `indel_fraction`) into `segment`, returning a sequence
/// trimmed/padded back to the original length. The true edit distance of the result
/// is at most `edits` (random edits can cancel, so it is an upper bound — the
/// accuracy harness always re-measures the exact distance with `gk-align`).
pub fn mutate_with_edits(
    segment: &[u8],
    edits: usize,
    indel_fraction: f64,
    rng: &mut StdRng,
) -> Vec<u8> {
    let mut seq = segment.to_vec();
    for _ in 0..edits {
        if seq.is_empty() {
            break;
        }
        let pos = rng.gen_range(0..seq.len());
        let roll: f64 = rng.gen();
        if roll < indel_fraction / 2.0 {
            // insertion
            seq.insert(pos, b"ACGT"[rng.gen_range(0..4)]);
        } else if roll < indel_fraction {
            // deletion
            seq.remove(pos);
        } else {
            // substitution
            let original = seq[pos];
            let mut new = original;
            while new == original {
                new = b"ACGT"[rng.gen_range(0..4)];
            }
            seq[pos] = new;
        }
    }
    // Restore the original length so pairs stay comparable (mrFAST candidates are
    // read-length segments).
    match seq.len().cmp(&segment.len()) {
        std::cmp::Ordering::Less => {
            while seq.len() < segment.len() {
                seq.push(b"ACGT"[rng.gen_range(0..4)]);
            }
        }
        std::cmp::Ordering::Greater => seq.truncate(segment.len()),
        std::cmp::Ordering::Equal => {}
    }
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceBuilder;

    fn test_reference() -> Reference {
        ReferenceBuilder::new(100_000)
            .seed(42)
            .n_gaps(1, 300)
            .build()
    }

    #[test]
    fn simulates_requested_number_of_reads() {
        let reference = test_reference();
        let sim = ReadSimulator::new(100, ErrorProfile::illumina()).seed(1);
        let reads = sim.simulate(&reference, 250);
        assert_eq!(reads.len(), 250);
        assert!(reads.iter().all(|r| r.sequence.len() == 100));
    }

    #[test]
    fn perfect_profile_reproduces_reference_forward_reads() {
        let reference = test_reference();
        let sim = ReadSimulator::new(80, ErrorProfile::perfect())
            .seed(2)
            .reverse_fraction(0.0);
        let reads = sim.simulate(&reference, 50);
        for read in reads {
            assert_eq!(read.planted_edits(), 0);
            let segment = reference.segment(read.origin, 80);
            assert_eq!(read.sequence, segment);
        }
    }

    #[test]
    fn reverse_reads_are_reverse_complements_of_origin() {
        let reference = test_reference();
        let sim = ReadSimulator::new(60, ErrorProfile::perfect())
            .seed(3)
            .reverse_fraction(1.0);
        let reads = sim.simulate(&reference, 20);
        for read in reads {
            assert!(read.reverse_strand);
            let window = 60 + 60 / 4;
            let template = reference.segment(read.origin, window);
            let rc: Vec<u8> = template.iter().rev().map(|&b| complement(b)).collect();
            assert_eq!(read.sequence, rc[..60].to_vec());
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let reference = test_reference();
        let a = ReadSimulator::new(100, ErrorProfile::low_indel())
            .seed(9)
            .simulate(&reference, 30);
        let b = ReadSimulator::new(100, ErrorProfile::low_indel())
            .seed(9)
            .simulate(&reference, 30);
        assert_eq!(a, b);
    }

    #[test]
    fn rich_deletion_profile_plants_more_deletions_than_insertions() {
        let reference = test_reference();
        let reads = ReadSimulator::new(300, ErrorProfile::rich_deletion())
            .seed(4)
            .simulate(&reference, 200);
        let dels: u32 = reads.iter().map(|r| r.deletions).sum();
        let ins: u32 = reads.iter().map(|r| r.insertions).sum();
        assert!(
            dels > ins,
            "expected deletions ({dels}) > insertions ({ins})"
        );
    }

    #[test]
    fn reads_avoid_n_gaps() {
        let reference = ReferenceBuilder::new(50_000).seed(5).n_gaps(5, 500).build();
        let reads = ReadSimulator::new(100, ErrorProfile::perfect())
            .seed(6)
            .reverse_fraction(0.0)
            .simulate(&reference, 200);
        let with_n = reads.iter().filter(|r| r.sequence.contains(&b'N')).count();
        // Rejection sampling makes N reads rare (not impossible when gaps are dense).
        assert!(with_n < reads.len() / 10);
    }

    #[test]
    fn mutate_with_edits_zero_is_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let seq = b"ACGTACGTACGTACGTACGT";
        assert_eq!(mutate_with_edits(seq, 0, 0.3, &mut rng), seq.to_vec());
    }

    #[test]
    fn mutate_with_edits_preserves_length() {
        let mut rng = StdRng::seed_from_u64(8);
        let seq: Vec<u8> = (0..150).map(|i| b"ACGT"[i % 4]).collect();
        for edits in [1, 5, 15, 40] {
            let mutated = mutate_with_edits(&seq, edits, 0.4, &mut rng);
            assert_eq!(mutated.len(), seq.len());
        }
    }

    #[test]
    fn mutate_with_edits_changes_sequence() {
        let mut rng = StdRng::seed_from_u64(9);
        let seq: Vec<u8> = (0..100).map(|i| b"ACGT"[i % 4]).collect();
        let mutated = mutate_with_edits(&seq, 10, 0.3, &mut rng);
        assert_ne!(mutated, seq);
    }

    #[test]
    fn expected_edits_scales_with_length() {
        let p = ErrorProfile::low_indel();
        assert!(p.expected_edits(200) > p.expected_edits(100));
    }

    #[test]
    fn to_fastq_has_matching_quality_length() {
        let reference = test_reference();
        let read = &ReadSimulator::new(100, ErrorProfile::illumina())
            .seed(10)
            .simulate(&reference, 1)[0];
        let fq = read.to_fastq();
        assert_eq!(fq.sequence.len(), fq.quality.len());
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn simulating_from_tiny_reference_panics() {
        let reference = Reference::from_ascii("t", b"ACGTACGT");
        ReadSimulator::new(100, ErrorProfile::perfect()).simulate(&reference, 1);
    }
}
