//! The chunked, triple-buffered batch pipeline.
//!
//! GateKeeper-GPU submits each input buffer's prefetch on its own CUDA stream so
//! transfers overlap with kernel execution (§3.4). This module generalises that
//! into a three-stage software pipeline over *chunks* of a batch:
//!
//! ```text
//!   h2d    | prep+encode+H2D c0 | prep+encode+H2D c1 | prep+encode+H2D c2 | …
//!   kernel |                    | kernel c0          | kernel c1          | …
//!   d2h    |                    |                    | readback c0        | …
//! ```
//!
//! While the kernel runs chunk *i*, the host prepares, encodes and uploads chunk
//! *i+1* and the read-back of chunk *i−1* drains — classic triple buffering with
//! three buffer slots rotating through the stages. [`PipelineSchedule`] drives a
//! [`Timeline`] with exactly those cross-stream dependencies and reports the
//! overlapped makespan next to the serialized component sum; [`ChunkPlan`]
//! resolves the chunk size from the [`FilterConfig`] knobs and the
//! system-configuration step's batch capacity.
//!
//! The types here account *simulated time*: decisions are computed chunk by
//! chunk in input order and are byte-identical whether overlap is on or off.
//! The engine driving them (`gk-core::gpu`) additionally overlaps real host
//! work when [`FilterConfig::host_prefetch`] is set — chunk *i+1*'s prep+encode
//! runs as a worker-pool task while chunk *i*'s kernel closure executes, with
//! at most [`PREFETCH_IN_FLIGHT`] encoded chunks in flight — shrinking the
//! *measured* wall-clock (`TimingBreakdown::host_wall_seconds`) without
//! touching the simulated splits.

use crate::config::{FilterConfig, SystemConfig};
use crate::timing::TimingBreakdown;
use gk_gpusim::memory::MemoryStats;
use gk_gpusim::stream::Event;
use gk_gpusim::timeline::{StreamId, Timeline};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Number of buffer slots rotating through the three pipeline stages: chunk
/// *i*'s upload may only start once chunk *i − 3*'s read-back has freed a slot.
pub const BUFFER_SLOTS: usize = 3;

/// Maximum number of *encoded* chunks the host-side prefetch keeps in flight:
/// one being consumed by the kernel closure plus one encoding ahead on the
/// worker pool. Bounded at `BUFFER_SLOTS − 1` so real memory usage mirrors the
/// simulated buffer-slot rotation (the third slot is the drained read-back,
/// which holds no encoded input).
pub const PREFETCH_IN_FLIGHT: usize = BUFFER_SLOTS - 1;

/// Smallest chunk the contention-aware refinement will shrink to: below a few
/// hundred pairs the fixed kernel-launch overhead starts to dominate whatever
/// the finer transfer interleaving saves on the shared link.
pub const MIN_CONTENDED_CHUNK_PAIRS: usize = 256;

/// How a pair set is cut into pipeline chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkPlan {
    /// Pairs per chunk (every chunk but possibly the last is exactly this big).
    pub chunk_pairs: usize,
}

impl ChunkPlan {
    /// Resolves the chunk size for a configuration on a configured system.
    ///
    /// Priority: an explicit `chunk_pairs` knob (capped at the batch capacity);
    /// otherwise the full batch capacity when serialized — the pre-pipeline
    /// behaviour — or a third of it when overlapping, so the [`BUFFER_SLOTS`]
    /// in-flight chunks together still fit the memory budget the
    /// system-configuration step derived.
    ///
    /// The capacity itself is encoding-mode-dependent: with device encode the
    /// buffer slots hold **raw** 1-byte-per-base sequences (~4× the packed
    /// words — see `gk_gpusim::encode::raw_inflation`), so the
    /// system-configuration step derives a smaller `batch_size` and every slot
    /// of the rotation shrinks with it. The plan never has to know which mode
    /// is active beyond that: raw slots are sized exactly like encoded ones,
    /// just over a bigger per-pair footprint.
    pub fn resolve(config: &FilterConfig, system: &SystemConfig) -> ChunkPlan {
        let capacity = system.batch_size.min(config.max_reads_per_batch).max(1);
        let chunk_pairs = if config.chunk_pairs > 0 {
            config.chunk_pairs.min(capacity)
        } else if config.overlap {
            (capacity / BUFFER_SLOTS).max(1)
        } else {
            capacity
        };
        ChunkPlan { chunk_pairs }
    }

    /// Contention-aware refinement: divides the chunk size by the number of
    /// devices sharing this device's host link (from
    /// `gk_gpusim::topology::Topology::sharers`), floored at
    /// [`MIN_CONTENDED_CHUNK_PAIRS`]. One huge chunk per device makes every
    /// sharer's upload collide in a single serialized burst after the host
    /// prep; `sharers`-times-finer chunks let each device's transfer slip into
    /// the link gaps the other devices' host-prep stages leave open, which is
    /// what buys the topology-aware schedule its makespan win on shared links.
    /// A no-op for `sharers <= 1` (private links keep the resolved size).
    pub fn with_link_sharers(mut self, sharers: usize) -> ChunkPlan {
        if sharers > 1 {
            self.chunk_pairs = (self.chunk_pairs / sharers)
                .max(MIN_CONTENDED_CHUNK_PAIRS)
                .min(self.chunk_pairs)
                .max(1);
        }
        self
    }

    /// Number of chunks a run over `total` pairs produces.
    pub fn chunk_count(&self, total: usize) -> usize {
        total.div_ceil(self.chunk_pairs.max(1))
    }

    /// Half-open `[start, end)` pair ranges of every chunk, in order.
    pub fn ranges(&self, total: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let size = self.chunk_pairs.max(1);
        (0..self.chunk_count(total)).map(move |i| (i * size, ((i + 1) * size).min(total)))
    }

    /// Round-robin assignment of chunks to `shards` workers (multi-GPU sharding):
    /// shard `s` receives the ranges of chunks `s, s + shards, s + 2·shards, …`.
    pub fn round_robin(&self, total: usize, shards: usize) -> Vec<Vec<(usize, usize)>> {
        let shards = shards.max(1);
        let mut assignment = vec![Vec::new(); shards];
        for (i, range) in self.ranges(total).enumerate() {
            assignment[i % shards].push(range);
        }
        assignment
    }
}

/// Modelled stage durations of one chunk, as enqueued on the three streams.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ChunkStageSeconds {
    /// Host stage: buffer preparation + encoding + asynchronous H2D prefetch.
    pub h2d_seconds: f64,
    /// Device stage: on-demand page faults (prefetch-less devices) + kernel.
    pub kernel_seconds: f64,
    /// Drain stage: result read-back to the host.
    pub d2h_seconds: f64,
}

/// What the pipeline scheduler measured over one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Chunks (= kernel launches) the run was cut into.
    pub chunks: usize,
    /// Pairs per chunk the plan resolved to.
    pub chunk_pairs: usize,
    /// Whether the run's reported filter time used the overlapped makespan.
    pub overlap: bool,
    /// End-to-end simulated time with the three stages overlapped across chunks.
    pub overlapped_seconds: f64,
    /// The same work executed stage after stage, chunk after chunk.
    pub serialized_seconds: f64,
    /// Whether the run's host side actually prefetched: chunk *i+1*'s
    /// prep+encode executed on the worker pool while chunk *i*'s kernel
    /// closure ran. `false` when the knob was off *or* the pool was
    /// sequential (`RAYON_NUM_THREADS=1` fallback).
    pub host_prefetch: bool,
    /// Whether the run used the device-side encoding execution path (raw
    /// 1-byte-per-base uploads + fused encode+filter kernel) instead of host
    /// `encode_pair_batch`.
    pub device_encode: bool,
    /// Ill-formed simulated durations saturated to zero by the timeline (see
    /// `gk_gpusim::stream::Stream::anomalies`). Always `0` on a healthy run;
    /// non-zero means a release build absorbed what a debug build would have
    /// asserted on, and the reported makespan is a lower bound.
    pub timing_anomalies: u64,
}

impl PipelineReport {
    /// Seconds the overlap saves versus serializing.
    pub fn savings_seconds(&self) -> f64 {
        (self.serialized_seconds - self.overlapped_seconds).max(0.0)
    }

    /// Serialized-over-overlapped speedup (≥ 1 whenever there is any overlap).
    pub fn speedup(&self) -> f64 {
        if self.overlapped_seconds <= 0.0 {
            1.0
        } else {
            self.serialized_seconds / self.overlapped_seconds
        }
    }
}

/// Drives a [`Timeline`] with the triple-buffered H2D / kernel / D2H dependency
/// structure, one [`ChunkStageSeconds`] at a time.
#[derive(Debug, Clone)]
pub struct PipelineSchedule {
    timeline: Timeline,
    h2d: StreamId,
    kernel: StreamId,
    d2h: StreamId,
    /// Completion events of the most recent read-backs; the front one gates the
    /// next upload once all [`BUFFER_SLOTS`] slots are in flight.
    drained: VecDeque<Event>,
    chunks: usize,
}

impl Default for PipelineSchedule {
    fn default() -> PipelineSchedule {
        PipelineSchedule::new()
    }
}

impl PipelineSchedule {
    /// Creates an empty schedule with its three stage streams.
    pub fn new() -> PipelineSchedule {
        let mut timeline = Timeline::new();
        let h2d = timeline.add_stream("h2d");
        let kernel = timeline.add_stream("kernel");
        let d2h = timeline.add_stream("d2h");
        PipelineSchedule {
            timeline,
            h2d,
            kernel,
            d2h,
            drained: VecDeque::with_capacity(BUFFER_SLOTS),
            chunks: 0,
        }
    }

    /// Enqueues one chunk: its upload waits for a free buffer slot, its kernel
    /// waits for its upload, its read-back waits for its kernel — and each
    /// stream serializes its own chunks, which is what lets adjacent chunks
    /// overlap across streams.
    pub fn record_chunk(&mut self, stages: &ChunkStageSeconds) {
        let i = self.chunks;
        if self.drained.len() >= BUFFER_SLOTS {
            if let Some(slot_free) = self.drained.pop_front() {
                self.timeline
                    .wait_event(self.h2d, format!("wait slot (chunk {i})"), &slot_free);
            }
        }
        let uploaded =
            self.timeline
                .enqueue(self.h2d, format!("prep+encode+h2d {i}"), stages.h2d_seconds);
        self.timeline
            .wait_event(self.kernel, format!("wait h2d {i}"), &uploaded);
        let computed =
            self.timeline
                .enqueue(self.kernel, format!("kernel {i}"), stages.kernel_seconds);
        self.timeline
            .wait_event(self.d2h, format!("wait kernel {i}"), &computed);
        let drained = self
            .timeline
            .enqueue(self.d2h, format!("readback {i}"), stages.d2h_seconds);
        self.drained.push_back(drained);
        self.chunks += 1;
    }

    /// Chunks recorded so far.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// The underlying timeline (for inspection / reporting).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Overlapped end-to-end time of everything recorded so far.
    pub fn overlapped_seconds(&self) -> f64 {
        self.timeline.makespan_seconds()
    }

    /// Serialized sum of everything recorded so far.
    pub fn serialized_seconds(&self) -> f64 {
        self.timeline.serialized_seconds()
    }

    /// Builds the report for a finished run.
    pub fn report(
        &self,
        chunk_pairs: usize,
        overlap: bool,
        host_prefetch: bool,
        device_encode: bool,
    ) -> PipelineReport {
        PipelineReport {
            chunks: self.chunks,
            chunk_pairs,
            overlap,
            overlapped_seconds: self.overlapped_seconds(),
            serialized_seconds: self.serialized_seconds(),
            host_prefetch,
            device_encode,
            timing_anomalies: self.timeline.anomalies(),
        }
    }
}

/// Aggregate result of filtering a *stream* of pair batches, where per-pair
/// decisions are handed to a sink chunk by chunk instead of being materialized
/// (the 30M-pair whole-genome path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamFilterRun {
    /// Pairs filtered.
    pub pairs: usize,
    /// Pairs accepted (including undefined pass-throughs).
    pub accepted: usize,
    /// Undefined pairs passed through without filtration.
    pub undefined: usize,
    /// Timing breakdown (overlapped makespan included when overlap was on).
    pub timing: TimingBreakdown,
    /// Number of batched kernel calls.
    pub batches: usize,
    /// Unified-memory traffic over the whole run.
    pub memory_stats: MemoryStats,
    /// Overlapped-versus-serialized pipeline accounting.
    pub pipeline: PipelineReport,
}

impl StreamFilterRun {
    /// Pairs rejected.
    pub fn rejected(&self) -> usize {
        self.pairs - self.accepted
    }

    /// Host-observed filter time in seconds.
    pub fn filter_seconds(&self) -> f64 {
        self.timing.filter_seconds()
    }

    /// Summed device kernel time in seconds.
    pub fn kernel_seconds(&self) -> f64 {
        self.timing.kernel_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_gpusim::device::DeviceSpec;

    fn plan(config: FilterConfig) -> (ChunkPlan, SystemConfig) {
        let system = SystemConfig::configure(&DeviceSpec::gtx_1080_ti(), &config);
        (ChunkPlan::resolve(&config, &system), system)
    }

    #[test]
    fn serialized_plan_keeps_the_full_batch_capacity() {
        let config = FilterConfig::new(100, 5).with_max_reads_per_batch(10_000);
        let (chunks, system) = plan(config);
        assert_eq!(chunks.chunk_pairs, system.batch_size.min(10_000));
    }

    #[test]
    fn overlapped_plan_sizes_chunks_for_three_slots() {
        // Default capacity is the paper's 100,000 reads per batch (the device
        // fits far more), so three in-flight slots mean 33,333-pair chunks.
        let config = FilterConfig::new(100, 5).with_overlap(true);
        let (chunks, system) = plan(config);
        assert!(system.batch_size > config.max_reads_per_batch);
        assert_eq!(chunks.chunk_pairs, 100_000 / BUFFER_SLOTS);
        // A ≥3 overlapped chunks fit where one serialized chunk did.
        let (serialized, _) = plan(FilterConfig::new(100, 5));
        assert!(chunks.chunk_pairs * BUFFER_SLOTS <= serialized.chunk_pairs);
        // Tiny capacities never resolve to zero-pair chunks.
        let (tiny, _) = plan(
            FilterConfig::new(100, 5)
                .with_overlap(true)
                .with_max_reads_per_batch(2),
        );
        assert_eq!(tiny.chunk_pairs, 1);
    }

    #[test]
    fn raw_slots_shrink_the_memory_bound_chunks() {
        // With device encode the buffer slots hold raw 1-byte-per-base
        // sequences (~4× the packed words), so when the *memory budget* is the
        // binding constraint the auto-sized chunks must shrink accordingly.
        let unbounded = |device: bool| {
            plan(
                FilterConfig::new(100, 5)
                    .with_overlap(true)
                    .with_device_encode(device)
                    .with_max_reads_per_batch(usize::MAX),
            )
        };
        let (host_plan, host_system) = unbounded(false);
        let (device_plan, device_system) = unbounded(true);
        assert!(device_system.thread_load_bytes > host_system.thread_load_bytes);
        assert!(
            device_plan.chunk_pairs < host_plan.chunk_pairs,
            "device {} !< host {}",
            device_plan.chunk_pairs,
            host_plan.chunk_pairs
        );
    }

    #[test]
    fn explicit_chunk_knob_wins_but_is_capped() {
        let config = FilterConfig::new(100, 5)
            .with_max_reads_per_batch(500)
            .with_chunk_pairs(10_000);
        let (chunks, _) = plan(config);
        assert_eq!(chunks.chunk_pairs, 500);
        let config = FilterConfig::new(100, 5).with_chunk_pairs(64);
        let (chunks, _) = plan(config);
        assert_eq!(chunks.chunk_pairs, 64);
    }

    #[test]
    fn link_sharers_shrink_chunks_with_a_floor() {
        let plan = ChunkPlan { chunk_pairs: 5_000 };
        assert_eq!(plan.with_link_sharers(1).chunk_pairs, 5_000);
        assert_eq!(plan.with_link_sharers(8).chunk_pairs, 625);
        // The floor stops the shrink once launch overhead would dominate…
        assert_eq!(plan.with_link_sharers(100).chunk_pairs, 256);
        // …but never grows a chunk that was already below the floor.
        let tiny = ChunkPlan { chunk_pairs: 40 };
        assert_eq!(tiny.with_link_sharers(4).chunk_pairs, 40);
        assert_eq!(
            ChunkPlan { chunk_pairs: 0 }
                .with_link_sharers(4)
                .chunk_pairs,
            1
        );
    }

    #[test]
    fn ranges_cover_everything_in_order() {
        let plan = ChunkPlan { chunk_pairs: 300 };
        let ranges: Vec<(usize, usize)> = plan.ranges(1_000).collect();
        assert_eq!(ranges, vec![(0, 300), (300, 600), (600, 900), (900, 1_000)]);
        assert_eq!(plan.chunk_count(1_000), 4);
        assert_eq!(plan.chunk_count(0), 0);
    }

    #[test]
    fn round_robin_interleaves_chunks_across_shards() {
        let plan = ChunkPlan { chunk_pairs: 100 };
        let shards = plan.round_robin(500, 2);
        assert_eq!(shards[0], vec![(0, 100), (200, 300), (400, 500)]);
        assert_eq!(shards[1], vec![(100, 200), (300, 400)]);
        // Every pair is covered exactly once.
        let total: usize = shards
            .iter()
            .flatten()
            .map(|(start, end)| end - start)
            .sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn schedule_overlaps_adjacent_chunks() {
        let mut schedule = PipelineSchedule::new();
        let stages = ChunkStageSeconds {
            h2d_seconds: 0.3,
            kernel_seconds: 0.5,
            d2h_seconds: 0.2,
        };
        schedule.record_chunk(&stages);
        // One chunk cannot overlap with anything: makespan == serialized.
        assert!((schedule.overlapped_seconds() - 1.0).abs() < 1e-12);
        for _ in 0..7 {
            schedule.record_chunk(&stages);
        }
        assert_eq!(schedule.chunks(), 8);
        let report = schedule.report(100, true, false, false);
        assert!(!report.host_prefetch);
        assert!(!report.device_encode);
        assert_eq!(report.timing_anomalies, 0);
        assert!((report.serialized_seconds - 8.0).abs() < 1e-12);
        // Steady state: the kernel stream dominates after the first fill and
        // before the last drain: 0.3 + 8 × 0.5 + 0.2 = 4.5 s.
        assert!((report.overlapped_seconds - 4.5).abs() < 1e-9);
        assert!(report.savings_seconds() > 0.0);
        assert!(report.speedup() > 1.7);
    }

    #[test]
    fn buffer_slots_gate_uploads_when_the_drain_is_slow() {
        // A read-back much slower than everything else forces the upload of
        // chunk i to wait for chunk i-3's slot, so the d2h stream dominates.
        let mut schedule = PipelineSchedule::new();
        let stages = ChunkStageSeconds {
            h2d_seconds: 0.01,
            kernel_seconds: 0.01,
            d2h_seconds: 1.0,
        };
        for _ in 0..6 {
            schedule.record_chunk(&stages);
        }
        let makespan = schedule.overlapped_seconds();
        // Six drains of 1 s each dominate; the pipeline cannot finish faster.
        assert!(makespan >= 6.0);
        // And the slot gating shows up as wait operations on the h2d stream.
        let h2d_ops = schedule.timeline().streams()[0].len();
        assert!(h2d_ops > 6, "expected wait ops recorded, got {h2d_ops}");
    }
}
