//! Filter execution backends behind one trait — the registry the service
//! layer (`gk-serve`) and any future scheduler dispatch through.
//!
//! The paper evaluates each filter as one pre-planned offline pass; the
//! ROADMAP north-star is a daemon serving many tenants, which needs the
//! execution substrates (multicore SIMD lanes, the simulated GPU pipeline,
//! the topology-aware multi-GPU scheduler) interchangeable at request time.
//! [`FilterBackend`] is that seam: a backend takes a [`FilterJob`] — filter
//! kind, edit threshold, read-pair slice — and returns per-pair
//! [`FilterDecision`]s in input order. [`BackendRegistry`] holds named
//! backends the way `IP-Hacker` fans one query across provider modules
//! behind its `IpCheck` trait.
//!
//! # Example
//!
//! ```
//! use gk_core::backend::{BackendRegistry, FilterJob, FilterKind};
//! use gk_seq::pairs::SequencePair;
//!
//! let registry = BackendRegistry::standard(2);
//! let backend = registry.get("cpu-simd").expect("standard backend");
//! let pairs = vec![
//!     SequencePair::new(&b"ACGTACGT"[..], &b"ACGTACGT"[..]),
//!     SequencePair::new(&b"ACGTACGT"[..], &b"TGCATGCA"[..]),
//! ];
//! let decisions = backend.run(&FilterJob::new(FilterKind::GateKeeper, 2, &pairs));
//! assert!(decisions[0].accepted);
//! assert!(!decisions[1].accepted);
//! ```

use crate::config::FilterConfig;
use crate::gpu::GateKeeperGpu;
use crate::multi_gpu::MultiGpuGateKeeper;
use gk_filters::gatekeeper::GateKeeperConfig;
use gk_filters::simd::SimdMode;
use gk_filters::traits::FilterDecision;
use gk_filters::{
    gatekeeper_filter_block, magnet_filter_block, shouji_filter_block, sneaky_snake_filter_block,
};
use gk_gpusim::device::DeviceSpec;
use gk_gpusim::topology::TopologyKind;
use gk_seq::pairs::{PairSet, SequencePair};
use std::collections::HashMap;
use std::str::FromStr;
use std::sync::{Arc, Mutex, MutexGuard};

/// Pairs handed to one lane-parallel block task on the CPU backend — matches
/// the block size of the `filter_batch` paths so batched service decisions
/// stay bit-identical to the offline harness.
const BACKEND_BLOCK_PAIRS: usize = 256;

/// Which pre-alignment filter a request wants.
///
/// This is the service-facing name of the four lane-widened filters; it
/// travels over the wire as a one-byte code (see [`FilterKind::code`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterKind {
    /// The improved GateKeeper of this paper (leading/trailing-bit fix, §3.4).
    GateKeeper,
    /// MAGNET (Alser et al. 2017): greedy longest-zero-segment extraction.
    Magnet,
    /// Shouji (Alser et al. 2019): sliding-window neighborhood map.
    Shouji,
    /// SneakySnake (Alser et al. 2020): single-net-routing greedy lower bound.
    SneakySnake,
}

impl FilterKind {
    /// Every filter kind, in wire-code order.
    pub const ALL: [FilterKind; 4] = [
        FilterKind::GateKeeper,
        FilterKind::Magnet,
        FilterKind::Shouji,
        FilterKind::SneakySnake,
    ];

    /// Stable one-byte wire code (`gk-seq::frame` request framing).
    pub fn code(self) -> u8 {
        match self {
            FilterKind::GateKeeper => 0,
            FilterKind::Magnet => 1,
            FilterKind::Shouji => 2,
            FilterKind::SneakySnake => 3,
        }
    }

    /// Inverse of [`FilterKind::code`].
    pub fn from_code(code: u8) -> Option<FilterKind> {
        FilterKind::ALL.into_iter().find(|k| k.code() == code)
    }

    /// Short label for flags, tables and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            FilterKind::GateKeeper => "gatekeeper",
            FilterKind::Magnet => "magnet",
            FilterKind::Shouji => "shouji",
            FilterKind::SneakySnake => "sneaky-snake",
        }
    }
}

impl std::fmt::Display for FilterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FilterKind {
    type Err = String;

    fn from_str(s: &str) -> Result<FilterKind, String> {
        match s.to_ascii_lowercase().as_str() {
            "gatekeeper" | "gk" => Ok(FilterKind::GateKeeper),
            "magnet" => Ok(FilterKind::Magnet),
            "shouji" => Ok(FilterKind::Shouji),
            "sneaky-snake" | "sneakysnake" | "ss" => Ok(FilterKind::SneakySnake),
            other => Err(format!(
                "unknown filter kind {other:?} (expected gatekeeper, magnet, shouji or sneaky-snake)"
            )),
        }
    }
}

/// One unit of backend work: a contiguous block of pairs, all filtered with
/// the same kind and threshold (the batcher's coalescing key).
#[derive(Debug, Clone, Copy)]
pub struct FilterJob<'a> {
    /// Which filter to run.
    pub kind: FilterKind,
    /// Edit-distance threshold `e`.
    pub threshold: u32,
    /// Nominal read length, used by the simulated-device backends to size
    /// batches and the timing model. Derived from the first pair by
    /// [`FilterJob::new`]; override with [`FilterJob::with_read_len`] for
    /// intentionally ragged jobs.
    pub read_len: usize,
    /// The pairs to filter, decisions returned in this order.
    pub pairs: &'a [SequencePair],
}

impl<'a> FilterJob<'a> {
    /// Builds a job, deriving `read_len` from the first pair (0 if empty).
    pub fn new(kind: FilterKind, threshold: u32, pairs: &'a [SequencePair]) -> FilterJob<'a> {
        let read_len = pairs.first().map(|p| p.read_len()).unwrap_or(0);
        FilterJob {
            kind,
            threshold,
            read_len,
            pairs,
        }
    }

    /// Overrides the nominal read length.
    pub fn with_read_len(mut self, read_len: usize) -> FilterJob<'a> {
        self.read_len = read_len;
        self
    }
}

/// A filter execution substrate the service layer can dispatch to.
///
/// Implementations must be deterministic: the same job yields the same
/// decision vector (this is what the service-equivalence suite digests), and
/// decisions must be positionally independent so the dynamic batcher can
/// split and concatenate jobs freely.
pub trait FilterBackend: Send + Sync {
    /// Registry name (`cpu-simd`, `gpu-sim`, `multi-gpu`).
    fn name(&self) -> &str;

    /// Filters every pair of the job, returning decisions in input order.
    fn run(&self, job: &FilterJob<'_>) -> Vec<FilterDecision>;
}

/// Recovers a poisoned cache mutex: the caches below hold only constructed
/// filter instances (no partial state), so the data is valid even if a
/// panicking thread held the lock.
fn lock_cache<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn run_cpu_block(
    job: &FilterJob<'_>,
    block: &[SequencePair],
    mode: SimdMode,
) -> Vec<FilterDecision> {
    match job.kind {
        FilterKind::GateKeeper => {
            gatekeeper_filter_block(block, &GateKeeperConfig::gpu(job.threshold), mode)
        }
        FilterKind::Magnet => magnet_filter_block(block, job.threshold, mode),
        FilterKind::Shouji => shouji_filter_block(block, job.threshold, mode),
        FilterKind::SneakySnake => sneaky_snake_filter_block(block, job.threshold, mode),
    }
}

/// Multicore SIMD-lane backend: all four filters on the 4-lane
/// struct-of-arrays kernels over the shared work-stealing pool.
pub struct CpuSimdBackend {
    /// `None` runs on the caller's current pool (the fallback when a
    /// dedicated pool cannot be built — real rayon's builder can fail on
    /// resource exhaustion even though the shim's never does).
    pool: Option<Arc<rayon::ThreadPool>>,
    mode: SimdMode,
}

impl CpuSimdBackend {
    /// Builds a backend with its own `threads`-wide pool.
    pub fn new(threads: usize) -> CpuSimdBackend {
        match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
            Ok(pool) => CpuSimdBackend::with_pool(Arc::new(pool)),
            Err(_) => CpuSimdBackend {
                pool: None,
                mode: SimdMode::Auto.resolve(),
            },
        }
    }

    /// Builds a backend over an existing shared pool.
    pub fn with_pool(pool: Arc<rayon::ThreadPool>) -> CpuSimdBackend {
        CpuSimdBackend {
            pool: Some(pool),
            mode: SimdMode::Auto.resolve(),
        }
    }

    /// Overrides the SIMD mode (resolved once here, like the filter structs).
    pub fn with_simd_mode(mut self, mode: SimdMode) -> CpuSimdBackend {
        self.mode = mode.resolve();
        self
    }
}

impl FilterBackend for CpuSimdBackend {
    fn name(&self) -> &str {
        "cpu-simd"
    }

    fn run(&self, job: &FilterJob<'_>) -> Vec<FilterDecision> {
        use rayon::prelude::*;
        let mode = self.mode;
        let filter = || {
            job.pairs
                .par_chunks(BACKEND_BLOCK_PAIRS)
                .flat_map(|block| run_cpu_block(job, block, mode))
                .collect()
        };
        match &self.pool {
            Some(pool) => pool.install(filter),
            None => filter(),
        }
    }
}

/// Simulated-GPU backend: GateKeeper runs the chunked, stream-overlapped
/// device pipeline ([`GateKeeperGpu`]); the other filters, which have no
/// device implementation in the paper, fall back to the CPU lane path.
pub struct GpuSimBackend {
    device: DeviceSpec,
    template: FilterConfig,
    instances: Mutex<HashMap<(usize, u32), Arc<GateKeeperGpu>>>,
    fallback: CpuSimdBackend,
}

impl GpuSimBackend {
    /// Builds a backend over the paper's Setup 1 device (GTX 1080 Ti).
    pub fn new() -> GpuSimBackend {
        GpuSimBackend::with_device(DeviceSpec::gtx_1080_ti())
    }

    /// Builds a backend over an explicit device model.
    pub fn with_device(device: DeviceSpec) -> GpuSimBackend {
        GpuSimBackend {
            device,
            template: FilterConfig::new(100, 0),
            instances: Mutex::new(HashMap::new()),
            fallback: CpuSimdBackend::new(1),
        }
    }

    /// Uses `template` as the base configuration (encoding actor, overlap,
    /// chunking knobs); read length and threshold still come from each job.
    pub fn with_config_template(mut self, template: FilterConfig) -> GpuSimBackend {
        self.template = template;
        self
    }

    fn instance(&self, read_len: usize, threshold: u32) -> Arc<GateKeeperGpu> {
        let mut cache = lock_cache(&self.instances);
        cache
            .entry((read_len, threshold))
            .or_insert_with(|| {
                let mut config = self.template;
                config.read_len = read_len;
                config.threshold = threshold;
                Arc::new(GateKeeperGpu::new(self.device.clone(), config))
            })
            .clone()
    }
}

impl Default for GpuSimBackend {
    fn default() -> GpuSimBackend {
        GpuSimBackend::new()
    }
}

impl FilterBackend for GpuSimBackend {
    fn name(&self) -> &str {
        "gpu-sim"
    }

    fn run(&self, job: &FilterJob<'_>) -> Vec<FilterDecision> {
        match job.kind {
            FilterKind::GateKeeper => {
                let gpu = self.instance(job.read_len.max(1), job.threshold);
                gpu.filter_chunks(std::iter::once(job.pairs)).decisions
            }
            _ => self.fallback.run(job),
        }
    }
}

/// Topology-aware multi-GPU backend: GateKeeper sharded across several
/// simulated devices with the PR 8 contention-aware scheduler; non-GateKeeper
/// kinds fall back to the CPU lane path as on [`GpuSimBackend`].
pub struct MultiGpuBackend {
    device: DeviceSpec,
    device_count: usize,
    topology: TopologyKind,
    instances: Mutex<HashMap<(usize, u32), Arc<MultiGpuGateKeeper>>>,
    fallback: CpuSimdBackend,
}

impl MultiGpuBackend {
    /// Builds a backend over `device_count` copies of the Setup 1 device on a
    /// shared-root topology (the contended case the aware scheduler wins).
    pub fn new(device_count: usize) -> MultiGpuBackend {
        MultiGpuBackend::with_device(
            DeviceSpec::gtx_1080_ti(),
            device_count,
            TopologyKind::SharedRoot,
        )
    }

    /// Builds a backend over an explicit device model and topology.
    pub fn with_device(
        device: DeviceSpec,
        device_count: usize,
        topology: TopologyKind,
    ) -> MultiGpuBackend {
        MultiGpuBackend {
            device,
            device_count: device_count.max(1),
            topology,
            instances: Mutex::new(HashMap::new()),
            fallback: CpuSimdBackend::new(1),
        }
    }

    fn instance(&self, read_len: usize, threshold: u32) -> Arc<MultiGpuGateKeeper> {
        let mut cache = lock_cache(&self.instances);
        cache
            .entry((read_len, threshold))
            .or_insert_with(|| {
                let config = FilterConfig::new(read_len, threshold)
                    .with_topology(self.topology)
                    .with_topology_aware(true);
                Arc::new(MultiGpuGateKeeper::new(
                    self.device.clone(),
                    self.device_count,
                    config,
                ))
            })
            .clone()
    }
}

impl FilterBackend for MultiGpuBackend {
    fn name(&self) -> &str {
        "multi-gpu"
    }

    fn run(&self, job: &FilterJob<'_>) -> Vec<FilterDecision> {
        match job.kind {
            FilterKind::GateKeeper => {
                let multi = self.instance(job.read_len.max(1), job.threshold);
                let set = PairSet::new("serve", job.read_len, job.pairs.to_vec());
                multi.filter_set(&set).decisions
            }
            _ => self.fallback.run(job),
        }
    }
}

/// Named collection of filter backends, the service's dispatch table.
#[derive(Default)]
pub struct BackendRegistry {
    backends: Vec<Arc<dyn FilterBackend>>,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> BackendRegistry {
        BackendRegistry::default()
    }

    /// The three standard backends — `cpu-simd` (over a `threads`-wide pool),
    /// `gpu-sim` (Setup 1 device) and `multi-gpu` (4 × Setup 1, shared root,
    /// topology-aware).
    pub fn standard(threads: usize) -> BackendRegistry {
        let mut registry = BackendRegistry::new();
        registry.register(Arc::new(CpuSimdBackend::new(threads)));
        registry.register(Arc::new(GpuSimBackend::new()));
        registry.register(Arc::new(MultiGpuBackend::new(4)));
        registry
    }

    /// Adds (or replaces, by name) a backend.
    pub fn register(&mut self, backend: Arc<dyn FilterBackend>) {
        self.backends.retain(|b| b.name() != backend.name());
        self.backends.push(backend);
    }

    /// Looks a backend up by registry name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn FilterBackend>> {
        self.backends.iter().find(|b| b.name() == name).cloned()
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.backends.iter().map(|b| b.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_filters::traits::decision_digest;
    use gk_seq::datasets::DatasetProfile;

    fn sample_pairs(count: usize) -> Vec<SequencePair> {
        DatasetProfile::set3().generate(count, 0x5e12_7a01).pairs
    }

    #[test]
    fn filter_kind_codes_round_trip() {
        for kind in FilterKind::ALL {
            assert_eq!(FilterKind::from_code(kind.code()), Some(kind));
            assert_eq!(kind.as_str().parse::<FilterKind>(), Ok(kind));
        }
        assert_eq!(FilterKind::from_code(17), None);
        assert!("nope".parse::<FilterKind>().is_err());
    }

    #[test]
    fn registry_lookup_and_replace() {
        let registry = BackendRegistry::standard(1);
        assert_eq!(registry.names(), vec!["cpu-simd", "gpu-sim", "multi-gpu"]);
        assert!(registry.get("cpu-simd").is_some());
        assert!(registry.get("fpga").is_none());
    }

    #[test]
    fn backends_agree_on_every_filter_kind() {
        let pairs = sample_pairs(700);
        let registry = BackendRegistry::standard(2);
        for kind in FilterKind::ALL {
            let job = FilterJob::new(kind, 3, &pairs);
            let digests: Vec<u64> = ["cpu-simd", "gpu-sim", "multi-gpu"]
                .iter()
                .map(|name| {
                    let backend = registry.get(name).expect("standard backend");
                    let decisions = backend.run(&job);
                    assert_eq!(decisions.len(), pairs.len());
                    decision_digest(&decisions)
                })
                .collect();
            assert_eq!(digests[0], digests[1], "{kind}: cpu vs gpu-sim");
            assert_eq!(digests[0], digests[2], "{kind}: cpu vs multi-gpu");
        }
    }

    #[test]
    fn gpu_backend_matches_direct_filter_set() {
        let pairs = sample_pairs(600);
        let backend = GpuSimBackend::new();
        let job = FilterJob::new(FilterKind::GateKeeper, 2, &pairs);
        let via_backend = backend.run(&job);

        let config = FilterConfig::new(job.read_len, 2);
        let gpu = GateKeeperGpu::with_default_device(config);
        let direct = gpu
            .filter_set(&PairSet::new("direct", job.read_len, pairs.clone()))
            .decisions;
        assert_eq!(decision_digest(&via_backend), decision_digest(&direct));
    }

    #[test]
    fn split_jobs_concatenate_to_the_whole() {
        let pairs = sample_pairs(500);
        let backend = CpuSimdBackend::new(2);
        let whole = backend.run(&FilterJob::new(FilterKind::Shouji, 4, &pairs));
        let mut stitched = Vec::new();
        for part in pairs.chunks(170) {
            stitched.extend(backend.run(&FilterJob::new(FilterKind::Shouji, 4, part)));
        }
        assert_eq!(decision_digest(&whole), decision_digest(&stitched));
    }
}
