//! The batched GateKeeper-GPU filtering system on the simulated device.
//!
//! This is the Rust analogue of the CUDA host code the paper describes in §3:
//! the host gathers (read, candidate reference segment) pairs into maximal batches
//! (§3.1), places the buffers in unified memory with device-preferred advice and
//! asynchronous prefetching (§3.2/§3.4), launches one kernel per batch with one
//! filtration per thread, and reads the accept/reject bit plus the approximate edit
//! distance back from the result buffer (§3.5).
//!
//! Functional behaviour (the decisions) comes from actually running the improved
//! GateKeeper kernel of `gk-filters` for every pair. Timing comes from the device
//! model in `gk-gpusim` plus a small set of host-side cost constants, calibrated so
//! the *relative* behaviour of the paper is reproduced: kernel time grows mildly
//! with the error threshold while filter time is dominated by host preparation and
//! transfers; host encoding shrinks the transfer but adds host time; prefetch-less
//! devices (Kepler) pay page-fault overhead.
//!
//! The encoding actor selects one of two genuinely different **execution
//! paths**, not just two timing attributions:
//!
//! * **host encode** ([`EncodingActor::Host`]) — the prep stage runs
//!   `gk_seq::pairs::encode_pair_batch` on the worker pool and the device
//!   stage consumes packed words; the H2D buffers carry 2-bit words and the
//!   host pays `TimingBreakdown::encode_seconds`;
//! * **device encode** ([`EncodingActor::Device`],
//!   [`FilterConfig::with_device_encode`]) — the prep stage only *gathers*
//!   chunks into raw 1-byte-per-base transfer arenas
//!   ([`gk_seq::raw::RawPairBatch`], sliced zero-copy per chunk), the H2D
//!   buffers carry ~4× the bytes, and every thread of a **fused
//!   encode+filter kernel** packs its own pair before filtering — the encode
//!   cost lands inside the kernel time
//!   (`TimingBreakdown::encode_device_seconds`, per-base cycle model in
//!   `gk_gpusim::encode`) and the host never touches a packed word.
//!
//! Decisions are byte-identical between the two paths for every chunk size,
//! overlap setting, prefetch setting and device count — the root
//! `encode_mode_equivalence` suite proptests exactly that.
//!
//! Execution is organised as the chunked three-stage pipeline of
//! [`crate::pipeline`]: every run — [`GateKeeperGpu::filter_set`] over a
//! materialized [`PairSet`], [`GateKeeperGpu::filter_chunks`] over explicit
//! slices, or [`GateKeeperGpu::filter_stream`] over batches produced on the fly
//! — feeds plan-sized chunks through encode+H2D, kernel, and D2H read-back
//! stages. With [`FilterConfig::overlap`] on, the stages of adjacent chunks
//! overlap on separate simulated streams (§3.4) and the reported filter time is
//! the pipeline makespan; decisions are byte-identical either way.

use crate::config::{EncodingActor, FilterConfig, SystemConfig};
use crate::pipeline::{
    ChunkPlan, ChunkStageSeconds, PipelineReport, PipelineSchedule, StreamFilterRun,
    PREFETCH_IN_FLIGHT,
};
use crate::timing::TimingBreakdown;
use gk_filters::gatekeeper::{gatekeeper_kernel, gatekeeper_kernel_reference, GateKeeperConfig};
use gk_filters::simd::{gatekeeper_filter_block_packed, gatekeeper_filter_block_slices, SimdMode};
use gk_filters::traits::{FilterDecision, PreAlignmentFilter};
use gk_gpusim::device::DeviceSpec;
use gk_gpusim::executor::{launch_kernel, KernelResources, ThreadReport};
use gk_gpusim::memory::{MemAdvise, MemoryStats, UnifiedMemory, PAGE_SIZE};
use gk_gpusim::power::PowerReport;
use gk_gpusim::profiler::Profiler;
use gk_gpusim::stream::Stream;
use gk_gpusim::topology::ChunkLoad;
use gk_seq::pairs::{encode_pair_batch, PairSet, SequencePair};
use gk_seq::raw::{RawPairBatch, RawPairSlice};
use gk_seq::PackedSeq;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Instant;

/// Host-side buffer preparation cost per pair (gathering reads and candidate
/// indices into the transfer buffers, §3.5). `pub(crate)` so the topology-aware
/// multi-GPU scheduler can estimate per-device service rates from the same
/// constants the pipeline charges.
pub(crate) const HOST_PREP_SECONDS_PER_PAIR: f64 = 3.0e-7;
/// Host 2-bit encoding throughput in bases per second (multithreaded host encode).
pub(crate) const HOST_ENCODE_BASES_PER_SECOND: f64 = 2.0e8;
/// Fixed kernel-launch overhead per batch.
pub(crate) const KERNEL_LAUNCH_OVERHEAD_S: f64 = 10e-6;
/// Modelled device cycles: fixed cost per filtration.
pub(crate) const CYCLES_BASE: u64 = 2_000;
/// Modelled device cycles per (mask × word) of bitwise work.
pub(crate) const CYCLES_PER_MASK_WORD: u64 = 1_000;
/// Modelled device cycles consumed by a thread that passes an undefined pair.
const CYCLES_UNDEFINED: u64 = 300;
/// Extra data-dependent cycles per estimated edit (amendment/counting divergence).
const CYCLES_PER_EDIT: u64 = 120;

/// Pairs handed to one lane-parallel kernel task in SIMD mode (mirrors the
/// CPU baseline's block size so both paths amortise the SoA transpose alike).
const LANE_BLOCK_PAIRS: usize = 256;

/// Result of filtering a pair set on the (simulated) GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterRun {
    /// Per-pair decisions, in input order.
    pub decisions: Vec<FilterDecision>,
    /// Timing breakdown; `timing.kernel_seconds` is the summed CUDA-event time and
    /// `timing.filter_seconds()` is the host-observed filter time of §4.3.
    pub timing: TimingBreakdown,
    /// Number of batched kernel calls.
    pub batches: usize,
    /// Unified-memory traffic over the whole run.
    pub memory_stats: MemoryStats,
    /// Average achieved occupancy over the batched launches.
    pub achieved_occupancy: f64,
    /// Theoretical occupancy of the kernel on this device.
    pub theoretical_occupancy: f64,
    /// Average warp execution efficiency.
    pub warp_execution_efficiency: f64,
    /// Average SM efficiency.
    pub sm_efficiency: f64,
    /// Aggregated power report (nvprof-style min/max/average milliwatts).
    pub power: Option<PowerReport>,
    /// Overlapped-versus-serialized pipeline accounting for the run.
    pub pipeline: PipelineReport,
    /// Per-chunk modelled durations and link traffic, in pipeline order — the
    /// currency the multi-GPU contention replay
    /// (`gk_gpusim::topology::simulate_contended`) re-executes on a shared
    /// interconnect. `h2d_bytes` carries the page-rounded per-buffer prefetch
    /// traffic (zero on prefetch-less devices, whose migration cost is already
    /// inside `kernel_seconds` as page faults), so replaying a load on a
    /// private link at this device's PCIe rate reproduces the chunk's stage
    /// durations bit-for-bit.
    pub chunk_loads: Vec<ChunkLoad>,
}

impl FilterRun {
    /// Summed device kernel time in seconds.
    pub fn kernel_seconds(&self) -> f64 {
        self.timing.kernel_seconds
    }

    /// Host-observed filter time in seconds.
    pub fn filter_seconds(&self) -> f64 {
        self.timing.filter_seconds()
    }

    /// Number of accepted pairs.
    pub fn accepted(&self) -> usize {
        self.decisions.iter().filter(|d| d.accepted).count()
    }

    /// Number of rejected pairs.
    pub fn rejected(&self) -> usize {
        self.decisions.len() - self.accepted()
    }
}

/// The GateKeeper-GPU filtering system bound to one simulated device.
#[derive(Debug, Clone)]
pub struct GateKeeperGpu {
    device: DeviceSpec,
    config: FilterConfig,
    system: SystemConfig,
    kernel_config: GateKeeperConfig,
    /// `config.simd` resolved against `GK_SIMD` once, at construction — the
    /// per-chunk device stage must not consult the environment.
    simd: SimdMode,
}

impl GateKeeperGpu {
    /// Creates a GateKeeper-GPU instance on a specific device.
    pub fn new(device: DeviceSpec, config: FilterConfig) -> GateKeeperGpu {
        let system = SystemConfig::configure(&device, &config);
        GateKeeperGpu {
            device,
            system,
            kernel_config: GateKeeperConfig::gpu(config.threshold),
            simd: config.simd.resolve(),
            config,
        }
    }

    /// Creates an instance on the paper's Setup 1 device (GeForce GTX 1080 Ti).
    pub fn with_default_device(config: FilterConfig) -> GateKeeperGpu {
        GateKeeperGpu::new(DeviceSpec::gtx_1080_ti(), config)
    }

    /// The device this instance runs on.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The user configuration.
    pub fn config(&self) -> &FilterConfig {
        &self.config
    }

    /// The derived system configuration (§3.1).
    pub fn system_config(&self) -> &SystemConfig {
        &self.system
    }

    /// Modelled cycles one fused-kernel thread spends 2-bit packing its pair
    /// (device encoding only; zero when the host already encoded).
    fn encode_cycles_per_pair(&self) -> u64 {
        match self.config.encoding {
            EncodingActor::Device => {
                gk_gpusim::encode::encode_cycles(2 * self.config.read_len as u64)
            }
            EncodingActor::Host => 0,
        }
    }

    /// Modelled device cycles for one filtration.
    fn filtration_cycles(&self, decision: &FilterDecision) -> u64 {
        // In device-encoded mode every thread packs its pair first — an
        // undefined pair is only *discovered* during that packing pass, so
        // even pass-through threads pay the encode cycles.
        let encode = self.encode_cycles_per_pair();
        if decision.undefined {
            return CYCLES_UNDEFINED + encode;
        }
        let words = self.config.words_per_sequence() as u64;
        let masks = 2 * self.config.threshold as u64 + 1;
        CYCLES_BASE
            + masks * words * CYCLES_PER_MASK_WORD
            + encode
            + decision.estimated_edits as u64 * CYCLES_PER_EDIT
    }

    /// The resolved pipeline chunk plan for this instance.
    pub fn chunk_plan(&self) -> ChunkPlan {
        ChunkPlan::resolve(&self.config, &self.system)
    }

    /// Runs the device side of one pipeline chunk (unified-memory traffic,
    /// kernel launch, result read-back) over its prepared input: packed words
    /// in host-encoded mode, a zero-copy raw-arena view in device-encoded
    /// mode (where the kernel is the fused encode+filter variant).
    fn device_stage(
        &self,
        batch_len: usize,
        input: ChunkInput<'_>,
        memory: &mut UnifiedMemory,
        profiler: &mut Profiler,
    ) -> DeviceOutcome {
        // Unified-memory buffers: reads, reference segments, results. The
        // H2D size follows the prepared input itself: packed 2-bit words in
        // host-encoded mode, the raw arena's actual footprint (stride-padded
        // 1-byte bases — padding crosses the link like real bases) in
        // device-encoded mode, so the arena is the single source of truth
        // for raw-mode transfer accounting.
        memory.reset();
        let input_bytes = match &input {
            ChunkInput::Encoded(_) => {
                2 * self.config.words_per_sequence() as u64 * 4 * batch_len as u64
            }
            ChunkInput::Raw(raw) => raw.h2d_bytes(),
        };
        let result_bytes = 8 * batch_len as u64;
        let reads_buffer = memory
            .alloc(input_bytes / 2)
            .expect("batch sized beyond device memory despite system configuration");
        let refs_buffer = memory
            .alloc(input_bytes / 2)
            .expect("batch sized beyond device memory despite system configuration");
        let results_buffer = memory
            .alloc(result_bytes)
            .expect("result buffer allocation failed");

        // memAdvise + asynchronous prefetch on separate streams (§3.4). The PCIe
        // link is shared, so the modelled transfer cost is the sum of the per-buffer
        // prefetches even though they are enqueued on different streams.
        memory
            .mem_advise(reads_buffer, MemAdvise::PreferredLocationDevice)
            .expect("valid buffer");
        memory
            .mem_advise(refs_buffer, MemAdvise::PreferredLocationDevice)
            .expect("valid buffer");
        let mut prefetch_stream_reads = Stream::new("prefetch-reads");
        let mut prefetch_stream_refs = Stream::new("prefetch-refs");
        let mut prefetch_seconds = 0.0;
        // Per-buffer page-rounded prefetch traffic, captured for the multi-GPU
        // contention replay. The buffers are freshly allocated fully
        // host-resident, so each prefetch moves exactly `page_count` pages —
        // the byte counts reproduce `t_reads`/`t_refs` exactly under
        // `PcieLink::transfer_seconds`. Prefetch-less devices move nothing
        // here; their fault traffic is already folded into the kernel stage.
        let mut h2d_bytes = [0u64; 2];
        if self.device.supports_prefetch() {
            for (slot, buffer) in [reads_buffer, refs_buffer].into_iter().enumerate() {
                h2d_bytes[slot] = memory.buffer(buffer).expect("valid buffer").page_count() as u64
                    * PAGE_SIZE as u64;
            }
            let t_reads = memory
                .prefetch_to_device(reads_buffer)
                .expect("valid buffer");
            let t_refs = memory
                .prefetch_to_device(refs_buffer)
                .expect("valid buffer");
            prefetch_stream_reads.enqueue("prefetch reads", t_reads);
            prefetch_stream_refs.enqueue("prefetch refs", t_refs);
            prefetch_seconds = t_reads + t_refs;
        }

        // Stage 2 (device): kernel launch, one filtration per thread (scalar
        // mode) or one warp-like lane group of four per task (lane mode). In
        // host-encoded mode the threads consume pre-packed words; in
        // device-encoded mode they run the fused kernel — pack the raw bases
        // they were handed, then filter — which is what makes the two paths
        // byte-identical: both end up filtering the same 2-bit sequences.
        let use_lanes = self.simd == SimdMode::Lanes;
        let decisions: Vec<FilterDecision> = match input {
            ChunkInput::Encoded(encoded) if use_lanes => encoded
                .par_chunks(LANE_BLOCK_PAIRS)
                .flat_map(|block| {
                    let refs: Vec<(&PackedSeq, &PackedSeq)> = block
                        .iter()
                        .map(|(read, reference)| (read, reference))
                        .collect();
                    gatekeeper_filter_block_packed(&refs, &self.kernel_config, SimdMode::Lanes)
                })
                .collect(),
            ChunkInput::Encoded(encoded) => encoded
                .par_iter()
                .map(|(read, reference)| {
                    if read.is_undefined() || reference.is_undefined() {
                        FilterDecision::undefined_pass()
                    } else {
                        gatekeeper_kernel_reference(read, reference, &self.kernel_config)
                    }
                })
                .collect(),
            ChunkInput::Raw(raw) if use_lanes => {
                let starts: Vec<usize> = (0..raw.len()).step_by(LANE_BLOCK_PAIRS).collect();
                starts
                    .into_par_iter()
                    .flat_map(|start| {
                        let end = (start + LANE_BLOCK_PAIRS).min(raw.len());
                        let slices: Vec<(&[u8], &[u8])> = (start..end)
                            .map(|i| (raw.read(i), raw.reference(i)))
                            .collect();
                        gatekeeper_filter_block_slices(
                            &slices,
                            &self.kernel_config,
                            SimdMode::Lanes,
                        )
                    })
                    .collect()
            }
            ChunkInput::Raw(raw) => (0..raw.len())
                .into_par_iter()
                .map(|i| {
                    let read = PackedSeq::from_ascii(raw.read(i));
                    let reference = PackedSeq::from_ascii(raw.reference(i));
                    if read.is_undefined() || reference.is_undefined() {
                        FilterDecision::undefined_pass()
                    } else {
                        gatekeeper_kernel_reference(&read, &reference, &self.kernel_config)
                    }
                })
                .collect(),
        };

        // On devices without prefetch support the kernel's first touch of each page
        // faults and migrates on demand; that cost lands in the kernel's critical
        // path but is accounted as transfer time for reporting, as in §4.3.
        let fault_reads = memory
            .access_from_device(reads_buffer)
            .expect("valid buffer");
        let fault_refs = memory
            .access_from_device(refs_buffer)
            .expect("valid buffer");
        let fault_seconds = fault_reads + fault_refs;

        let launch = self.system.launch_config(&self.device, batch_len);
        // The fused encode+filter kernel keeps encode scratch live and costs
        // a few extra registers (gk_gpusim::encode); at 1024-thread blocks
        // both variants still fit one block per SM (§5.4.1).
        let resources = match self.config.encoding {
            EncodingActor::Device => KernelResources::gatekeeper_gpu_device_encode(&self.device),
            EncodingActor::Host => KernelResources::gatekeeper_gpu(&self.device),
        };
        let stats = launch_kernel(&self.device, &resources, launch, |ctx| {
            match decisions.get(ctx.global_idx) {
                Some(decision) => ThreadReport {
                    cycles: self.filtration_cycles(decision),
                    active: true,
                },
                None => ThreadReport::idle(),
            }
        });
        // Attribute the in-kernel encode share of the fused kernel by its
        // cycle fraction (every thread with a pair packs 2 × read_len bases).
        let encode_device_seconds = if stats.total_cycles > 0 {
            let encode_cycles = batch_len as u64 * self.encode_cycles_per_pair();
            stats.kernel_seconds * encode_cycles as f64 / stats.total_cycles as f64
        } else {
            0.0
        };
        let kernel_seconds = stats.kernel_seconds + KERNEL_LAUNCH_OVERHEAD_S;
        profiler.record(
            "gatekeeper_gpu_kernel",
            stats,
            self.config.words_per_sequence(),
        );

        // Stage 3 (D2H): the host reads the result buffer back for verification.
        // Only device-resident pages migrate back, so the byte count mirrors
        // the modelled read-back time exactly (zero while the result buffer
        // stays host-resident end to end, the current unified-memory quirk).
        let d2h_bytes = memory
            .buffer(results_buffer)
            .expect("valid buffer")
            .device_resident_pages() as u64
            * PAGE_SIZE as u64;
        let readback_seconds = memory
            .access_from_host(results_buffer)
            .expect("valid buffer");

        DeviceOutcome {
            decisions,
            prefetch_seconds,
            h2d_bytes,
            fault_seconds,
            kernel_seconds,
            encode_device_seconds,
            readback_seconds,
            d2h_bytes,
        }
    }

    /// Filters a whole pair set through the chunked pipeline, reproducing the
    /// paper's kernel-time / filter-time split (with the stream-overlapped
    /// makespan as the filter time when [`FilterConfig::overlap`] is on).
    pub fn filter_set(&self, pairs: &PairSet) -> FilterRun {
        let mut engine = PipelineEngine::new(self);
        let mut decisions = Vec::with_capacity(pairs.len());
        let mut sink = |_: &[SequencePair], chunk_decisions: Vec<FilterDecision>| {
            decisions.extend(chunk_decisions)
        };
        engine.feed(&pairs.pairs, &mut sink);
        engine.flush(&mut sink);
        engine.into_run(decisions)
    }

    /// Filters an explicit sequence of pair slices (e.g. the round-robin chunk
    /// shares of one device in a multi-GPU run) through a single pipeline.
    pub fn filter_chunks<'a, I>(&self, chunks: I) -> FilterRun
    where
        I: IntoIterator<Item = &'a [SequencePair]>,
    {
        let mut engine = PipelineEngine::new(self);
        let mut decisions = Vec::new();
        let mut sink = |_: &[SequencePair], chunk_decisions: Vec<FilterDecision>| {
            decisions.extend(chunk_decisions)
        };
        for chunk in chunks {
            engine.feed(chunk, &mut sink);
        }
        engine.flush(&mut sink);
        engine.into_run(decisions)
    }

    /// Filters a stream of pair batches without materializing the full pair set
    /// *or* the full decision vector: only aggregate counts, timing and memory
    /// traffic are retained. This is the whole-genome-scale entry point (30M
    /// pairs in the paper's sets).
    pub fn filter_stream<I>(&self, batches: I) -> StreamFilterRun
    where
        I: IntoIterator<Item = Vec<SequencePair>>,
    {
        self.filter_stream_with(batches, |_, _| {})
    }

    /// Like [`GateKeeperGpu::filter_stream`], handing each chunk's pairs and
    /// decisions to `sink` before they are dropped (for callers that persist or
    /// post-process decisions incrementally).
    pub fn filter_stream_with<I, F>(&self, batches: I, mut sink: F) -> StreamFilterRun
    where
        I: IntoIterator<Item = Vec<SequencePair>>,
        F: FnMut(&[SequencePair], &[FilterDecision]),
    {
        let mut engine = PipelineEngine::new(self);
        let mut pairs = 0usize;
        let mut accepted = 0usize;
        let mut undefined = 0usize;
        let mut counting_sink = |chunk: &[SequencePair], chunk_decisions: Vec<FilterDecision>| {
            pairs += chunk_decisions.len();
            accepted += chunk_decisions.iter().filter(|d| d.accepted).count();
            undefined += chunk_decisions.iter().filter(|d| d.undefined).count();
            sink(chunk, &chunk_decisions);
        };
        for batch in batches {
            engine.feed_owned(batch, &mut counting_sink);
        }
        engine.flush(&mut counting_sink);
        engine.into_stream_run(pairs, accepted, undefined)
    }
}

/// Decisions plus per-stage modelled durations of one chunk's *device* side
/// (everything downstream of the host prep).
struct DeviceOutcome {
    decisions: Vec<FilterDecision>,
    prefetch_seconds: f64,
    /// Page-rounded prefetch bytes per input buffer (reads, refs); zero on
    /// prefetch-less devices.
    h2d_bytes: [u64; 2],
    fault_seconds: f64,
    kernel_seconds: f64,
    /// In-kernel encode share of `kernel_seconds` (fused kernel only).
    encode_device_seconds: f64,
    readback_seconds: f64,
    /// Page-rounded result-buffer bytes migrating back to the host.
    d2h_bytes: u64,
}

/// Owned output of one chunk's prep stage — what travels through the prefetch
/// executor's pool tasks.
enum ChunkData {
    /// Host-encoded mode: the packed 2-bit words, ready for the plain kernel.
    Encoded(Vec<(PackedSeq, PackedSeq)>),
    /// Device-encoded mode: the raw transfer arena; the fused kernel packs it.
    Raw(RawPairBatch),
}

impl ChunkData {
    fn as_input(&self) -> ChunkInput<'_> {
        match self {
            ChunkData::Encoded(encoded) => ChunkInput::Encoded(encoded),
            ChunkData::Raw(raw) => ChunkInput::Raw(raw.view()),
        }
    }
}

/// Borrowed view of one chunk's prepared input, as the device stage consumes
/// it.
enum ChunkInput<'a> {
    /// Packed 2-bit words (host-encoded mode).
    Encoded(&'a [(PackedSeq, PackedSeq)]),
    /// Raw 1-byte-per-base arena view (device-encoded mode).
    Raw(RawPairSlice<'a>),
}

/// Owned prepped chunk produced ahead of time by the prefetch executor.
struct PreppedChunk {
    pairs: Vec<SequencePair>,
    data: ChunkData,
    host_prep_seconds: f64,
    encode_seconds: f64,
}

/// The host stage of one chunk: buffer preparation, plus — in host-encoded
/// mode only — the 2-bit packing. In device-encoded mode the host merely
/// *gathers* the raw bases into the flat transfer arena; no `PackedSeq` is
/// ever built on the host, which is the whole point of the path. A free
/// function over owned/`Copy` inputs so the prefetch executor can run it as a
/// `'static` task on the worker pool.
fn prep_stage(
    batch: &[SequencePair],
    read_len: usize,
    encoding: EncodingActor,
) -> (ChunkData, f64, f64) {
    let host_prep_seconds = batch.len() as f64 * HOST_PREP_SECONDS_PER_PAIR;
    match encoding {
        EncodingActor::Host => {
            let encoded: Vec<(PackedSeq, PackedSeq)> = encode_pair_batch(batch);
            let encode_seconds =
                2.0 * batch.len() as f64 * read_len as f64 / HOST_ENCODE_BASES_PER_SECOND;
            (
                ChunkData::Encoded(encoded),
                host_prep_seconds,
                encode_seconds,
            )
        }
        EncodingActor::Device => (
            ChunkData::Raw(RawPairBatch::from_pairs(batch)),
            host_prep_seconds,
            0.0,
        ),
    }
}

/// Stateful chunked execution of one filtering run on one device: owns the
/// unified-memory arena, the profiler and the pipeline schedule, and is fed
/// pair slices in input order by the `filter_*` entry points.
///
/// With [`FilterConfig::host_prefetch`] on (and a parallel worker pool), the
/// engine is a *wall-clock* prefetch executor: each chunk's prep+encode is
/// dispatched as a task on the shared pool, so chunk *i+1* encodes while chunk
/// *i*'s kernel closure runs on the caller. At most [`PREFETCH_IN_FLIGHT`]
/// encoded chunks exist at any moment, keeping memory bounded, and chunks are
/// drained strictly in input order so decisions, sink calls and the simulated
/// timeline are byte-identical to the serial path.
struct PipelineEngine<'g> {
    gpu: &'g GateKeeperGpu,
    plan: ChunkPlan,
    memory: UnifiedMemory,
    profiler: Profiler,
    schedule: PipelineSchedule,
    timing: TimingBreakdown,
    /// One [`ChunkLoad`] per completed chunk, in pipeline order, for the
    /// multi-GPU contention replay.
    chunk_loads: Vec<ChunkLoad>,
    /// True when the engine actually dispatches encode tasks to the pool
    /// (knob on *and* the pool is parallel — under `RAYON_NUM_THREADS=1` the
    /// engine keeps today's serial path).
    prefetch: bool,
    /// Prep tasks in flight, oldest chunk first.
    pending: VecDeque<rayon::JoinHandle<PreppedChunk>>,
    wall_start: Instant,
}

impl<'g> PipelineEngine<'g> {
    fn new(gpu: &'g GateKeeperGpu) -> PipelineEngine<'g> {
        PipelineEngine {
            plan: gpu.chunk_plan(),
            memory: UnifiedMemory::new(gpu.device.clone()),
            profiler: Profiler::new(gpu.device.clone()),
            schedule: PipelineSchedule::new(),
            timing: TimingBreakdown::default(),
            chunk_loads: Vec::new(),
            prefetch: gpu.config.host_prefetch && rayon::current_num_threads() > 1,
            pending: VecDeque::with_capacity(PREFETCH_IN_FLIGHT),
            wall_start: Instant::now(),
            gpu,
        }
    }

    /// Cuts `pairs` into plan-sized chunks and runs each through the three
    /// stages, handing every chunk's decisions to `sink` in input order. In
    /// prefetch mode the encode of the newest chunk runs on the pool while
    /// older chunks' kernel closures execute here; callers must [`Self::flush`]
    /// after the last `feed` to drain what is still in flight.
    fn feed<F>(&mut self, pairs: &[SequencePair], sink: &mut F)
    where
        F: FnMut(&[SequencePair], Vec<FilterDecision>),
    {
        let size = self.plan.chunk_pairs.max(1);
        if self.prefetch {
            for chunk in pairs.chunks(size) {
                self.spawn_prep(chunk.to_vec());
                while self.pending.len() >= PREFETCH_IN_FLIGHT {
                    self.drain_one(sink);
                }
            }
        } else {
            // One prep per chunk in both encode modes: a whole-slice raw
            // arena would copy exactly the same bytes while holding the
            // entire fed slice live, breaking the bounded-memory contract
            // for big materialized sets.
            for chunk in pairs.chunks(size) {
                let (data, host_prep_seconds, encode_seconds) =
                    prep_stage(chunk, self.gpu.config.read_len, self.gpu.config.encoding);
                self.complete_chunk(
                    chunk,
                    data.as_input(),
                    host_prep_seconds,
                    encode_seconds,
                    sink,
                );
            }
        }
    }

    /// Like [`Self::feed`], but takes ownership of the batch so prefetch-mode
    /// chunks *move* into their encode tasks instead of being cloned — the
    /// whole-genome streaming path, where batches are produced owned anyway.
    fn feed_owned<F>(&mut self, batch: Vec<SequencePair>, sink: &mut F)
    where
        F: FnMut(&[SequencePair], Vec<FilterDecision>),
    {
        if !self.prefetch {
            return self.feed(&batch, sink);
        }
        let size = self.plan.chunk_pairs.max(1);
        let mut source = batch.into_iter();
        loop {
            let chunk: Vec<SequencePair> = source.by_ref().take(size).collect();
            if chunk.is_empty() {
                break;
            }
            self.spawn_prep(chunk);
            while self.pending.len() >= PREFETCH_IN_FLIGHT {
                self.drain_one(sink);
            }
        }
    }

    /// Dispatches one owned chunk's prep (gather, plus encode in host mode)
    /// as a task on the worker pool.
    fn spawn_prep(&mut self, owned: Vec<SequencePair>) {
        let read_len = self.gpu.config.read_len;
        let encoding = self.gpu.config.encoding;
        self.pending.push_back(rayon::spawn(move || {
            let (data, host_prep_seconds, encode_seconds) = prep_stage(&owned, read_len, encoding);
            PreppedChunk {
                pairs: owned,
                data,
                host_prep_seconds,
                encode_seconds,
            }
        }));
    }

    /// Drains every prep task still in flight, in input order.
    fn flush<F>(&mut self, sink: &mut F)
    where
        F: FnMut(&[SequencePair], Vec<FilterDecision>),
    {
        while !self.pending.is_empty() {
            self.drain_one(sink);
        }
    }

    fn drain_one<F>(&mut self, sink: &mut F)
    where
        F: FnMut(&[SequencePair], Vec<FilterDecision>),
    {
        if let Some(handle) = self.pending.pop_front() {
            let chunk = handle.join();
            self.complete_chunk(
                &chunk.pairs,
                chunk.data.as_input(),
                chunk.host_prep_seconds,
                chunk.encode_seconds,
                sink,
            );
        }
    }

    /// Runs the device side of one encoded chunk and records its stages on the
    /// simulated timeline — identical bookkeeping whether the encode happened
    /// inline or ahead of time on the pool.
    fn complete_chunk<F>(
        &mut self,
        pairs: &[SequencePair],
        input: ChunkInput<'_>,
        host_prep_seconds: f64,
        encode_seconds: f64,
        sink: &mut F,
    ) where
        F: FnMut(&[SequencePair], Vec<FilterDecision>),
    {
        let gpu = self.gpu;
        let device = gpu.device_stage(pairs.len(), input, &mut self.memory, &mut self.profiler);
        // Page faults sit on the kernel's critical path (§4.3) even though
        // reporting accounts them as transfer time.
        let stages = ChunkStageSeconds {
            h2d_seconds: host_prep_seconds + encode_seconds + device.prefetch_seconds,
            kernel_seconds: device.fault_seconds + device.kernel_seconds,
            d2h_seconds: device.readback_seconds,
        };
        self.schedule.record_chunk(&stages);
        self.chunk_loads.push(ChunkLoad {
            host_seconds: host_prep_seconds + encode_seconds,
            h2d_bytes: device.h2d_bytes,
            kernel_seconds: device.fault_seconds + device.kernel_seconds,
            d2h_bytes: device.d2h_bytes,
        });
        self.timing.host_prep_seconds += host_prep_seconds;
        self.timing.encode_seconds += encode_seconds;
        self.timing.encode_device_seconds += device.encode_device_seconds;
        self.timing.transfer_seconds += device.prefetch_seconds + device.fault_seconds;
        self.timing.kernel_seconds += device.kernel_seconds;
        self.timing.readback_seconds += device.readback_seconds;
        sink(pairs, device.decisions);
    }

    fn finish(
        mut self,
    ) -> (
        TimingBreakdown,
        PipelineReport,
        RunAggregates,
        Vec<ChunkLoad>,
    ) {
        debug_assert!(
            self.pending.is_empty(),
            "pipeline engine finished with encode tasks still in flight"
        );
        let overlap = self.gpu.config.overlap;
        if overlap && self.schedule.chunks() > 0 {
            self.timing.overlapped_seconds = Some(self.schedule.overlapped_seconds());
        }
        self.timing.host_wall_seconds = self.wall_start.elapsed().as_secs_f64();
        let report = self.schedule.report(
            self.plan.chunk_pairs,
            overlap,
            self.prefetch,
            self.gpu.config.device_encode(),
        );
        let aggregates = RunAggregates {
            batches: self.schedule.chunks(),
            memory_stats: self.memory.stats(),
            achieved_occupancy: self.profiler.average_achieved_occupancy(),
            theoretical_occupancy: self
                .profiler
                .profiles()
                .first()
                .map(|p| p.stats.theoretical_occupancy)
                .unwrap_or(0.0),
            warp_execution_efficiency: self.profiler.average_warp_execution_efficiency(),
            sm_efficiency: self.profiler.average_sm_efficiency(),
            power: self.profiler.aggregate_power(),
        };
        (self.timing, report, aggregates, self.chunk_loads)
    }

    fn into_run(self, decisions: Vec<FilterDecision>) -> FilterRun {
        let (timing, pipeline, agg, chunk_loads) = self.finish();
        FilterRun {
            decisions,
            timing,
            batches: agg.batches,
            memory_stats: agg.memory_stats,
            achieved_occupancy: agg.achieved_occupancy,
            theoretical_occupancy: agg.theoretical_occupancy,
            warp_execution_efficiency: agg.warp_execution_efficiency,
            sm_efficiency: agg.sm_efficiency,
            power: agg.power,
            pipeline,
            chunk_loads,
        }
    }

    fn into_stream_run(self, pairs: usize, accepted: usize, undefined: usize) -> StreamFilterRun {
        // The per-chunk loads are dropped here on purpose: the streaming entry
        // point promises bounded memory regardless of stream length.
        let (timing, pipeline, agg, _) = self.finish();
        StreamFilterRun {
            pairs,
            accepted,
            undefined,
            timing,
            batches: agg.batches,
            memory_stats: agg.memory_stats,
            pipeline,
        }
    }
}

/// Profiler/memory aggregates shared by both run flavours.
struct RunAggregates {
    batches: usize,
    memory_stats: MemoryStats,
    achieved_occupancy: f64,
    theoretical_occupancy: f64,
    warp_execution_efficiency: f64,
    sm_efficiency: f64,
    power: Option<PowerReport>,
}

impl PreAlignmentFilter for GateKeeperGpu {
    fn name(&self) -> &str {
        "GateKeeper-GPU"
    }

    fn threshold(&self) -> u32 {
        self.config.threshold
    }

    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision {
        let read_packed = PackedSeq::from_ascii(read);
        let ref_packed = PackedSeq::from_ascii(reference);
        if read_packed.is_undefined() || ref_packed.is_undefined() {
            return FilterDecision::undefined_pass();
        }
        gatekeeper_kernel(&read_packed, &ref_packed, &self.kernel_config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_filters::GateKeeperGpuFilter;
    use gk_seq::datasets::DatasetProfile;

    fn pairs(count: usize) -> PairSet {
        DatasetProfile::set3().generate(count, 123)
    }

    fn gpu(threshold: u32, encoding: EncodingActor) -> GateKeeperGpu {
        GateKeeperGpu::with_default_device(
            FilterConfig::new(100, threshold).with_encoding(encoding),
        )
    }

    #[test]
    fn decisions_match_the_reference_filter_implementation() {
        let set = pairs(1_500);
        let run = gpu(5, EncodingActor::Device).filter_set(&set);
        let reference = GateKeeperGpuFilter::new(5);
        for (pair, decision) in set.pairs.iter().zip(run.decisions.iter()) {
            let expected = reference.filter_pair(&pair.read, &pair.reference);
            assert_eq!(decision.accepted, expected.accepted);
        }
    }

    #[test]
    fn encoding_actor_does_not_change_decisions() {
        let set = pairs(800);
        let host = gpu(5, EncodingActor::Host).filter_set(&set);
        let device = gpu(5, EncodingActor::Device).filter_set(&set);
        assert_eq!(host.decisions, device.decisions);
    }

    #[test]
    fn device_encode_skips_the_host_encode_and_reports_the_kernel_split() {
        let set = pairs(1_200);
        let host = gpu(4, EncodingActor::Host).filter_set(&set);
        let device = gpu(4, EncodingActor::Device).filter_set(&set);
        // Host path: encode time on the host, none inside the kernel.
        assert!(host.timing.encode_seconds > 0.0);
        assert_eq!(host.timing.encode_device_seconds, 0.0);
        assert!(!host.pipeline.device_encode);
        // Device path: zero host encode, a positive in-kernel share that
        // stays strictly inside the kernel time.
        assert_eq!(device.timing.encode_seconds, 0.0);
        assert!(device.timing.encode_device_seconds > 0.0);
        assert!(device.timing.encode_device_seconds < device.timing.kernel_seconds);
        assert!(device.pipeline.device_encode);
        // The host-side encode share is strictly lower (zero) on the device
        // path — the acceptance bar of the device-encoding tentpole.
        assert!(device.timing.host_encode_share() < host.timing.host_encode_share());
    }

    #[test]
    fn device_encode_transfers_more_bytes_over_the_link() {
        // Raw 1-byte-per-base uploads are ~4× the packed 2-bit words (100 bp:
        // 200 raw bytes vs 56 packed bytes per pair). Unified memory moves
        // whole 64 KiB pages, so the batch must be big enough for the
        // rounding not to blunt the ratio.
        let set = pairs(4_000);
        let host = gpu(4, EncodingActor::Host).filter_set(&set);
        let device = gpu(4, EncodingActor::Device).filter_set(&set);
        assert!(device.memory_stats.bytes_to_device > 3 * host.memory_stats.bytes_to_device);
        // Result read-back is mode-independent.
        assert_eq!(
            device.memory_stats.bytes_to_host,
            host.memory_stats.bytes_to_host
        );
    }

    #[test]
    fn device_encode_matches_host_across_chunking_overlap_and_streaming() {
        let profile = DatasetProfile::set3();
        let set = profile.generate(1_100, 19);
        for chunk in [1usize, 137, 5_000] {
            let base = FilterConfig::new(100, 5)
                .with_chunk_pairs(chunk)
                .with_overlap(true);
            let host =
                GateKeeperGpu::with_default_device(base.with_device_encode(false)).filter_set(&set);
            let device =
                GateKeeperGpu::with_default_device(base.with_device_encode(true)).filter_set(&set);
            assert_eq!(host.decisions, device.decisions, "chunk {chunk}");
            assert_eq!(host.batches, device.batches);

            // Streamed device-encode equals materialized device-encode.
            let gpu = GateKeeperGpu::with_default_device(base.with_device_encode(true));
            let mut streamed_decisions = Vec::new();
            let streamed = gpu
                .filter_stream_with(profile.stream_batches(1_100, 19, 400), |_, decisions| {
                    streamed_decisions.extend_from_slice(decisions)
                });
            assert_eq!(streamed.pairs, set.len());
            assert_eq!(streamed_decisions, device.decisions, "chunk {chunk}");
            assert_eq!(streamed.timing.encode_seconds, 0.0);
            assert!(streamed.timing.encode_device_seconds > 0.0);
        }
    }

    #[test]
    fn device_encode_handles_undefined_and_huge_thresholds() {
        // Undefined pairs are discovered inside the fused kernel's packing
        // pass, and the e >= read_len clamp (PR 4) must hold on the raw path.
        let mut profile = DatasetProfile::set3();
        profile.undefined_fraction = 0.15;
        let set = profile.generate(600, 77);
        for threshold in [99u32, 100, 101, u32::MAX] {
            let host = gpu(threshold, EncodingActor::Host).filter_set(&set);
            let device = gpu(threshold, EncodingActor::Device).filter_set(&set);
            assert_eq!(host.decisions, device.decisions, "e = {threshold}");
            let undefined = device.decisions.iter().filter(|d| d.undefined).count();
            assert_eq!(undefined, set.undefined_count());
        }
    }

    #[test]
    fn host_encoding_trades_kernel_time_for_filter_time() {
        // Figure 6: host encoding gives higher *kernel* throughput (less kernel
        // work) but lower *filter* throughput (host encode dominates).
        let set = pairs(3_000);
        let host = gpu(4, EncodingActor::Host).filter_set(&set);
        let device = gpu(4, EncodingActor::Device).filter_set(&set);
        assert!(host.kernel_seconds() < device.kernel_seconds());
        assert!(host.filter_seconds() > device.filter_seconds());
    }

    #[test]
    fn kernel_time_grows_with_error_threshold_but_filter_time_barely_moves() {
        let set = pairs(3_000);
        let low = gpu(2, EncodingActor::Device).filter_set(&set);
        let high = gpu(10, EncodingActor::Device).filter_set(&set);
        assert!(high.kernel_seconds() > low.kernel_seconds());
        // Filter time is dominated by host prep + transfer, so the relative growth
        // is much smaller than the kernel-time growth.
        let kernel_growth = high.kernel_seconds() / low.kernel_seconds();
        let filter_growth = high.filter_seconds() / low.filter_seconds();
        assert!(kernel_growth > filter_growth);
    }

    #[test]
    fn kepler_setup_is_slower_than_pascal() {
        let set = pairs(2_000);
        let config = FilterConfig::new(100, 5);
        let pascal = GateKeeperGpu::new(DeviceSpec::gtx_1080_ti(), config).filter_set(&set);
        let kepler = GateKeeperGpu::new(DeviceSpec::tesla_k20x(), config).filter_set(&set);
        assert!(kepler.kernel_seconds() > pascal.kernel_seconds());
        assert!(kepler.filter_seconds() > pascal.filter_seconds());
        // Kepler cannot prefetch, so it page-faults.
        assert!(kepler.memory_stats.page_faults > 0);
        assert_eq!(pascal.memory_stats.page_faults, 0);
    }

    #[test]
    fn batching_respects_max_reads_per_batch() {
        let set = pairs(2_000);
        let run = GateKeeperGpu::with_default_device(
            FilterConfig::new(100, 4).with_max_reads_per_batch(500),
        )
        .filter_set(&set);
        assert_eq!(run.batches, 4);
        assert_eq!(run.decisions.len(), set.len());
        let single = GateKeeperGpu::with_default_device(FilterConfig::new(100, 4)).filter_set(&set);
        assert_eq!(single.batches, 1);
        assert_eq!(single.decisions, run.decisions);
    }

    #[test]
    fn fewer_larger_batches_reduce_filter_time() {
        // Table 1: increasing reads per batch decreases the overall/filter time
        // because the number of transfers shrinks.
        let set = pairs(4_000);
        let small_batches = GateKeeperGpu::with_default_device(
            FilterConfig::new(100, 4).with_max_reads_per_batch(100),
        )
        .filter_set(&set);
        let large_batches = GateKeeperGpu::with_default_device(
            FilterConfig::new(100, 4).with_max_reads_per_batch(4_000),
        )
        .filter_set(&set);
        assert!(small_batches.batches > large_batches.batches);
        assert!(small_batches.filter_seconds() > large_batches.filter_seconds());
    }

    #[test]
    fn occupancy_matches_the_paper_analysis() {
        let set = pairs(5_000);
        let run = gpu(4, EncodingActor::Device).filter_set(&set);
        assert!((run.theoretical_occupancy - 0.5).abs() < 1e-9);
        assert!(run.achieved_occupancy > 0.0 && run.achieved_occupancy <= 0.5);
        assert!(run.warp_execution_efficiency > 0.5);
        assert!(run.sm_efficiency > 0.0);
    }

    #[test]
    fn power_report_present_and_consistent() {
        let set = pairs(2_000);
        let run = gpu(4, EncodingActor::Device).filter_set(&set);
        let power = run.power.expect("power report");
        assert!(power.min_mw <= power.average_mw && power.average_mw <= power.max_mw);
    }

    #[test]
    fn overlap_keeps_decisions_but_shrinks_filter_time() {
        let set = pairs(4_000);
        let serialized =
            GateKeeperGpu::with_default_device(FilterConfig::new(100, 4).with_chunk_pairs(500))
                .filter_set(&set);
        let overlapped = GateKeeperGpu::with_default_device(
            FilterConfig::new(100, 4)
                .with_chunk_pairs(500)
                .with_overlap(true),
        )
        .filter_set(&set);
        // Byte-identical decisions, identical component accounting…
        assert_eq!(serialized.decisions, overlapped.decisions);
        assert_eq!(serialized.batches, 8);
        assert_eq!(overlapped.batches, 8);
        assert_eq!(
            serialized.timing.kernel_seconds,
            overlapped.timing.kernel_seconds
        );
        // …but a strictly lower end-to-end filter time from the overlap.
        assert!(overlapped.filter_seconds() < serialized.filter_seconds());
        assert!(
            (serialized.filter_seconds() - serialized.timing.serialized_seconds()).abs() < 1e-12
        );
        assert!(overlapped.timing.overlap_savings_seconds() > 0.0);
        assert!(overlapped.pipeline.overlap);
        assert!(overlapped.pipeline.speedup() > 1.0);
        // The serialized run still reports what overlap *would* save.
        assert!(serialized.pipeline.overlapped_seconds < serialized.pipeline.serialized_seconds);
    }

    #[test]
    fn single_chunk_runs_cannot_overlap() {
        let set = pairs(1_000);
        let run = GateKeeperGpu::with_default_device(
            FilterConfig::new(100, 4)
                .with_chunk_pairs(10_000)
                .with_overlap(true),
        )
        .filter_set(&set);
        assert_eq!(run.batches, 1);
        assert!((run.filter_seconds() - run.timing.serialized_seconds()).abs() < 1e-12);
    }

    #[test]
    fn filter_stream_matches_filter_set_counts_and_batches() {
        let profile = DatasetProfile::set3();
        let set = profile.generate(3_000, 77);
        let config = FilterConfig::new(100, 5)
            .with_chunk_pairs(400)
            .with_overlap(true);
        let gpu = GateKeeperGpu::with_default_device(config);
        let run = gpu.filter_set(&set);

        // The same pairs delivered as a stream of uneven batches.
        let batches: Vec<Vec<SequencePair>> =
            set.pairs.chunks(700).map(|chunk| chunk.to_vec()).collect();
        let mut streamed_decisions = Vec::new();
        let streamed = gpu.filter_stream_with(batches, |_, decisions| {
            streamed_decisions.extend_from_slice(decisions)
        });
        assert_eq!(streamed.pairs, set.len());
        assert_eq!(streamed.accepted, run.accepted());
        assert_eq!(streamed.rejected(), run.rejected());
        assert_eq!(streamed.undefined, set.undefined_count());
        assert_eq!(streamed_decisions, run.decisions);
        // Stream batches re-chunk at the plan size, but batch boundaries (700)
        // also cut chunks, so the stream sees more kernel launches.
        assert!(streamed.batches >= run.batches);
        assert!(streamed.filter_seconds() > 0.0);
    }

    #[test]
    fn host_prefetch_keeps_everything_but_wall_clock_identical() {
        let set = pairs(3_000);
        for encoding in [EncodingActor::Host, EncodingActor::Device] {
            let base = FilterConfig::new(100, 4)
                .with_encoding(encoding)
                .with_chunk_pairs(250)
                .with_overlap(true);
            let serial = GateKeeperGpu::with_default_device(base).filter_set(&set);
            let prefetched =
                GateKeeperGpu::with_default_device(base.with_host_prefetch(true)).filter_set(&set);
            // Byte-identical decisions and simulated accounting (TimingBreakdown
            // equality deliberately excludes the measured wall clock).
            assert_eq!(serial.decisions, prefetched.decisions);
            assert_eq!(serial.timing, prefetched.timing);
            assert_eq!(serial.batches, prefetched.batches);
            assert_eq!(serial.memory_stats, prefetched.memory_stats);
            assert_eq!(
                serial.pipeline.overlapped_seconds,
                prefetched.pipeline.overlapped_seconds
            );
            assert_eq!(
                serial.pipeline.serialized_seconds,
                prefetched.pipeline.serialized_seconds
            );
            // Both runs measured real wall clock.
            assert!(serial.timing.host_wall_seconds > 0.0);
            assert!(prefetched.timing.host_wall_seconds > 0.0);
            assert!(!serial.pipeline.host_prefetch);
            if rayon::current_num_threads() > 1 {
                assert!(prefetched.pipeline.host_prefetch);
            }
        }
    }

    #[test]
    fn host_prefetch_falls_back_to_serial_on_a_one_thread_pool() {
        let set = pairs(800);
        let config = FilterConfig::new(100, 4)
            .with_chunk_pairs(100)
            .with_host_prefetch(true);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("one-thread pool");
        let run = pool.install(|| GateKeeperGpu::with_default_device(config).filter_set(&set));
        // The engine reports that no prefetching actually happened…
        assert!(!run.pipeline.host_prefetch);
        // …and the output matches the parallel-pool prefetched run exactly.
        let reference = GateKeeperGpu::with_default_device(config).filter_set(&set);
        assert_eq!(run.decisions, reference.decisions);
        assert_eq!(run.timing, reference.timing);
    }

    #[test]
    fn host_prefetch_streaming_matches_materialized() {
        let profile = DatasetProfile::set3();
        let set = profile.generate(2_400, 55);
        let config = FilterConfig::new(100, 5)
            .with_chunk_pairs(300)
            .with_overlap(true)
            .with_host_prefetch(true);
        let gpu = GateKeeperGpu::with_default_device(config);
        let materialized = gpu.filter_set(&set);
        let mut streamed_decisions = Vec::new();
        let streamed = gpu
            .filter_stream_with(profile.stream_batches(2_400, 55, 700), |_, decisions| {
                streamed_decisions.extend_from_slice(decisions)
            });
        assert_eq!(streamed.pairs, set.len());
        assert_eq!(streamed_decisions, materialized.decisions);
        assert_eq!(streamed.accepted, materialized.accepted());
        assert_eq!(streamed.pipeline.timing_anomalies, 0);
    }

    #[test]
    fn chunk_loads_mirror_the_run_accounting() {
        let set = pairs(2_000);
        let run =
            GateKeeperGpu::with_default_device(FilterConfig::new(100, 4).with_chunk_pairs(600))
                .filter_set(&set);
        assert_eq!(run.chunk_loads.len(), run.batches);
        // Host stage and kernel stage re-aggregate exactly from the loads.
        let host: f64 = run.chunk_loads.iter().map(|l| l.host_seconds).sum();
        assert!((host - run.timing.host_prep_seconds - run.timing.encode_seconds).abs() < 1e-15);
        let kernel: f64 = run.chunk_loads.iter().map(|l| l.kernel_seconds).sum();
        // Pascal prefetches, so no fault time hides in the kernel stage.
        assert!((kernel - run.timing.kernel_seconds).abs() < 1e-15);
        // The captured H2D bytes are the prefetched pages, buffer by buffer.
        let h2d: u64 = run.chunk_loads.iter().map(|l| l.total_h2d_bytes()).sum();
        assert_eq!(h2d, run.memory_stats.bytes_to_device);
        assert!(run.chunk_loads.iter().all(|l| l.h2d_bytes[0] > 0));
        // The result buffer never becomes device-resident, so nothing
        // migrates back (the unified-memory quirk the field keeps visible).
        let d2h: u64 = run.chunk_loads.iter().map(|l| l.d2h_bytes).sum();
        assert_eq!(d2h, run.memory_stats.bytes_to_host);
    }

    #[test]
    fn kepler_chunk_loads_fold_migration_into_the_kernel_stage() {
        let set = pairs(1_000);
        let run = GateKeeperGpu::new(DeviceSpec::tesla_k20x(), FilterConfig::new(100, 4))
            .filter_set(&set);
        // No prefetch path on Kepler: the loads carry no H2D bytes, and the
        // fault-driven migration cost sits inside the kernel stage instead.
        assert!(run.chunk_loads.iter().all(|l| l.total_h2d_bytes() == 0));
        let kernel: f64 = run.chunk_loads.iter().map(|l| l.kernel_seconds).sum();
        assert!(kernel > run.timing.kernel_seconds);
        assert!((kernel - run.timing.kernel_seconds - run.timing.transfer_seconds).abs() < 1e-15);
    }

    #[test]
    fn undefined_pairs_are_passed_through() {
        let mut profile = DatasetProfile::set3();
        profile.undefined_fraction = 0.1;
        let set = profile.generate(1_000, 9);
        let run = gpu(5, EncodingActor::Device).filter_set(&set);
        let undefined = run.decisions.iter().filter(|d| d.undefined).count();
        assert_eq!(undefined, set.undefined_count());
    }

    #[test]
    fn single_pair_interface_matches_batch_decisions() {
        let set = pairs(200);
        let system = gpu(5, EncodingActor::Device);
        let run = system.filter_set(&set);
        for (pair, decision) in set.pairs.iter().zip(run.decisions.iter()) {
            assert_eq!(
                system.filter_pair(&pair.read, &pair.reference).accepted,
                decision.accepted
            );
        }
        assert_eq!(system.name(), "GateKeeper-GPU");
        assert_eq!(system.threshold(), 5);
    }
}
