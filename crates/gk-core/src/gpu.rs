//! The batched GateKeeper-GPU filtering system on the simulated device.
//!
//! This is the Rust analogue of the CUDA host code the paper describes in §3:
//! the host gathers (read, candidate reference segment) pairs into maximal batches
//! (§3.1), places the buffers in unified memory with device-preferred advice and
//! asynchronous prefetching (§3.2/§3.4), launches one kernel per batch with one
//! filtration per thread, and reads the accept/reject bit plus the approximate edit
//! distance back from the result buffer (§3.5).
//!
//! Functional behaviour (the decisions) comes from actually running the improved
//! GateKeeper kernel of `gk-filters` for every pair. Timing comes from the device
//! model in `gk-gpusim` plus a small set of host-side cost constants, calibrated so
//! the *relative* behaviour of the paper is reproduced: kernel time grows mildly
//! with the error threshold while filter time is dominated by host preparation and
//! transfers; host encoding shrinks the transfer but adds host time; prefetch-less
//! devices (Kepler) pay page-fault overhead.

use crate::config::{EncodingActor, FilterConfig, SystemConfig};
use crate::timing::TimingBreakdown;
use gk_filters::gatekeeper::{gatekeeper_kernel, GateKeeperConfig};
use gk_filters::traits::{FilterDecision, PreAlignmentFilter};
use gk_gpusim::device::DeviceSpec;
use gk_gpusim::executor::{launch_kernel, KernelResources, ThreadReport};
use gk_gpusim::memory::{MemAdvise, MemoryStats, UnifiedMemory};
use gk_gpusim::power::PowerReport;
use gk_gpusim::profiler::Profiler;
use gk_gpusim::stream::Stream;
use gk_seq::pairs::{encode_pair_batch, PairSet, SequencePair};
use gk_seq::PackedSeq;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Host-side buffer preparation cost per pair (gathering reads and candidate
/// indices into the transfer buffers, §3.5).
const HOST_PREP_SECONDS_PER_PAIR: f64 = 3.0e-7;
/// Host 2-bit encoding throughput in bases per second (multithreaded host encode).
const HOST_ENCODE_BASES_PER_SECOND: f64 = 2.0e8;
/// Fixed kernel-launch overhead per batch.
const KERNEL_LAUNCH_OVERHEAD_S: f64 = 10e-6;
/// Modelled device cycles: fixed cost per filtration.
const CYCLES_BASE: u64 = 2_000;
/// Modelled device cycles per (mask × word) of bitwise work.
const CYCLES_PER_MASK_WORD: u64 = 1_000;
/// Modelled device cycles per word of in-kernel encoding (device-encoded mode).
const CYCLES_ENCODE_PER_WORD: u64 = 500;
/// Modelled device cycles consumed by a thread that passes an undefined pair.
const CYCLES_UNDEFINED: u64 = 300;
/// Extra data-dependent cycles per estimated edit (amendment/counting divergence).
const CYCLES_PER_EDIT: u64 = 120;

/// Result of filtering a pair set on the (simulated) GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterRun {
    /// Per-pair decisions, in input order.
    pub decisions: Vec<FilterDecision>,
    /// Timing breakdown; `timing.kernel_seconds` is the summed CUDA-event time and
    /// `timing.filter_seconds()` is the host-observed filter time of §4.3.
    pub timing: TimingBreakdown,
    /// Number of batched kernel calls.
    pub batches: usize,
    /// Unified-memory traffic over the whole run.
    pub memory_stats: MemoryStats,
    /// Average achieved occupancy over the batched launches.
    pub achieved_occupancy: f64,
    /// Theoretical occupancy of the kernel on this device.
    pub theoretical_occupancy: f64,
    /// Average warp execution efficiency.
    pub warp_execution_efficiency: f64,
    /// Average SM efficiency.
    pub sm_efficiency: f64,
    /// Aggregated power report (nvprof-style min/max/average milliwatts).
    pub power: Option<PowerReport>,
}

impl FilterRun {
    /// Summed device kernel time in seconds.
    pub fn kernel_seconds(&self) -> f64 {
        self.timing.kernel_seconds
    }

    /// Host-observed filter time in seconds.
    pub fn filter_seconds(&self) -> f64 {
        self.timing.filter_seconds()
    }

    /// Number of accepted pairs.
    pub fn accepted(&self) -> usize {
        self.decisions.iter().filter(|d| d.accepted).count()
    }

    /// Number of rejected pairs.
    pub fn rejected(&self) -> usize {
        self.decisions.len() - self.accepted()
    }
}

/// The GateKeeper-GPU filtering system bound to one simulated device.
#[derive(Debug, Clone)]
pub struct GateKeeperGpu {
    device: DeviceSpec,
    config: FilterConfig,
    system: SystemConfig,
    kernel_config: GateKeeperConfig,
}

impl GateKeeperGpu {
    /// Creates a GateKeeper-GPU instance on a specific device.
    pub fn new(device: DeviceSpec, config: FilterConfig) -> GateKeeperGpu {
        let system = SystemConfig::configure(&device, &config);
        GateKeeperGpu {
            device,
            config,
            system,
            kernel_config: GateKeeperConfig::gpu(config.threshold),
        }
    }

    /// Creates an instance on the paper's Setup 1 device (GeForce GTX 1080 Ti).
    pub fn with_default_device(config: FilterConfig) -> GateKeeperGpu {
        GateKeeperGpu::new(DeviceSpec::gtx_1080_ti(), config)
    }

    /// The device this instance runs on.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The user configuration.
    pub fn config(&self) -> &FilterConfig {
        &self.config
    }

    /// The derived system configuration (§3.1).
    pub fn system_config(&self) -> &SystemConfig {
        &self.system
    }

    /// Modelled device cycles for one filtration.
    fn filtration_cycles(&self, decision: &FilterDecision) -> u64 {
        if decision.undefined {
            return CYCLES_UNDEFINED;
        }
        let words = self.config.words_per_sequence() as u64;
        let masks = 2 * self.config.threshold as u64 + 1;
        let encode = match self.config.encoding {
            EncodingActor::Device => 2 * words * CYCLES_ENCODE_PER_WORD,
            EncodingActor::Host => 0,
        };
        CYCLES_BASE
            + masks * words * CYCLES_PER_MASK_WORD
            + encode
            + decision.estimated_edits as u64 * CYCLES_PER_EDIT
    }

    /// Bytes transferred to the device per pair (input buffers only).
    fn input_bytes_per_pair(&self) -> u64 {
        match self.config.encoding {
            // Packed 2-bit words for read + reference segment.
            EncodingActor::Host => 2 * self.config.words_per_sequence() as u64 * 4,
            // Raw ASCII for read + reference segment.
            EncodingActor::Device => 2 * self.config.read_len as u64,
        }
    }

    /// Filters one batch; returns decisions and the batch timing.
    fn filter_batch(
        &self,
        batch: &[SequencePair],
        memory: &mut UnifiedMemory,
        profiler: &mut Profiler,
    ) -> (Vec<FilterDecision>, TimingBreakdown) {
        let mut timing = TimingBreakdown {
            host_prep_seconds: batch.len() as f64 * HOST_PREP_SECONDS_PER_PAIR,
            ..Default::default()
        };

        // Encoding. Functionally we always need the packed form to run the kernel;
        // the *time* is attributed to the host only in host-encoded mode (in
        // device-encoded mode the cost appears as extra kernel cycles instead).
        let encoded: Vec<(PackedSeq, PackedSeq)> = encode_pair_batch(batch);
        if self.config.encoding == EncodingActor::Host {
            let bases = 2.0 * batch.len() as f64 * self.config.read_len as f64;
            timing.encode_seconds = bases / HOST_ENCODE_BASES_PER_SECOND;
        }

        // Unified-memory buffers: reads, reference segments, results.
        memory.reset();
        let input_bytes = self.input_bytes_per_pair() * batch.len() as u64;
        let result_bytes = 8 * batch.len() as u64;
        let reads_buffer = memory
            .alloc(input_bytes / 2)
            .expect("batch sized beyond device memory despite system configuration");
        let refs_buffer = memory
            .alloc(input_bytes / 2)
            .expect("batch sized beyond device memory despite system configuration");
        let results_buffer = memory
            .alloc(result_bytes)
            .expect("result buffer allocation failed");

        // memAdvise + asynchronous prefetch on separate streams (§3.4). The PCIe
        // link is shared, so the modelled transfer cost is the sum of the per-buffer
        // prefetches even though they are enqueued on different streams.
        memory
            .mem_advise(reads_buffer, MemAdvise::PreferredLocationDevice)
            .expect("valid buffer");
        memory
            .mem_advise(refs_buffer, MemAdvise::PreferredLocationDevice)
            .expect("valid buffer");
        let mut prefetch_stream_reads = Stream::new("prefetch-reads");
        let mut prefetch_stream_refs = Stream::new("prefetch-refs");
        if self.device.supports_prefetch() {
            let t_reads = memory
                .prefetch_to_device(reads_buffer)
                .expect("valid buffer");
            let t_refs = memory
                .prefetch_to_device(refs_buffer)
                .expect("valid buffer");
            prefetch_stream_reads.enqueue("prefetch reads", t_reads);
            prefetch_stream_refs.enqueue("prefetch refs", t_refs);
            timing.transfer_seconds += t_reads + t_refs;
        }

        // Kernel launch: one filtration per thread.
        let decisions: Vec<FilterDecision> = encoded
            .par_iter()
            .map(|(read, reference)| {
                if read.is_undefined() || reference.is_undefined() {
                    FilterDecision::undefined_pass()
                } else {
                    gatekeeper_kernel(read, reference, &self.kernel_config)
                }
            })
            .collect();

        // On devices without prefetch support the kernel's first touch of each page
        // faults and migrates on demand; that cost lands in the kernel's critical
        // path but is accounted as transfer time here for reporting, as in §4.3.
        let fault_reads = memory
            .access_from_device(reads_buffer)
            .expect("valid buffer");
        let fault_refs = memory
            .access_from_device(refs_buffer)
            .expect("valid buffer");
        timing.transfer_seconds += fault_reads + fault_refs;

        let launch = self.system.launch_config(&self.device, batch.len());
        let resources = KernelResources::gatekeeper_gpu(&self.device);
        let stats = launch_kernel(&self.device, &resources, launch, |ctx| {
            match decisions.get(ctx.global_idx) {
                Some(decision) => ThreadReport {
                    cycles: self.filtration_cycles(decision),
                    active: true,
                },
                None => ThreadReport::idle(),
            }
        });
        timing.kernel_seconds += stats.kernel_seconds + KERNEL_LAUNCH_OVERHEAD_S;
        profiler.record(
            "gatekeeper_gpu_kernel",
            stats,
            self.config.words_per_sequence(),
        );

        // Result read-back: the host touches the result buffer for verification.
        let readback = memory
            .access_from_host(results_buffer)
            .expect("valid buffer");
        timing.readback_seconds += readback;

        (decisions, timing)
    }

    /// Filters a whole pair set in maximal batches, reproducing the paper's
    /// kernel-time / filter-time split.
    pub fn filter_set(&self, pairs: &PairSet) -> FilterRun {
        let mut memory = UnifiedMemory::new(self.device.clone());
        let mut profiler = Profiler::new(self.device.clone());
        let mut decisions = Vec::with_capacity(pairs.len());
        let mut timing = TimingBreakdown::default();
        let mut batches = 0usize;

        let batch_pairs = self
            .system
            .batch_size
            .min(self.config.max_reads_per_batch.max(1));
        for batch in pairs.pairs.chunks(batch_pairs.max(1)) {
            let (batch_decisions, batch_timing) =
                self.filter_batch(batch, &mut memory, &mut profiler);
            decisions.extend(batch_decisions);
            timing.accumulate(&batch_timing);
            batches += 1;
        }

        FilterRun {
            decisions,
            timing,
            batches,
            memory_stats: memory.stats(),
            achieved_occupancy: profiler.average_achieved_occupancy(),
            theoretical_occupancy: profiler
                .profiles()
                .first()
                .map(|p| p.stats.theoretical_occupancy)
                .unwrap_or(0.0),
            warp_execution_efficiency: profiler.average_warp_execution_efficiency(),
            sm_efficiency: profiler.average_sm_efficiency(),
            power: profiler.aggregate_power(),
        }
    }
}

impl PreAlignmentFilter for GateKeeperGpu {
    fn name(&self) -> &str {
        "GateKeeper-GPU"
    }

    fn threshold(&self) -> u32 {
        self.config.threshold
    }

    fn filter_pair(&self, read: &[u8], reference: &[u8]) -> FilterDecision {
        let read_packed = PackedSeq::from_ascii(read);
        let ref_packed = PackedSeq::from_ascii(reference);
        if read_packed.is_undefined() || ref_packed.is_undefined() {
            return FilterDecision::undefined_pass();
        }
        gatekeeper_kernel(&read_packed, &ref_packed, &self.kernel_config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_filters::GateKeeperGpuFilter;
    use gk_seq::datasets::DatasetProfile;

    fn pairs(count: usize) -> PairSet {
        DatasetProfile::set3().generate(count, 123)
    }

    fn gpu(threshold: u32, encoding: EncodingActor) -> GateKeeperGpu {
        GateKeeperGpu::with_default_device(
            FilterConfig::new(100, threshold).with_encoding(encoding),
        )
    }

    #[test]
    fn decisions_match_the_reference_filter_implementation() {
        let set = pairs(1_500);
        let run = gpu(5, EncodingActor::Device).filter_set(&set);
        let reference = GateKeeperGpuFilter::new(5);
        for (pair, decision) in set.pairs.iter().zip(run.decisions.iter()) {
            let expected = reference.filter_pair(&pair.read, &pair.reference);
            assert_eq!(decision.accepted, expected.accepted);
        }
    }

    #[test]
    fn encoding_actor_does_not_change_decisions() {
        let set = pairs(800);
        let host = gpu(5, EncodingActor::Host).filter_set(&set);
        let device = gpu(5, EncodingActor::Device).filter_set(&set);
        assert_eq!(host.decisions, device.decisions);
    }

    #[test]
    fn host_encoding_trades_kernel_time_for_filter_time() {
        // Figure 6: host encoding gives higher *kernel* throughput (less kernel
        // work) but lower *filter* throughput (host encode dominates).
        let set = pairs(3_000);
        let host = gpu(4, EncodingActor::Host).filter_set(&set);
        let device = gpu(4, EncodingActor::Device).filter_set(&set);
        assert!(host.kernel_seconds() < device.kernel_seconds());
        assert!(host.filter_seconds() > device.filter_seconds());
    }

    #[test]
    fn kernel_time_grows_with_error_threshold_but_filter_time_barely_moves() {
        let set = pairs(3_000);
        let low = gpu(2, EncodingActor::Device).filter_set(&set);
        let high = gpu(10, EncodingActor::Device).filter_set(&set);
        assert!(high.kernel_seconds() > low.kernel_seconds());
        // Filter time is dominated by host prep + transfer, so the relative growth
        // is much smaller than the kernel-time growth.
        let kernel_growth = high.kernel_seconds() / low.kernel_seconds();
        let filter_growth = high.filter_seconds() / low.filter_seconds();
        assert!(kernel_growth > filter_growth);
    }

    #[test]
    fn kepler_setup_is_slower_than_pascal() {
        let set = pairs(2_000);
        let config = FilterConfig::new(100, 5);
        let pascal = GateKeeperGpu::new(DeviceSpec::gtx_1080_ti(), config).filter_set(&set);
        let kepler = GateKeeperGpu::new(DeviceSpec::tesla_k20x(), config).filter_set(&set);
        assert!(kepler.kernel_seconds() > pascal.kernel_seconds());
        assert!(kepler.filter_seconds() > pascal.filter_seconds());
        // Kepler cannot prefetch, so it page-faults.
        assert!(kepler.memory_stats.page_faults > 0);
        assert_eq!(pascal.memory_stats.page_faults, 0);
    }

    #[test]
    fn batching_respects_max_reads_per_batch() {
        let set = pairs(2_000);
        let run = GateKeeperGpu::with_default_device(
            FilterConfig::new(100, 4).with_max_reads_per_batch(500),
        )
        .filter_set(&set);
        assert_eq!(run.batches, 4);
        assert_eq!(run.decisions.len(), set.len());
        let single = GateKeeperGpu::with_default_device(FilterConfig::new(100, 4)).filter_set(&set);
        assert_eq!(single.batches, 1);
        assert_eq!(single.decisions, run.decisions);
    }

    #[test]
    fn fewer_larger_batches_reduce_filter_time() {
        // Table 1: increasing reads per batch decreases the overall/filter time
        // because the number of transfers shrinks.
        let set = pairs(4_000);
        let small_batches = GateKeeperGpu::with_default_device(
            FilterConfig::new(100, 4).with_max_reads_per_batch(100),
        )
        .filter_set(&set);
        let large_batches = GateKeeperGpu::with_default_device(
            FilterConfig::new(100, 4).with_max_reads_per_batch(4_000),
        )
        .filter_set(&set);
        assert!(small_batches.batches > large_batches.batches);
        assert!(small_batches.filter_seconds() > large_batches.filter_seconds());
    }

    #[test]
    fn occupancy_matches_the_paper_analysis() {
        let set = pairs(5_000);
        let run = gpu(4, EncodingActor::Device).filter_set(&set);
        assert!((run.theoretical_occupancy - 0.5).abs() < 1e-9);
        assert!(run.achieved_occupancy > 0.0 && run.achieved_occupancy <= 0.5);
        assert!(run.warp_execution_efficiency > 0.5);
        assert!(run.sm_efficiency > 0.0);
    }

    #[test]
    fn power_report_present_and_consistent() {
        let set = pairs(2_000);
        let run = gpu(4, EncodingActor::Device).filter_set(&set);
        let power = run.power.expect("power report");
        assert!(power.min_mw <= power.average_mw && power.average_mw <= power.max_mw);
    }

    #[test]
    fn undefined_pairs_are_passed_through() {
        let mut profile = DatasetProfile::set3();
        profile.undefined_fraction = 0.1;
        let set = profile.generate(1_000, 9);
        let run = gpu(5, EncodingActor::Device).filter_set(&set);
        let undefined = run.decisions.iter().filter(|d| d.undefined).count();
        assert_eq!(undefined, set.undefined_count());
    }

    #[test]
    fn single_pair_interface_matches_batch_decisions() {
        let set = pairs(200);
        let system = gpu(5, EncodingActor::Device);
        let run = system.filter_set(&set);
        for (pair, decision) in set.pairs.iter().zip(run.decisions.iter()) {
            assert_eq!(
                system.filter_pair(&pair.read, &pair.reference).accepted,
                decision.accepted
            );
        }
        assert_eq!(system.name(), "GateKeeper-GPU");
        assert_eq!(system.threshold(), 5);
    }
}
