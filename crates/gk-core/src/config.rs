//! Configuration and the system-configuration step of §3.1.
//!
//! GateKeeper-GPU fixes the read length and error threshold at compile time (CUDA
//! kernels cannot allocate dynamically-sized per-thread arrays); in this
//! reproduction they are runtime fields of [`FilterConfig`], with the same meaning.
//! Before the first kernel launch the system-configuration step inspects the device
//! (free global memory, maximum threads per block) and derives
//!
//! * the **thread load** — the per-filtration memory footprint (encoded read and
//!   reference words, the `2e + 1` intermediate masks, and the result slot), and
//! * the **batch size** — the number of filtrations per kernel call, maximised so
//!   the number of host↔device transfers stays minimal (§3.1: "the configuration
//!   step ensures that the batch size is maximized").
//!
//! ```
//! use gk_core::config::{EncodingActor, FilterConfig, SystemConfig};
//! use gk_gpusim::device::DeviceSpec;
//!
//! // 100-base reads, error threshold e = 4, host-side 2-bit encoding.
//! let config = FilterConfig::new(100, 4).with_encoding(EncodingActor::Host);
//! assert_eq!(config.words_per_sequence(), 7); // ⌈100 / 16 bases-per-word⌉
//!
//! // The system-configuration step sizes batches for a concrete device.
//! let system = SystemConfig::configure(&DeviceSpec::gtx_1080_ti(), &config);
//! assert!(system.batch_size > 0);
//! ```

use gk_filters::SimdMode;
use gk_gpusim::device::DeviceSpec;
use gk_gpusim::executor::LaunchConfig;
use gk_gpusim::topology::TopologyKind;
use gk_seq::packed::BASES_PER_WORD;
use serde::{Deserialize, Serialize};

/// Which processor encodes the sequences into their 2-bit representation (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncodingActor {
    /// The CPU encodes before the transfer: smaller transfers, but host time is
    /// spent encoding ("Encoding in the host ... is cost-effective in data
    /// transfer").
    Host,
    /// Each GPU thread encodes its own sequences: larger (raw ASCII) transfers, more
    /// kernel work, but no host encoding time.
    Device,
}

/// User-facing configuration of a GateKeeper-GPU instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterConfig {
    /// Read length in bases (100, 150, 250… in the paper's datasets).
    pub read_len: usize,
    /// Error threshold `e` (at most 10% of the read length in all experiments).
    pub threshold: u32,
    /// Which processor performs the 2-bit encoding.
    pub encoding: EncodingActor,
    /// Maximum number of reads whose candidates are gathered into one batch before
    /// a kernel call (Table 1 explores this knob; 100,000 works best for mrFAST).
    pub max_reads_per_batch: usize,
    /// Overlap the three pipeline stages (encode+H2D, kernel, D2H read-back) of
    /// consecutive chunks on separate simulated streams (§3.4). Decisions are
    /// byte-identical either way; only the simulated timeline changes.
    pub overlap: bool,
    /// Pairs per pipeline chunk; `0` sizes chunks automatically (the full batch
    /// capacity when serialized, a third of it when overlapping so the three
    /// in-flight buffer slots fit the same memory budget).
    pub chunk_pairs: usize,
    /// Dispatch the prep+encode of the *next* pipeline chunk as a task on the
    /// shared worker pool while the current chunk's kernel closure executes —
    /// real wall-clock overlap on the host, the measured counterpart of the
    /// simulated §3.4 stream overlap. At most `BUFFER_SLOTS − 1` encoded
    /// chunks are kept in flight so memory stays bounded. Decisions and the
    /// simulated timing splits are byte-identical either way; only
    /// `TimingBreakdown::host_wall_seconds` changes. Falls back to the serial
    /// path when the pool is sequential (`RAYON_NUM_THREADS=1`).
    pub host_prefetch: bool,
    /// SIMD lane selection for the filter kernels: the 4-lane struct-of-arrays
    /// path, the per-bit scalar reference, or `Auto` (the default), which
    /// consults the `GK_SIMD` environment variable. Decisions are
    /// byte-identical across modes.
    pub simd: SimdMode,
    /// How the devices of a multi-GPU run attach to the host interconnect
    /// (private links, one shared root complex, PCIe-switch groups, or an
    /// NVLink-style fabric). Drives the contention replay of
    /// `gk_gpusim::topology::simulate_contended`; decisions are byte-identical
    /// across topologies.
    pub topology: TopologyKind,
    /// Let the multi-GPU sharder exploit the topology: contiguous per-device
    /// shares weighted by each device's effective link bandwidth, per-device
    /// encoding-actor selection, and contention-aware chunk sizing (smaller
    /// chunks on shared links so transfers interleave under host prep).
    /// `false` keeps the round-robin equal split of §3.1. Decisions are
    /// byte-identical either way; only the modelled makespan moves.
    pub topology_aware: bool,
}

impl FilterConfig {
    /// Creates a configuration with the paper's defaults (device encoding,
    /// 100,000 reads per batch).
    pub fn new(read_len: usize, threshold: u32) -> FilterConfig {
        FilterConfig {
            read_len,
            threshold,
            encoding: EncodingActor::Device,
            max_reads_per_batch: 100_000,
            overlap: false,
            chunk_pairs: 0,
            host_prefetch: false,
            simd: SimdMode::Auto,
            topology: TopologyKind::Independent,
            topology_aware: false,
        }
    }

    /// Sets the encoding actor.
    pub fn with_encoding(mut self, encoding: EncodingActor) -> FilterConfig {
        self.encoding = encoding;
        self
    }

    /// Selects the **device-side encoding execution path** (`true`) or the
    /// host-encode path (`false`). With device encode on, the pipeline's prep
    /// stage skips `encode_pair_batch` entirely: chunks are gathered into raw
    /// 1-byte-per-base transfer arenas (`gk_seq::raw::RawPairBatch`, sliced
    /// zero-copy), the H2D transfer carries ~4× the bytes, and each kernel
    /// thread packs its own pair at the top of a fused encode+filter kernel
    /// (`TimingBreakdown::encode_device_seconds` reports that in-kernel
    /// share). Decisions are byte-identical to the host path in every mode
    /// combination. This is sugar over [`FilterConfig::with_encoding`]: the
    /// encoding actor *is* the execution-path switch.
    pub fn with_device_encode(mut self, device: bool) -> FilterConfig {
        self.encoding = if device {
            EncodingActor::Device
        } else {
            EncodingActor::Host
        };
        self
    }

    /// True when the device-side encoding execution path is selected.
    pub fn device_encode(&self) -> bool {
        self.encoding == EncodingActor::Device
    }

    /// Sets the maximum number of reads per batch.
    pub fn with_max_reads_per_batch(mut self, max_reads: usize) -> FilterConfig {
        self.max_reads_per_batch = max_reads.max(1);
        self
    }

    /// Enables or disables stream-overlapped pipelining of consecutive chunks.
    pub fn with_overlap(mut self, overlap: bool) -> FilterConfig {
        self.overlap = overlap;
        self
    }

    /// Sets an explicit pipeline chunk size in pairs (`0` restores auto-sizing).
    pub fn with_chunk_pairs(mut self, chunk_pairs: usize) -> FilterConfig {
        self.chunk_pairs = chunk_pairs;
        self
    }

    /// Enables or disables real host-side prefetch: encoding the next chunk on
    /// the worker pool while the current chunk's kernel closure runs.
    pub fn with_host_prefetch(mut self, host_prefetch: bool) -> FilterConfig {
        self.host_prefetch = host_prefetch;
        self
    }

    /// Selects the SIMD mode for the filter kernels (lanes, scalar reference,
    /// or environment-driven `Auto`).
    pub fn with_simd_mode(mut self, simd: SimdMode) -> FilterConfig {
        self.simd = simd;
        self
    }

    /// Selects the interconnect topology the multi-GPU devices hang off.
    pub fn with_topology(mut self, topology: TopologyKind) -> FilterConfig {
        self.topology = topology;
        self
    }

    /// Enables or disables topology-aware multi-GPU scheduling (weighted
    /// shares, per-device encoding selection, contention-aware chunks).
    pub fn with_topology_aware(mut self, aware: bool) -> FilterConfig {
        self.topology_aware = aware;
        self
    }

    /// Number of 32-bit words one encoded sequence of this read length occupies.
    pub fn words_per_sequence(&self) -> usize {
        self.read_len.div_ceil(BASES_PER_WORD)
    }
}

/// Output of the system-configuration step (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Approximate per-filtration memory requirement in bytes (thread load).
    pub thread_load_bytes: u64,
    /// Maximum filtrations per kernel call for this device.
    pub batch_size: usize,
    /// Threads per block used for kernel launches.
    pub threads_per_block: u32,
}

impl SystemConfig {
    /// Derives the system configuration for a device and filter configuration.
    pub fn configure(device: &DeviceSpec, config: &FilterConfig) -> SystemConfig {
        let words = config.words_per_sequence() as u64;
        let masks = 2 * config.threshold as u64 + 1;
        // Per filtration: encoded read + encoded reference segment (unified memory
        // input buffers), the intermediate masks in the thread's stack frame, the
        // candidate index and the result/edit-distance slots.
        let input_bytes = match config.encoding {
            EncodingActor::Host => 2 * words * 4,
            EncodingActor::Device => 2 * config.read_len as u64,
        };
        let stack_bytes = masks * words * 4;
        let bookkeeping = 16;
        let thread_load_bytes = input_bytes + stack_bytes + bookkeeping;

        // Fill the free global memory, leaving half for the reference and result
        // buffers that coexist with the batch, and cap at a sane maximum so a single
        // batch never exceeds what one grid can reasonably cover.
        let budget = device.free_global_memory() / 2;
        let by_memory = (budget / thread_load_bytes.max(1)) as usize;
        let batch_size = by_memory.clamp(1024, 64_000_000);

        SystemConfig {
            thread_load_bytes,
            batch_size,
            threads_per_block: device.max_threads_per_block,
        }
    }

    /// Launch configuration for a batch of `pairs` filtrations.
    pub fn launch_config(&self, device: &DeviceSpec, pairs: usize) -> LaunchConfig {
        let pairs = pairs.min(self.batch_size).max(1);
        LaunchConfig::for_work_items(device, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_per_sequence_matches_paper() {
        assert_eq!(FilterConfig::new(100, 5).words_per_sequence(), 7);
        assert_eq!(FilterConfig::new(150, 5).words_per_sequence(), 10);
        assert_eq!(FilterConfig::new(250, 5).words_per_sequence(), 16);
    }

    #[test]
    fn builder_methods_apply() {
        let config = FilterConfig::new(100, 4)
            .with_encoding(EncodingActor::Host)
            .with_max_reads_per_batch(5_000);
        assert_eq!(config.encoding, EncodingActor::Host);
        assert_eq!(config.max_reads_per_batch, 5_000);
        assert_eq!(FilterConfig::new(100, 4).encoding, EncodingActor::Device);
    }

    #[test]
    fn device_encode_knob_is_the_encoding_actor() {
        assert!(FilterConfig::new(100, 4).device_encode());
        let host = FilterConfig::new(100, 4).with_device_encode(false);
        assert_eq!(host.encoding, EncodingActor::Host);
        assert!(!host.device_encode());
        assert!(host.with_device_encode(true).device_encode());
        assert!(!FilterConfig::new(100, 4)
            .with_encoding(EncodingActor::Host)
            .device_encode());
    }

    #[test]
    fn overlap_and_chunk_knobs_apply() {
        let config = FilterConfig::new(100, 4)
            .with_overlap(true)
            .with_chunk_pairs(2_048);
        assert!(config.overlap);
        assert_eq!(config.chunk_pairs, 2_048);
        let defaults = FilterConfig::new(100, 4);
        assert!(!defaults.overlap);
        assert_eq!(defaults.chunk_pairs, 0);
        assert!(!defaults.host_prefetch);
        assert!(
            FilterConfig::new(100, 4)
                .with_host_prefetch(true)
                .host_prefetch
        );
    }

    #[test]
    fn simd_mode_knob_defaults_to_auto_and_applies() {
        assert_eq!(FilterConfig::new(100, 4).simd, SimdMode::Auto);
        assert_eq!(
            FilterConfig::new(100, 4)
                .with_simd_mode(SimdMode::Scalar)
                .simd,
            SimdMode::Scalar
        );
    }

    #[test]
    fn topology_knobs_default_to_the_paper_assumption_and_apply() {
        let defaults = FilterConfig::new(100, 4);
        assert_eq!(defaults.topology, TopologyKind::Independent);
        assert!(!defaults.topology_aware);
        let config = FilterConfig::new(100, 4)
            .with_topology(TopologyKind::SharedRoot)
            .with_topology_aware(true);
        assert_eq!(config.topology, TopologyKind::SharedRoot);
        assert!(config.topology_aware);
        assert_eq!(
            FilterConfig::new(100, 4)
                .with_topology(TopologyKind::Switch { fanout: 2 })
                .topology,
            TopologyKind::Switch { fanout: 2 }
        );
    }

    #[test]
    fn zero_batch_request_is_clamped() {
        assert_eq!(
            FilterConfig::new(100, 4)
                .with_max_reads_per_batch(0)
                .max_reads_per_batch,
            1
        );
    }

    #[test]
    fn thread_load_grows_with_threshold_and_read_length() {
        let device = DeviceSpec::gtx_1080_ti();
        let small = SystemConfig::configure(&device, &FilterConfig::new(100, 2));
        let more_errors = SystemConfig::configure(&device, &FilterConfig::new(100, 10));
        let longer = SystemConfig::configure(&device, &FilterConfig::new(250, 2));
        assert!(more_errors.thread_load_bytes > small.thread_load_bytes);
        assert!(longer.thread_load_bytes > small.thread_load_bytes);
    }

    #[test]
    fn batch_size_shrinks_as_thread_load_grows() {
        let device = DeviceSpec::gtx_1080_ti();
        let small = SystemConfig::configure(&device, &FilterConfig::new(100, 2));
        let big = SystemConfig::configure(&device, &FilterConfig::new(250, 25));
        assert!(big.batch_size < small.batch_size);
        assert!(big.batch_size >= 1024);
    }

    #[test]
    fn smaller_memory_device_gets_smaller_batches() {
        let config = FilterConfig::new(100, 5);
        let pascal = SystemConfig::configure(&DeviceSpec::gtx_1080_ti(), &config);
        let kepler = SystemConfig::configure(&DeviceSpec::tesla_k20x(), &config);
        assert!(kepler.batch_size < pascal.batch_size);
    }

    #[test]
    fn host_encoding_reduces_input_bytes() {
        let device = DeviceSpec::gtx_1080_ti();
        let host = SystemConfig::configure(
            &device,
            &FilterConfig::new(100, 5).with_encoding(EncodingActor::Host),
        );
        let dev = SystemConfig::configure(
            &device,
            &FilterConfig::new(100, 5).with_encoding(EncodingActor::Device),
        );
        assert!(host.thread_load_bytes < dev.thread_load_bytes);
    }

    #[test]
    fn launch_config_never_exceeds_the_batch_size() {
        let device = DeviceSpec::gtx_1080_ti();
        let sys = SystemConfig::configure(&device, &FilterConfig::new(100, 5));
        let launch = sys.launch_config(&device, sys.batch_size * 10);
        assert!(launch.total_threads() <= sys.batch_size + device.max_threads_per_block as usize);
        let tiny = sys.launch_config(&device, 10);
        assert_eq!(tiny.grid_blocks, 1);
    }
}
