//! Multi-GPU GateKeeper: chunk sharding across several devices, with an
//! optional topology-aware scheduler.
//!
//! Setup 1 of the paper attaches eight GTX 1080 Ti boards to one host; the
//! multi-GPU experiments (Figure 8, Sup. Tables S.21–S.23) show kernel-time
//! throughput scaling almost linearly with the device count (especially in the
//! host-encoded mode) while filter-time throughput grows more slowly because the
//! host-side preparation and the shared PCIe complex do not scale.
//!
//! The **naive** sharder (the paper's §3.1 convention, and the default) reuses
//! the [`crate::pipeline`] chunk planner: the pair set is cut into pipeline
//! chunks and chunk *i* goes to device *i mod n* (with the chunk size capped at
//! `⌈total / n⌉` so every device gets work). Timing conventions follow
//! §3.1/§4.3: the workload is balanced across devices, the reported multi-GPU
//! kernel time is the slowest device's kernel time, and the host-side costs
//! (preparation, encoding) are paid once.
//!
//! The **topology-aware** scheduler ([`FilterConfig::topology_aware`]) reads
//! the interconnect wiring ([`FilterConfig::topology`]) and moves three levers,
//! none of which changes any decision:
//!
//! 1. **weighted shares** — contiguous per-device spans proportional to each
//!    device's estimated service rate (its effective link bandwidth and kernel
//!    rate), via [`gk_gpusim::topology::weighted_partition`];
//! 2. **per-device encoding actor** — each device gets whichever of
//!    host/device encode minimizes its estimated pipeline bottleneck on *its*
//!    link (raw uploads are ~4× the packed words, so a starved link can flip
//!    the paper's device-encode preference);
//! 3. **contention-aware chunks** — per-device chunk sizes shrink by the
//!    link's sharer count ([`ChunkPlan::with_link_sharers`]) so transfers
//!    interleave into the gaps other devices' host-prep stages leave open
//!    instead of colliding in one serialized burst.
//!
//! Every run also replays its per-device chunk loads through
//! [`gk_gpusim::topology::simulate_contended`] — once on the configured
//! topology and once on its private-link twin — and reports both in
//! [`MultiGpuRun::interconnect`]. The pre-existing kernel/filter-time fields
//! never include contention, so all earlier numbers stay bit-for-bit intact.

use crate::config::{EncodingActor, FilterConfig};
use crate::gpu::{FilterRun, GateKeeperGpu};
use crate::pipeline::{ChunkPlan, BUFFER_SLOTS};
use crate::timing::{InterconnectReport, TimingBreakdown};
use gk_gpusim::device::DeviceSpec;
use gk_gpusim::memory::MemoryStats;
use gk_gpusim::multi::MultiGpu;
use gk_gpusim::topology::{simulate_contended, weighted_partition, ChunkLoad, Topology};
use gk_seq::pairs::PairSet;
use serde::{Deserialize, Serialize};

/// Result of a multi-GPU filtering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiGpuRun {
    /// Per-pair decisions in input order.
    pub decisions: Vec<gk_filters::FilterDecision>,
    /// Number of devices used.
    pub devices: usize,
    /// Multi-GPU kernel time: the slowest device's summed kernel time.
    pub kernel_seconds: f64,
    /// Host-observed filter time for the whole run.
    pub filter_seconds: f64,
    /// Per-device filter runs (for detailed reporting).
    pub per_device: Vec<FilterRun>,
    /// Contended-versus-private interconnect replay of the run's chunk loads.
    /// Purely additive reporting: `kernel_seconds` and `filter_seconds` above
    /// keep the paper's free-overlap conventions regardless of topology.
    pub interconnect: InterconnectReport,
}

impl MultiGpuRun {
    /// Number of accepted pairs.
    pub fn accepted(&self) -> usize {
        self.decisions.iter().filter(|d| d.accepted).count()
    }

    /// Combined unified-memory statistics across devices.
    pub fn memory_stats(&self) -> MemoryStats {
        let mut total = MemoryStats::default();
        for run in &self.per_device {
            total.bytes_to_device += run.memory_stats.bytes_to_device;
            total.bytes_to_host += run.memory_stats.bytes_to_host;
            total.page_faults += run.memory_stats.page_faults;
            total.prefetched_pages += run.memory_stats.prefetched_pages;
            total.transfer_seconds += run.memory_stats.transfer_seconds;
        }
        total
    }
}

/// One device's slice of a multi-GPU schedule: the pair ranges it filters (in
/// order) and the exact per-device configuration its pipeline runs with. The
/// naive sharder hands every device the caller's configuration verbatim; the
/// topology-aware scheduler overrides the encoding actor and chunk size per
/// device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceAssignment {
    /// Half-open `[start, end)` pair ranges fed to this device's pipeline.
    pub ranges: Vec<(usize, usize)>,
    /// The configuration this device's [`GateKeeperGpu`] is built with.
    pub config: FilterConfig,
}

impl DeviceAssignment {
    /// Pairs assigned to this device.
    pub fn pairs(&self) -> usize {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }
}

/// A complete shard plan: the interconnect topology plus one
/// [`DeviceAssignment`] per device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiGpuSchedule {
    /// The interconnect the devices hang off.
    pub topology: Topology,
    /// Whether the topology-aware scheduler produced the assignments.
    pub aware: bool,
    /// Per-device work and configuration, indexed like the device list.
    pub assignments: Vec<DeviceAssignment>,
}

impl MultiGpuSchedule {
    /// Total pairs covered by every assignment.
    pub fn total_pairs(&self) -> usize {
        self.assignments.iter().map(|a| a.pairs()).sum()
    }
}

/// Modelled per-pair stage costs of one device under a candidate encoding
/// actor, from the same constants the pipeline charges. `bottleneck_seconds`
/// is the pipeline's steady-state limiter including the *shared* host (one
/// host preps/encodes for all `device_count` streams, so its per-pair cost
/// scales with the device count); `device_seconds` is the device-local limiter
/// (link transfer at the device's effective bandwidth vs. kernel), which is
/// what the weighted split balances across heterogeneous links.
fn estimated_pair_cost(
    device: &DeviceSpec,
    config: &FilterConfig,
    encoding: EncodingActor,
    effective_bw_gb_s: f64,
    device_count: usize,
) -> (f64, f64) {
    let words = config.words_per_sequence() as f64;
    let masks = (2 * config.threshold as u64 + 1) as f64;
    let host_per_pair = crate::gpu::HOST_PREP_SECONDS_PER_PAIR
        + match encoding {
            EncodingActor::Host => {
                2.0 * config.read_len as f64 / crate::gpu::HOST_ENCODE_BASES_PER_SECOND
            }
            EncodingActor::Device => 0.0,
        };
    let host_shared = host_per_pair * device_count as f64;
    let h2d_bytes = match encoding {
        EncodingActor::Host => 2.0 * words * 4.0,
        EncodingActor::Device => 2.0 * config.read_len as f64,
    };
    let h2d = h2d_bytes / (effective_bw_gb_s * 1e9);
    let encode_cycles = match encoding {
        EncodingActor::Device => gk_gpusim::encode::encode_cycles(2 * config.read_len as u64),
        EncodingActor::Host => 0,
    } as f64;
    let kernel_cycles = crate::gpu::CYCLES_BASE as f64
        + masks * words * crate::gpu::CYCLES_PER_MASK_WORD as f64
        + encode_cycles;
    let kernel = kernel_cycles / device.peak_ops_per_second();
    let device_seconds = h2d.max(kernel);
    (host_shared.max(device_seconds), device_seconds)
}

/// GateKeeper-GPU spread over several devices.
#[derive(Debug, Clone)]
pub struct MultiGpuGateKeeper {
    context: MultiGpu,
    config: FilterConfig,
}

impl MultiGpuGateKeeper {
    /// Creates a multi-GPU filter over `device_count` copies of `device`.
    pub fn new(
        device: DeviceSpec,
        device_count: usize,
        config: FilterConfig,
    ) -> MultiGpuGateKeeper {
        MultiGpuGateKeeper {
            context: MultiGpu::homogeneous(device, device_count),
            config,
        }
    }

    /// Creates a multi-GPU filter over an explicit (possibly heterogeneous)
    /// device list.
    pub fn with_devices(devices: Vec<DeviceSpec>, config: FilterConfig) -> MultiGpuGateKeeper {
        MultiGpuGateKeeper {
            context: MultiGpu::from_devices(devices),
            config,
        }
    }

    /// Number of devices in the context.
    pub fn device_count(&self) -> usize {
        self.context.device_count()
    }

    /// The devices.
    pub fn devices(&self) -> &[DeviceSpec] {
        self.context.devices()
    }

    /// The filter configuration.
    pub fn config(&self) -> &FilterConfig {
        &self.config
    }

    /// The interconnect topology selected by [`FilterConfig::topology`], built
    /// over this context's device list.
    pub fn topology(&self) -> Topology {
        Topology::build(self.config.topology, self.context.devices())
    }

    /// The chunk-to-device assignment for `total` pairs: the single-GPU pipeline
    /// chunk plan, with the chunk size capped at `⌈total / devices⌉` so a small
    /// set still spreads across every device, sharded round-robin.
    pub fn shard_plan(&self, total: usize) -> (ChunkPlan, Vec<Vec<(usize, usize)>>) {
        let devices = self.context.device_count();
        let probe = GateKeeperGpu::new(self.context.devices()[0].clone(), self.config);
        let mut plan = probe.chunk_plan();
        if devices > 1 && total > 0 {
            plan.chunk_pairs = plan.chunk_pairs.min(total.div_ceil(devices)).max(1);
        }
        let assignment = plan.round_robin(total, devices);
        (plan, assignment)
    }

    /// The shard plan for `total` pairs on the configured topology: the naive
    /// round-robin split when [`FilterConfig::topology_aware`] is off, the
    /// weighted/encoding/chunk-tuned plan when it is on. Either way the
    /// assignments partition `0..total` exactly, so decisions never depend on
    /// the scheduler.
    pub fn schedule(&self, total: usize) -> MultiGpuSchedule {
        self.schedule_for(&self.topology(), total)
    }

    /// Like [`MultiGpuGateKeeper::schedule`], but over an explicit topology
    /// (which must describe this context's devices) instead of the one named
    /// by [`FilterConfig::topology`].
    pub fn schedule_for(&self, topology: &Topology, total: usize) -> MultiGpuSchedule {
        assert_eq!(
            topology.device_count(),
            self.context.device_count(),
            "topology must describe this context's devices"
        );
        let aware = self.config.topology_aware;
        let assignments = if aware {
            self.aware_assignments(topology, total)
        } else {
            let (_, assignment) = self.shard_plan(total);
            assignment
                .into_iter()
                .map(|ranges| DeviceAssignment {
                    ranges,
                    config: self.config,
                })
                .collect()
        };
        MultiGpuSchedule {
            topology: topology.clone(),
            aware,
            assignments,
        }
    }

    /// The topology-aware assignments: per-device encoding actor by estimated
    /// bottleneck, contiguous spans weighted by the inverse device-local cost,
    /// and chunk sizes shrunk by each link's sharer count.
    fn aware_assignments(&self, topology: &Topology, total: usize) -> Vec<DeviceAssignment> {
        let devices = self.context.devices();
        let count = devices.len();
        let mut configs = Vec::with_capacity(count);
        let mut weights = Vec::with_capacity(count);
        for (index, device) in devices.iter().enumerate() {
            let bandwidth = topology.effective_bandwidth_gb_per_s(index);
            // Start from the caller's preference so ties never flip the actor.
            let mut best = self.config.encoding;
            let mut best_cost = estimated_pair_cost(device, &self.config, best, bandwidth, count);
            for candidate in [EncodingActor::Device, EncodingActor::Host] {
                if candidate == best {
                    continue;
                }
                let cost = estimated_pair_cost(device, &self.config, candidate, bandwidth, count);
                if cost.0 < best_cost.0 {
                    best = candidate;
                    best_cost = cost;
                }
            }
            weights.push(1.0 / best_cost.1.max(1e-18));
            configs.push(self.config.with_encoding(best));
        }
        weighted_partition(total, &weights)
            .into_iter()
            .zip(configs)
            .enumerate()
            .map(|(index, ((start, end), config))| {
                let span = end - start;
                let mut plan = GateKeeperGpu::new(devices[index].clone(), config).chunk_plan();
                if span > 0 {
                    plan.chunk_pairs = plan.chunk_pairs.min(span).max(1);
                }
                let plan = plan.with_link_sharers(topology.sharers(index));
                DeviceAssignment {
                    ranges: if span > 0 {
                        vec![(start, end)]
                    } else {
                        Vec::new()
                    },
                    config: config.with_chunk_pairs(plan.chunk_pairs),
                }
            })
            .collect()
    }

    /// Filters a pair set across all devices on the configured topology.
    pub fn filter_set(&self, pairs: &PairSet) -> MultiGpuRun {
        self.run_schedule(&self.schedule(pairs.len()), pairs)
    }

    /// Filters a pair set across all devices on an explicit topology.
    pub fn filter_set_on(&self, topology: &Topology, pairs: &PairSet) -> MultiGpuRun {
        self.run_schedule(&self.schedule_for(topology, pairs.len()), pairs)
    }

    /// Runs a schedule: each device pipelines its share under its assigned
    /// configuration. The shares are independent, so they are processed
    /// sequentially here while the timing combines them as if they ran
    /// concurrently (which they do on real hardware).
    pub fn run_schedule(&self, schedule: &MultiGpuSchedule, pairs: &PairSet) -> MultiGpuRun {
        let mut per_device = Vec::with_capacity(schedule.assignments.len());
        let mut decisions = vec![gk_filters::FilterDecision::accept(0); pairs.len()];
        for (device_spec, assignment) in self
            .context
            .devices()
            .iter()
            .zip(schedule.assignments.iter())
        {
            let gpu = GateKeeperGpu::new(device_spec.clone(), assignment.config);
            let run = gpu.filter_chunks(
                assignment
                    .ranges
                    .iter()
                    .map(|&(start, end)| &pairs.pairs[start..end]),
            );
            let mut cursor = 0usize;
            for &(start, end) in &assignment.ranges {
                decisions[start..end]
                    .copy_from_slice(&run.decisions[cursor..cursor + (end - start)]);
                cursor += end - start;
            }
            per_device.push(run);
        }

        // Kernel time: slowest device (§4.3). Filter time: the host pays preparation
        // and encoding once (they are not duplicated per device on real hardware —
        // the host fills one buffer per device from the same pass), then the devices
        // transfer and compute concurrently, so the device-side part is the slowest
        // device's pipeline time beyond those host stages (its overlapped makespan
        // when stream overlap is on, its transfer + kernel + readback sum otherwise).
        let kernel_seconds = per_device
            .iter()
            .map(|r| r.kernel_seconds())
            .fold(0.0, f64::max);
        let host_once: f64 = per_device
            .iter()
            .map(|r| r.timing.host_prep_seconds + r.timing.encode_seconds)
            .sum();
        let device_side = per_device
            .iter()
            .map(|r| {
                (r.filter_seconds() - r.timing.host_prep_seconds - r.timing.encode_seconds).max(0.0)
            })
            .fold(0.0, f64::max);
        let filter_seconds = host_once + device_side;

        // Replay the exact per-chunk loads through the contended timeline
        // (configured topology) and its private-link twin. This is additive
        // reporting: nothing above depends on it.
        let loads: Vec<Vec<ChunkLoad>> = per_device
            .iter()
            .map(|run| run.chunk_loads.clone())
            .collect();
        let interconnect = InterconnectReport {
            topology: schedule.topology.label().to_string(),
            aware: schedule.aware,
            contended: simulate_contended(&schedule.topology, &loads, BUFFER_SLOTS),
            uncontended: simulate_contended(
                &schedule.topology.to_independent(),
                &loads,
                BUFFER_SLOTS,
            ),
        };

        MultiGpuRun {
            decisions,
            devices: self.context.device_count(),
            kernel_seconds,
            filter_seconds,
            per_device,
            interconnect,
        }
    }
}

/// Convenience container mirroring the per-device timing rows of Tables S.21–S.23.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of devices.
    pub devices: usize,
    /// Kernel-time throughput in millions of filtrations per second.
    pub kernel_mps: f64,
    /// Filter-time throughput in millions of filtrations per second.
    pub filter_mps: f64,
}

impl ScalingPoint {
    /// Builds a scaling point from a run over `pairs` pairs.
    pub fn from_run(run: &MultiGpuRun, pairs: usize) -> ScalingPoint {
        ScalingPoint {
            devices: run.devices,
            kernel_mps: crate::timing::pairs_per_second(pairs, run.kernel_seconds) / 1e6,
            filter_mps: crate::timing::pairs_per_second(pairs, run.filter_seconds) / 1e6,
        }
    }

    /// Accumulated timing breakdown across devices (for reporting).
    pub fn timing_of(run: &MultiGpuRun) -> TimingBreakdown {
        let mut total = TimingBreakdown::default();
        for device_run in &run.per_device {
            total.accumulate(&device_run.timing);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncodingActor;
    use gk_gpusim::topology::{LinkSpec, TopologyKind};
    use gk_seq::datasets::DatasetProfile;

    fn pairs(count: usize) -> PairSet {
        DatasetProfile::set3().generate(count, 321)
    }

    fn multi(devices: usize, encoding: EncodingActor) -> MultiGpuGateKeeper {
        MultiGpuGateKeeper::new(
            DeviceSpec::gtx_1080_ti(),
            devices,
            FilterConfig::new(100, 2).with_encoding(encoding),
        )
    }

    #[test]
    fn multi_gpu_decisions_match_single_gpu() {
        let set = pairs(2_000);
        let single = multi(1, EncodingActor::Device).filter_set(&set);
        let eight = multi(8, EncodingActor::Device).filter_set(&set);
        assert_eq!(single.decisions, eight.decisions);
        assert_eq!(eight.devices, 8);
        assert_eq!(eight.per_device.len(), 8);
    }

    #[test]
    fn kernel_time_improves_with_more_devices() {
        let set = pairs(4_000);
        let one = multi(1, EncodingActor::Host).filter_set(&set);
        let four = multi(4, EncodingActor::Host).filter_set(&set);
        let eight = multi(8, EncodingActor::Host).filter_set(&set);
        assert!(four.kernel_seconds < one.kernel_seconds);
        assert!(eight.kernel_seconds < four.kernel_seconds);
    }

    #[test]
    fn filter_time_scales_sublinearly_because_of_host_costs() {
        let set = pairs(4_000);
        let one = multi(1, EncodingActor::Host).filter_set(&set);
        let eight = multi(8, EncodingActor::Host).filter_set(&set);
        let kernel_speedup = one.kernel_seconds / eight.kernel_seconds;
        let filter_speedup = one.filter_seconds / eight.filter_seconds;
        assert!(filter_speedup >= 1.0);
        assert!(
            filter_speedup < kernel_speedup,
            "filter speedup {filter_speedup} should trail kernel speedup {kernel_speedup}"
        );
    }

    #[test]
    fn scaling_points_report_increasing_kernel_throughput() {
        let set = pairs(3_000);
        let mut last = 0.0;
        for devices in [1usize, 2, 4] {
            let run = multi(devices, EncodingActor::Host).filter_set(&set);
            let point = ScalingPoint::from_run(&run, set.len());
            assert_eq!(point.devices, devices);
            assert!(point.kernel_mps > last, "devices = {devices}");
            last = point.kernel_mps;
        }
    }

    #[test]
    fn round_robin_sharding_covers_every_pair_once() {
        let filter = multi(3, EncodingActor::Device);
        let (plan, assignment) = filter.shard_plan(10_000);
        assert_eq!(assignment.len(), 3);
        let mut covered = vec![false; 10_000];
        for (start, end) in assignment.iter().flatten() {
            for flag in &mut covered[*start..*end] {
                assert!(!*flag, "pair covered twice");
                *flag = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        // The cap keeps every device busy even when the pipeline chunk is huge.
        assert!(plan.chunk_pairs <= 10_000usize.div_ceil(3));
        assert!(assignment.iter().all(|ranges| !ranges.is_empty()));
    }

    #[test]
    fn overlap_reduces_multi_gpu_filter_time_without_changing_decisions() {
        let set = pairs(4_000);
        let config = FilterConfig::new(100, 2)
            .with_encoding(EncodingActor::Host)
            .with_chunk_pairs(250);
        let serialized =
            MultiGpuGateKeeper::new(DeviceSpec::gtx_1080_ti(), 4, config).filter_set(&set);
        let overlapped =
            MultiGpuGateKeeper::new(DeviceSpec::gtx_1080_ti(), 4, config.with_overlap(true))
                .filter_set(&set);
        assert_eq!(serialized.decisions, overlapped.decisions);
        assert_eq!(serialized.kernel_seconds, overlapped.kernel_seconds);
        assert!(overlapped.filter_seconds < serialized.filter_seconds);
    }

    #[test]
    fn host_prefetch_does_not_change_multi_gpu_results() {
        let set = pairs(3_000);
        let config = FilterConfig::new(100, 2)
            .with_encoding(EncodingActor::Host)
            .with_chunk_pairs(200)
            .with_overlap(true);
        let serial = MultiGpuGateKeeper::new(DeviceSpec::gtx_1080_ti(), 4, config).filter_set(&set);
        let prefetched = MultiGpuGateKeeper::new(
            DeviceSpec::gtx_1080_ti(),
            4,
            config.with_host_prefetch(true),
        )
        .filter_set(&set);
        assert_eq!(serial.decisions, prefetched.decisions);
        assert_eq!(serial.kernel_seconds, prefetched.kernel_seconds);
        assert_eq!(serial.filter_seconds, prefetched.filter_seconds);
        for (a, b) in serial.per_device.iter().zip(prefetched.per_device.iter()) {
            assert_eq!(a.timing, b.timing);
            assert_eq!(a.batches, b.batches);
        }
    }

    #[test]
    fn device_encode_shards_identically_to_host_encode() {
        // The encoding execution path must be transparent to the round-robin
        // sharding: same decisions on 1 and 4 devices, in both modes, and the
        // host-paid-once accounting still holds (device mode pays no host
        // encode at all).
        let set = pairs(3_000);
        let host = multi(4, EncodingActor::Host).filter_set(&set);
        let device = multi(4, EncodingActor::Device).filter_set(&set);
        let single_device = multi(1, EncodingActor::Device).filter_set(&set);
        assert_eq!(host.decisions, device.decisions);
        assert_eq!(device.decisions, single_device.decisions);
        for run in &device.per_device {
            assert_eq!(run.timing.encode_seconds, 0.0);
            assert!(run.timing.encode_device_seconds > 0.0);
            assert!(run.pipeline.device_encode);
        }
        let host_total = ScalingPoint::timing_of(&host);
        let device_total = ScalingPoint::timing_of(&device);
        assert!(host_total.encode_seconds > 0.0);
        assert_eq!(device_total.encode_seconds, 0.0);
        assert!(device_total.encode_device_seconds > 0.0);
    }

    #[test]
    fn accepted_counts_are_consistent() {
        let set = pairs(1_000);
        let run = multi(3, EncodingActor::Device).filter_set(&set);
        assert_eq!(
            run.accepted(),
            run.decisions.iter().filter(|d| d.accepted).count()
        );
        let combined = run.memory_stats();
        assert!(combined.bytes_to_device > 0);
    }

    #[test]
    fn timing_accumulation_covers_all_devices() {
        let set = pairs(1_000);
        let run = multi(2, EncodingActor::Device).filter_set(&set);
        let total = ScalingPoint::timing_of(&run);
        assert!(total.kernel_seconds >= run.kernel_seconds);
    }

    #[test]
    fn naive_runs_on_private_links_replay_without_contention() {
        let set = pairs(1_000);
        let run = multi(2, EncodingActor::Device).filter_set(&set);
        assert_eq!(run.interconnect.topology, "private");
        assert!(!run.interconnect.aware);
        // Private links are their own uncontended twin: identical makespan,
        // zero time spent waiting for a link.
        assert_eq!(
            run.interconnect.contended.makespan_seconds,
            run.interconnect.uncontended.makespan_seconds
        );
        assert_eq!(run.interconnect.link_wait_seconds(), 0.0);
        assert_eq!(run.interconnect.contention_penalty_seconds(), 0.0);
        assert!(run.interconnect.makespan_seconds() > 0.0);
    }

    #[test]
    fn shared_root_contention_shows_up_only_in_the_replay() {
        let set = pairs(4_000);
        let private = multi(4, EncodingActor::Device).filter_set(&set);
        let shared = MultiGpuGateKeeper::new(
            DeviceSpec::gtx_1080_ti(),
            4,
            FilterConfig::new(100, 2)
                .with_encoding(EncodingActor::Device)
                .with_topology(TopologyKind::SharedRoot),
        )
        .filter_set(&set);
        // The topology knob adds reporting; every pre-existing field is
        // bit-for-bit what the private-link run produced.
        assert_eq!(private.decisions, shared.decisions);
        assert_eq!(private.kernel_seconds, shared.kernel_seconds);
        assert_eq!(private.filter_seconds, shared.filter_seconds);
        for (a, b) in private.per_device.iter().zip(shared.per_device.iter()) {
            assert_eq!(a.timing, b.timing);
            assert_eq!(a.chunk_loads, b.chunk_loads);
        }
        // …but the replay sees four uploads colliding on one root complex.
        assert_eq!(shared.interconnect.topology, "shared");
        assert!(shared.interconnect.contention_penalty_seconds() > 0.0);
        assert!(shared.interconnect.contention_slowdown() > 1.0);
        assert!(shared.interconnect.link_wait_seconds() > 0.0);
    }

    #[test]
    fn aware_scheduler_beats_naive_on_a_crowded_shared_root() {
        let set = pairs(40_000);
        let base = FilterConfig::new(100, 2)
            .with_encoding(EncodingActor::Device)
            .with_topology(TopologyKind::SharedRoot);
        let naive = MultiGpuGateKeeper::new(DeviceSpec::gtx_1080_ti(), 8, base).filter_set(&set);
        let aware =
            MultiGpuGateKeeper::new(DeviceSpec::gtx_1080_ti(), 8, base.with_topology_aware(true))
                .filter_set(&set);
        assert_eq!(naive.decisions, aware.decisions);
        assert!(
            aware.interconnect.makespan_seconds() < naive.interconnect.makespan_seconds(),
            "aware {} should beat naive {}",
            aware.interconnect.makespan_seconds(),
            naive.interconnect.makespan_seconds()
        );
    }

    #[test]
    fn a_starved_link_flips_the_encoding_actor_to_host() {
        let filter = MultiGpuGateKeeper::new(
            DeviceSpec::gtx_1080_ti(),
            2,
            FilterConfig::new(100, 2)
                .with_encoding(EncodingActor::Device)
                .with_topology_aware(true),
        );
        let starved = Topology::custom(
            "starved",
            vec![LinkSpec {
                name: "slow".to_string(),
                bandwidth_gb_per_s: 0.05,
            }],
            vec![0, 0],
        );
        // Raw uploads are ~4x the packed words, so on a starved link the
        // scheduler packs on the host despite the extra host time.
        let schedule = filter.schedule_for(&starved, 2_000);
        for assignment in &schedule.assignments {
            assert_eq!(assignment.config.encoding, EncodingActor::Host);
        }
        // On the paper's PCIe complex the device-encode preference holds.
        for assignment in &filter.schedule(2_000).assignments {
            assert_eq!(assignment.config.encoding, EncodingActor::Device);
        }
        // The flip retunes the plan, never the decisions.
        let set = pairs(2_000);
        let flipped = filter.filter_set_on(&starved, &set);
        let baseline = filter.filter_set(&set);
        assert_eq!(flipped.decisions, baseline.decisions);
    }

    #[test]
    fn aware_schedules_partition_exactly_even_for_mixed_devices() {
        let filter = MultiGpuGateKeeper::with_devices(
            vec![
                DeviceSpec::gtx_1080_ti(),
                DeviceSpec::tesla_k20x(),
                DeviceSpec::gtx_1080_ti(),
            ],
            FilterConfig::new(100, 2)
                .with_topology(TopologyKind::SharedRoot)
                .with_topology_aware(true),
        );
        for total in [0usize, 1, 7, 997, 10_001] {
            let schedule = filter.schedule(total);
            assert_eq!(schedule.total_pairs(), total);
            let mut cursor = 0usize;
            for assignment in &schedule.assignments {
                for &(start, end) in &assignment.ranges {
                    assert_eq!(start, cursor, "total {total}");
                    assert!(end > start, "total {total}");
                    cursor = end;
                }
            }
            assert_eq!(cursor, total, "total {total}");
        }
    }

    #[test]
    fn aware_chunks_shrink_by_the_sharer_count() {
        let base = FilterConfig::new(100, 2)
            .with_encoding(EncodingActor::Device)
            .with_topology(TopologyKind::SharedRoot)
            .with_topology_aware(true);
        let filter = MultiGpuGateKeeper::new(DeviceSpec::gtx_1080_ti(), 8, base);
        let schedule = filter.schedule(40_000);
        // 5_000 pairs per device, split eight ways on the shared root.
        for assignment in &schedule.assignments {
            assert_eq!(assignment.pairs(), 5_000);
            assert_eq!(assignment.config.chunk_pairs, 625);
        }
    }
}
