//! Multi-GPU GateKeeper: round-robin chunk sharding across several devices.
//!
//! Setup 1 of the paper attaches eight GTX 1080 Ti boards to one host; the
//! multi-GPU experiments (Figure 8, Sup. Tables S.21–S.23) show kernel-time
//! throughput scaling almost linearly with the device count (especially in the
//! host-encoded mode) while filter-time throughput grows more slowly because the
//! host-side preparation and the shared PCIe complex do not scale.
//!
//! Work distribution reuses the [`crate::pipeline`] chunk planner: the pair set
//! is cut into pipeline chunks and chunk *i* goes to device *i mod n* (with the
//! chunk size capped at `⌈total / n⌉` so every device gets work), so each device
//! runs its chunks through the same triple-buffered pipeline the single-GPU path
//! uses — including stream overlap when [`FilterConfig::overlap`] is on. Timing
//! conventions follow §3.1/§4.3: the workload is balanced across devices, the
//! reported multi-GPU kernel time is the slowest device's kernel time, and the
//! host-side costs (preparation, encoding) are paid once.

use crate::config::FilterConfig;
use crate::gpu::{FilterRun, GateKeeperGpu};
use crate::pipeline::ChunkPlan;
use crate::timing::TimingBreakdown;
use gk_gpusim::device::DeviceSpec;
use gk_gpusim::memory::MemoryStats;
use gk_gpusim::multi::MultiGpu;
use gk_seq::pairs::PairSet;
use serde::{Deserialize, Serialize};

/// Result of a multi-GPU filtering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiGpuRun {
    /// Per-pair decisions in input order.
    pub decisions: Vec<gk_filters::FilterDecision>,
    /// Number of devices used.
    pub devices: usize,
    /// Multi-GPU kernel time: the slowest device's summed kernel time.
    pub kernel_seconds: f64,
    /// Host-observed filter time for the whole run.
    pub filter_seconds: f64,
    /// Per-device filter runs (for detailed reporting).
    pub per_device: Vec<FilterRun>,
}

impl MultiGpuRun {
    /// Number of accepted pairs.
    pub fn accepted(&self) -> usize {
        self.decisions.iter().filter(|d| d.accepted).count()
    }

    /// Combined unified-memory statistics across devices.
    pub fn memory_stats(&self) -> MemoryStats {
        let mut total = MemoryStats::default();
        for run in &self.per_device {
            total.bytes_to_device += run.memory_stats.bytes_to_device;
            total.bytes_to_host += run.memory_stats.bytes_to_host;
            total.page_faults += run.memory_stats.page_faults;
            total.prefetched_pages += run.memory_stats.prefetched_pages;
            total.transfer_seconds += run.memory_stats.transfer_seconds;
        }
        total
    }
}

/// GateKeeper-GPU spread over several identical devices.
#[derive(Debug, Clone)]
pub struct MultiGpuGateKeeper {
    context: MultiGpu,
    config: FilterConfig,
}

impl MultiGpuGateKeeper {
    /// Creates a multi-GPU filter over `device_count` copies of `device`.
    pub fn new(
        device: DeviceSpec,
        device_count: usize,
        config: FilterConfig,
    ) -> MultiGpuGateKeeper {
        MultiGpuGateKeeper {
            context: MultiGpu::homogeneous(device, device_count),
            config,
        }
    }

    /// Number of devices in the context.
    pub fn device_count(&self) -> usize {
        self.context.device_count()
    }

    /// The filter configuration.
    pub fn config(&self) -> &FilterConfig {
        &self.config
    }

    /// The chunk-to-device assignment for `total` pairs: the single-GPU pipeline
    /// chunk plan, with the chunk size capped at `⌈total / devices⌉` so a small
    /// set still spreads across every device, sharded round-robin.
    pub fn shard_plan(&self, total: usize) -> (ChunkPlan, Vec<Vec<(usize, usize)>>) {
        let devices = self.context.device_count();
        let probe = GateKeeperGpu::new(self.context.devices()[0].clone(), self.config);
        let mut plan = probe.chunk_plan();
        if devices > 1 && total > 0 {
            plan.chunk_pairs = plan.chunk_pairs.min(total.div_ceil(devices)).max(1);
        }
        let assignment = plan.round_robin(total, devices);
        (plan, assignment)
    }

    /// Filters a pair set across all devices.
    pub fn filter_set(&self, pairs: &PairSet) -> MultiGpuRun {
        let (_, assignment) = self.shard_plan(pairs.len());

        // Each device pipelines its round-robin chunk share. The shares are
        // independent, so they are processed sequentially here while the timing
        // combines them as if they ran concurrently (which they do on real
        // hardware).
        let mut per_device = Vec::with_capacity(assignment.len());
        let mut decisions = vec![gk_filters::FilterDecision::accept(0); pairs.len()];
        for (device_spec, ranges) in self.context.devices().iter().zip(assignment.iter()) {
            let gpu = GateKeeperGpu::new(device_spec.clone(), self.config);
            let run =
                gpu.filter_chunks(ranges.iter().map(|&(start, end)| &pairs.pairs[start..end]));
            let mut cursor = 0usize;
            for &(start, end) in ranges {
                decisions[start..end]
                    .copy_from_slice(&run.decisions[cursor..cursor + (end - start)]);
                cursor += end - start;
            }
            per_device.push(run);
        }

        // Kernel time: slowest device (§4.3). Filter time: the host pays preparation
        // and encoding once (they are not duplicated per device on real hardware —
        // the host fills one buffer per device from the same pass), then the devices
        // transfer and compute concurrently, so the device-side part is the slowest
        // device's pipeline time beyond those host stages (its overlapped makespan
        // when stream overlap is on, its transfer + kernel + readback sum otherwise).
        let kernel_seconds = per_device
            .iter()
            .map(|r| r.kernel_seconds())
            .fold(0.0, f64::max);
        let host_once: f64 = per_device
            .iter()
            .map(|r| r.timing.host_prep_seconds + r.timing.encode_seconds)
            .sum();
        let device_side = per_device
            .iter()
            .map(|r| {
                (r.filter_seconds() - r.timing.host_prep_seconds - r.timing.encode_seconds).max(0.0)
            })
            .fold(0.0, f64::max);
        let filter_seconds = host_once + device_side;

        MultiGpuRun {
            decisions,
            devices: self.context.device_count(),
            kernel_seconds,
            filter_seconds,
            per_device,
        }
    }
}

/// Convenience container mirroring the per-device timing rows of Tables S.21–S.23.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of devices.
    pub devices: usize,
    /// Kernel-time throughput in millions of filtrations per second.
    pub kernel_mps: f64,
    /// Filter-time throughput in millions of filtrations per second.
    pub filter_mps: f64,
}

impl ScalingPoint {
    /// Builds a scaling point from a run over `pairs` pairs.
    pub fn from_run(run: &MultiGpuRun, pairs: usize) -> ScalingPoint {
        ScalingPoint {
            devices: run.devices,
            kernel_mps: crate::timing::pairs_per_second(pairs, run.kernel_seconds) / 1e6,
            filter_mps: crate::timing::pairs_per_second(pairs, run.filter_seconds) / 1e6,
        }
    }

    /// Accumulated timing breakdown across devices (for reporting).
    pub fn timing_of(run: &MultiGpuRun) -> TimingBreakdown {
        let mut total = TimingBreakdown::default();
        for device_run in &run.per_device {
            total.accumulate(&device_run.timing);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncodingActor;
    use gk_seq::datasets::DatasetProfile;

    fn pairs(count: usize) -> PairSet {
        DatasetProfile::set3().generate(count, 321)
    }

    fn multi(devices: usize, encoding: EncodingActor) -> MultiGpuGateKeeper {
        MultiGpuGateKeeper::new(
            DeviceSpec::gtx_1080_ti(),
            devices,
            FilterConfig::new(100, 2).with_encoding(encoding),
        )
    }

    #[test]
    fn multi_gpu_decisions_match_single_gpu() {
        let set = pairs(2_000);
        let single = multi(1, EncodingActor::Device).filter_set(&set);
        let eight = multi(8, EncodingActor::Device).filter_set(&set);
        assert_eq!(single.decisions, eight.decisions);
        assert_eq!(eight.devices, 8);
        assert_eq!(eight.per_device.len(), 8);
    }

    #[test]
    fn kernel_time_improves_with_more_devices() {
        let set = pairs(4_000);
        let one = multi(1, EncodingActor::Host).filter_set(&set);
        let four = multi(4, EncodingActor::Host).filter_set(&set);
        let eight = multi(8, EncodingActor::Host).filter_set(&set);
        assert!(four.kernel_seconds < one.kernel_seconds);
        assert!(eight.kernel_seconds < four.kernel_seconds);
    }

    #[test]
    fn filter_time_scales_sublinearly_because_of_host_costs() {
        let set = pairs(4_000);
        let one = multi(1, EncodingActor::Host).filter_set(&set);
        let eight = multi(8, EncodingActor::Host).filter_set(&set);
        let kernel_speedup = one.kernel_seconds / eight.kernel_seconds;
        let filter_speedup = one.filter_seconds / eight.filter_seconds;
        assert!(filter_speedup >= 1.0);
        assert!(
            filter_speedup < kernel_speedup,
            "filter speedup {filter_speedup} should trail kernel speedup {kernel_speedup}"
        );
    }

    #[test]
    fn scaling_points_report_increasing_kernel_throughput() {
        let set = pairs(3_000);
        let mut last = 0.0;
        for devices in [1usize, 2, 4] {
            let run = multi(devices, EncodingActor::Host).filter_set(&set);
            let point = ScalingPoint::from_run(&run, set.len());
            assert_eq!(point.devices, devices);
            assert!(point.kernel_mps > last, "devices = {devices}");
            last = point.kernel_mps;
        }
    }

    #[test]
    fn round_robin_sharding_covers_every_pair_once() {
        let filter = multi(3, EncodingActor::Device);
        let (plan, assignment) = filter.shard_plan(10_000);
        assert_eq!(assignment.len(), 3);
        let mut covered = vec![false; 10_000];
        for (start, end) in assignment.iter().flatten() {
            for flag in &mut covered[*start..*end] {
                assert!(!*flag, "pair covered twice");
                *flag = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
        // The cap keeps every device busy even when the pipeline chunk is huge.
        assert!(plan.chunk_pairs <= 10_000usize.div_ceil(3));
        assert!(assignment.iter().all(|ranges| !ranges.is_empty()));
    }

    #[test]
    fn overlap_reduces_multi_gpu_filter_time_without_changing_decisions() {
        let set = pairs(4_000);
        let config = FilterConfig::new(100, 2)
            .with_encoding(EncodingActor::Host)
            .with_chunk_pairs(250);
        let serialized =
            MultiGpuGateKeeper::new(DeviceSpec::gtx_1080_ti(), 4, config).filter_set(&set);
        let overlapped =
            MultiGpuGateKeeper::new(DeviceSpec::gtx_1080_ti(), 4, config.with_overlap(true))
                .filter_set(&set);
        assert_eq!(serialized.decisions, overlapped.decisions);
        assert_eq!(serialized.kernel_seconds, overlapped.kernel_seconds);
        assert!(overlapped.filter_seconds < serialized.filter_seconds);
    }

    #[test]
    fn host_prefetch_does_not_change_multi_gpu_results() {
        let set = pairs(3_000);
        let config = FilterConfig::new(100, 2)
            .with_encoding(EncodingActor::Host)
            .with_chunk_pairs(200)
            .with_overlap(true);
        let serial = MultiGpuGateKeeper::new(DeviceSpec::gtx_1080_ti(), 4, config).filter_set(&set);
        let prefetched = MultiGpuGateKeeper::new(
            DeviceSpec::gtx_1080_ti(),
            4,
            config.with_host_prefetch(true),
        )
        .filter_set(&set);
        assert_eq!(serial.decisions, prefetched.decisions);
        assert_eq!(serial.kernel_seconds, prefetched.kernel_seconds);
        assert_eq!(serial.filter_seconds, prefetched.filter_seconds);
        for (a, b) in serial.per_device.iter().zip(prefetched.per_device.iter()) {
            assert_eq!(a.timing, b.timing);
            assert_eq!(a.batches, b.batches);
        }
    }

    #[test]
    fn device_encode_shards_identically_to_host_encode() {
        // The encoding execution path must be transparent to the round-robin
        // sharding: same decisions on 1 and 4 devices, in both modes, and the
        // host-paid-once accounting still holds (device mode pays no host
        // encode at all).
        let set = pairs(3_000);
        let host = multi(4, EncodingActor::Host).filter_set(&set);
        let device = multi(4, EncodingActor::Device).filter_set(&set);
        let single_device = multi(1, EncodingActor::Device).filter_set(&set);
        assert_eq!(host.decisions, device.decisions);
        assert_eq!(device.decisions, single_device.decisions);
        for run in &device.per_device {
            assert_eq!(run.timing.encode_seconds, 0.0);
            assert!(run.timing.encode_device_seconds > 0.0);
            assert!(run.pipeline.device_encode);
        }
        let host_total = ScalingPoint::timing_of(&host);
        let device_total = ScalingPoint::timing_of(&device);
        assert!(host_total.encode_seconds > 0.0);
        assert_eq!(device_total.encode_seconds, 0.0);
        assert!(device_total.encode_device_seconds > 0.0);
    }

    #[test]
    fn accepted_counts_are_consistent() {
        let set = pairs(1_000);
        let run = multi(3, EncodingActor::Device).filter_set(&set);
        assert_eq!(
            run.accepted(),
            run.decisions.iter().filter(|d| d.accepted).count()
        );
        let combined = run.memory_stats();
        assert!(combined.bytes_to_device > 0);
    }

    #[test]
    fn timing_accumulation_covers_all_devices() {
        let set = pairs(1_000);
        let run = multi(2, EncodingActor::Device).filter_set(&set);
        let total = ScalingPoint::timing_of(&run);
        assert!(total.kernel_seconds >= run.kernel_seconds);
    }
}
