//! # gk-core
//!
//! The GateKeeper-GPU *system*: everything the paper's Methods section (§3)
//! describes around the filtering algorithm itself.
//!
//! * [`config`] — compile-time-style configuration (read length, error threshold,
//!   encoding actor) and the system-configuration step of §3.1 that sizes batches
//!   from the device's free global memory.
//! * [`gpu`] — [`gpu::GateKeeperGpu`]: batched filtering on the simulated device
//!   (unified-memory buffers, memAdvise + prefetch streams, one filtration per
//!   thread, kernel/filter time split, host- or device-side encoding).
//! * [`pipeline`] — the chunked, triple-buffered batch pipeline: chunk planning,
//!   the stream-overlap scheduler (encode+H2D next chunk ∥ kernel current chunk ∥
//!   D2H previous chunk), and overlapped-versus-serialized reporting.
//! * [`multi_gpu`] — [`multi_gpu::MultiGpuGateKeeper`]: round-robin chunk sharding
//!   across several devices with the paper's timing conventions.
//! * [`cpu`] — [`cpu::GateKeeperCpu`]: the multicore CPU baseline used in the
//!   throughput comparison (Table 2), measured in real wall-clock time.
//! * [`timing`] — timing breakdowns and the "billions of filtrations in 40 minutes"
//!   throughput metric used throughout §5.2.
//! * [`backend`] — [`backend::FilterBackend`]: the cpu/gpu/multi-gpu execution
//!   paths behind one registry trait, the dispatch seam of the `gk-serve`
//!   filter-as-a-service daemon.
//!
//! The filtering *algorithm* (masks, amendment, boundary fix) lives in
//! `gk-filters`; this crate wires it into the execution substrate from `gk-gpusim`.

#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod cpu;
pub mod gpu;
pub mod multi_gpu;
pub mod pipeline;
pub mod timing;

pub use backend::{
    BackendRegistry, CpuSimdBackend, FilterBackend, FilterJob, FilterKind, GpuSimBackend,
    MultiGpuBackend,
};
pub use config::{EncodingActor, FilterConfig, SystemConfig};
pub use cpu::{CpuFilterRun, GateKeeperCpu};
pub use gpu::{FilterRun, GateKeeperGpu};
pub use multi_gpu::{DeviceAssignment, MultiGpuGateKeeper, MultiGpuRun, MultiGpuSchedule};
pub use pipeline::{
    ChunkPlan, PipelineReport, PipelineSchedule, StreamFilterRun, MIN_CONTENDED_CHUNK_PAIRS,
};
pub use timing::{billions_in_40_minutes, pairs_per_second, InterconnectReport, TimingBreakdown};
