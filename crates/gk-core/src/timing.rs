//! Timing breakdowns and throughput metrics.
//!
//! The paper reports two time measurements for every filtering run (§4.3):
//!
//! * **kernel time** — time spent on the device only, summed over the batched
//!   kernel calls (CUDA Event API);
//! * **filter time** — total time from the host's perspective, including host-side
//!   preparation, encoding and data transfer.
//!
//! Throughput is expressed as "billions of filtrations in 40 minutes" (Tables 2,
//! S.13–S.15) or "millions of filtrations per second" (Figures 6–8).

use gk_gpusim::topology::{ContentionRun, LinkUsage};
use serde::{Deserialize, Serialize};

/// Time breakdown of one filtering run.
///
/// All fields except [`TimingBreakdown::host_wall_seconds`] are *simulated*
/// seconds derived deterministically from the workload; `host_wall_seconds` is
/// the **measured** wall-clock the host actually spent producing the run
/// (encode + kernel closure + bookkeeping), which is what the host-side
/// prefetch shrinks. Equality compares the simulated components only — two
/// runs over the same input are "equal" even though their measured wall-clock
/// inevitably differs, which is what lets the determinism suites compare whole
/// run structs.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// Host-side buffer preparation (batching reads and candidate indices).
    pub host_prep_seconds: f64,
    /// 2-bit encoding time (host encoding only; zero when the device encodes).
    pub encode_seconds: f64,
    /// Share of [`TimingBreakdown::kernel_seconds`] the fused encode+filter
    /// kernel spent packing raw bases on the *device* (device encoding only;
    /// zero when the host encodes). This is an attribution split **inside**
    /// the kernel time, not an extra component — it is deliberately excluded
    /// from [`TimingBreakdown::serialized_seconds`] so the two encode modes
    /// stay comparable: the host path pays `encode_seconds` on top of its
    /// kernel, the device path pays `encode_device_seconds` inside it.
    pub encode_device_seconds: f64,
    /// Host↔device data movement (unified-memory migrations and prefetches).
    pub transfer_seconds: f64,
    /// Device execution time, summed over batched kernel calls.
    pub kernel_seconds: f64,
    /// Result read-back time.
    pub readback_seconds: f64,
    /// End-to-end makespan of the stream-overlapped pipeline, when the run was
    /// executed with overlap enabled: encode+H2D of chunk *i+1* hides under the
    /// kernel of chunk *i* while D2H of chunk *i−1* drains, so this is smaller
    /// than the serialized component sum. `None` for serialized runs.
    pub overlapped_seconds: Option<f64>,
    /// **Measured** host wall-clock of the run in seconds: the time this
    /// process actually spent preparing, encoding and executing the chunks
    /// (not simulated). With host prefetch on, chunk *i+1*'s encode runs on
    /// the worker pool while chunk *i*'s kernel closure executes, so this
    /// shrinks on multi-core machines; the simulated splits are identical
    /// either way. Excluded from equality.
    pub host_wall_seconds: f64,
}

impl PartialEq for TimingBreakdown {
    /// Simulated components only; `host_wall_seconds` is measurement noise.
    fn eq(&self, other: &TimingBreakdown) -> bool {
        self.host_prep_seconds == other.host_prep_seconds
            && self.encode_seconds == other.encode_seconds
            && self.encode_device_seconds == other.encode_device_seconds
            && self.transfer_seconds == other.transfer_seconds
            && self.kernel_seconds == other.kernel_seconds
            && self.readback_seconds == other.readback_seconds
            && self.overlapped_seconds == other.overlapped_seconds
    }
}

impl TimingBreakdown {
    /// The serialized filter time: the plain sum of every component, i.e. what
    /// the run costs when no stage overlap is exploited (the pre-pipeline
    /// behaviour, and the paper's per-component accounting of §4.3).
    pub fn serialized_seconds(&self) -> f64 {
        self.host_prep_seconds
            + self.encode_seconds
            + self.transfer_seconds
            + self.kernel_seconds
            + self.readback_seconds
    }

    /// Filter time: everything the host observes (§4.3: "Filter time represents the
    /// total time spent for filtering, including host operations such as data
    /// transfer and encoding the sequences"). For stream-overlapped runs this is
    /// the pipeline makespan; otherwise the serialized component sum.
    pub fn filter_seconds(&self) -> f64 {
        self.overlapped_seconds
            .unwrap_or_else(|| self.serialized_seconds())
    }

    /// Time the stream overlap saved versus serializing the same work (zero for
    /// serialized runs).
    pub fn overlap_savings_seconds(&self) -> f64 {
        (self.serialized_seconds() - self.filter_seconds()).max(0.0)
    }

    /// Fraction of the serialized filter time spent 2-bit encoding **on the
    /// host**. This is the share the device encoding actor eliminates: with
    /// device encode the packing happens inside the kernel (tracked as
    /// [`TimingBreakdown::encode_device_seconds`]) and this drops to zero.
    pub fn host_encode_share(&self) -> f64 {
        let total = self.serialized_seconds();
        if total <= 0.0 {
            0.0
        } else {
            self.encode_seconds / total
        }
    }

    /// Adds another breakdown (e.g. accumulating per-batch times). Components
    /// add up; the overlapped makespans of two runs executed one after the
    /// other also add (and an overlapped run accumulated with a serialized one
    /// keeps an overlapped total so `filter_seconds` stays consistent).
    pub fn accumulate(&mut self, other: &TimingBreakdown) {
        let combined_overlap = match (self.overlapped_seconds, other.overlapped_seconds) {
            (None, None) => None,
            _ => Some(self.filter_seconds() + other.filter_seconds()),
        };
        self.host_prep_seconds += other.host_prep_seconds;
        self.encode_seconds += other.encode_seconds;
        self.encode_device_seconds += other.encode_device_seconds;
        self.transfer_seconds += other.transfer_seconds;
        self.kernel_seconds += other.kernel_seconds;
        self.readback_seconds += other.readback_seconds;
        self.host_wall_seconds += other.host_wall_seconds;
        self.overlapped_seconds = combined_overlap;
    }
}

/// Interconnect accounting of one multi-GPU run: the same per-device chunk
/// loads replayed twice through `gk_gpusim::topology::simulate_contended` —
/// once on the configured topology (shared links serialize concurrent
/// transfers) and once on its private-link twin (the paper's implicit
/// free-overlap assumption). The gap between the two makespans is what the
/// interconnect costs; the existing kernel/filter-time fields of the run never
/// include it, so all pre-topology numbers stay bit-for-bit unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterconnectReport {
    /// Topology label (`private`, `shared`, `switch:4`, `nvlink`, …).
    pub topology: String,
    /// Whether the topology-aware scheduler produced the shard plan.
    pub aware: bool,
    /// Replay on the configured topology, contention included.
    pub contended: ContentionRun,
    /// Replay of the *same* loads with every device on a private link at the
    /// same per-transfer rate — the contention-off baseline.
    pub uncontended: ContentionRun,
}

impl InterconnectReport {
    /// End-to-end makespan under contention (the headline number).
    pub fn makespan_seconds(&self) -> f64 {
        self.contended.makespan_seconds
    }

    /// Seconds the shared links add over the private-link baseline.
    pub fn contention_penalty_seconds(&self) -> f64 {
        (self.contended.makespan_seconds - self.uncontended.makespan_seconds).max(0.0)
    }

    /// Contended-over-uncontended makespan ratio (≥ 1 whenever links are
    /// shared; 1 exactly on private links).
    pub fn contention_slowdown(&self) -> f64 {
        if self.uncontended.makespan_seconds <= 0.0 {
            1.0
        } else {
            self.contended.makespan_seconds / self.uncontended.makespan_seconds
        }
    }

    /// Total seconds transfers stalled behind other devices' link traffic.
    pub fn link_wait_seconds(&self) -> f64 {
        self.contended.link_wait_seconds()
    }

    /// Per-link traffic/stall/utilization rows of the contended replay.
    pub fn links(&self) -> &[LinkUsage] {
        &self.contended.links
    }
}

/// Filtrations per second given a pair count and elapsed seconds.
pub fn pairs_per_second(pairs: usize, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        pairs as f64 / seconds
    }
}

/// The paper's headline throughput unit: billions of filtrations completed in
/// 40 minutes at the measured rate (§4.3).
pub fn billions_in_40_minutes(pairs: usize, seconds: f64) -> f64 {
    pairs_per_second(pairs, seconds) * 40.0 * 60.0 / 1e9
}

/// Millions of filtrations per second (the unit of Figures 6–8).
pub fn millions_per_second(pairs: usize, seconds: f64) -> f64 {
    pairs_per_second(pairs, seconds) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_time_is_the_sum_of_components() {
        let t = TimingBreakdown {
            host_prep_seconds: 1.0,
            encode_seconds: 2.0,
            transfer_seconds: 3.0,
            kernel_seconds: 4.0,
            readback_seconds: 0.5,
            ..Default::default()
        };
        assert!((t.filter_seconds() - 10.5).abs() < 1e-12);
        assert!((t.serialized_seconds() - 10.5).abs() < 1e-12);
        assert_eq!(t.overlap_savings_seconds(), 0.0);
    }

    #[test]
    fn overlapped_runs_report_the_makespan_as_filter_time() {
        let t = TimingBreakdown {
            host_prep_seconds: 1.0,
            encode_seconds: 2.0,
            transfer_seconds: 3.0,
            kernel_seconds: 4.0,
            readback_seconds: 0.5,
            overlapped_seconds: Some(6.5),
            ..Default::default()
        };
        assert!((t.filter_seconds() - 6.5).abs() < 1e-12);
        assert!((t.serialized_seconds() - 10.5).abs() < 1e-12);
        assert!((t.overlap_savings_seconds() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn accumulating_overlapped_breakdowns_adds_makespans() {
        let mut a = TimingBreakdown {
            kernel_seconds: 2.0,
            transfer_seconds: 1.0,
            overlapped_seconds: Some(2.5),
            ..Default::default()
        };
        let b = TimingBreakdown {
            kernel_seconds: 1.0,
            ..Default::default()
        };
        a.accumulate(&b);
        // Overlapped 2.5 s followed by serialized 1.0 s.
        assert_eq!(a.overlapped_seconds, Some(3.5));
        assert!((a.serialized_seconds() - 4.0).abs() < 1e-12);
        assert!((a.filter_seconds() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn accumulate_adds_componentwise() {
        let mut a = TimingBreakdown {
            kernel_seconds: 1.0,
            ..Default::default()
        };
        let b = TimingBreakdown {
            kernel_seconds: 2.0,
            encode_seconds: 0.5,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.kernel_seconds, 3.0);
        assert_eq!(a.encode_seconds, 0.5);
    }

    #[test]
    fn measured_wall_clock_is_excluded_from_equality_but_accumulates() {
        let mut a = TimingBreakdown {
            kernel_seconds: 1.0,
            host_wall_seconds: 3.0,
            ..Default::default()
        };
        let b = TimingBreakdown {
            kernel_seconds: 1.0,
            host_wall_seconds: 99.0,
            ..Default::default()
        };
        // Same simulated splits, wildly different measured wall-clock: equal.
        assert_eq!(a, b);
        a.accumulate(&b);
        assert_eq!(a.host_wall_seconds, 102.0);
        assert_eq!(a.kernel_seconds, 2.0);
    }

    #[test]
    fn device_encode_split_stays_inside_the_kernel_time() {
        // encode_device_seconds is an attribution split of kernel_seconds, so
        // the serialized sum must not double-count it.
        let t = TimingBreakdown {
            host_prep_seconds: 1.0,
            transfer_seconds: 2.0,
            kernel_seconds: 4.0,
            encode_device_seconds: 0.5,
            readback_seconds: 0.5,
            ..Default::default()
        };
        assert!((t.serialized_seconds() - 7.5).abs() < 1e-12);
        assert_eq!(t.host_encode_share(), 0.0);
        let host = TimingBreakdown {
            encode_seconds: 2.5,
            kernel_seconds: 2.5,
            ..Default::default()
        };
        assert!((host.host_encode_share() - 0.5).abs() < 1e-12);
        assert_eq!(TimingBreakdown::default().host_encode_share(), 0.0);
        // The split participates in equality and accumulation.
        let mut a = t;
        assert_ne!(
            a,
            TimingBreakdown {
                encode_device_seconds: 0.0,
                ..t
            }
        );
        a.accumulate(&t);
        assert_eq!(a.encode_device_seconds, 1.0);
    }

    #[test]
    fn interconnect_report_derives_penalty_and_slowdown() {
        let run = |makespan: f64| ContentionRun {
            makespan_seconds: makespan,
            serialized_seconds: makespan * 2.0,
            per_device_finish_seconds: vec![makespan],
            per_device_link_wait_seconds: vec![0.5],
            links: Vec::new(),
            anomalies: 0,
        };
        let report = InterconnectReport {
            topology: "shared".to_string(),
            aware: false,
            contended: run(3.0),
            uncontended: run(2.0),
        };
        assert_eq!(report.makespan_seconds(), 3.0);
        assert!((report.contention_penalty_seconds() - 1.0).abs() < 1e-12);
        assert!((report.contention_slowdown() - 1.5).abs() < 1e-12);
        assert!((report.link_wait_seconds() - 0.5).abs() < 1e-12);
        // A private topology never reports a negative penalty or < 1 slowdown.
        let private = InterconnectReport {
            topology: "private".to_string(),
            aware: true,
            contended: run(2.0),
            uncontended: run(2.0),
        };
        assert_eq!(private.contention_penalty_seconds(), 0.0);
        assert_eq!(private.contention_slowdown(), 1.0);
        let empty = InterconnectReport {
            topology: "private".to_string(),
            aware: false,
            contended: run(0.0),
            uncontended: run(0.0),
        };
        assert_eq!(empty.contention_slowdown(), 1.0);
    }

    #[test]
    fn throughput_units_are_consistent() {
        // 30 M pairs in 0.29 s (paper's Setup 1 kernel time at e = 2) is ~248 B/40 min.
        let b = billions_in_40_minutes(30_000_000, 0.29);
        assert!(b > 240.0 && b < 260.0, "b = {b}");
        let m = millions_per_second(30_000_000, 0.29);
        assert!(m > 100.0 && m < 110.0, "m = {m}");
    }

    #[test]
    fn zero_elapsed_time_gives_zero_throughput() {
        assert_eq!(pairs_per_second(100, 0.0), 0.0);
        assert_eq!(billions_in_40_minutes(100, 0.0), 0.0);
        assert_eq!(millions_per_second(100, -1.0), 0.0);
    }
}
