//! GateKeeper-CPU: the multicore CPU baseline of the throughput comparison.
//!
//! The paper implements GateKeeper-CPU "in a multicore fashion" and reports 1-core
//! and 12-core numbers (§4.3). This implementation runs the identical improved
//! GateKeeper algorithm on a Rayon thread pool with a configurable number of
//! threads, and measures *real* wall-clock time — unlike the GPU path, whose timing
//! comes from the device model — so the growth trends the paper highlights (filter
//! time almost linear in the error threshold on the CPU, §5.2) are directly
//! observable.

use crate::timing::TimingBreakdown;
use gk_filters::gatekeeper::{gatekeeper_kernel_reference, GateKeeperConfig};
use gk_filters::simd::{gatekeeper_filter_block, SimdMode};
use gk_filters::traits::FilterDecision;
use gk_seq::pairs::{encode_pair_batch, PairSet};
use gk_seq::PackedSeq;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Pairs handed to one lane-parallel block task: large enough to amortise the
/// struct-of-arrays transpose, small enough to keep the Rayon work queue full.
const LANE_BLOCK_PAIRS: usize = 256;

/// Result of a CPU filtering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuFilterRun {
    /// Per-pair decisions, in input order.
    pub decisions: Vec<FilterDecision>,
    /// Time spent inside the filtering function only (the paper's CPU "kernel
    /// time": "the time exclusively spent by the function that contains the
    /// GateKeeper algorithm").
    pub kernel_seconds: f64,
    /// Total time including encoding (the CPU "filter time").
    pub filter_seconds: f64,
    /// Number of worker threads used.
    pub threads: usize,
}

impl CpuFilterRun {
    /// Number of accepted pairs.
    pub fn accepted(&self) -> usize {
        self.decisions.iter().filter(|d| d.accepted).count()
    }

    /// Timing breakdown in the common format.
    pub fn timing(&self) -> TimingBreakdown {
        TimingBreakdown {
            encode_seconds: (self.filter_seconds - self.kernel_seconds).max(0.0),
            kernel_seconds: self.kernel_seconds,
            ..Default::default()
        }
    }
}

/// The multicore CPU implementation of the improved GateKeeper filter.
///
/// The worker pool is built once at construction and shared by every
/// `filter_set` call (and by clones), so repeated batches pay no thread-spawn
/// cost; with `threads == 1` the pool is the sequential fallback and the run
/// doubles as the determinism reference for the parallel paths.
#[derive(Debug, Clone)]
pub struct GateKeeperCpu {
    threshold: u32,
    threads: usize,
    kernel_config: GateKeeperConfig,
    simd: SimdMode,
    pool: Arc<rayon::ThreadPool>,
}

impl GateKeeperCpu {
    /// Creates a CPU filter with the given error threshold and worker-thread count
    /// (the paper reports 1 and 12 cores).
    pub fn new(threshold: u32, threads: usize) -> GateKeeperCpu {
        let threads = threads.max(1);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build CPU filtering thread pool");
        GateKeeperCpu::with_pool(threshold, threads, Arc::new(pool))
    }

    /// Creates a CPU filter on an existing worker pool. Harness binaries that
    /// sweep thresholds or datasets share one pool per thread count this way
    /// instead of re-spawning workers for every measurement; `threads` must
    /// describe the pool's worker count (it is what gets reported).
    pub fn with_pool(
        threshold: u32,
        threads: usize,
        pool: Arc<rayon::ThreadPool>,
    ) -> GateKeeperCpu {
        GateKeeperCpu {
            threshold,
            threads: threads.max(1),
            kernel_config: GateKeeperConfig::gpu(threshold),
            simd: SimdMode::Auto.resolve(),
            pool,
        }
    }

    /// Selects the SIMD mode (lane-parallel blocks or per-bit scalar
    /// reference; `Auto` consults `GK_SIMD` here, at construction — never on
    /// the per-block hot path). Decisions are byte-identical across modes;
    /// only throughput changes.
    pub fn with_simd_mode(mut self, simd: SimdMode) -> GateKeeperCpu {
        self.simd = simd.resolve();
        self
    }

    /// Error threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The resolved SIMD mode this instance filters with.
    pub fn simd_mode(&self) -> SimdMode {
        self.simd
    }

    /// Filters a whole pair set.
    ///
    /// In lane mode (the default via `Auto`), blocks of pairs are transposed
    /// straight from ASCII into the struct-of-arrays layout inside the kernel
    /// phase — encoding is fused into filtering, so `kernel_seconds` equals
    /// `filter_seconds`. In scalar mode the run keeps the historical two-phase
    /// shape (host encode, then the per-bit reference kernel), which is the
    /// measured baseline the SIMD speedup is reported against. Decisions are
    /// byte-identical across modes and thread counts.
    pub fn filter_set(&self, pairs: &PairSet) -> CpuFilterRun {
        if self.simd == SimdMode::Lanes {
            self.filter_set_lanes(pairs)
        } else {
            self.filter_set_scalar(pairs)
        }
    }

    fn filter_set_lanes(&self, pairs: &PairSet) -> CpuFilterRun {
        let start = Instant::now();
        let config = self.kernel_config;
        let decisions: Vec<FilterDecision> = self.pool.install(|| {
            use rayon::prelude::*;
            pairs
                .pairs
                .par_chunks(LANE_BLOCK_PAIRS)
                .flat_map(|block| gatekeeper_filter_block(block, &config, SimdMode::Lanes))
                .collect()
        });
        let end = Instant::now();
        let elapsed = (end - start).as_secs_f64();

        CpuFilterRun {
            decisions,
            kernel_seconds: elapsed,
            filter_seconds: elapsed,
            threads: self.threads,
        }
    }

    fn filter_set_scalar(&self, pairs: &PairSet) -> CpuFilterRun {
        let start = Instant::now();
        // Encoding phase (the CPU always encodes on the host).
        let encoded: Vec<(PackedSeq, PackedSeq)> =
            self.pool.install(|| encode_pair_batch(&pairs.pairs));
        let encode_done = Instant::now();

        // Filtering phase: the GateKeeper algorithm proper, per-bit reference.
        let config = self.kernel_config;
        let decisions: Vec<FilterDecision> = self.pool.install(|| {
            use rayon::prelude::*;
            encoded
                .par_iter()
                .map(|(read, reference)| {
                    if read.is_undefined() || reference.is_undefined() {
                        FilterDecision::undefined_pass()
                    } else {
                        gatekeeper_kernel_reference(read, reference, &config)
                    }
                })
                .collect()
        });
        let end = Instant::now();

        CpuFilterRun {
            decisions,
            kernel_seconds: (end - encode_done).as_secs_f64(),
            filter_seconds: (end - start).as_secs_f64(),
            threads: self.threads,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gk_seq::datasets::DatasetProfile;

    fn small_set() -> PairSet {
        DatasetProfile::set3().generate(2_000, 11)
    }

    #[test]
    fn decisions_cover_every_pair_in_order() {
        let pairs = small_set();
        let run = GateKeeperCpu::new(5, 2).filter_set(&pairs);
        assert_eq!(run.decisions.len(), pairs.len());
        assert!(run.kernel_seconds >= 0.0);
        assert!(run.filter_seconds >= run.kernel_seconds);
    }

    #[test]
    fn undefined_pairs_pass_through() {
        let mut profile = DatasetProfile::set3();
        profile.undefined_fraction = 0.2;
        let pairs = profile.generate(500, 3);
        let run = GateKeeperCpu::new(5, 2).filter_set(&pairs);
        let undefined_decisions = run.decisions.iter().filter(|d| d.undefined).count();
        assert_eq!(undefined_decisions, pairs.undefined_count());
        assert!(run
            .decisions
            .iter()
            .filter(|d| d.undefined)
            .all(|d| d.accepted));
    }

    #[test]
    fn thread_count_does_not_change_decisions() {
        let pairs = small_set();
        let single = GateKeeperCpu::new(5, 1).filter_set(&pairs);
        let multi = GateKeeperCpu::new(5, 4).filter_set(&pairs);
        assert_eq!(single.decisions, multi.decisions);
    }

    #[test]
    fn simd_mode_does_not_change_decisions() {
        let mut profile = DatasetProfile::set3();
        profile.undefined_fraction = 0.1;
        let pairs = profile.generate(1_500, 17);
        for threshold in [0u32, 2, 5] {
            let lanes = GateKeeperCpu::new(threshold, 2)
                .with_simd_mode(SimdMode::Lanes)
                .filter_set(&pairs);
            let scalar = GateKeeperCpu::new(threshold, 2)
                .with_simd_mode(SimdMode::Scalar)
                .filter_set(&pairs);
            assert_eq!(lanes.decisions, scalar.decisions, "e = {threshold}");
            // Lane mode fuses encoding into the kernel phase.
            assert_eq!(lanes.kernel_seconds, lanes.filter_seconds);
        }
    }

    #[test]
    fn accepted_count_matches_decisions() {
        let pairs = small_set();
        let run = GateKeeperCpu::new(5, 2).filter_set(&pairs);
        assert_eq!(
            run.accepted(),
            run.decisions.iter().filter(|d| d.accepted).count()
        );
        assert!(run.accepted() > 0);
        assert!(run.accepted() < pairs.len());
    }

    #[test]
    fn timing_breakdown_matches_measured_times() {
        let pairs = small_set();
        let run = GateKeeperCpu::new(3, 2).filter_set(&pairs);
        let timing = run.timing();
        assert!((timing.filter_seconds() - run.filter_seconds).abs() < 1e-9);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        assert_eq!(GateKeeperCpu::new(2, 0).threads(), 1);
    }
}
