//! Multi-GPU contexts: batch splitting and aggregate timing across devices.
//!
//! Setup 1 of the paper has eight GTX 1080 Ti boards; "In the multi-GPU model, the
//! batch size is equal for all devices to ensure a fair workload" (§3.1) and "in
//! multi-GPU throughput analysis, kernel time represents the time of the device,
//! which takes the longest time to complete among all other active devices" (§4.3).
//! [`MultiGpu`] reproduces both conventions.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// A set of identical devices working on the same filtering workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiGpu {
    devices: Vec<DeviceSpec>,
}

impl MultiGpu {
    /// Creates a multi-GPU context with `count` copies of `device`.
    pub fn homogeneous(device: DeviceSpec, count: usize) -> MultiGpu {
        assert!(count >= 1, "a multi-GPU context needs at least one device");
        MultiGpu {
            devices: vec![device; count],
        }
    }

    /// Creates a context from an explicit device list.
    pub fn from_devices(devices: Vec<DeviceSpec>) -> MultiGpu {
        assert!(
            !devices.is_empty(),
            "a multi-GPU context needs at least one device"
        );
        MultiGpu { devices }
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The devices.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Splits `total_items` work items into equal per-device shares; when the
    /// count does not divide evenly, the first `total_items % devices` devices
    /// each absorb one extra item. Returns half-open `[start, end)` ranges per
    /// device.
    pub fn split_work(&self, total_items: usize) -> Vec<(usize, usize)> {
        let n = self.devices.len();
        let base = total_items / n;
        let remainder = total_items % n;
        let mut ranges = Vec::with_capacity(n);
        let mut start = 0usize;
        for i in 0..n {
            let extra = usize::from(i < remainder);
            let end = start + base + extra;
            ranges.push((start, end.min(total_items)));
            start = end;
        }
        ranges
    }

    /// Splits `total_items` into contiguous per-device shares proportional to
    /// `weights` (largest-remainder rounding; see
    /// [`crate::topology::weighted_partition`]). Equal weights reproduce
    /// [`MultiGpu::split_work`]'s front-loaded equal split. The topology-aware
    /// sharder feeds each device's effective link bandwidth in here.
    pub fn split_work_weighted(&self, total_items: usize, weights: &[f64]) -> Vec<(usize, usize)> {
        assert_eq!(
            weights.len(),
            self.devices.len(),
            "one weight per device required"
        );
        crate::topology::weighted_partition(total_items, weights)
    }

    /// Multi-GPU kernel time: the slowest device defines the reported time (§4.3).
    pub fn combined_kernel_seconds(per_device_seconds: &[f64]) -> f64 {
        per_device_seconds.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything_without_overlap() {
        let ctx = MultiGpu::homogeneous(DeviceSpec::gtx_1080_ti(), 8);
        let ranges = ctx.split_work(30_000_000);
        assert_eq!(ranges.len(), 8);
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().unwrap().1, 30_000_000);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].1, pair[1].0);
        }
        let total: usize = ranges.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, 30_000_000);
    }

    #[test]
    fn split_is_balanced_within_one_item() {
        let ctx = MultiGpu::homogeneous(DeviceSpec::gtx_1080_ti(), 3);
        let ranges = ctx.split_work(10);
        let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn split_with_fewer_items_than_devices() {
        let ctx = MultiGpu::homogeneous(DeviceSpec::gtx_1080_ti(), 4);
        let ranges = ctx.split_work(2);
        let total: usize = ranges.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, 2);
        assert!(ranges.iter().all(|(s, e)| e >= s));
    }

    #[test]
    fn split_front_loads_the_remainder() {
        // The doc promises the *first* `remainder` devices absorb the extras.
        let ctx = MultiGpu::homogeneous(DeviceSpec::gtx_1080_ti(), 4);
        let ranges = ctx.split_work(10);
        let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn weighted_split_follows_the_weights_and_equal_weights_match_split_work() {
        let ctx = MultiGpu::homogeneous(DeviceSpec::gtx_1080_ti(), 4);
        let ranges = ctx.split_work_weighted(100, &[3.0, 1.0, 1.0, 1.0]);
        assert_eq!(ranges[0], (0, 50));
        assert_eq!(ranges.last().unwrap().1, 100);
        assert_eq!(
            ctx.split_work_weighted(10, &[1.0; 4]),
            ctx.split_work(10),
            "equal weights must reproduce the front-loaded equal split"
        );
    }

    #[test]
    fn combined_kernel_time_is_the_slowest_device() {
        assert_eq!(MultiGpu::combined_kernel_seconds(&[0.2, 0.5, 0.3]), 0.5);
        assert_eq!(MultiGpu::combined_kernel_seconds(&[]), 0.0);
    }

    #[test]
    fn heterogeneous_contexts_keep_device_order() {
        let ctx = MultiGpu::from_devices(vec![DeviceSpec::gtx_1080_ti(), DeviceSpec::tesla_k20x()]);
        assert_eq!(ctx.device_count(), 2);
        assert_eq!(ctx.devices()[1].name, "Tesla K20X");
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_context_panics() {
        MultiGpu::homogeneous(DeviceSpec::gtx_1080_ti(), 0);
    }
}
