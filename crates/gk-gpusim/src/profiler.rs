//! Aggregated kernel profiling, in the style of the `nvprof` reports the paper uses
//! for §5.4 (occupancy, warp execution efficiency, SM efficiency, power, cache
//! behaviour).

use crate::device::DeviceSpec;
use crate::executor::KernelStats;
use crate::power::{PowerModel, PowerReport};
use serde::{Deserialize, Serialize};

/// Profile of a single kernel launch (plus the modelled cache behaviour).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Name of the kernel (e.g. `"gatekeeper_filter"`).
    pub kernel: String,
    /// Execution statistics from the launcher.
    pub stats: KernelStats,
    /// Power samples for the launch.
    pub power: PowerReport,
    /// Modelled L2 hit rate. The paper reports GateKeeper-GPU "mainly utilizes L2
    /// cache with an average hit rate of 86.2%".
    pub l2_hit_rate: f64,
    /// Modelled unified/texture L1 hit rate (31.2% on average in the paper — low,
    /// called out as future work).
    pub l1_hit_rate: f64,
}

/// Collects kernel profiles across the batched launches of one run.
#[derive(Debug, Clone)]
pub struct Profiler {
    device: DeviceSpec,
    power_model: PowerModel,
    profiles: Vec<KernelProfile>,
}

impl Profiler {
    /// Creates a profiler for a device.
    pub fn new(device: DeviceSpec) -> Profiler {
        Profiler {
            power_model: PowerModel::new(device.clone()),
            device,
            profiles: Vec::new(),
        }
    }

    /// The device being profiled.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Records one kernel launch. `words_per_thread` is the packed-word footprint of
    /// a single filtration (7 for 100 bp, 16 for 250 bp), which drives the power and
    /// cache models.
    pub fn record(
        &mut self,
        kernel: impl Into<String>,
        stats: KernelStats,
        words_per_thread: usize,
    ) -> &KernelProfile {
        let power = self.power_model.profile(
            stats.achieved_occupancy,
            words_per_thread,
            stats.kernel_seconds.max(0.05),
        );
        // Cache model: each thread streams its own read/reference words, so reuse in
        // L1 is poor (every access is first-touch per thread) while the shared
        // reference segments give L2 healthy reuse. Longer reads stream more data
        // and push both hit rates down slightly.
        let length_penalty = (words_per_thread as f64 / 16.0).min(1.0) * 0.06;
        let l2_hit_rate = (0.88 - length_penalty).clamp(0.0, 1.0);
        let l1_hit_rate = (0.34 - length_penalty).clamp(0.0, 1.0);
        let newest = self.profiles.len();
        self.profiles.push(KernelProfile {
            kernel: kernel.into(),
            stats,
            power,
            l2_hit_rate,
            l1_hit_rate,
        });
        &self.profiles[newest]
    }

    /// All recorded profiles.
    pub fn profiles(&self) -> &[KernelProfile] {
        &self.profiles
    }

    /// Average achieved occupancy across recorded launches.
    pub fn average_achieved_occupancy(&self) -> f64 {
        average(self.profiles.iter().map(|p| p.stats.achieved_occupancy))
    }

    /// Average warp execution efficiency across recorded launches.
    pub fn average_warp_execution_efficiency(&self) -> f64 {
        average(
            self.profiles
                .iter()
                .map(|p| p.stats.warp_execution_efficiency),
        )
    }

    /// Average SM efficiency across recorded launches.
    pub fn average_sm_efficiency(&self) -> f64 {
        average(self.profiles.iter().map(|p| p.stats.sm_efficiency))
    }

    /// Aggregate power report across every recorded launch.
    pub fn aggregate_power(&self) -> Option<PowerReport> {
        if self.profiles.is_empty() {
            return None;
        }
        let min_mw = self
            .profiles
            .iter()
            .map(|p| p.power.min_mw)
            .fold(f64::MAX, f64::min);
        let max_mw = self
            .profiles
            .iter()
            .map(|p| p.power.max_mw)
            .fold(f64::MIN, f64::max);
        let total_samples: usize = self.profiles.iter().map(|p| p.power.samples).sum();
        let weighted_sum: f64 = self
            .profiles
            .iter()
            .map(|p| p.power.average_mw * p.power.samples as f64)
            .sum();
        Some(PowerReport {
            min_mw,
            max_mw,
            average_mw: weighted_sum / total_samples.max(1) as f64,
            samples: total_samples,
        })
    }

    /// Sum of kernel times across recorded launches (the "kernel time" metric of
    /// §4.3: "Since GateKeeper-GPU uses batched kernel calls, we add all kernel
    /// times in execution and report the sum").
    pub fn total_kernel_seconds(&self) -> f64 {
        self.profiles.iter().map(|p| p.stats.kernel_seconds).sum()
    }
}

fn average(values: impl Iterator<Item = f64>) -> f64 {
    let collected: Vec<f64> = values.collect();
    if collected.is_empty() {
        0.0
    } else {
        collected.iter().sum::<f64>() / collected.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{launch_kernel, LaunchConfig, ThreadReport};
    use crate::occupancy::KernelResources;

    fn run_one(blocks: u32) -> KernelStats {
        let device = DeviceSpec::gtx_1080_ti();
        launch_kernel(
            &device,
            &KernelResources::gatekeeper_gpu(&device),
            LaunchConfig {
                grid_blocks: blocks,
                threads_per_block: 1024,
            },
            |_ctx| ThreadReport {
                cycles: 200,
                active: true,
            },
        )
    }

    #[test]
    fn recording_accumulates_profiles_and_kernel_time() {
        let mut profiler = Profiler::new(DeviceSpec::gtx_1080_ti());
        profiler.record("gatekeeper", run_one(64), 7);
        profiler.record("gatekeeper", run_one(64), 7);
        assert_eq!(profiler.profiles().len(), 2);
        assert!(profiler.total_kernel_seconds() > 0.0);
    }

    #[test]
    fn averages_are_between_zero_and_one() {
        let mut profiler = Profiler::new(DeviceSpec::gtx_1080_ti());
        profiler.record("gatekeeper", run_one(128), 7);
        assert!(profiler.average_achieved_occupancy() > 0.0);
        assert!(profiler.average_achieved_occupancy() <= 1.0);
        assert!(profiler.average_warp_execution_efficiency() <= 1.0);
        assert!(profiler.average_sm_efficiency() <= 1.0);
    }

    #[test]
    fn l2_hit_rate_exceeds_l1_hit_rate() {
        // §6: "GateKeeper-GPU mainly utilizes L2 cache … The hit rate of
        // unified/texture L1 cache is 31.2% on average, which is low."
        let mut profiler = Profiler::new(DeviceSpec::gtx_1080_ti());
        let profile = profiler.record("gatekeeper", run_one(64), 7).clone();
        assert!(profile.l2_hit_rate > 0.8);
        assert!(profile.l1_hit_rate < 0.4);
        assert!(profile.l2_hit_rate > profile.l1_hit_rate);
    }

    #[test]
    fn aggregate_power_spans_recorded_reports() {
        let mut profiler = Profiler::new(DeviceSpec::gtx_1080_ti());
        profiler.record("a", run_one(32), 7);
        profiler.record("b", run_one(32), 16);
        let aggregate = profiler.aggregate_power().unwrap();
        assert!(aggregate.min_mw <= aggregate.average_mw);
        assert!(aggregate.average_mw <= aggregate.max_mw);
    }

    #[test]
    fn empty_profiler_has_no_aggregate_power() {
        let profiler = Profiler::new(DeviceSpec::gtx_1080_ti());
        assert!(profiler.aggregate_power().is_none());
        assert_eq!(profiler.total_kernel_seconds(), 0.0);
        assert_eq!(profiler.average_achieved_occupancy(), 0.0);
    }

    #[test]
    fn longer_reads_lower_cache_hit_rates() {
        let mut profiler = Profiler::new(DeviceSpec::gtx_1080_ti());
        let short = profiler.record("short", run_one(64), 7).clone();
        let long = profiler.record("long", run_one(64), 16).clone();
        assert!(long.l2_hit_rate < short.l2_hit_rate);
    }
}
