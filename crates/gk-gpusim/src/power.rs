//! Power-consumption model, reporting the min / max / average milliwatt figures the
//! paper collects with `nvprof` (Table 6 and Sup. Table S.27).
//!
//! The model is intentionally simple but captures the paper's observations:
//!
//! * idle draw is the device's published idle power (a GTX 1080 Ti idles below
//!   10 W, a Tesla K20X near 30 W — visible as the `min` rows of Table 6/S.27);
//! * dynamic power grows with device utilisation and with the number of packed
//!   words each thread touches, which is why the 250 bp kernels draw more power
//!   than the 100 bp kernels ("The kernel tends to use more power in longer
//!   sequences due to increased memory usage", §5.4.2);
//! * the encoding actor has a negligible effect, because encoding is a tiny
//!   fraction of the per-thread work.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Power samples collected over one profiled execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Minimum sampled power in milliwatts.
    pub min_mw: f64,
    /// Maximum sampled power in milliwatts.
    pub max_mw: f64,
    /// Average sampled power in milliwatts.
    pub average_mw: f64,
    /// Number of samples behind the statistics.
    pub samples: usize,
}

/// Analytic power model for a device.
#[derive(Debug, Clone)]
pub struct PowerModel {
    device: DeviceSpec,
}

impl PowerModel {
    /// Creates a power model for the given device.
    pub fn new(device: DeviceSpec) -> PowerModel {
        PowerModel { device }
    }

    /// Instantaneous power draw (watts) at a given utilisation (0–1) for a kernel
    /// touching `words_per_thread` packed words per thread.
    pub fn instantaneous_watts(&self, utilization: f64, words_per_thread: usize) -> f64 {
        let utilization = utilization.clamp(0.0, 1.0);
        // Memory-intensity factor: more words per thread → more DRAM traffic. A
        // 100 bp read is 7 words; a 250 bp read is 16.
        let memory_factor = 0.6 + 0.4 * (words_per_thread as f64 / 16.0).min(1.5);
        let dynamic_range = self.device.tdp_watts - self.device.idle_watts;
        self.device.idle_watts + dynamic_range * utilization * memory_factor.min(1.0)
    }

    /// Produces an nvprof-like sampled power report for an execution phase.
    ///
    /// `occupancy` and `words_per_thread` describe the kernel; `duration_seconds`
    /// sets how many 50 ms samples the profiler would have taken; samples ramp up
    /// from idle (before the kernel) to the plateau and back down, reproducing the
    /// wide min–max spread of the paper's tables.
    pub fn profile(
        &self,
        occupancy: f64,
        words_per_thread: usize,
        duration_seconds: f64,
    ) -> PowerReport {
        let sample_period = 0.05;
        let samples = ((duration_seconds / sample_period).ceil() as usize).clamp(8, 10_000);
        let plateau =
            self.instantaneous_watts(0.2 + 0.3 * occupancy.clamp(0.0, 1.0), words_per_thread);
        let idle = self.device.idle_watts;

        let mut min = f64::MAX;
        let mut max = f64::MIN;
        let mut sum = 0.0;
        for i in 0..samples {
            // Piecewise profile: ramp up over the first 20% of samples, plateau with
            // a small deterministic ripple, ramp down over the last 10%.
            let phase = i as f64 / samples as f64;
            let level = if phase < 0.2 {
                idle + (plateau - idle) * (phase / 0.2)
            } else if phase > 0.9 {
                idle + (plateau - idle) * ((1.0 - phase) / 0.1)
            } else {
                // ±5% ripple from boost-clock behaviour, deterministic for
                // reproducibility.
                let ripple = 0.05 * ((i % 7) as f64 / 6.0 - 0.5);
                plateau * (1.0 + ripple)
            };
            min = min.min(level);
            max = max.max(level);
            sum += level;
        }
        PowerReport {
            min_mw: min * 1000.0,
            max_mw: max * 1000.0,
            average_mw: sum / samples as f64 * 1000.0,
            samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pascal_model() -> PowerModel {
        PowerModel::new(DeviceSpec::gtx_1080_ti())
    }

    #[test]
    fn idle_power_matches_device_floor() {
        let model = pascal_model();
        let report = model.profile(0.5, 7, 10.0);
        // Table 6: minimum around 8.6–8.9 W for the GTX 1080 Ti.
        assert!(report.min_mw >= 8_000.0 && report.min_mw <= 12_000.0);
    }

    #[test]
    fn longer_reads_draw_more_power_on_average() {
        // Table 6: 250 bp average (89 W device-encoded) exceeds 100 bp (62 W).
        let model = pascal_model();
        let short = model.profile(0.5, 7, 10.0);
        let long = model.profile(0.5, 16, 10.0);
        assert!(long.average_mw > short.average_mw);
        assert!(long.max_mw > short.max_mw);
    }

    #[test]
    fn power_never_exceeds_tdp() {
        let device = DeviceSpec::gtx_1080_ti();
        let model = PowerModel::new(device.clone());
        for words in [1usize, 7, 16, 32] {
            for util in [0.0, 0.3, 0.7, 1.0] {
                assert!(model.instantaneous_watts(util, words) <= device.tdp_watts + 1e-9);
                assert!(model.instantaneous_watts(util, words) >= device.idle_watts - 1e-9);
            }
        }
    }

    #[test]
    fn kepler_idles_higher_than_pascal() {
        // Sup. Table S.27: K20X minimum ≈ 30 W vs ≈ 9 W for the 1080 Ti.
        let pascal = pascal_model().profile(0.5, 7, 5.0);
        let kepler = PowerModel::new(DeviceSpec::tesla_k20x()).profile(0.5, 7, 5.0);
        assert!(kepler.min_mw > pascal.min_mw * 2.0);
    }

    #[test]
    fn report_is_internally_consistent() {
        let report = pascal_model().profile(0.6, 10, 3.0);
        assert!(report.min_mw <= report.average_mw);
        assert!(report.average_mw <= report.max_mw);
        assert!(report.samples >= 8);
    }

    #[test]
    fn higher_occupancy_means_more_power() {
        let model = pascal_model();
        let low = model.profile(0.1, 7, 5.0);
        let high = model.profile(0.9, 7, 5.0);
        assert!(high.average_mw > low.average_mw);
    }

    #[test]
    fn short_durations_still_produce_samples() {
        let report = pascal_model().profile(0.5, 7, 0.001);
        assert!(report.samples >= 8);
    }
}
