//! Device specifications for the simulated GPUs.
//!
//! The paper evaluates on two machines (§4.2):
//!
//! * **Setup 1** — 8 × NVIDIA GeForce GTX 1080 Ti (Pascal, compute capability 6.1,
//!   ~10 GB usable global memory each), PCIe generation 3 ×16, CUDA 10.1;
//! * **Setup 2** — 4 × NVIDIA Tesla K20X (Kepler, compute capability 3.5, ~5 GB
//!   global memory each), PCIe generation 2 ×16, CUDA 10.2. Kepler does not support
//!   unified-memory prefetching, which is why Setup 2 is consistently slower in the
//!   paper's unified-memory-heavy workload.
//!
//! [`DeviceSpec`] captures the architectural parameters the simulator's occupancy,
//! timing, memory and power models need, with presets for both devices.

use serde::{Deserialize, Serialize};

/// GPU micro-architecture generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// Kepler (compute capability 3.x) — no unified-memory prefetch support.
    Kepler,
    /// Pascal (compute capability 6.x) — supports memAdvise and prefetching.
    Pascal,
}

/// A PCIe link between host and device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcieLink {
    /// PCIe generation (2 or 3 in the paper's setups).
    pub generation: u8,
    /// Number of lanes (16 in both setups).
    pub lanes: u8,
}

impl PcieLink {
    /// Effective host↔device bandwidth in GB/s (per direction), accounting for
    /// protocol overhead (~80% of the raw link rate).
    pub fn bandwidth_gb_per_s(&self) -> f64 {
        // Raw per-lane rates: gen2 = 0.5 GB/s, gen3 = ~0.985 GB/s, gen4 = ~1.97 GB/s.
        let per_lane = match self.generation {
            0 | 1 => 0.25,
            2 => 0.5,
            3 => 0.985,
            _ => 1.97,
        };
        per_lane * self.lanes as f64 * 0.8
    }

    /// Time to move `bytes` across the link, in seconds.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.bandwidth_gb_per_s() * 1e9)
    }
}

/// Static description of a simulated GPU device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"GeForce GTX 1080 Ti"`.
    pub name: String,
    /// Micro-architecture generation.
    pub architecture: Architecture,
    /// CUDA compute capability (major, minor).
    pub compute_capability: (u32, u32),
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// CUDA cores per SM.
    pub cores_per_sm: u32,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// Usable global memory in bytes.
    pub global_memory_bytes: u64,
    /// Device memory bandwidth in GB/s.
    pub memory_bandwidth_gb_per_s: f64,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Register allocation granularity (registers are allocated per warp in units
    /// of this many registers).
    pub register_allocation_granularity: u32,
    /// Shared memory per SM in bytes.
    pub shared_memory_per_sm: u32,
    /// Threads per warp (32 on every CUDA device).
    pub warp_size: u32,
    /// PCIe link to the host.
    pub pcie: PcieLink,
    /// Board power limit in watts.
    pub tdp_watts: f64,
    /// Idle power draw in watts.
    pub idle_watts: f64,
}

impl DeviceSpec {
    /// The Setup 1 device: NVIDIA GeForce GTX 1080 Ti (Pascal, CC 6.1).
    pub fn gtx_1080_ti() -> DeviceSpec {
        DeviceSpec {
            name: "GeForce GTX 1080 Ti".to_string(),
            architecture: Architecture::Pascal,
            compute_capability: (6, 1),
            sm_count: 28,
            cores_per_sm: 128,
            clock_ghz: 1.582,
            global_memory_bytes: 10 * 1024 * 1024 * 1024,
            memory_bandwidth_gb_per_s: 484.0,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            registers_per_sm: 65_536,
            register_allocation_granularity: 256,
            shared_memory_per_sm: 96 * 1024,
            warp_size: 32,
            pcie: PcieLink {
                generation: 3,
                lanes: 16,
            },
            tdp_watts: 250.0,
            idle_watts: 9.0,
        }
    }

    /// The Setup 2 device: NVIDIA Tesla K20X (Kepler, CC 3.5).
    pub fn tesla_k20x() -> DeviceSpec {
        DeviceSpec {
            name: "Tesla K20X".to_string(),
            architecture: Architecture::Kepler,
            compute_capability: (3, 5),
            sm_count: 14,
            cores_per_sm: 192,
            clock_ghz: 0.732,
            global_memory_bytes: 5 * 1024 * 1024 * 1024,
            memory_bandwidth_gb_per_s: 250.0,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            registers_per_sm: 65_536,
            register_allocation_granularity: 256,
            shared_memory_per_sm: 48 * 1024,
            warp_size: 32,
            pcie: PcieLink {
                generation: 2,
                lanes: 16,
            },
            tdp_watts: 235.0,
            idle_watts: 30.0,
        }
    }

    /// Total number of CUDA cores.
    pub fn cuda_cores(&self) -> u32 {
        self.sm_count * self.cores_per_sm
    }

    /// Unified-memory prefetching and `memAdvise` require compute capability 6.x or
    /// later (§2.2 / §3.4: "these actions are skipped for lower CUDA compute
    /// capabilities").
    pub fn supports_prefetch(&self) -> bool {
        self.compute_capability.0 >= 6
    }

    /// Peak arithmetic throughput in operations per second (single issue per core).
    pub fn peak_ops_per_second(&self) -> f64 {
        self.cuda_cores() as f64 * self.clock_ghz * 1e9
    }

    /// Free global memory available for buffers, after a fixed runtime reservation.
    /// The system-configuration step of GateKeeper-GPU queries this value to size
    /// its batches (§3.1).
    pub fn free_global_memory(&self) -> u64 {
        let reserved = 512 * 1024 * 1024;
        self.global_memory_bytes.saturating_sub(reserved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx_1080_ti_matches_published_specs() {
        let d = DeviceSpec::gtx_1080_ti();
        // "3584 CUDA cores in NVIDIA Geforce GTX 1080 Ti" (§1).
        assert_eq!(d.cuda_cores(), 3584);
        assert_eq!(d.architecture, Architecture::Pascal);
        assert_eq!(d.compute_capability, (6, 1));
        assert!(d.supports_prefetch());
        assert_eq!(d.pcie.generation, 3);
    }

    #[test]
    fn tesla_k20x_matches_published_specs() {
        let d = DeviceSpec::tesla_k20x();
        assert_eq!(d.cuda_cores(), 2688);
        assert_eq!(d.architecture, Architecture::Kepler);
        assert!(!d.supports_prefetch());
        assert_eq!(d.pcie.generation, 2);
        assert!(d.global_memory_bytes < DeviceSpec::gtx_1080_ti().global_memory_bytes);
    }

    #[test]
    fn pcie_gen3_is_roughly_twice_gen2() {
        let gen2 = PcieLink {
            generation: 2,
            lanes: 16,
        };
        let gen3 = PcieLink {
            generation: 3,
            lanes: 16,
        };
        let ratio = gen3.bandwidth_gb_per_s() / gen2.bandwidth_gb_per_s();
        assert!(ratio > 1.8 && ratio < 2.2, "ratio = {ratio}");
    }

    #[test]
    fn transfer_time_scales_linearly_with_bytes() {
        let link = PcieLink {
            generation: 3,
            lanes: 16,
        };
        let t1 = link.transfer_seconds(1_000_000);
        let t2 = link.transfer_seconds(2_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        assert!(t1 > 0.0);
    }

    #[test]
    fn pascal_is_faster_than_kepler_in_peak_ops() {
        assert!(
            DeviceSpec::gtx_1080_ti().peak_ops_per_second()
                > DeviceSpec::tesla_k20x().peak_ops_per_second()
        );
    }

    #[test]
    fn free_memory_leaves_a_runtime_reservation() {
        let d = DeviceSpec::gtx_1080_ti();
        assert!(d.free_global_memory() < d.global_memory_bytes);
        assert!(d.free_global_memory() > d.global_memory_bytes / 2);
    }

    #[test]
    fn unknown_pcie_generations_still_give_positive_bandwidth() {
        for generation in [0u8, 1, 2, 3, 4, 5] {
            let link = PcieLink {
                generation,
                lanes: 16,
            };
            assert!(link.bandwidth_gb_per_s() > 0.0);
        }
    }
}
