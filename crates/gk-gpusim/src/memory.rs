//! Unified memory simulation: page residency, on-demand migration, memAdvise and
//! asynchronous prefetching.
//!
//! GateKeeper-GPU allocates its read/reference/result buffers in CUDA *unified
//! memory* (§2.2): a single pointer is valid on both host and device, and pages
//! migrate on demand when a processor touches them. Unified memory does not remove
//! the PCIe transfer — it only changes *when* it happens and at what granularity.
//! Two CUDA features decide the cost:
//!
//! * **memAdvise** declares a preferred location so the driver migrates data ahead
//!   of the faulting access pattern;
//! * **asynchronous prefetching** moves whole buffers to the device before the
//!   kernel runs, eliminating page faults entirely. Prefetching requires compute
//!   capability ≥ 6.x, which is why Setup 2 (Kepler) pays per-page fault overhead
//!   and ends up slower in every experiment of the paper.
//!
//! The simulator models a buffer as an array of pages with a residency flag and
//! charges: PCIe transfer time for every migrated byte, plus a fixed fault-handling
//! latency per faulted page when the access was not prefetched.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Granularity at which unified memory migrates data (64 KiB fault granule).
pub const PAGE_SIZE: usize = 64 * 1024;

/// Latency charged for servicing one GPU page fault (driver + replay overhead).
pub const PAGE_FAULT_LATENCY_S: f64 = 20e-6;

/// Where a page currently resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Residency {
    /// Page is in host memory.
    Host,
    /// Page is resident on the device.
    Device,
}

/// Memory-usage advice, mirroring `cudaMemAdvise`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemAdvise {
    /// Data will mostly be read by the device (preferred location = device).
    PreferredLocationDevice,
    /// Data will mostly be read by the host.
    PreferredLocationHost,
    /// Data is read-mostly and may be duplicated.
    ReadMostly,
}

/// A buffer allocated in unified memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnifiedBuffer {
    /// Buffer identifier (index into the [`UnifiedMemory`] arena).
    pub id: usize,
    /// Logical size in bytes.
    pub size_bytes: u64,
    /// Residency per page.
    residency: Vec<Residency>,
    /// Advice applied to the buffer, if any.
    pub advice: Option<MemAdvise>,
}

impl UnifiedBuffer {
    fn new(id: usize, size_bytes: u64) -> UnifiedBuffer {
        let pages = (size_bytes as usize).div_ceil(PAGE_SIZE).max(1);
        UnifiedBuffer {
            id,
            size_bytes,
            residency: vec![Residency::Host; pages],
            advice: None,
        }
    }

    /// Number of pages backing the buffer.
    pub fn page_count(&self) -> usize {
        self.residency.len()
    }

    /// Number of pages currently resident on the device.
    pub fn device_resident_pages(&self) -> usize {
        self.residency
            .iter()
            .filter(|r| **r == Residency::Device)
            .count()
    }
}

/// Counters describing all unified-memory traffic so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Bytes migrated host → device.
    pub bytes_to_device: u64,
    /// Bytes migrated device → host.
    pub bytes_to_host: u64,
    /// GPU page faults serviced (on-demand migrations without prefetch).
    pub page_faults: u64,
    /// Pages moved by explicit prefetches.
    pub prefetched_pages: u64,
    /// Total time spent on transfers and fault handling, in seconds.
    pub transfer_seconds: f64,
}

/// A unified-memory arena attached to one device.
#[derive(Debug, Clone)]
pub struct UnifiedMemory {
    device: DeviceSpec,
    buffers: Vec<UnifiedBuffer>,
    stats: MemoryStats,
    allocated_bytes: u64,
}

/// Errors returned by unified-memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// Allocation would exceed the device's free global memory.
    OutOfMemory {
        /// Bytes requested by the failed allocation.
        requested: u64,
        /// Bytes still available on the device.
        available: u64,
    },
    /// Unknown buffer id.
    InvalidBuffer(usize),
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "unified memory allocation of {requested} bytes exceeds available {available} bytes"
            ),
            MemoryError::InvalidBuffer(id) => write!(f, "invalid unified buffer id {id}"),
        }
    }
}

impl std::error::Error for MemoryError {}

impl UnifiedMemory {
    /// Creates a unified-memory arena for a device.
    pub fn new(device: DeviceSpec) -> UnifiedMemory {
        UnifiedMemory {
            device,
            buffers: Vec::new(),
            stats: MemoryStats::default(),
            allocated_bytes: 0,
        }
    }

    /// The device this arena belongs to.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Allocates a buffer of `size_bytes` (like `cudaMallocManaged`).
    pub fn alloc(&mut self, size_bytes: u64) -> Result<usize, MemoryError> {
        let available = self.device.free_global_memory()
            - self.allocated_bytes.min(self.device.free_global_memory());
        if size_bytes > available {
            return Err(MemoryError::OutOfMemory {
                requested: size_bytes,
                available,
            });
        }
        let id = self.buffers.len();
        self.buffers.push(UnifiedBuffer::new(id, size_bytes));
        self.allocated_bytes += size_bytes;
        Ok(id)
    }

    /// Frees every buffer (end of a batch).
    pub fn reset(&mut self) {
        self.buffers.clear();
        self.allocated_bytes = 0;
    }

    /// Total bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Returns the buffer with the given id.
    pub fn buffer(&self, id: usize) -> Result<&UnifiedBuffer, MemoryError> {
        self.buffers.get(id).ok_or(MemoryError::InvalidBuffer(id))
    }

    /// Applies memory advice to a buffer (`cudaMemAdvise`). A no-op on devices
    /// without prefetch support, as in the paper.
    pub fn mem_advise(&mut self, id: usize, advice: MemAdvise) -> Result<(), MemoryError> {
        if !self.device.supports_prefetch() {
            return Ok(());
        }
        let buffer = self
            .buffers
            .get_mut(id)
            .ok_or(MemoryError::InvalidBuffer(id))?;
        buffer.advice = Some(advice);
        Ok(())
    }

    /// Asynchronously prefetches the whole buffer to the device
    /// (`cudaMemPrefetchAsync`). Returns the modelled transfer time, which the
    /// caller typically enqueues on a [`crate::stream::Stream`] so it overlaps with
    /// host work. Devices below compute capability 6.x do not support prefetching
    /// and the call is a no-op returning zero.
    pub fn prefetch_to_device(&mut self, id: usize) -> Result<f64, MemoryError> {
        if !self.device.supports_prefetch() {
            return Ok(0.0);
        }
        let pcie = self.device.pcie;
        let buffer = self
            .buffers
            .get_mut(id)
            .ok_or(MemoryError::InvalidBuffer(id))?;
        let mut moved_pages = 0u64;
        for page in buffer.residency.iter_mut() {
            if *page == Residency::Host {
                *page = Residency::Device;
                moved_pages += 1;
            }
        }
        let bytes = moved_pages * PAGE_SIZE as u64;
        let seconds = pcie.transfer_seconds(bytes);
        self.stats.bytes_to_device += bytes;
        self.stats.prefetched_pages += moved_pages;
        self.stats.transfer_seconds += seconds;
        Ok(seconds)
    }

    /// Models the device touching the whole buffer during a kernel. Pages that are
    /// not resident fault and migrate on demand; the returned time covers the
    /// migration plus per-page fault latency.
    pub fn access_from_device(&mut self, id: usize) -> Result<f64, MemoryError> {
        let pcie = self.device.pcie;
        let buffer = self
            .buffers
            .get_mut(id)
            .ok_or(MemoryError::InvalidBuffer(id))?;
        let mut faulted_pages = 0u64;
        for page in buffer.residency.iter_mut() {
            if *page == Residency::Host {
                *page = Residency::Device;
                faulted_pages += 1;
            }
        }
        let bytes = faulted_pages * PAGE_SIZE as u64;
        let seconds = pcie.transfer_seconds(bytes) + faulted_pages as f64 * PAGE_FAULT_LATENCY_S;
        self.stats.bytes_to_device += bytes;
        self.stats.page_faults += faulted_pages;
        self.stats.transfer_seconds += seconds;
        Ok(seconds)
    }

    /// Models the host reading back the buffer after the kernel (result buffers).
    pub fn access_from_host(&mut self, id: usize) -> Result<f64, MemoryError> {
        let pcie = self.device.pcie;
        let buffer = self
            .buffers
            .get_mut(id)
            .ok_or(MemoryError::InvalidBuffer(id))?;
        let mut migrated = 0u64;
        for page in buffer.residency.iter_mut() {
            if *page == Residency::Device {
                *page = Residency::Host;
                migrated += 1;
            }
        }
        let bytes = migrated * PAGE_SIZE as u64;
        let seconds = pcie.transfer_seconds(bytes);
        self.stats.bytes_to_host += bytes;
        self.stats.transfer_seconds += seconds;
        Ok(seconds)
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pascal() -> UnifiedMemory {
        UnifiedMemory::new(DeviceSpec::gtx_1080_ti())
    }

    fn kepler() -> UnifiedMemory {
        UnifiedMemory::new(DeviceSpec::tesla_k20x())
    }

    #[test]
    fn allocation_tracks_bytes_and_pages() {
        let mut mem = pascal();
        let id = mem.alloc(1_000_000).unwrap();
        assert_eq!(mem.allocated_bytes(), 1_000_000);
        let buffer = mem.buffer(id).unwrap();
        assert_eq!(buffer.page_count(), 1_000_000usize.div_ceil(PAGE_SIZE));
        assert_eq!(buffer.device_resident_pages(), 0);
    }

    #[test]
    fn over_allocation_is_rejected() {
        let mut mem = pascal();
        let too_big = mem.device().global_memory_bytes * 2;
        assert!(matches!(
            mem.alloc(too_big),
            Err(MemoryError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn prefetch_moves_every_page_and_charges_transfer_time() {
        let mut mem = pascal();
        let id = mem.alloc(10 * PAGE_SIZE as u64).unwrap();
        let t = mem.prefetch_to_device(id).unwrap();
        assert!(t > 0.0);
        assert_eq!(mem.buffer(id).unwrap().device_resident_pages(), 10);
        assert_eq!(mem.stats().prefetched_pages, 10);
        assert_eq!(mem.stats().page_faults, 0);
    }

    #[test]
    fn access_after_prefetch_is_free_of_faults() {
        let mut mem = pascal();
        let id = mem.alloc(4 * PAGE_SIZE as u64).unwrap();
        mem.prefetch_to_device(id).unwrap();
        let t = mem.access_from_device(id).unwrap();
        assert_eq!(t, 0.0);
        assert_eq!(mem.stats().page_faults, 0);
    }

    #[test]
    fn access_without_prefetch_faults_every_page() {
        let mut mem = pascal();
        let id = mem.alloc(8 * PAGE_SIZE as u64).unwrap();
        let t = mem.access_from_device(id).unwrap();
        assert!(t > 0.0);
        assert_eq!(mem.stats().page_faults, 8);
    }

    #[test]
    fn kepler_prefetch_is_a_noop_so_kernels_always_fault() {
        let mut mem = kepler();
        let id = mem.alloc(8 * PAGE_SIZE as u64).unwrap();
        let prefetch_time = mem.prefetch_to_device(id).unwrap();
        assert_eq!(prefetch_time, 0.0);
        assert_eq!(mem.stats().prefetched_pages, 0);
        let t = mem.access_from_device(id).unwrap();
        assert!(t > 0.0);
        assert_eq!(mem.stats().page_faults, 8);
    }

    #[test]
    fn faulted_access_is_slower_than_prefetched_transfer() {
        // Same bytes, but the faulting path pays per-page latency on top.
        let mut a = pascal();
        let id_a = a.alloc(64 * PAGE_SIZE as u64).unwrap();
        let prefetch_time = a.prefetch_to_device(id_a).unwrap();

        let mut b = pascal();
        let id_b = b.alloc(64 * PAGE_SIZE as u64).unwrap();
        let fault_time = b.access_from_device(id_b).unwrap();
        assert!(fault_time > prefetch_time);
    }

    #[test]
    fn host_access_migrates_back() {
        let mut mem = pascal();
        let id = mem.alloc(3 * PAGE_SIZE as u64).unwrap();
        mem.prefetch_to_device(id).unwrap();
        let t = mem.access_from_host(id).unwrap();
        assert!(t > 0.0);
        assert_eq!(mem.buffer(id).unwrap().device_resident_pages(), 0);
        assert_eq!(mem.stats().bytes_to_host, 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn mem_advise_is_recorded_on_pascal_and_ignored_on_kepler() {
        let mut p = pascal();
        let id = p.alloc(PAGE_SIZE as u64).unwrap();
        p.mem_advise(id, MemAdvise::PreferredLocationDevice)
            .unwrap();
        assert_eq!(
            p.buffer(id).unwrap().advice,
            Some(MemAdvise::PreferredLocationDevice)
        );

        let mut k = kepler();
        let id = k.alloc(PAGE_SIZE as u64).unwrap();
        k.mem_advise(id, MemAdvise::PreferredLocationDevice)
            .unwrap();
        assert_eq!(k.buffer(id).unwrap().advice, None);
    }

    #[test]
    fn reset_frees_all_buffers() {
        let mut mem = pascal();
        mem.alloc(1_000).unwrap();
        mem.alloc(2_000).unwrap();
        mem.reset();
        assert_eq!(mem.allocated_bytes(), 0);
        assert!(matches!(mem.buffer(0), Err(MemoryError::InvalidBuffer(0))));
    }

    #[test]
    fn invalid_buffer_ids_error() {
        let mut mem = pascal();
        assert!(matches!(
            mem.prefetch_to_device(42),
            Err(MemoryError::InvalidBuffer(42))
        ));
        assert!(matches!(
            mem.access_from_device(42),
            Err(MemoryError::InvalidBuffer(42))
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = MemoryError::OutOfMemory {
            requested: 10,
            available: 5,
        };
        assert!(err.to_string().contains("10"));
        assert!(MemoryError::InvalidBuffer(3).to_string().contains('3'));
    }
}
