//! The in-kernel encode-stage model of the device encoding actor (§3.3).
//!
//! When the device encodes, every GPU thread packs its own read and candidate
//! reference segment into 2-bit words at the top of a **fused encode+filter
//! kernel** before running the GateKeeper bitwise phase. The model here
//! charges that work the way the rest of the simulator does — in per-thread
//! cycles — and captures the two system-level consequences the paper's
//! encoding-actor analysis turns on:
//!
//! * **transfer accounting** — the H2D buffers carry raw ASCII
//!   (1 byte/base) instead of packed words (¼ byte/base), so the PCIe link
//!   moves ~4× the bytes ([`raw_inflation`] makes the ratio exact for a read
//!   length);
//! * **occupancy impact** — the fused kernel keeps the encode scratch
//!   (current word accumulator, base cursor, undefined flag) live alongside
//!   the filter state, costing a handful of extra registers per thread
//!   ([`KernelResources::gatekeeper_gpu_device_encode`]). At GateKeeper-GPU's
//!   maximum-size 1024-thread blocks both variants fit exactly one block per
//!   SM, so the §5.4.1 theoretical occupancy of 50% is unchanged — but at the
//!   256-thread blocks the paper's occupancy discussion also considers, the
//!   extra registers cost a residency step (62.5% → 50%).
//!
//! The per-base encode cost is calibrated so a 100 bp pair's in-kernel encode
//! (~6.5k cycles) stays small next to its filter phase (`(2e+1)` masks × 7
//! words × [`crate::executor`] mask-word cost ≈ 63k cycles at e = 4),
//! reproducing the paper's observation that device encoding is effectively
//! free on the kernel side while host encoding dominates filter time.

use crate::device::DeviceSpec;
use crate::occupancy::KernelResources;

/// Modelled device cycles each thread spends packing one base (load, LUT
/// translate, shift-or into the word accumulator).
pub const ENCODE_CYCLES_PER_BASE: u64 = 32;

/// Fixed per-thread encode setup cost (pointer math, word flush, undefined
/// flag write-back).
pub const ENCODE_CYCLES_PER_THREAD: u64 = 120;

/// Extra registers the fused encode+filter kernel keeps live versus the
/// plain filter kernel's 48 (§5.4.1).
pub const ENCODE_EXTRA_REGISTERS: u32 = 6;

/// Modelled cycles one thread spends encoding `bases` raw bases in the fused
/// kernel (both sequences of a pair: pass `2 × read_len`).
pub fn encode_cycles(bases: u64) -> u64 {
    ENCODE_CYCLES_PER_THREAD + bases * ENCODE_CYCLES_PER_BASE
}

/// H2D bytes per pair in raw (device-encoded) mode: read + reference segment
/// at one byte per base.
pub fn raw_bytes_per_pair(read_len: usize) -> u64 {
    2 * read_len as u64
}

/// H2D bytes per pair in packed (host-encoded) mode: read + reference segment
/// at `⌈len/16⌉` 4-byte words each.
pub fn packed_bytes_per_pair(read_len: usize) -> u64 {
    2 * read_len.div_ceil(16) as u64 * 4
}

/// Raw-over-packed transfer inflation for a read length (~4×; exactly 4 when
/// the length is a multiple of 16).
pub fn raw_inflation(read_len: usize) -> f64 {
    let packed = packed_bytes_per_pair(read_len);
    if packed == 0 {
        1.0
    } else {
        raw_bytes_per_pair(read_len) as f64 / packed as f64
    }
}

impl KernelResources {
    /// The fused encode+filter kernel of the device encoding actor: the
    /// GateKeeper-GPU launch shape with [`ENCODE_EXTRA_REGISTERS`] more
    /// registers per thread for the encode scratch.
    pub fn gatekeeper_gpu_device_encode(device: &DeviceSpec) -> KernelResources {
        let base = KernelResources::gatekeeper_gpu(device);
        KernelResources {
            registers_per_thread: base.registers_per_thread + ENCODE_EXTRA_REGISTERS,
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::theoretical_occupancy;

    #[test]
    fn encode_cost_is_linear_in_bases_with_a_fixed_setup() {
        assert_eq!(encode_cycles(0), ENCODE_CYCLES_PER_THREAD);
        let pair_100bp = encode_cycles(200);
        assert_eq!(
            pair_100bp,
            ENCODE_CYCLES_PER_THREAD + 200 * ENCODE_CYCLES_PER_BASE
        );
        // Small next to the e = 4 filter phase (~63k mask-word cycles).
        assert!(pair_100bp < 10_000);
    }

    #[test]
    fn raw_transfer_is_four_times_packed_at_word_multiples() {
        assert_eq!(raw_bytes_per_pair(100), 200);
        assert_eq!(packed_bytes_per_pair(100), 56);
        assert!((raw_inflation(96) - 4.0).abs() < 1e-12);
        assert!((raw_inflation(256) - 4.0).abs() < 1e-12);
        // Padding makes short word-unaligned lengths slightly cheaper raw.
        assert!(raw_inflation(100) > 3.5 && raw_inflation(100) < 4.0);
        assert!((raw_inflation(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fused_kernel_keeps_50_percent_occupancy_at_full_blocks() {
        // §5.4.1: one 1024-thread block per SM either way — the encode
        // registers do not change the headline 50% theoretical occupancy.
        let device = DeviceSpec::gtx_1080_ti();
        let plain = theoretical_occupancy(&device, &KernelResources::gatekeeper_gpu(&device));
        let fused = theoretical_occupancy(
            &device,
            &KernelResources::gatekeeper_gpu_device_encode(&device),
        );
        assert!((plain.occupancy - 0.5).abs() < 1e-9);
        assert!((fused.occupancy - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fused_kernel_costs_a_residency_step_at_256_thread_blocks() {
        let device = DeviceSpec::gtx_1080_ti();
        let small = |registers_per_thread| {
            theoretical_occupancy(
                &device,
                &KernelResources {
                    registers_per_thread,
                    threads_per_block: 256,
                    shared_memory_per_block: 0,
                },
            )
        };
        let plain = small(KernelResources::gatekeeper_gpu(&device).registers_per_thread);
        let fused =
            small(KernelResources::gatekeeper_gpu_device_encode(&device).registers_per_thread);
        assert!(
            fused.occupancy < plain.occupancy,
            "fused {} !< plain {}",
            fused.occupancy,
            plain.occupancy
        );
    }
}
