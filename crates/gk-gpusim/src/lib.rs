//! # gk-gpusim
//!
//! A CUDA-like GPU execution-model **simulator**, used in place of the real NVIDIA
//! hardware the paper runs on (GeForce GTX 1080 Ti and Tesla K20X).
//!
//! ## Why a simulator
//!
//! The GateKeeper-GPU contribution is inseparable from the CUDA execution model:
//! batched kernels, one filtration per thread, unified memory with `memAdvise` and
//! asynchronous prefetching, occupancy tuning, multi-GPU scaling, and power
//! behaviour. Rust has no mature CUDA path and this environment has no GPU, so the
//! reproduction runs the *same per-thread kernel logic* on host threads (functional
//! fidelity — identical accept/reject decisions) while an analytic timing model
//! calibrated to the published device specifications reproduces the *shape* of the
//! performance results (batching effects, the encoding-actor trade-off, prefetch
//! benefit, multi-GPU scaling, occupancy, power).
//!
//! ## What it provides
//!
//! * [`device`] — [`device::DeviceSpec`] with presets for the paper's two setups
//!   (Pascal GTX 1080 Ti, Kepler Tesla K20X) and PCIe link models.
//! * [`occupancy`] — the CUDA occupancy calculator; reproduces the 63% / 50%
//!   theoretical-occupancy numbers of §5.4.1.
//! * [`encode`] — the in-kernel encode-stage model of the device encoding
//!   actor: per-base cycle cost, raw-vs-packed H2D byte accounting, and the
//!   fused encode+filter kernel's register/occupancy footprint.
//! * [`memory`] — unified memory with page-granular residency, on-demand migration
//!   (page faults), `memAdvise`, and asynchronous prefetch (compute capability ≥ 6.x
//!   only, as on the real hardware).
//! * [`executor`] — SIMT kernel launcher: grid/block/warp decomposition, per-thread
//!   closures run in parallel with Rayon, warp-execution-efficiency and
//!   SM-efficiency accounting, and the kernel timing model.
//! * [`stream`] — CUDA-stream/event-style timeline bookkeeping, including
//!   cross-stream dependencies (`wait_event`).
//! * [`timeline`] — [`timeline::Timeline`]: a multi-stream scheduler that chains
//!   H2D / kernel / D2H streams with events and reports the overlapped makespan
//!   versus the serialized sum (the §3.4 multi-stream prefetch model).
//! * [`power`] — nvprof-like power sampling (min/max/average milliwatts).
//! * [`profiler`] — aggregated per-kernel profiling reports.
//! * [`multi`] — multi-GPU contexts that split batches across devices.
//! * [`topology`] — interconnect topologies: devices attached to shared host
//!   links (root complex, PCIe switch fan-out, NVLink-style fabric) whose
//!   concurrent transfers serialize instead of overlapping for free, plus the
//!   contended multi-device pipeline replay ([`topology::simulate_contended`]).

#![warn(missing_docs)]

pub mod device;
pub mod encode;
pub mod executor;
pub mod memory;
pub mod multi;
pub mod occupancy;
pub mod power;
pub mod profiler;
pub mod stream;
pub mod timeline;
pub mod topology;

pub use device::{Architecture, DeviceSpec, PcieLink};
pub use executor::{
    launch_kernel, KernelResources, KernelStats, LaunchConfig, ThreadCtx, ThreadReport,
};
pub use memory::{MemAdvise, MemoryStats, UnifiedBuffer, UnifiedMemory};
pub use multi::MultiGpu;
pub use occupancy::{theoretical_occupancy, OccupancyLimit, OccupancyResult};
pub use power::{PowerModel, PowerReport};
pub use profiler::{KernelProfile, Profiler};
pub use stream::{Event, Stream};
pub use timeline::{Link, LinkId, StreamId, Timeline};
pub use topology::{
    simulate_contended, weighted_partition, ChunkLoad, ContentionRun, LinkSpec, LinkUsage,
    Topology, TopologyKind,
};
