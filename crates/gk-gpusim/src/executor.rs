//! SIMT kernel execution: grid/block/warp decomposition, functional execution of
//! the per-thread kernel body, and the kernel timing model.
//!
//! GateKeeper-GPU assigns one *filtration* to each CUDA thread "to have the least
//! possible dependency between the threads for high filtering throughput" (§3.1).
//! The simulator keeps that structure: the caller supplies a closure that plays the
//! role of the device function, the launcher enumerates the grid, groups threads
//! into 32-wide warps and fans the blocks out across the host's work-stealing
//! thread pool (ordered chunks of blocks become stealable tasks, so the derived
//! statistics are identical to a sequential launch). Each
//! thread reports how much device work it performed (in modelled cycles) and
//! whether it was active at all; from those reports the launcher derives
//!
//! * the **kernel time** under an analytic throughput model (cycles spread over the
//!   device's CUDA cores at its clock, derated by how much latency the achieved
//!   occupancy can hide),
//! * the **warp execution efficiency** (average fraction of active lanes per warp),
//! * the **achieved occupancy** and **SM efficiency**,
//!
//! i.e. the quantities the paper reports from `nvprof` in §5.4.

use crate::device::DeviceSpec;
use crate::occupancy::{theoretical_occupancy, OccupancyResult};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

// The kernel resource description lives with the occupancy calculator; re-export it
// here because launches always need both.
pub use crate::occupancy::KernelResources;

/// Grid configuration of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl LaunchConfig {
    /// A launch sized so that `work_items` threads exist (the batch size of one
    /// GateKeeper-GPU kernel call), using maximum-size blocks as the paper does.
    pub fn for_work_items(device: &DeviceSpec, work_items: usize) -> LaunchConfig {
        let threads_per_block = device.max_threads_per_block;
        let grid_blocks = (work_items as u64).div_ceil(threads_per_block as u64) as u32;
        LaunchConfig {
            grid_blocks: grid_blocks.max(1),
            threads_per_block,
        }
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> usize {
        self.grid_blocks as usize * self.threads_per_block as usize
    }
}

/// Identity of one simulated CUDA thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadCtx {
    /// Block index within the grid (`blockIdx.x`).
    pub block_idx: u32,
    /// Thread index within the block (`threadIdx.x`).
    pub thread_idx: u32,
    /// Flattened global thread index.
    pub global_idx: usize,
}

/// What one thread reports back after running the kernel body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadReport {
    /// Modelled device cycles consumed by the thread.
    pub cycles: u64,
    /// Whether the thread had real work (threads beyond the batch size, or threads
    /// given an undefined pair, early-exit and count as inactive lanes).
    pub active: bool,
}

impl ThreadReport {
    /// An idle lane (thread index beyond the work items).
    pub fn idle() -> ThreadReport {
        ThreadReport {
            cycles: 0,
            active: false,
        }
    }
}

/// Statistics of one simulated kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Launch configuration used.
    pub config: LaunchConfig,
    /// Threads launched (grid × block).
    pub launched_threads: usize,
    /// Threads that reported doing real work.
    pub active_threads: usize,
    /// Total modelled device cycles across all threads.
    pub total_cycles: u64,
    /// Modelled kernel execution time in seconds (what CUDA events would measure).
    pub kernel_seconds: f64,
    /// Theoretical occupancy for the launch.
    pub theoretical_occupancy: f64,
    /// Achieved occupancy (theoretical, derated when the grid cannot fill the SMs).
    pub achieved_occupancy: f64,
    /// Average fraction of active lanes per warp.
    pub warp_execution_efficiency: f64,
    /// Fraction of SMs kept busy during the launch.
    pub sm_efficiency: f64,
}

/// Launches a kernel: runs `body` once per thread (in parallel over blocks) and
/// derives timing and utilisation statistics from the per-thread reports.
pub fn launch_kernel<F>(
    device: &DeviceSpec,
    resources: &KernelResources,
    config: LaunchConfig,
    body: F,
) -> KernelStats
where
    F: Fn(ThreadCtx) -> ThreadReport + Sync,
{
    let threads_per_block = config.threads_per_block.max(1);
    let warp_size = device.warp_size.max(1) as usize;

    // Run every block in parallel; within a block, enumerate warps so the warp
    // execution efficiency can be measured the way nvprof defines it.
    #[derive(Default, Clone, Copy)]
    struct BlockOutcome {
        cycles: u64,
        active_threads: usize,
        warp_lane_efficiency_sum: f64,
        warps: usize,
    }

    let outcomes: Vec<BlockOutcome> = (0..config.grid_blocks)
        .into_par_iter()
        .map(|block_idx| {
            let mut outcome = BlockOutcome::default();
            let mut lane_cycles: Vec<u64> = Vec::with_capacity(warp_size);
            for warp_start in (0..threads_per_block).step_by(warp_size) {
                lane_cycles.clear();
                for lane in 0..warp_size as u32 {
                    let thread_idx = warp_start + lane;
                    if thread_idx >= threads_per_block {
                        break;
                    }
                    let global_idx =
                        block_idx as usize * threads_per_block as usize + thread_idx as usize;
                    let report = body(ThreadCtx {
                        block_idx,
                        thread_idx,
                        global_idx,
                    });
                    outcome.cycles += report.cycles;
                    if report.active {
                        outcome.active_threads += 1;
                    }
                    lane_cycles.push(if report.active {
                        report.cycles.max(1)
                    } else {
                        0
                    });
                }
                // Warp execution efficiency: lanes of a warp execute in lockstep, so
                // the warp is busy for the slowest lane's cycles; lanes that finish
                // early (or never had work) waste issue slots.
                let warp_time = lane_cycles.iter().copied().max().unwrap_or(0);
                if warp_time > 0 {
                    let useful: u64 = lane_cycles.iter().sum();
                    outcome.warp_lane_efficiency_sum +=
                        useful as f64 / (warp_size as u64 * warp_time) as f64;
                    outcome.warps += 1;
                }
            }
            outcome
        })
        .collect();

    let total_cycles: u64 = outcomes.iter().map(|o| o.cycles).sum();
    let active_threads: usize = outcomes.iter().map(|o| o.active_threads).sum();
    let total_warps: usize = outcomes.iter().map(|o| o.warps).sum();
    let warp_eff_sum: f64 = outcomes.iter().map(|o| o.warp_lane_efficiency_sum).sum();

    let occupancy: OccupancyResult = theoretical_occupancy(device, resources);

    // Achieved occupancy: the theoretical value derated when there are not enough
    // resident warps to fill every SM (small grids), plus a small scheduling loss.
    let resident_warp_capacity =
        (occupancy.active_warps_per_sm as usize * device.sm_count as usize).max(1);
    let fill = (total_warps as f64 / resident_warp_capacity as f64).min(1.0);
    let achieved_occupancy = occupancy.occupancy * fill * 0.97;

    // SM efficiency: fraction of SMs with at least one block, derated slightly for
    // launch/drain overhead (the paper reports ≥ 95–98%).
    let sm_efficiency =
        ((config.grid_blocks as f64 / device.sm_count as f64).min(1.0) * 0.99).min(0.99);

    let warp_execution_efficiency = if total_warps == 0 {
        0.0
    } else {
        warp_eff_sum / total_warps as f64
    };

    // Timing model: total cycles spread over the CUDA cores at the device clock,
    // derated by how well the achieved occupancy hides latency. At 50% occupancy the
    // GateKeeper kernel sustains roughly 70% of peak issue rate.
    let latency_hiding = 0.4 + 0.6 * achieved_occupancy.min(1.0);
    let effective_ops_per_second = device.peak_ops_per_second() * latency_hiding.max(0.05);
    let kernel_seconds = if total_cycles == 0 {
        0.0
    } else {
        total_cycles as f64 / effective_ops_per_second
    };

    KernelStats {
        config,
        launched_threads: config.total_threads(),
        active_threads,
        total_cycles,
        kernel_seconds,
        theoretical_occupancy: occupancy.occupancy,
        achieved_occupancy,
        warp_execution_efficiency,
        sm_efficiency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceSpec {
        DeviceSpec::gtx_1080_ti()
    }

    fn resources(d: &DeviceSpec) -> KernelResources {
        KernelResources::gatekeeper_gpu(d)
    }

    fn uniform_kernel(cycles: u64) -> impl Fn(ThreadCtx) -> ThreadReport + Sync {
        move |_ctx| ThreadReport {
            cycles,
            active: true,
        }
    }

    #[test]
    fn launch_config_covers_all_work_items() {
        let d = device();
        let config = LaunchConfig::for_work_items(&d, 100_000);
        assert!(config.total_threads() >= 100_000);
        assert!(config.total_threads() < 100_000 + d.max_threads_per_block as usize);
        assert_eq!(config.threads_per_block, d.max_threads_per_block);
    }

    #[test]
    fn every_thread_runs_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let d = device();
        let config = LaunchConfig {
            grid_blocks: 7,
            threads_per_block: 96,
        };
        let counter = AtomicUsize::new(0);
        let stats = launch_kernel(&d, &resources(&d), config, |_ctx| {
            counter.fetch_add(1, Ordering::Relaxed);
            ThreadReport {
                cycles: 1,
                active: true,
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 7 * 96);
        assert_eq!(stats.launched_threads, 7 * 96);
        assert_eq!(stats.active_threads, 7 * 96);
    }

    #[test]
    fn global_indices_are_unique_and_dense() {
        use std::sync::Mutex;
        let d = device();
        let config = LaunchConfig {
            grid_blocks: 3,
            threads_per_block: 64,
        };
        let seen = Mutex::new(vec![false; config.total_threads()]);
        launch_kernel(&d, &resources(&d), config, |ctx| {
            let mut guard = seen.lock().unwrap();
            assert!(!guard[ctx.global_idx], "duplicate index {}", ctx.global_idx);
            guard[ctx.global_idx] = true;
            ThreadReport {
                cycles: 1,
                active: true,
            }
        });
        assert!(seen.lock().unwrap().iter().all(|&s| s));
    }

    #[test]
    fn kernel_time_scales_with_work() {
        let d = device();
        let config = LaunchConfig {
            grid_blocks: 64,
            threads_per_block: 1024,
        };
        let light = launch_kernel(&d, &resources(&d), config, uniform_kernel(100));
        let heavy = launch_kernel(&d, &resources(&d), config, uniform_kernel(1000));
        assert!(heavy.kernel_seconds > light.kernel_seconds * 5.0);
    }

    #[test]
    fn faster_device_finishes_sooner() {
        let pascal = DeviceSpec::gtx_1080_ti();
        let kepler = DeviceSpec::tesla_k20x();
        let config = LaunchConfig {
            grid_blocks: 128,
            threads_per_block: 1024,
        };
        let on_pascal = launch_kernel(
            &pascal,
            &KernelResources::gatekeeper_gpu(&pascal),
            config,
            uniform_kernel(500),
        );
        let on_kepler = launch_kernel(
            &kepler,
            &KernelResources::gatekeeper_gpu(&kepler),
            config,
            uniform_kernel(500),
        );
        assert!(on_kepler.kernel_seconds > on_pascal.kernel_seconds);
    }

    #[test]
    fn achieved_occupancy_tracks_theoretical_for_large_grids() {
        // §5.4.1: achieved occupancy is within a couple of points of the 50%
        // theoretical value for full launches.
        let d = device();
        let config = LaunchConfig {
            grid_blocks: 256,
            threads_per_block: 1024,
        };
        let stats = launch_kernel(&d, &resources(&d), config, uniform_kernel(10));
        assert!((stats.theoretical_occupancy - 0.5).abs() < 1e-9);
        assert!(stats.achieved_occupancy > 0.44 && stats.achieved_occupancy <= 0.5);
    }

    #[test]
    fn small_grids_lower_achieved_occupancy_and_sm_efficiency() {
        let d = device();
        let small = launch_kernel(
            &d,
            &resources(&d),
            LaunchConfig {
                grid_blocks: 2,
                threads_per_block: 1024,
            },
            uniform_kernel(10),
        );
        let large = launch_kernel(
            &d,
            &resources(&d),
            LaunchConfig {
                grid_blocks: 256,
                threads_per_block: 1024,
            },
            uniform_kernel(10),
        );
        assert!(small.achieved_occupancy < large.achieved_occupancy);
        assert!(small.sm_efficiency < large.sm_efficiency);
        assert!(large.sm_efficiency > 0.95);
    }

    #[test]
    fn inactive_lanes_reduce_warp_execution_efficiency() {
        let d = device();
        let config = LaunchConfig {
            grid_blocks: 8,
            threads_per_block: 1024,
        };
        // Half the lanes idle (e.g. undefined pairs early-exiting).
        let stats = launch_kernel(&d, &resources(&d), config, |ctx| {
            if ctx.global_idx % 2 == 0 {
                ThreadReport {
                    cycles: 50,
                    active: true,
                }
            } else {
                ThreadReport::idle()
            }
        });
        assert!((stats.warp_execution_efficiency - 0.5).abs() < 0.01);
        let full = launch_kernel(&d, &resources(&d), config, uniform_kernel(50));
        assert!(full.warp_execution_efficiency > 0.99);
    }

    #[test]
    fn zero_work_kernel_takes_no_time() {
        let d = device();
        let stats = launch_kernel(
            &d,
            &resources(&d),
            LaunchConfig {
                grid_blocks: 1,
                threads_per_block: 32,
            },
            |_ctx| ThreadReport::idle(),
        );
        assert_eq!(stats.kernel_seconds, 0.0);
        assert_eq!(stats.active_threads, 0);
    }
}
