//! CUDA-stream and event style timeline bookkeeping.
//!
//! GateKeeper-GPU submits each input buffer's prefetch to a different stream so the
//! migrations overlap (§3.4), and measures kernel time with the CUDA Event API
//! (§4.3). The simulator models a stream as a monotonically growing timeline of
//! simulated seconds; events capture timeline positions so elapsed times can be
//! read back exactly like `cudaEventElapsedTime`.

use serde::{Deserialize, Serialize};

/// A simulated CUDA stream: an ordered timeline of enqueued work.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Stream {
    /// Name for reporting (e.g. `"prefetch-reads"`).
    pub name: String,
    cursor_seconds: f64,
    operations: Vec<(String, f64)>,
    /// Number of ill-formed durations that were saturated to zero (see
    /// [`Stream::enqueue`]). Always `0` on a healthy timeline; release builds
    /// surface the count instead of silently distorting makespans.
    anomalies: u64,
}

impl Stream {
    /// Creates an empty stream.
    pub fn new(name: impl Into<String>) -> Stream {
        Stream {
            name: name.into(),
            cursor_seconds: 0.0,
            operations: Vec::new(),
            anomalies: 0,
        }
    }

    /// Enqueues an operation lasting `seconds`; returns its completion time.
    ///
    /// Durations must be non-negative (NaN is ill-formed too): a bad duration
    /// is a caller bug (debug builds assert), and in release builds it is
    /// **saturated to zero** so the timeline stays monotonic rather than
    /// silently running backwards — with the clamp recorded in
    /// [`Stream::anomalies`] so release-mode distortion is observable instead
    /// of silent.
    pub fn enqueue(&mut self, label: impl Into<String>, seconds: f64) -> f64 {
        debug_assert!(
            seconds >= 0.0,
            "negative duration {seconds} enqueued on stream `{}`",
            self.name
        );
        if seconds < 0.0 || seconds.is_nan() {
            self.anomalies += 1;
        }
        let seconds = seconds.max(0.0);
        self.cursor_seconds += seconds;
        self.operations.push((label.into(), seconds));
        self.cursor_seconds
    }

    /// Makes all subsequently enqueued work wait for `event`, which may have been
    /// recorded on *another* stream (`cudaStreamWaitEvent`) — the cross-stream
    /// dependency primitive the batch pipeline uses to chain H2D → kernel → D2H
    /// stages across streams. If the event lies beyond this stream's current
    /// cursor, the idle gap is recorded as a zero-work operation labelled
    /// `label` so timelines stay inspectable. Returns the new cursor position.
    pub fn wait_event(&mut self, label: impl Into<String>, event: &Event) -> f64 {
        if event.at_seconds > self.cursor_seconds {
            let gap = event.at_seconds - self.cursor_seconds;
            self.cursor_seconds = event.at_seconds;
            self.operations.push((label.into(), gap));
        }
        self.cursor_seconds
    }

    /// Makes all subsequently enqueued work wait until the absolute timeline
    /// position `at_seconds` — the raw-time twin of [`Stream::wait_event`],
    /// used by the [`Timeline`](crate::timeline::Timeline) link arbiter to
    /// stall a transfer behind another stream's traffic on a shared
    /// interconnect. A position at or before the cursor is a no-op; otherwise
    /// the idle gap is recorded under `label`. Returns the new cursor.
    pub fn wait_until(&mut self, label: impl Into<String>, at_seconds: f64) -> f64 {
        if at_seconds > self.cursor_seconds {
            let gap = at_seconds - self.cursor_seconds;
            self.cursor_seconds = at_seconds;
            self.operations.push((label.into(), gap));
        }
        self.cursor_seconds
    }

    /// Records an event at the current end of the stream.
    pub fn record_event(&self) -> Event {
        Event {
            at_seconds: self.cursor_seconds,
        }
    }

    /// Blocks (conceptually) until all enqueued work completes; returns the total
    /// stream time.
    pub fn synchronize(&self) -> f64 {
        self.cursor_seconds
    }

    /// Number of operations enqueued so far.
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// True when no work has been enqueued.
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// The enqueued operations, in order, as (label, duration seconds).
    pub fn operations(&self) -> &[(String, f64)] {
        &self.operations
    }

    /// Number of ill-formed durations saturated to zero on this stream.
    /// Non-zero means a release build hit a condition that would have asserted
    /// in a debug build; the makespan is a lower bound from that point on.
    pub fn anomalies(&self) -> u64 {
        self.anomalies
    }
}

/// A simulated CUDA event: a point on a stream's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    at_seconds: f64,
}

impl Event {
    /// Timeline position of the event, in seconds.
    pub fn seconds(&self) -> f64 {
        self.at_seconds
    }

    /// Elapsed time between two events (like `cudaEventElapsedTime`, but in
    /// seconds).
    ///
    /// `later` must not precede `self`: a reversed pair is a caller bug (debug
    /// builds assert), and in release builds the result is **clamped to zero**
    /// so elapsed times never run negative — the same contract as
    /// [`Stream::enqueue`]'s duration clamp. Callers that need to *detect* the
    /// reversal instead of absorbing it use [`Event::try_elapsed_until`].
    pub fn elapsed_until(&self, later: &Event) -> f64 {
        debug_assert!(
            later.at_seconds >= self.at_seconds,
            "events passed to elapsed_until in reverse order ({} > {})",
            self.at_seconds,
            later.at_seconds
        );
        (later.at_seconds - self.at_seconds).max(0.0)
    }

    /// Checked elapsed time: `None` when the events are reversed (`later`
    /// precedes `self`), making the release-mode clamp of
    /// [`Event::elapsed_until`] observable to callers in every build profile.
    pub fn try_elapsed_until(&self, later: &Event) -> Option<f64> {
        if later.at_seconds >= self.at_seconds {
            Some(later.at_seconds - self.at_seconds)
        } else {
            None
        }
    }
}

/// Completion time of a set of concurrent streams (they all start at zero): the
/// slowest stream defines the wall-clock cost, the way the paper's multi-stream
/// prefetching and multi-GPU kernel-time reporting work.
pub fn parallel_completion_seconds(streams: &[Stream]) -> f64 {
    streams.iter().map(|s| s.synchronize()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_accumulates_time_in_order() {
        let mut s = Stream::new("test");
        assert!(s.is_empty());
        let t1 = s.enqueue("prefetch", 0.5);
        let t2 = s.enqueue("kernel", 1.5);
        assert_eq!(t1, 0.5);
        assert_eq!(t2, 2.0);
        assert_eq!(s.synchronize(), 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "negative duration")]
    fn negative_durations_assert_in_debug_builds() {
        let mut s = Stream::new("test");
        s.enqueue("weird", -1.0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn negative_durations_are_clamped_and_counted_in_release_builds() {
        let mut s = Stream::new("test");
        s.enqueue("weird", -1.0);
        assert_eq!(s.synchronize(), 0.0);
        // The clamp is observable: the stream records the anomaly.
        assert_eq!(s.anomalies(), 1);
        s.enqueue("nan", f64::NAN);
        assert_eq!(s.anomalies(), 2);
        s.enqueue("fine", 0.5);
        assert_eq!(s.anomalies(), 2);
        assert_eq!(s.synchronize(), 0.5);
    }

    #[test]
    fn healthy_streams_record_no_anomalies() {
        let mut s = Stream::new("test");
        s.enqueue("a", 0.1);
        s.enqueue("b", 0.0);
        assert_eq!(s.anomalies(), 0);
    }

    #[test]
    fn try_elapsed_detects_reversed_events_in_every_profile() {
        let mut s = Stream::new("test");
        let start = s.record_event();
        s.enqueue("kernel", 0.25);
        let end = s.record_event();
        assert!((start.try_elapsed_until(&end).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(end.try_elapsed_until(&start), None);
    }

    #[test]
    fn events_measure_elapsed_time() {
        let mut s = Stream::new("test");
        let start = s.record_event();
        s.enqueue("kernel", 0.25);
        let end = s.record_event();
        assert!((start.elapsed_until(&end) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "reverse order")]
    fn reversed_events_assert_in_debug_builds() {
        let mut s = Stream::new("test");
        let start = s.record_event();
        s.enqueue("kernel", 0.25);
        let end = s.record_event();
        let _ = end.elapsed_until(&start);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn reversed_events_are_clamped_in_release_builds() {
        let mut s = Stream::new("test");
        let start = s.record_event();
        s.enqueue("kernel", 0.25);
        let end = s.record_event();
        assert_eq!(end.elapsed_until(&start), 0.0);
    }

    #[test]
    fn wait_event_advances_the_cursor_across_streams() {
        let mut producer = Stream::new("h2d");
        let mut consumer = Stream::new("kernel");
        producer.enqueue("prefetch", 1.0);
        let uploaded = producer.record_event();
        // The consumer has done less work, so the wait inserts an idle gap.
        consumer.enqueue("kernel batch 0", 0.4);
        let cursor = consumer.wait_event("wait h2d", &uploaded);
        assert_eq!(cursor, 1.0);
        consumer.enqueue("kernel batch 1", 0.5);
        assert_eq!(consumer.synchronize(), 1.5);
        // A wait on an already-passed event is a no-op and records nothing.
        let before = consumer.len();
        consumer.wait_event("stale wait", &uploaded);
        assert_eq!(consumer.len(), before);
        assert_eq!(consumer.synchronize(), 1.5);
    }

    #[test]
    fn parallel_completion_takes_the_slowest_stream() {
        let mut a = Stream::new("a");
        let mut b = Stream::new("b");
        a.enqueue("x", 1.0);
        b.enqueue("y", 0.2);
        b.enqueue("z", 0.3);
        assert_eq!(parallel_completion_seconds(&[a, b]), 1.0);
        assert_eq!(parallel_completion_seconds(&[]), 0.0);
    }

    #[test]
    fn operations_are_recorded_with_labels() {
        let mut s = Stream::new("ops");
        s.enqueue("prefetch reads", 0.1);
        s.enqueue("kernel", 0.2);
        let labels: Vec<&str> = s.operations().iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["prefetch reads", "kernel"]);
    }
}
