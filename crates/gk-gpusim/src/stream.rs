//! CUDA-stream and event style timeline bookkeeping.
//!
//! GateKeeper-GPU submits each input buffer's prefetch to a different stream so the
//! migrations overlap (§3.4), and measures kernel time with the CUDA Event API
//! (§4.3). The simulator models a stream as a monotonically growing timeline of
//! simulated seconds; events capture timeline positions so elapsed times can be
//! read back exactly like `cudaEventElapsedTime`.

use serde::{Deserialize, Serialize};

/// A simulated CUDA stream: an ordered timeline of enqueued work.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Stream {
    /// Name for reporting (e.g. `"prefetch-reads"`).
    pub name: String,
    cursor_seconds: f64,
    operations: Vec<(String, f64)>,
}

impl Stream {
    /// Creates an empty stream.
    pub fn new(name: impl Into<String>) -> Stream {
        Stream {
            name: name.into(),
            cursor_seconds: 0.0,
            operations: Vec::new(),
        }
    }

    /// Enqueues an operation lasting `seconds`; returns its completion time.
    pub fn enqueue(&mut self, label: impl Into<String>, seconds: f64) -> f64 {
        let seconds = seconds.max(0.0);
        self.cursor_seconds += seconds;
        self.operations.push((label.into(), seconds));
        self.cursor_seconds
    }

    /// Records an event at the current end of the stream.
    pub fn record_event(&self) -> Event {
        Event {
            at_seconds: self.cursor_seconds,
        }
    }

    /// Blocks (conceptually) until all enqueued work completes; returns the total
    /// stream time.
    pub fn synchronize(&self) -> f64 {
        self.cursor_seconds
    }

    /// Number of operations enqueued so far.
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// True when no work has been enqueued.
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// The enqueued operations, in order, as (label, duration seconds).
    pub fn operations(&self) -> &[(String, f64)] {
        &self.operations
    }
}

/// A simulated CUDA event: a point on a stream's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    at_seconds: f64,
}

impl Event {
    /// Timeline position of the event, in seconds.
    pub fn seconds(&self) -> f64 {
        self.at_seconds
    }

    /// Elapsed time between two events (like `cudaEventElapsedTime`, but in
    /// seconds). Negative if `self` was recorded after `later`.
    pub fn elapsed_until(&self, later: &Event) -> f64 {
        later.at_seconds - self.at_seconds
    }
}

/// Completion time of a set of concurrent streams (they all start at zero): the
/// slowest stream defines the wall-clock cost, the way the paper's multi-stream
/// prefetching and multi-GPU kernel-time reporting work.
pub fn parallel_completion_seconds(streams: &[Stream]) -> f64 {
    streams.iter().map(|s| s.synchronize()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_accumulates_time_in_order() {
        let mut s = Stream::new("test");
        assert!(s.is_empty());
        let t1 = s.enqueue("prefetch", 0.5);
        let t2 = s.enqueue("kernel", 1.5);
        assert_eq!(t1, 0.5);
        assert_eq!(t2, 2.0);
        assert_eq!(s.synchronize(), 2.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn negative_durations_are_clamped() {
        let mut s = Stream::new("test");
        s.enqueue("weird", -1.0);
        assert_eq!(s.synchronize(), 0.0);
    }

    #[test]
    fn events_measure_elapsed_time() {
        let mut s = Stream::new("test");
        let start = s.record_event();
        s.enqueue("kernel", 0.25);
        let end = s.record_event();
        assert!((start.elapsed_until(&end) - 0.25).abs() < 1e-12);
        assert!((end.elapsed_until(&start) + 0.25).abs() < 1e-12);
    }

    #[test]
    fn parallel_completion_takes_the_slowest_stream() {
        let mut a = Stream::new("a");
        let mut b = Stream::new("b");
        a.enqueue("x", 1.0);
        b.enqueue("y", 0.2);
        b.enqueue("z", 0.3);
        assert_eq!(parallel_completion_seconds(&[a, b]), 1.0);
        assert_eq!(parallel_completion_seconds(&[]), 0.0);
    }

    #[test]
    fn operations_are_recorded_with_labels() {
        let mut s = Stream::new("ops");
        s.enqueue("prefetch reads", 0.1);
        s.enqueue("kernel", 0.2);
        let labels: Vec<&str> = s.operations().iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, vec!["prefetch reads", "kernel"]);
    }
}
