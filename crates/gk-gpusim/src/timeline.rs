//! A multi-stream timeline scheduler with cross-stream dependencies.
//!
//! GateKeeper-GPU's host code keeps three kinds of work in flight at once
//! (§3.4): asynchronous prefetches of the *next* input buffers, the kernel over
//! the *current* batch, and result read-back of the *previous* batch, each on
//! its own CUDA stream chained by events. [`Timeline`] models exactly that: a
//! set of [`Stream`]s that all start at time zero, [`Event`]s recorded on one
//! stream and waited on by another, and a **makespan** — the completion time of
//! the slowest stream *after* all cross-stream waits have been applied — in
//! place of summing each stream's cursor independently.
//!
//! The scheduler is purely simulated time: callers enqueue modelled durations
//! and dependencies, and read back how long the overlapped execution takes
//! versus the serialized sum of all enqueued work.

use crate::stream::{Event, Stream};
use serde::{Deserialize, Serialize};

/// Handle to one stream inside a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamId(usize);

/// A set of concurrent streams chained by events, with makespan accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    streams: Vec<Stream>,
    /// Total duration of real operations enqueued (waits excluded): what the
    /// same work would cost executed back-to-back on a single stream.
    serialized_seconds: f64,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// Adds a stream; all streams start at time zero.
    pub fn add_stream(&mut self, name: impl Into<String>) -> StreamId {
        self.streams.push(Stream::new(name));
        StreamId(self.streams.len() - 1)
    }

    /// Enqueues `seconds` of work on a stream and returns the completion event,
    /// ready to be waited on from any other stream.
    pub fn enqueue(&mut self, stream: StreamId, label: impl Into<String>, seconds: f64) -> Event {
        let s = &mut self.streams[stream.0];
        s.enqueue(label, seconds);
        self.serialized_seconds += seconds.max(0.0);
        s.record_event()
    }

    /// Chains `stream` behind `event` (recorded on any stream): subsequent work
    /// on `stream` starts no earlier than the event. Idle gaps are recorded on
    /// the stream under `label` for inspection.
    pub fn wait_event(&mut self, stream: StreamId, label: impl Into<String>, event: &Event) {
        self.streams[stream.0].wait_event(label, event);
    }

    /// The streams, in creation order.
    pub fn streams(&self) -> &[Stream] {
        &self.streams
    }

    /// One stream by id.
    pub fn stream(&self, id: StreamId) -> &Stream {
        &self.streams[id.0]
    }

    /// Completion time of the whole timeline: the slowest stream's cursor after
    /// every cross-stream wait has been applied. This is the overlapped
    /// wall-clock cost the multi-stream prefetching of §3.4 is after.
    pub fn makespan_seconds(&self) -> f64 {
        self.streams
            .iter()
            .map(|s| s.synchronize())
            .fold(0.0, f64::max)
    }

    /// What the same operations would cost executed back-to-back on one stream
    /// (waits contribute nothing). Always ≥ the makespan.
    pub fn serialized_seconds(&self) -> f64 {
        self.serialized_seconds
    }

    /// Time saved by overlapping versus serializing, in seconds.
    pub fn overlap_savings_seconds(&self) -> f64 {
        (self.serialized_seconds() - self.makespan_seconds()).max(0.0)
    }

    /// Total ill-formed durations saturated to zero across all streams (see
    /// [`Stream::anomalies`]). Non-zero means the makespan and serialized sum
    /// are lower bounds: a release build absorbed what a debug build would
    /// have asserted on.
    pub fn anomalies(&self) -> u64 {
        self.streams.iter().map(|s| s.anomalies()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_streams_overlap_fully() {
        let mut tl = Timeline::new();
        let a = tl.add_stream("a");
        let b = tl.add_stream("b");
        tl.enqueue(a, "x", 1.0);
        tl.enqueue(b, "y", 0.7);
        assert_eq!(tl.makespan_seconds(), 1.0);
        assert!((tl.serialized_seconds() - 1.7).abs() < 1e-12);
        assert!((tl.overlap_savings_seconds() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cross_stream_dependencies_serialize_the_chain() {
        // h2d -> kernel -> d2h for one batch: no overlap is possible, so the
        // makespan equals the serialized sum.
        let mut tl = Timeline::new();
        let h2d = tl.add_stream("h2d");
        let kernel = tl.add_stream("kernel");
        let d2h = tl.add_stream("d2h");
        let up = tl.enqueue(h2d, "copy", 0.3);
        tl.wait_event(kernel, "wait copy", &up);
        let done = tl.enqueue(kernel, "kernel", 0.5);
        tl.wait_event(d2h, "wait kernel", &done);
        tl.enqueue(d2h, "readback", 0.2);
        assert!((tl.makespan_seconds() - 1.0).abs() < 1e-12);
        assert!((tl.serialized_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_batches_beat_the_serialized_sum() {
        // Two batches, three stages each: stage i of batch 1 overlaps stage
        // i+1 of batch 0, the classic software-pipeline diagram.
        let mut tl = Timeline::new();
        let h2d = tl.add_stream("h2d");
        let kernel = tl.add_stream("kernel");
        let d2h = tl.add_stream("d2h");
        for batch in 0..2 {
            let up = tl.enqueue(h2d, format!("copy {batch}"), 0.3);
            tl.wait_event(kernel, format!("wait copy {batch}"), &up);
            let done = tl.enqueue(kernel, format!("kernel {batch}"), 0.5);
            tl.wait_event(d2h, format!("wait kernel {batch}"), &done);
            tl.enqueue(d2h, format!("readback {batch}"), 0.2);
        }
        // Serialized: 2.0 s. Overlapped: 0.3 + 0.5 + 0.5 + 0.2 = 1.5 s.
        assert!((tl.serialized_seconds() - 2.0).abs() < 1e-12);
        assert!((tl.makespan_seconds() - 1.5).abs() < 1e-12);
        assert!(tl.overlap_savings_seconds() > 0.0);
    }

    #[test]
    fn streams_are_inspectable() {
        let mut tl = Timeline::new();
        let a = tl.add_stream("h2d");
        let b = tl.add_stream("kernel");
        let up = tl.enqueue(a, "copy", 0.1);
        tl.wait_event(b, "wait copy", &up);
        tl.enqueue(b, "kernel", 0.2);
        assert_eq!(tl.streams().len(), 2);
        assert_eq!(tl.stream(a).name, "h2d");
        // The kernel stream recorded the wait gap and the kernel op.
        assert_eq!(tl.stream(b).len(), 2);
    }

    #[test]
    fn empty_timeline_has_zero_makespan() {
        let tl = Timeline::new();
        assert_eq!(tl.makespan_seconds(), 0.0);
        assert_eq!(tl.serialized_seconds(), 0.0);
        assert_eq!(tl.anomalies(), 0);
    }

    #[test]
    fn healthy_timelines_report_zero_anomalies() {
        let mut tl = Timeline::new();
        let a = tl.add_stream("a");
        let b = tl.add_stream("b");
        tl.enqueue(a, "x", 1.0);
        tl.enqueue(b, "y", 0.0);
        assert_eq!(tl.anomalies(), 0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn release_clamps_surface_as_timeline_anomalies() {
        let mut tl = Timeline::new();
        let a = tl.add_stream("a");
        let b = tl.add_stream("b");
        tl.enqueue(a, "bad", -2.0);
        tl.enqueue(b, "also bad", -1.0);
        tl.enqueue(b, "fine", 0.5);
        assert_eq!(tl.anomalies(), 2);
        // The clamped operations contribute nothing to either accounting.
        assert_eq!(tl.makespan_seconds(), 0.5);
        assert_eq!(tl.serialized_seconds(), 0.5);
    }
}
